//! # abc-rand — an offline, deterministic stand-in for the `rand` crate
//!
//! This workspace builds with **zero external dependencies** (the CI image
//! has no crates.io access), so the handful of `rand` APIs the simulator
//! uses are reimplemented here under the same paths: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`], and
//! [`Rng::gen_bool`]. The lib target is named `rand`, so callers keep the
//! idiomatic `use rand::{Rng, SeedableRng};` imports.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — not the
//! cryptographic ChaCha12 of the real crate, which the simulator never
//! needed: what matters here is that every stream is fast, well mixed, and
//! **bit-reproducible across platforms and releases** (the determinism
//! tests in `tests/engine_determinism.rs` rely on it; the real `rand`
//! explicitly reserves the right to change `StdRng`'s algorithm).

use std::ops::{Range, RangeInclusive};

/// Types that can seed themselves from a `u64` (the only constructor the
/// workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// The object-safe generator core: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distribution of `gen()`: uniform over the type's natural domain
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire's multiply-shift. A modulo-free
/// map is deterministic and unbiased enough for simulation workloads (bias
/// is < 2⁻⁶⁴·span; the real crate's rejection loop would cost determinism
/// nothing but this keeps every draw exactly one `next_u64`).
#[inline]
fn below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // full-width u64/i64 range: every u64 is valid
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64.
    ///
    /// Unlike the real crate's `StdRng`, the algorithm here is part of the
    /// contract: simulation results keyed by seed must never drift.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&x));
            let y = r.gen_range(0..3usize);
            assert!(y < 3);
            let z = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&z));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_f64_covers_range() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}
