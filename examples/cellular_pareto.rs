//! The paper's headline experiment in one command: every congestion-control
//! scheme over an emulated cellular trace, reporting the
//! utilization/delay tradeoff (Fig. 8's axes).
//!
//! The whole lineup is one [`ScenarioEngine::run_batch`] call — twelve
//! independent scenarios spread across the machine's cores.
//!
//! ```sh
//! cargo run --release --example cellular_pareto             # Verizon1
//! cargo run --release --example cellular_pareto TMobile1    # another trace
//! ```

use abc_repro::cellular;
use abc_repro::experiments::{LinkSpec, ScenarioEngine, ScenarioSpec, CELLULAR_LINEUP};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Verizon1".into());
    let trace = cellular::builtin(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown trace {name:?}; built-ins: {:?}",
            cellular::builtin_specs()
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
        );
        std::process::exit(2);
    });
    println!(
        "trace {} — mean capacity {:.2} Mbit/s over {:.0} s\n",
        trace.name,
        trace.mean_rate().mbps(),
        trace.duration().as_secs_f64()
    );
    println!(
        "{:<14} {:>6} {:>16} {:>14}",
        "Scheme", "Util", "95p delay (ms)", "tput (Mbit/s)"
    );
    let specs: Vec<ScenarioSpec> = CELLULAR_LINEUP
        .iter()
        .map(|&scheme| {
            ScenarioSpec::single(scheme, LinkSpec::Trace(trace.clone())).duration_secs(60)
        })
        .collect();
    let rows = ScenarioEngine::new().run_batch(&specs);
    for r in &rows {
        println!(
            "{:<14} {:>6.3} {:>16.1} {:>14.2}",
            r.scheme, r.utilization, r.delay_ms.p95, r.total_tput_mbps
        );
    }
    // point out who dominates whom
    let abc = rows.iter().find(|r| r.scheme == "ABC").unwrap();
    let dominated = rows
        .iter()
        .filter(|r| r.scheme != "ABC")
        .filter(|r| abc.utilization >= r.utilization && abc.delay_ms.p95 <= r.delay_ms.p95)
        .count();
    println!(
        "\nABC Pareto-dominates {dominated} of {} other schemes on this trace.",
        rows.len() - 1
    );
}
