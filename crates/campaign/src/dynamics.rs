//! The paper-style dynamics timeline, rendered **purely from a telemetry
//! sidecar** — no re-simulation.
//!
//! A sidecar (see [`netsim::telemetry`]) is self-describing JSONL: a
//! schema header line followed by sample/counter/histogram rows.
//! [`render_dynamics`] turns one into the timeline the ABC paper plots
//! around its control law: the router's mark fraction and token-bucket
//! level, the queuing delay they regulate, and the congestion windows
//! that respond — one sparkline panel per `(signal, scope)` series. The
//! `dynamics` figure in [`crate::figures::all`] runs a small ABC scenario
//! with telemetry on and feeds the sidecar straight through this
//! renderer, proving the pipeline end to end.

use crate::json::{self, Value};
use experiments::sparkline;
use std::collections::BTreeMap;
use std::fmt::Write;

/// The signals the timeline shows, top to bottom: control-law outputs
/// first (marks, bucket level, target), then the delay they regulate,
/// then the endpoint response (cwnd, in-flight, srtt).
const PANEL_ORDER: &[&str] = &[
    "mark_frac",
    "abc_token",
    "target_rate_mbps",
    "qdelay_ms",
    "qdisc_depth_pkts",
    "cwnd",
    "inflight",
    "pacing_rate_mbps",
    "srtt_ms",
];

/// Render the dynamics timeline from a sidecar's JSONL text. Errors
/// (with a description) on a missing/foreign schema header or a
/// malformed row — a sidecar is machine-written, so any parse failure
/// means the file is not one.
pub fn render_dynamics(sidecar: &str) -> Result<String, String> {
    let mut lines = sidecar
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header_line) = lines.next().ok_or("empty sidecar")?;
    let header = json::parse(header_line).map_err(|e| format!("header: {e}"))?;
    let schema = header
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("header has no \"schema\" member")?;
    if schema != netsim::telemetry::SIDECAR_SCHEMA {
        return Err(format!(
            "schema {schema:?} is not {:?}",
            netsim::telemetry::SIDECAR_SCHEMA
        ));
    }
    let cadence_ms = header
        .get("sample_every_ns")
        .and_then(Value::as_f64)
        .map(|ns| ns / 1e6);

    // (signal, scope) → time series in row order (sidecars are written in
    // sample order, so this is also time order).
    let mut series: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut counters: Vec<(String, String, f64)> = Vec::new();
    let mut events = 0u64;
    let mut hist_lines: Vec<String> = Vec::new();
    for (i, line) in lines {
        let row = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if let (Some(signal), Some(scope), Some(v), Some(t_ns)) = (
            row.get("signal").and_then(Value::as_str),
            row.get("scope").and_then(Value::as_str),
            row.get("v").and_then(Value::as_f64),
            row.get("t_ns").and_then(Value::as_f64),
        ) {
            series
                .entry((signal.to_string(), scope.to_string()))
                .or_default()
                .push((t_ns / 1e9, v));
        } else if let (Some(counter), Some(scope), Some(n)) = (
            row.get("counter").and_then(Value::as_str),
            row.get("scope").and_then(Value::as_str),
            row.get("n").and_then(Value::as_f64),
        ) {
            counters.push((counter.to_string(), scope.to_string(), n));
        } else if let Some(hist) = row.get("hist").and_then(Value::as_str) {
            let count = row.get("count").and_then(Value::as_f64).unwrap_or(0.0);
            hist_lines.push(format!("histogram {hist}: {count} sample(s)"));
        } else if row.get("signal").and_then(Value::as_str) == Some("events") {
            events += 1;
        } else {
            return Err(format!("line {}: unrecognized row shape", i + 1));
        }
    }
    if series.is_empty() {
        return Err("sidecar has no samples to plot".into());
    }

    let end = series
        .values()
        .flat_map(|s| s.iter().map(|p| p.0))
        .fold(0.0f64, f64::max);
    let mut out = String::new();
    writeln!(
        out,
        "# dynamics — {} series over {:.1} s{}",
        series.len(),
        end,
        cadence_ms.map_or(String::new(), |ms| format!(", sampled every {ms:.0} ms")),
    )
    .unwrap();
    // Panels in control-loop order; unknown signals (future schema
    // additions) follow alphabetically rather than disappearing.
    let panel_rank = |sig: &str| {
        PANEL_ORDER
            .iter()
            .position(|p| *p == sig)
            .unwrap_or(PANEL_ORDER.len())
    };
    let mut keys: Vec<&(String, String)> = series.keys().collect();
    keys.sort_by(|a, b| (panel_rank(&a.0), a).cmp(&(panel_rank(&b.0), b)));
    for key in keys {
        let pts = &series[key];
        let lo = pts.iter().map(|p| p.1).fold(f64::MAX, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::MIN, f64::max);
        writeln!(
            out,
            "{:<17} {:<16} {:<60} [{:.3} .. {:.3}]",
            key.0,
            key.1,
            sparkline(pts, 60),
            lo,
            hi
        )
        .unwrap();
    }
    for (counter, scope, n) in &counters {
        writeln!(out, "counter {counter} {scope}: {n}").unwrap();
    }
    for h in &hist_lines {
        writeln!(out, "{h}").unwrap();
    }
    if events > 0 {
        writeln!(out, "events: {events} row(s)").unwrap();
    }
    Ok(out)
}

/// The `dynamics` figure: run a small ABC scenario over a square-wave
/// link with telemetry on, then render the timeline from the sidecar
/// alone — the same path `abc-campaign dynamics <file>` takes on a
/// stored sidecar.
pub fn dynamics_figure(scale: experiments::figures::Scale) -> String {
    use experiments::engine::{ScenarioEngine, ScenarioSpec};
    use experiments::{LinkSpec, Scheme};
    use netsim::rate::Rate;
    use netsim::telemetry::TelemetryConfig;
    use netsim::time::SimDuration;

    let secs = match scale {
        experiments::figures::Scale::Full => 20,
        experiments::figures::Scale::Fast => 8,
        experiments::figures::Scale::Tiny => 3,
    };
    let spec = ScenarioSpec::single(
        Scheme::Abc,
        LinkSpec::Square {
            a: Rate::from_mbps(6.0),
            b: Rate::from_mbps(18.0),
            half_period: SimDuration::from_millis(1000),
        },
    )
    .duration_secs(secs)
    .warmup_secs(0)
    .telemetry(TelemetryConfig::default().with_sample_every(SimDuration::from_millis(20)));
    let mut built = ScenarioEngine::new().build(&spec);
    built.run_to_end();
    let sidecar = built.sidecar().expect("spec enabled telemetry");
    render_dynamics(&sidecar).expect("engine-written sidecar must render")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_renders_the_paper_panels() {
        let f = dynamics_figure(experiments::figures::Scale::Tiny);
        for sig in ["mark_frac", "abc_token", "qdelay_ms", "cwnd"] {
            assert!(f.contains(sig), "panel {sig} missing from:\n{f}");
        }
        assert!(f.contains("link:bottleneck"), "{f}");
        assert!(f.contains("flow:1"), "{f}");
    }

    #[test]
    fn render_is_pure_over_the_sidecar() {
        use experiments::engine::{ScenarioEngine, ScenarioSpec};
        use experiments::{LinkSpec, Scheme};
        use netsim::rate::Rate;
        let spec = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
            .duration_secs(2)
            .warmup_secs(0)
            .telemetry(netsim::telemetry::TelemetryConfig::default());
        let mut b = ScenarioEngine::new().build(&spec);
        b.run_to_end();
        let sidecar = b.sidecar().unwrap();
        assert_eq!(
            render_dynamics(&sidecar).unwrap(),
            render_dynamics(&sidecar).unwrap()
        );
    }

    #[test]
    fn rejects_foreign_or_missing_headers() {
        assert!(render_dynamics("").is_err());
        assert!(render_dynamics("{\"schema\":\"something-else/v9\"}\n").is_err());
        assert!(render_dynamics("not json\n").is_err());
    }
}
