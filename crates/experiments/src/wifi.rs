//! Wi-Fi experiments (§6.3 Fig. 10, Appendix B Fig. 14, and the
//! estimator-accuracy studies of Figs. 4-5): flows through the 802.11n
//! A-MPDU access-point model with a time-varying MCS index.
//!
//! Presets over [`crate::engine`]: the AP topology is
//! [`Topology::Wifi`](crate::engine::Topology), and harnesses that reach
//! into the AP (batch logs, the link-rate estimator) use
//! [`ScenarioEngine::build`] plus [`BuiltScenario::wifi_ap_mut`].

use crate::engine::{BuiltScenario, ScenarioEngine, ScenarioSpec, Topology};
use crate::report::Report;
use crate::scheme::Scheme;
use netsim::flow::TrafficSource;
use netsim::stats::summarize_in_place;
use netsim::time::{SimDuration, SimTime};
use wifi_mac::{AlternatingMcs, BrownianMcs, FixedMcs, McsProcess};

/// MCS-variation pattern of the experiment.
#[derive(Debug, Clone, Copy)]
pub enum McsSpec {
    /// A constant MCS index.
    Fixed(u8),
    /// §6.3: alternate between two indices every period.
    Alternating(u8, u8, SimDuration),
    /// Appendix B: Brownian walk over [min, max].
    Brownian(u8, u8, SimDuration, u64),
}

impl McsSpec {
    /// Build the MCS process this spec denotes.
    pub fn build(&self) -> Box<dyn McsProcess> {
        match *self {
            McsSpec::Fixed(i) => Box::new(FixedMcs(i)),
            McsSpec::Alternating(a, b, p) => Box::new(AlternatingMcs { a, b, period: p }),
            McsSpec::Brownian(lo, hi, p, seed) => Box::new(BrownianMcs::new(lo, hi, p, seed)),
        }
    }
}

/// Flows of one scheme through the 802.11n A-MPDU access point
/// (Figs. 4/5/10/14).
pub struct WifiScenario {
    /// The scheme every user runs.
    pub scheme: Scheme,
    /// Number of stations (one backlogged flow each by default).
    pub users: u32,
    /// How the MCS index varies over time.
    pub mcs: McsSpec,
    /// Path round-trip propagation delay.
    pub rtt: SimDuration,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Measurements before this offset are discarded.
    pub warmup: SimDuration,
    /// Per-flow application pattern.
    pub app: TrafficSource,
}

impl WifiScenario {
    /// The Wi-Fi defaults: 100 ms RTT, 45 s + 5 s warmup, backlogged
    /// users.
    pub fn new(scheme: Scheme, users: u32, mcs: McsSpec) -> Self {
        WifiScenario {
            scheme,
            users,
            mcs,
            rtt: SimDuration::from_millis(100),
            duration: SimDuration::from_secs(45),
            warmup: SimDuration::from_secs(5),
            app: TrafficSource::Backlogged,
        }
    }

    /// The [`ScenarioSpec`] this preset denotes.
    pub fn spec(&self) -> ScenarioSpec {
        ScenarioSpec::wifi(self.scheme, self.users, self.mcs)
            .app(self.app)
            .rtt(self.rtt)
            .duration(self.duration)
            .warmup(self.warmup)
    }

    /// Build, run to completion, and report.
    pub fn run(&self) -> Report {
        ScenarioEngine::new().run(&self.spec())
    }
}

/// Fig. 5: estimator accuracy for a non-backlogged sender at a given
/// offered load over a fixed-MCS link. Returns (offered Mbit/s, predicted
/// Mbit/s, true capacity Mbit/s).
pub fn estimator_accuracy(mcs: u8, offered_mbps: f64, duration: SimDuration) -> (f64, f64, f64) {
    let mut spec = ScenarioSpec::wifi(Scheme::Cubic, 1, McsSpec::Fixed(mcs))
        .app(TrafficSource::RateLimited {
            rate: netsim::rate::Rate::from_mbps(offered_mbps),
            burst_bytes: 6000.0,
        })
        .duration(duration);
    // Fig. 5 measures the estimator, not bufferbloat: a normal-sized AP
    // queue keeps the offered load in charge of how full batches are.
    if let Topology::Wifi { ap_buffer_pkts, .. } = &mut spec.topology {
        *ap_buffer_pkts = 250;
    }
    let mut b: BuiltScenario = ScenarioEngine::new().build(&spec);

    // sample the estimate periodically over the second half of the run
    let mut estimates = Vec::new();
    let mut t = SimTime::ZERO;
    let end = b.end_time();
    while t < end {
        b.run_chunk(SimDuration::from_millis(500));
        t += SimDuration::from_millis(500);
        if t.as_secs_f64() > duration.as_secs_f64() / 2.0
            && !b.wifi_ap("wifi").estimator().batch_log().is_empty()
        {
            // estimate() needs &mut (window expiry)
            let est = b.wifi_ap_mut("wifi").estimator_mut().estimate(t);
            if !est.is_zero() {
                estimates.push(est.mbps());
            }
        }
    }
    let truth = b.wifi_ap_mut("wifi").true_capacity_at(end).mbps();
    let predicted = summarize_in_place(&mut estimates).mean;
    (offered_mbps, predicted, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abc_beats_cubic_delay_on_wifi() {
        let mcs = McsSpec::Alternating(1, 7, SimDuration::from_secs(2));
        let abc = WifiScenario::new(Scheme::AbcDt(60), 1, mcs).run();
        let cubic = WifiScenario::new(Scheme::Cubic, 1, mcs).run();
        assert!(
            abc.delay_ms.p95 < cubic.delay_ms.p95 / 1.5,
            "ABC p95 {:.0} vs Cubic p95 {:.0}",
            abc.delay_ms.p95,
            cubic.delay_ms.p95
        );
        assert!(
            abc.total_tput_mbps > cubic.total_tput_mbps * 0.6,
            "ABC tput {:.1} vs Cubic {:.1}",
            abc.total_tput_mbps,
            cubic.total_tput_mbps
        );
    }

    #[test]
    fn two_user_scenario_shares() {
        let mcs = McsSpec::Fixed(5);
        let r = WifiScenario::new(Scheme::AbcDt(60), 2, mcs).run();
        assert_eq!(r.flow_tputs_mbps.len(), 2);
        assert!(r.jain > 0.85, "jain {}", r.jain);
    }

    #[test]
    fn estimator_accuracy_within_5_percent_when_loaded() {
        // at high offered load the estimator must nail the capacity
        let (_, predicted, truth) = estimator_accuracy(1, 20.0, SimDuration::from_secs(20));
        let err = (predicted - truth).abs() / truth;
        assert!(
            err < 0.05,
            "pred {predicted:.2} vs true {truth:.2} ({err:.3})"
        );
    }
}
