//! End-to-end integration: the ABC sender and router closing the loop over
//! the netsim substrate, driven entirely through the scenario engine.
//! These tests exercise the paper's core claims on simple links where
//! ground truth is computable by hand.

use abc_repro::abc_core::router::AbcRouterConfig;
use abc_repro::experiments::{
    BuiltScenario, LinkSpec, QdiscSpec, ScenarioEngine, ScenarioSpec, Scheme,
};
use abc_repro::netsim::flow::Sender;
use abc_repro::netsim::packet::FlowId;
use abc_repro::netsim::rate::Rate;
use abc_repro::netsim::time::{SimDuration, SimTime};

/// `n` ABC flows over one ABC bottleneck with 100 ms RTT and router
/// config `qcfg`, warmed up for `warmup_s` and run for `secs`.
fn abc_over(
    link: LinkSpec,
    n: u32,
    qcfg: AbcRouterConfig,
    warmup_s: u64,
    secs: u64,
) -> BuiltScenario {
    let spec = ScenarioSpec::single(Scheme::Abc, link)
        .flows(n)
        .qdisc(QdiscSpec::AbcWith(qcfg))
        .warmup_secs(warmup_s)
        .duration_secs(secs);
    let mut b = ScenarioEngine::new().build(&spec);
    b.run_to_end();
    b
}

#[test]
fn abc_high_utilization_low_delay_constant_link() {
    let b = abc_over(
        LinkSpec::Constant(Rate::from_mbps(12.0)),
        1,
        AbcRouterConfig::default(),
        10,
        60,
    );
    let r = b.finish();
    assert!(
        r.utilization > 0.90,
        "ABC should achieve ≥ ~η utilization on a fixed link, got {:.3}",
        r.utilization
    );
    assert!(
        r.qdelay_ms.p95 < 50.0,
        "ABC 95p queuing delay should be low, got {:.1} ms",
        r.qdelay_ms.p95
    );
    assert_eq!(r.drops, 0, "no drops expected");
}

#[test]
fn abc_tracks_square_wave_link() {
    // Fig. 17's link: 12 ↔ 24 Mbit/s every 500 ms. ABC should stay near
    // full utilization with bounded delays.
    let b = abc_over(
        LinkSpec::Square {
            a: Rate::from_mbps(12.0),
            b: Rate::from_mbps(24.0),
            half_period: SimDuration::from_millis(500),
        },
        1,
        AbcRouterConfig::default(),
        10,
        60,
    );
    let r = b.finish();
    assert!(
        r.utilization > 0.85,
        "utilization on square wave: {:.3}",
        r.utilization
    );
    // Each capacity halving leaves ~1 RTT of over-window in the queue,
    // drained within δ; the paper's Fig. 17 shows the same ~100 ms spikes.
    assert!(
        r.qdelay_ms.p95 < 150.0,
        "95p queuing delay {:.1} ms",
        r.qdelay_ms.p95
    );
    assert!(
        r.qdelay_ms.p50 < 40.0,
        "median queuing delay {:.1} ms",
        r.qdelay_ms.p50
    );
}

#[test]
fn abc_flows_share_fairly() {
    // §6.5: competing ABC flows converge to a fair allocation. The MIMD
    // component makes windows slosh around the fair share (visible in the
    // paper's Fig. 3b too), so fairness is evaluated over a long window
    // after the additive-increase term has had time to act.
    let b = abc_over(
        LinkSpec::Constant(Rate::from_mbps(24.0)),
        4,
        AbcRouterConfig::default(),
        60,
        180,
    );
    let r = b.finish();
    assert!(
        r.jain > 0.95,
        "Jain index across 4 ABC flows: {:.4}",
        r.jain
    );
    assert!(
        r.utilization > 0.90,
        "aggregate utilization {:.3}",
        r.utilization
    );
}

#[test]
fn senders_see_mixed_accel_brake_in_steady_state() {
    let b = abc_over(
        LinkSpec::Constant(Rate::from_mbps(12.0)),
        1,
        AbcRouterConfig::default(),
        0,
        30,
    );
    let s: &Sender = b.sender(0);
    let st = s.stats();
    assert!(st.accel_acks > 0, "no accelerates seen");
    assert!(st.brake_acks > 0, "no brakes seen");
    // steady state: roughly half accel (f ≈ 0.49·…)
    let frac = st.accel_acks as f64 / (st.accel_acks + st.brake_acks) as f64;
    assert!(
        (0.35..0.65).contains(&frac),
        "accelerate fraction {frac:.3} out of steady-state band"
    );
    assert_eq!(st.rtos, 0, "unexpected RTOs on a clean path");
}

#[test]
fn abc_router_brakes_hard_when_capacity_halves() {
    // Capacity halving is where window-based + dequeue-rate feedback
    // shines: the queue must drain within a few RTTs.
    let b = abc_over(
        LinkSpec::Steps(vec![
            (SimTime::ZERO, Rate::from_mbps(24.0)),
            (
                SimTime::ZERO + SimDuration::from_secs(20),
                Rate::from_mbps(6.0),
            ),
        ]),
        1,
        AbcRouterConfig::default(),
        0,
        40,
    );
    // look at queuing delay *after* the drop settles (25s onward)
    let hub = b.hub.borrow();
    let late: Vec<f64> = hub.links["bottleneck"]
        .qdelay_series
        .iter()
        .filter(|(t, _)| t.as_secs_f64() > 25.0)
        .map(|(_, d)| d.as_millis_f64())
        .collect();
    let s = abc_repro::netsim::stats::summarize(&late);
    assert!(
        s.p95 < 80.0,
        "queue should drain after capacity drop; late 95p = {:.1} ms",
        s.p95
    );
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let b = abc_over(
            LinkSpec::Constant(Rate::from_mbps(12.0)),
            2,
            AbcRouterConfig::default(),
            0,
            20,
        );
        let hub = b.hub.borrow();
        (
            hub.flows[&FlowId(1)].delivered_bytes,
            hub.flows[&FlowId(2)].delivered_bytes,
            hub.links["bottleneck"].qdelay_series.len(),
        )
    };
    assert_eq!(
        run(),
        run(),
        "identical runs must produce identical results"
    );
}

#[test]
fn dt_threshold_tolerates_batching_delay() {
    // With dt = 60 ms, standing queues below 60 ms must not reduce the
    // accel share; utilization should not suffer.
    let b = abc_over(
        LinkSpec::Constant(Rate::from_mbps(12.0)),
        1,
        AbcRouterConfig {
            dt: SimDuration::from_millis(60),
            ..Default::default()
        },
        10,
        40,
    );
    let r = b.finish();
    assert!(r.utilization > 0.90, "utilization {:.3}", r.utilization);
}
