//! 802.11n MCS (Modulation and Coding Scheme) table and the index-variation
//! processes the paper's Wi-Fi experiments use (§6.3: alternate the index
//! between 1 and 7 every 2 s; Appendix B: Brownian motion over [3, 7]).

use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 802.11n single-stream, 20 MHz, long guard interval PHY bitrates
/// (Mbit/s) for MCS 0–7.
pub const MCS_RATE_MBPS: [f64; 8] = [6.5, 13.0, 19.5, 26.0, 39.0, 52.0, 58.5, 65.0];

/// PHY bitrate for an MCS index.
///
/// # Panics
/// If `idx > 7`.
pub fn mcs_rate(idx: u8) -> Rate {
    Rate::from_mbps(MCS_RATE_MBPS[idx as usize])
}

/// A deterministic (seeded) MCS-index schedule.
pub trait McsProcess {
    fn mcs_at(&mut self, t: SimTime) -> u8;
}

/// Constant index.
pub struct FixedMcs(pub u8);

impl McsProcess for FixedMcs {
    fn mcs_at(&mut self, _t: SimTime) -> u8 {
        self.0
    }
}

/// Alternate between two indices every `period` (the paper's §6.3 setup:
/// 1 ↔ 7 every 2 s, mimicking endpoint movement).
pub struct AlternatingMcs {
    pub a: u8,
    pub b: u8,
    pub period: SimDuration,
}

impl McsProcess for AlternatingMcs {
    fn mcs_at(&mut self, t: SimTime) -> u8 {
        let phase = t.as_nanos() / self.period.as_nanos();
        if phase.is_multiple_of(2) {
            self.a
        } else {
            self.b
        }
    }
}

/// Brownian-motion index over `[min, max]`, re-stepped every `period`
/// (Appendix B: values bounded to [3, 7], changing every 2 s).
pub struct BrownianMcs {
    pub min: u8,
    pub max: u8,
    pub period: SimDuration,
    current: u8,
    last_step: Option<u64>,
    rng: StdRng,
}

impl BrownianMcs {
    pub fn new(min: u8, max: u8, period: SimDuration, seed: u64) -> Self {
        assert!(min <= max && max <= 7);
        BrownianMcs {
            min,
            max,
            period,
            current: (min + max) / 2,
            last_step: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl McsProcess for BrownianMcs {
    fn mcs_at(&mut self, t: SimTime) -> u8 {
        let phase = t.as_nanos() / self.period.as_nanos();
        match self.last_step {
            Some(last) if last >= phase => {}
            _ => {
                // advance the walk once per period boundary crossed
                let steps = match self.last_step {
                    Some(last) => phase - last,
                    None => 1,
                };
                for _ in 0..steps.min(32) {
                    let delta: i8 = [-1, 0, 1][self.rng.gen_range(0..3usize)];
                    let next = self.current as i8 + delta;
                    self.current = next.clamp(self.min as i8, self.max as i8) as u8;
                }
                self.last_step = Some(phase);
            }
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn table_is_monotone() {
        for w in MCS_RATE_MBPS.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(mcs_rate(7).mbps(), 65.0);
    }

    #[test]
    fn alternating_schedule() {
        let mut m = AlternatingMcs {
            a: 1,
            b: 7,
            period: SimDuration::from_secs(2),
        };
        assert_eq!(m.mcs_at(at(0)), 1);
        assert_eq!(m.mcs_at(at(1999)), 1);
        assert_eq!(m.mcs_at(at(2000)), 7);
        assert_eq!(m.mcs_at(at(4000)), 1);
    }

    #[test]
    fn brownian_stays_in_bounds_and_moves() {
        let mut m = BrownianMcs::new(3, 7, SimDuration::from_secs(2), 7);
        let mut seen = std::collections::HashSet::new();
        for s in 0..200u64 {
            let idx = m.mcs_at(at(s * 2000));
            assert!((3..=7).contains(&idx));
            seen.insert(idx);
        }
        assert!(seen.len() > 1, "walk never moved");
    }

    #[test]
    fn brownian_is_deterministic_per_seed() {
        let run = |seed| {
            let mut m = BrownianMcs::new(3, 7, SimDuration::from_secs(2), seed);
            (0..50u64)
                .map(|s| m.mcs_at(at(s * 2000)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
