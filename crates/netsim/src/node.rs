//! The `Node` trait and the `Context` through which nodes act on the world.

use crate::event::EventKind;
use crate::packet::{NodeId, Packet};
use crate::telemetry::{PoolStats, Scope, Signal, TelemetrySink};
use crate::time::{SimDuration, SimTime};

/// Recycled `Deliver` boxes kept per simulator; bounds pool memory while
/// letting steady-state traffic run allocation-free. Shared by the
/// simulator's dead-letter path and [`Context::recycle`].
pub(crate) const PACKET_POOL_CAP: usize = 1024;

/// Handle to a pending timer, returned by [`Context::set_timer`] /
/// [`Context::set_timer_at`] and consumed by [`Context::cancel_timer`].
/// Cancel only timers that have not fired yet: a handle is dead as soon as
/// its `Timer` event is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId(u64);

/// A deferred effect a node produces while handling an event. The simulator
/// drains these into the event queue after the handler returns, so nodes
/// never borrow the queue (or each other) directly. Ordering within one
/// handler invocation is preserved, so scheduling and then cancelling the
/// same timer in one handler is well-defined.
#[derive(Debug)]
pub(crate) enum Effect {
    Schedule {
        time: SimTime,
        node: NodeId,
        kind: EventKind,
        seq: u64,
    },
    Cancel(u64),
}

/// The capability handed to a node while it handles an event.
pub struct Context<'a> {
    now: SimTime,
    self_id: NodeId,
    out: &'a mut Vec<Effect>,
    /// The simulator's event sequence counter; assigned eagerly so the
    /// effects carry their final queue order (and cancellation handles).
    next_seq: &'a mut u64,
    /// Recycled `Deliver` boxes — steady-state traffic reuses them instead
    /// of allocating per packet. The boxes are the pooled resource, not an
    /// indirection.
    #[allow(clippy::vec_box)]
    pool: &'a mut Vec<Box<Packet>>,
    /// Pool hit/miss counters (simulator-owned, always on — two integer
    /// increments per packet with no observable output unless profiled).
    pool_stats: &'a mut PoolStats,
    /// The telemetry sink probes record through.
    sink: &'a mut dyn TelemetrySink,
    /// `sink.is_enabled()`, cached once per dispatch so each probe site
    /// costs a predictable branch instead of a virtual call.
    telemetry_on: bool,
}

impl<'a> Context<'a> {
    #[allow(clippy::vec_box)]
    pub(crate) fn new(
        now: SimTime,
        self_id: NodeId,
        out: &'a mut Vec<Effect>,
        next_seq: &'a mut u64,
        pool: &'a mut Vec<Box<Packet>>,
        pool_stats: &'a mut PoolStats,
        sink: &'a mut dyn TelemetrySink,
    ) -> Self {
        let telemetry_on = sink.is_enabled();
        Context {
            now,
            self_id,
            out,
            next_seq,
            pool,
            pool_stats,
            sink,
            telemetry_on,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id under which this node is registered.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    #[inline]
    fn take_seq(&mut self) -> u64 {
        let seq = *self.next_seq;
        *self.next_seq += 1;
        seq
    }

    #[inline]
    fn boxed(&mut self, pkt: Packet) -> Box<Packet> {
        match self.pool.pop() {
            Some(mut b) => {
                self.pool_stats.hits += 1;
                *b = pkt;
                b
            }
            None => {
                self.pool_stats.misses += 1;
                Box::new(pkt)
            }
        }
    }

    #[inline]
    fn schedule(&mut self, time: SimTime, node: NodeId, kind: EventKind) -> u64 {
        let seq = self.take_seq();
        self.out.push(Effect::Schedule {
            time,
            node,
            kind,
            seq,
        });
        seq
    }

    /// Forward `pkt` along its route: deliver it to the next hop after that
    /// segment's propagation delay. Packets whose route is exhausted are
    /// dropped with a debug assertion — a terminal node (sender absorbing
    /// its own ACK) should simply not forward.
    pub fn forward(&mut self, pkt: Packet) {
        let boxed = self.boxed(pkt);
        self.forward_boxed(boxed);
    }

    /// Forward an already-boxed packet, reusing its allocation across hops.
    pub fn forward_boxed(&mut self, mut pkt: Box<Packet>) {
        match pkt.next_hop() {
            Some((next, delay)) => {
                pkt.hop += 1;
                let time = self.now + delay;
                self.schedule(time, next, EventKind::Deliver(pkt));
            }
            None => {
                debug_assert!(false, "forward() on exhausted route");
            }
        }
    }

    /// Deliver `pkt` to an explicit node after `delay`, ignoring the route.
    /// Used by link nodes delivering to themselves, e.g. loopback tests.
    pub fn deliver(&mut self, to: NodeId, delay: SimDuration, pkt: Packet) {
        let boxed = self.boxed(pkt);
        let time = self.now + delay;
        self.schedule(time, to, EventKind::Deliver(boxed));
    }

    /// Return a spent `Deliver` box to the packet pool. Terminal nodes
    /// (senders absorbing ACKs, sinks consuming data) call this so the
    /// allocation is reused by the next [`Context::forward`].
    pub fn recycle(&mut self, pkt: Box<Packet>) {
        // Capped so a burst of drops can't pin unbounded memory.
        if self.pool.len() < PACKET_POOL_CAP {
            self.pool.push(pkt);
        }
    }

    /// Fire `Timer(token)` on this node after `delay`. The returned handle
    /// cancels the timer while it is still pending.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        let time = self.now + delay;
        TimerId(self.schedule(time, self.self_id, EventKind::Timer(token)))
    }

    /// Fire `Timer(token)` on this node at absolute time `at` (clamped to
    /// be no earlier than now).
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) -> TimerId {
        let at = at.max(self.now);
        TimerId(self.schedule(at, self.self_id, EventKind::Timer(token)))
    }

    /// Cancel a pending timer. The event is unlinked from the queue (lazily,
    /// O(1)) and will never fire. Cancelling a timer that already fired is a
    /// contract violation — callers clear their stored [`TimerId`] when the
    /// timer's event arrives.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.out.push(Effect::Cancel(id.0));
    }

    /// Whether a live telemetry sink is attached. Probe sites that need
    /// to compute a value before sampling guard on this so the disabled
    /// path does no work at all.
    #[inline]
    pub fn telemetry_on(&self) -> bool {
        self.telemetry_on
    }

    /// Record a gauge observation (one line at a probe site; a dead
    /// branch when the sink is [`Off`](crate::telemetry::Off)).
    #[inline]
    pub fn sample(&mut self, signal: Signal, scope: Scope, value: f64) {
        if self.telemetry_on {
            self.sink.sample(self.now, signal, scope, value);
        }
    }

    /// Bump a counter signal (same cost contract as [`Context::sample`]).
    #[inline]
    pub fn count(&mut self, signal: Signal, scope: Scope, delta: u64) {
        if self.telemetry_on {
            self.sink.count(signal, scope, delta);
        }
    }
}

/// A simulation participant: a traffic source, a link queue, a sink…
/// Nodes own all their state; the simulator only routes events.
pub trait Node: std::any::Any {
    /// Called once when the simulation starts, so nodes can arm their
    /// first timers (pacing clocks, trace cursors, …).
    fn start(&mut self, _ctx: &mut Context) {}

    /// Handle a delivered packet or a fired timer.
    fn handle(&mut self, ctx: &mut Context, event: EventKind);

    /// Handle a run of same-instant events addressed to this node in one
    /// event-loop drain. The simulator only batches adjacent `Deliver`
    /// events (they can never be cancelled, so membership is fixed at
    /// collection time); the first element may be any kind. The default
    /// dispatches each event to [`Node::handle`] in pop order, which is
    /// semantically identical to individual delivery. Nodes with
    /// expensive per-event bookkeeping (e.g. the sender's RTO re-arm)
    /// override this to coalesce that bookkeeping across the batch —
    /// the override must preserve per-event observable behavior.
    fn handle_batch(&mut self, ctx: &mut Context, batch: &mut Vec<EventKind>) {
        for event in batch.drain(..) {
            self.handle(ctx, event);
        }
    }

    /// Downcast support for post-run inspection of node state.
    fn as_any(&self) -> &dyn std::any::Any;
    /// Mutable downcast support (end-of-run finalization hooks).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Implements the `as_any_qdisc` boilerplate for a qdisc type.
#[macro_export]
macro_rules! impl_qdisc_downcast {
    () => {
        fn as_any_qdisc(&self) -> &dyn std::any::Any {
            self
        }
    };
}

/// Implements the two `as_any` boilerplate methods for a node type.
#[macro_export]
macro_rules! impl_node_downcast {
    () => {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    };
}
