//! Middlebox robustness — the deployability story of §2/§5 made
//! executable. Real wide-area paths strip unknown header options and
//! sometimes bleach ECN. ABC's design survives both (worst case it
//! degrades to its Cubic window); XCP's multi-bit custom header does not.

use abc_repro::experiments::Scheme;
use abc_repro::netsim::fault::{Impairment, LossyWire};
use abc_repro::netsim::flow::{Sender, Sink, TrafficSource};
use abc_repro::netsim::link::{ConstantRate, SerialLink};
use abc_repro::netsim::linkqueue::LinkQueue;
use abc_repro::netsim::metrics::new_hub;
use abc_repro::netsim::packet::{FlowId, Route};
use abc_repro::netsim::rate::Rate;
use abc_repro::netsim::sim::Simulator;
use abc_repro::netsim::time::{SimDuration, SimTime};

/// Run one flow of `scheme` through its own bottleneck qdisc, with a
/// middlebox ahead of the bottleneck applying `what` to every packet.
/// Returns goodput in Mbit/s over the measured window.
fn through_middlebox(scheme: Scheme, what: Impairment) -> f64 {
    let mut sim = Simulator::new();
    let hub = new_hub();
    let wire_id = sim.reserve_node();
    let link_id = sim.reserve_node();
    let sender_id = sim.reserve_node();
    let sink_id = sim.reserve_node();
    let q = SimDuration::from_millis(20);
    let fwd = Route::new(vec![(wire_id, q), (link_id, q), (sink_id, q)]);
    let back = Route::new(vec![(sender_id, SimDuration::from_millis(40))]);
    // the middlebox impairs every packet (probability 1.0)
    sim.install_node(wire_id, Box::new(LossyWire::new(1.0, what, 7)));
    sim.install_node(
        sink_id,
        Box::new(Sink::new(FlowId(1), back).with_metrics(hub.clone())),
    );
    sim.install_node(
        sender_id,
        Box::new(Sender::new(
            FlowId(1),
            scheme.make_cc(),
            fwd,
            TrafficSource::Backlogged,
        )),
    );
    sim.install_node(
        link_id,
        Box::new(
            LinkQueue::new(
                scheme.make_qdisc(250),
                Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(12.0)))),
            )
            .with_metrics("bottleneck", hub.clone()),
        ),
    );
    hub.borrow_mut()
        .set_epoch(SimTime::ZERO + SimDuration::from_secs(10));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    let h = hub.borrow();
    h.flows
        .get(&FlowId(1))
        .map(|f| f.throughput_over(SimDuration::from_secs(50)) / 1e6)
        .unwrap_or(0.0)
}

/// An ECN-bleaching middlebox erases accel/brake marks. The ABC sender's
/// dual-window design means it falls back to its Cubic window and stays
/// productive — the §5.1.1 robustness property.
#[test]
fn abc_survives_ecn_bleaching_via_cubic_window() {
    let clean = through_middlebox(Scheme::Abc, Impairment::StripFeedback); // no-op for ABC
    let bleached = through_middlebox(Scheme::Abc, Impairment::BleachEcn);
    assert!(clean > 10.0, "baseline ABC broken: {clean:.2} Mbit/s");
    assert!(
        bleached > 8.0,
        "bleached ABC should still run near line rate via w_cubic: {bleached:.2} Mbit/s"
    );
}

/// The same middlebox class that strips unknown TCP/IP options kills
/// XCP's feedback channel outright — the flow is stuck near its initial
/// window. This is §2's deployment argument, quantified.
#[test]
fn xcp_collapses_when_middleboxes_strip_its_header() {
    let clean = through_middlebox(Scheme::Xcp, Impairment::BleachEcn); // ECN irrelevant to XCP
    let stripped = through_middlebox(Scheme::Xcp, Impairment::StripFeedback);
    assert!(clean > 10.0, "baseline XCP broken: {clean:.2} Mbit/s");
    assert!(
        stripped < clean * 0.1,
        "XCP without its header should be stuck near the initial window: \
         {stripped:.2} vs {clean:.2} Mbit/s"
    );
}

/// RCP has the same fragility — rate feedback gone, flow pinned to its
/// bootstrap rate.
#[test]
fn rcp_pins_to_bootstrap_rate_without_its_header() {
    let stripped = through_middlebox(Scheme::Rcp, Impairment::StripFeedback);
    assert!(
        stripped < 2.0,
        "RCP without its header should crawl: {stripped:.2} Mbit/s"
    );
}
