//! The ABC router (§3.1.2): target-rate computation (Eq. 1), marking
//! fraction (Eq. 2), and the deterministic token-bucket marker
//! (Algorithm 1), recomputed on **every dequeued packet**.

use netsim::packet::{Ecn, Packet};
use netsim::queue::{Qdisc, QdiscStats};
use netsim::rate::Rate;
use netsim::stats::WindowedRate;
use netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Which rate the marking fraction divides by (Fig. 2 ablation):
/// dequeue-based is ABC's contribution; enqueue-based is what prior
/// explicit schemes effectively do, and doubles tail queuing delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeedbackBasis {
    #[default]
    /// Compute feedback at departure time (ABC, §4).
    Dequeue,
    /// Compute feedback at arrival time (prior explicit schemes).
    Enqueue,
}

/// How accelerates are spent against the token bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MarkingMode {
    /// Algorithm 1: deterministic token bucket (limits burstiness).
    #[default]
    Deterministic,
    /// Mark accelerate with probability `f(t)` (the alternative the paper
    /// mentions and rejects; kept for the ablation bench).
    Probabilistic,
}

/// Which ECN codepoints carry accel/brake (§5.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EcnDialect {
    /// The general deployment: accelerate = ECT(1) (01), brake = ECT(0)
    /// (10); legacy CE (11) still means congestion and receivers need the
    /// (reclaimed) NS bit to echo accel/brake separately from ECE.
    #[default]
    NsBit,
    /// The proxied-network deployment: both ECT codepoints mean
    /// accelerate and the router brakes by setting CE, which an
    /// *unmodified* receiver echoes via ECE. Assumes no legacy ECN marker
    /// sits on the path (realistic behind a cellular split-TCP proxy).
    ProxiedCe,
}

/// ABC router parameters. Defaults are the paper's evaluation settings:
/// η = 0.98, δ = 133 ms, measurement window T = 40 ms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbcRouterConfig {
    /// Target utilization η (slightly < 1 trades bandwidth for delay).
    pub eta: f64,
    /// Queue-drain time constant δ; stability needs δ > ⅔·RTT (Thm 3.1).
    pub delta: SimDuration,
    /// Delay threshold dt: queuing below this (e.g. from MAC batching)
    /// does not reduce the target rate.
    pub dt: SimDuration,
    /// Token-bucket ceiling of Algorithm 1.
    pub token_limit: f64,
    /// Sliding window T over which cr(t) (and the enqueue rate) are
    /// measured.
    pub rate_window: SimDuration,
    /// When feedback is computed (dequeue vs enqueue).
    pub basis: FeedbackBasis,
    /// How the marking fraction is turned into per-packet marks.
    pub marking: MarkingMode,
    /// Which ECN codepoints carry accelerate/brake.
    pub dialect: EcnDialect,
    /// Buffer limit in packets (tail-drop beyond).
    pub buffer_pkts: usize,
    /// Seed for the probabilistic marking mode.
    pub seed: u64,
}

impl Default for AbcRouterConfig {
    fn default() -> Self {
        AbcRouterConfig {
            eta: 0.98,
            delta: SimDuration::from_millis(133),
            dt: SimDuration::from_millis(20),
            token_limit: 10.0,
            rate_window: SimDuration::from_millis(40),
            basis: FeedbackBasis::Dequeue,
            marking: MarkingMode::Deterministic,
            dialect: EcnDialect::NsBit,
            buffer_pkts: 250,
            seed: 0xabc,
        }
    }
}

/// The ABC queueing discipline: FIFO + accel/brake marking at dequeue.
pub struct AbcQdisc {
    cfg: AbcRouterConfig,
    queue: VecDeque<Box<Packet>>,
    bytes: u64,
    /// Link capacity µ(t), fed by the link node (cellular: known from the
    /// trace; Wi-Fi: from the estimator in `wifi-mac`).
    mu: Rate,
    /// `η·µ` cached per capacity update — Eq. 1's first term is invariant
    /// between µ(t) changes, so the per-dequeue path never re-multiplies.
    eta_mu: Rate,
    /// `δ` in f64 nanoseconds, hoisted so the per-dequeue drain term costs
    /// one division with the same operands (and therefore the same bits)
    /// as the original `overage / delta` duration ratio.
    delta_ns: f64,
    dequeue_rate: WindowedRate,
    enqueue_rate: WindowedRate,
    token: f64,
    rng: StdRng,
    stats: QdiscStats,
    /// Most recent marking fraction, exposed for tests/telemetry.
    last_f: f64,
    last_target: Rate,
}

impl AbcQdisc {
    /// An empty ABC queue under `cfg`, token bucket at zero.
    pub fn new(cfg: AbcRouterConfig) -> Self {
        assert!(cfg.eta > 0.0 && cfg.eta <= 1.0, "eta out of (0,1]");
        assert!(!cfg.delta.is_zero(), "delta must be positive");
        assert!(cfg.buffer_pkts > 0);
        AbcQdisc {
            cfg,
            queue: VecDeque::new(),
            bytes: 0,
            mu: Rate::ZERO,
            eta_mu: Rate::ZERO,
            delta_ns: cfg.delta.as_nanos() as f64,
            dequeue_rate: WindowedRate::new(cfg.rate_window),
            enqueue_rate: WindowedRate::new(cfg.rate_window),
            token: 0.0,
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: QdiscStats::default(),
            last_f: 1.0,
            last_target: Rate::ZERO,
        }
    }

    /// The configuration this queue runs.
    pub fn config(&self) -> &AbcRouterConfig {
        &self.cfg
    }

    /// Most recent marking fraction f(t) (tests/telemetry).
    pub fn last_marking_fraction(&self) -> f64 {
        self.last_f
    }

    /// Most recent target rate tr(t) (tests/telemetry).
    pub fn last_target_rate(&self) -> Rate {
        self.last_target
    }

    /// Current token-bucket level (packets).
    pub fn token(&self) -> f64 {
        self.token
    }

    /// Eq. 1: `tr(t) = η·µ(t) − µ(t)/δ · (x(t) − dt)⁺`.
    ///
    /// Bit-identical fast path of the original per-packet math: `η·µ` is
    /// the cached [`AbcQdisc::eta_mu`], and below-threshold queuing delay
    /// (the steady-state common case) skips the drain term entirely —
    /// `µ·(0/δ) = 0` and rate subtraction of zero is the identity, so the
    /// shortcut returns the very same bits the full expression would.
    fn target_rate(&self, x: SimDuration) -> Rate {
        let overage = x.saturating_sub(self.cfg.dt);
        if overage.is_zero() {
            return self.eta_mu;
        }
        // `overage / delta` (duration ratio) is nanos-as-f64 division;
        // only the constant denominator conversion is hoisted.
        let drain = self.mu * (overage.as_nanos() as f64 / self.delta_ns);
        self.eta_mu - drain // Rate subtraction saturates at 0
    }

    /// Eq. 2: `f(t) = min(tr/(2·cr), 1)`.
    fn marking_fraction(&mut self, now: SimTime, x: SimDuration) -> f64 {
        let tr = self.target_rate(x);
        self.last_target = tr;
        let cr = match self.cfg.basis {
            FeedbackBasis::Dequeue => self.dequeue_rate.rate(now),
            FeedbackBasis::Enqueue => self.enqueue_rate.rate(now),
        };
        if cr.is_zero() {
            // no measured rate yet (link idle / startup): let senders ramp
            return 1.0;
        }
        (0.5 * (tr / cr)).clamp(0.0, 1.0)
    }

    /// Algorithm 1 applied to one departing packet.
    fn mark(&mut self, pkt: &mut Packet, f: f64) {
        self.token = (self.token + f).min(self.cfg.token_limit);
        let still_accel = match self.cfg.dialect {
            // only ECT(1) is an accelerate; ECT(0) is already a brake
            EcnDialect::NsBit => pkt.ecn == Ecn::Accelerate,
            // both ECT codepoints are accelerates; CE is the brake
            EcnDialect::ProxiedCe => pkt.ecn.is_ect(),
        };
        if !still_accel {
            // Only accel→brake demotion is allowed; brakes stay brakes, CE
            // stays CE, non-ECN traffic is untouched (multi-bottleneck rule).
            return;
        }
        let keep_accel = match self.cfg.marking {
            MarkingMode::Deterministic => {
                if self.token >= 1.0 {
                    self.token -= 1.0;
                    true
                } else {
                    false
                }
            }
            MarkingMode::Probabilistic => self.rng.gen::<f64>() < f,
        };
        if !keep_accel {
            pkt.ecn = match self.cfg.dialect {
                EcnDialect::NsBit => Ecn::Brake,
                EcnDialect::ProxiedCe => Ecn::Ce,
            };
            self.stats.braked += 1;
        }
    }
}

impl Qdisc for AbcQdisc {
    netsim::impl_qdisc_downcast!();

    fn enqueue(&mut self, mut pkt: Box<Packet>, now: SimTime) -> bool {
        if self.queue.len() >= self.cfg.buffer_pkts {
            self.stats.dropped_pkts += 1;
            return false;
        }
        self.enqueue_rate.record(now, pkt.size as u64);
        pkt.enqueued_at = now;
        self.bytes += pkt.size as u64;
        self.queue.push_back(pkt);
        self.stats.enqueued_pkts += 1;
        true
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Box<Packet>> {
        let mut pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size as u64;
        self.dequeue_rate.record(now, pkt.size as u64);
        // x(t): the queuing delay the departing packet experienced
        let x = now.since(pkt.enqueued_at);
        let f = self.marking_fraction(now, x);
        self.last_f = f;
        if !pkt.is_ack() {
            self.mark(&mut pkt, f);
        }
        self.stats.dequeued_pkts += 1;
        self.stats.dequeued_bytes += pkt.size as u64;
        Some(pkt)
    }

    fn peek_size(&self) -> Option<u32> {
        self.queue.front().map(|p| p.size)
    }

    fn len_pkts(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn on_capacity(&mut self, rate: Rate, _now: SimTime) {
        self.mu = rate;
        self.eta_mu = rate * self.cfg.eta;
    }

    fn head_sojourn(&self, now: SimTime) -> Option<SimDuration> {
        self.queue.front().map(|p| now.since(p.enqueued_at))
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }

    fn control_signals(&self) -> Option<netsim::telemetry::ControlSignals> {
        Some(netsim::telemetry::ControlSignals {
            token: self.token,
            mark_frac: self.last_f,
            target_rate_mbps: self.last_target.mbps(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Feedback, FlowId, NodeId, Route};

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn abc_packet(seq: u64) -> Box<Packet> {
        Box::new(Packet {
            flow: FlowId(0),
            seq,
            size: 1500,
            ecn: Ecn::Accelerate,
            feedback: Feedback::None,
            abc_capable: true,
            sent_at: SimTime::ZERO,
            retransmit: false,
            ack: None,
            route: Route::new(vec![(NodeId(0), SimDuration::ZERO)]),
            hop: 0,
            enqueued_at: SimTime::ZERO,
        })
    }

    fn qdisc() -> AbcQdisc {
        AbcQdisc::new(AbcRouterConfig::default())
    }

    #[test]
    fn target_rate_is_eta_mu_when_queue_low() {
        let mut q = qdisc();
        q.on_capacity(Rate::from_mbps(10.0), at(0));
        let tr = q.target_rate(SimDuration::from_millis(5)); // below dt
        assert!((tr.mbps() - 9.8).abs() < 1e-9);
    }

    #[test]
    fn target_rate_drains_queue_overage() {
        let mut q = qdisc();
        q.on_capacity(Rate::from_mbps(10.0), at(0));
        // x = dt + 66.5ms → drain term = µ·66.5/133 = µ/2
        let x = SimDuration::from_millis(20) + SimDuration::from_micros(66_500);
        let tr = q.target_rate(x);
        assert!((tr.mbps() - (9.8 - 5.0)).abs() < 0.01, "tr={tr}");
    }

    #[test]
    fn target_rate_fast_path_matches_reference_bitwise() {
        let mut q = qdisc();
        for mbps in [0.0, 3.7, 12.0, 96.5] {
            q.on_capacity(Rate::from_mbps(mbps), at(0));
            for ns in [
                0u64,
                5_000_000,
                19_999_999,
                20_000_000,
                20_000_001,
                86_500_000,
                2_000_000_000,
            ] {
                let x = SimDuration::from_nanos(ns);
                // the pre-hoist formula, term by term
                let reference =
                    q.mu * q.cfg.eta - q.mu * (x.saturating_sub(q.cfg.dt) / q.cfg.delta);
                assert_eq!(
                    q.target_rate(x).bps().to_bits(),
                    reference.bps().to_bits(),
                    "fast path diverged at µ={mbps} Mbit/s, x={ns}ns"
                );
            }
        }
    }

    #[test]
    fn target_rate_saturates_at_zero() {
        let mut q = qdisc();
        q.on_capacity(Rate::from_mbps(10.0), at(0));
        let tr = q.target_rate(SimDuration::from_secs(2));
        assert_eq!(tr, Rate::ZERO);
    }

    /// Drive the queue at a steady rate and check the marking fraction
    /// lands at tr/(2·cr).
    #[test]
    fn marking_fraction_matches_eq2() {
        let mut q = qdisc();
        q.on_capacity(Rate::from_mbps(12.0), at(0));
        // steady state: enqueue + dequeue 1 pkt per ms → cr = 12 Mbit/s,
        // zero queuing delay
        // one packet per ms: t tracks seq one-to-one
        for seq in 0..200u64 {
            assert!(q.enqueue(abc_packet(seq), at(seq)));
            let p = q.dequeue(at(seq)).unwrap();
            assert_eq!(p.seq, seq);
        }
        // tr = 0.98·12 = 11.76; f = 0.5·11.76/12 = 0.49
        assert!(
            (q.last_marking_fraction() - 0.49).abs() < 0.02,
            "f = {}",
            q.last_marking_fraction()
        );
    }

    #[test]
    fn token_bucket_caps_accel_share() {
        // With f = 0.49, out of 200 packets at most ~49% + tokenLimit may
        // stay accelerate.
        let mut q = qdisc();
        q.on_capacity(Rate::from_mbps(12.0), at(0));
        let mut accel = 0;
        let mut total = 0;
        // one packet per ms: t tracks seq one-to-one
        for seq in 0..400u64 {
            q.enqueue(abc_packet(seq), at(seq));
            let p = q.dequeue(at(seq)).unwrap();
            if seq >= 100 {
                // past warm-up
                total += 1;
                if p.ecn == Ecn::Accelerate {
                    accel += 1;
                }
            }
        }
        let share = accel as f64 / total as f64;
        assert!(share < 0.55, "accel share {share}");
        assert!(share > 0.40, "accel share {share}");
    }

    #[test]
    fn brakes_never_promoted() {
        let mut q = qdisc();
        q.on_capacity(Rate::from_mbps(100.0), at(0));
        let mut pkt = abc_packet(0);
        pkt.ecn = Ecn::Brake; // already braked by an upstream ABC router
        q.enqueue(pkt, at(0));
        // plenty of tokens (f=1 at startup), but a brake must stay a brake
        let out = q.dequeue(at(1)).unwrap();
        assert_eq!(out.ecn, Ecn::Brake);
    }

    #[test]
    fn ce_and_notect_untouched() {
        let mut q = qdisc();
        q.on_capacity(Rate::from_mbps(0.1), at(0)); // tiny target: f→0
        for (i, e) in [Ecn::Ce, Ecn::NotEct].into_iter().enumerate() {
            let mut p = abc_packet(i as u64);
            p.ecn = e;
            q.enqueue(p, at(i as u64));
            assert_eq!(q.dequeue(at(i as u64 + 1)).unwrap().ecn, e);
        }
    }

    #[test]
    fn outage_brakes_everything() {
        let mut q = qdisc();
        q.on_capacity(Rate::from_mbps(12.0), at(0));
        // steady state first
        let mut t = 0;
        for seq in 0..100u64 {
            q.enqueue(abc_packet(seq), at(t));
            q.dequeue(at(t));
            t += 1;
        }
        // outage: µ = 0 → tr = 0 → f = 0 → all brakes once tokens drain
        q.on_capacity(Rate::ZERO, at(t));
        let mut brakes = 0;
        for seq in 100..140u64 {
            q.enqueue(abc_packet(seq), at(t));
            let p = q.dequeue(at(t)).unwrap();
            if p.ecn == Ecn::Brake {
                brakes += 1;
            }
            t += 1;
        }
        assert!(brakes >= 30, "only {brakes} brakes during outage");
    }

    #[test]
    fn buffer_limit_tail_drops() {
        let mut q = AbcQdisc::new(AbcRouterConfig {
            buffer_pkts: 2,
            ..Default::default()
        });
        assert!(q.enqueue(abc_packet(0), at(0)));
        assert!(q.enqueue(abc_packet(1), at(0)));
        assert!(!q.enqueue(abc_packet(2), at(0)));
        assert_eq!(q.stats().dropped_pkts, 1);
    }

    #[test]
    fn acks_pass_unmarked_but_count_toward_rate() {
        let mut q = qdisc();
        q.on_capacity(Rate::from_mbps(0.1), at(0)); // f → small
        let mut p = abc_packet(0);
        p.ack = Some(netsim::packet::AckData {
            seq: 0,
            cumulative_before: 0,
            data_sent_at: SimTime::ZERO,
            data_size: 1500,
            ecn_echo: Ecn::Accelerate,
            feedback: Feedback::None,
            one_way_delay: SimDuration::ZERO,
            retransmit: false,
        });
        p.ecn = Ecn::Accelerate;
        q.enqueue(p, at(0));
        let out = q.dequeue(at(500)).unwrap(); // huge sojourn, f≈0
        assert_eq!(out.ecn, Ecn::Accelerate, "ACKs are not ABC-marked");
    }

    #[test]
    fn probabilistic_mode_tracks_f_on_average() {
        let mut q = AbcQdisc::new(AbcRouterConfig {
            marking: MarkingMode::Probabilistic,
            ..Default::default()
        });
        q.on_capacity(Rate::from_mbps(12.0), at(0));
        let mut accel = 0;
        let mut total = 0;
        // one packet per ms: t tracks seq one-to-one
        for seq in 0..2000u64 {
            q.enqueue(abc_packet(seq), at(seq));
            let p = q.dequeue(at(seq)).unwrap();
            if seq >= 100 {
                total += 1;
                if p.ecn == Ecn::Accelerate {
                    accel += 1;
                }
            }
        }
        let share = accel as f64 / total as f64;
        assert!((share - 0.49).abs() < 0.05, "share {share}");
    }
}
