//! A minimal JSON tree, writer, and parser.
//!
//! The workspace builds with zero external dependencies, so the results
//! store serializes through this module instead of serde. Two properties
//! matter here and are guaranteed:
//!
//! * **Deterministic output.** Objects preserve insertion order (they are
//!   backed by a `Vec`, not a hash map) and numbers are written with
//!   Rust's shortest-round-trip float formatting, so serializing the same
//!   value twice produces byte-identical text.
//! * **Exact round trips.** `parse(write(v)) == v` for every finite
//!   number: Rust's float formatter/parser pair is exact. Non-finite
//!   floats have no JSON representation; [`Value::num`] maps them to
//!   `null` (the store reads `null` metrics back as `NaN`).

use std::fmt;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also what non-finite numbers serialize as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// A number — non-finite floats become `null` (JSON has no NaN/inf).
    pub fn num(x: f64) -> Value {
        if x.is_finite() {
            Value::Num(x)
        } else {
            Value::Null
        }
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Compact one-line serialization.
    pub fn render(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => write_num(*x, out),
        Value::Str(s) => write_str(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_num(x: f64, out: &mut String) {
    use fmt::Write;
    debug_assert!(
        x.is_finite(),
        "non-finite numbers must go through Value::num"
    );
    // Integer-valued floats print without the trailing ".0" (JSON style);
    // -0.0 keeps its sign so the value round-trips bit-exactly.
    if x.fract() == 0.0 && x.abs() < 9.0e15 && !(x == 0.0 && x.is_sign_negative()) {
        write!(out, "{}", x as i64).unwrap();
    } else {
        write!(out, "{x}").unwrap();
    }
}

fn write_str(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(s: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // surrogate pair: the second escape must be a low
                    // surrogate or the pair is malformed
                    self.expect(b'\\')?;
                    self.expect(b'u')?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("unpaired surrogate in \\u escape"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Num(1.5)),
            ("b".into(), Value::Arr(vec![Value::Null, Value::Bool(true)])),
            ("s".into(), Value::str("he said \"hi\"\n\tπ")),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            1e-300,
            123456789.123456,
            -0.0,
            2.0f64.powi(53),
        ] {
            let text = Value::num(x).render();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} rendered as {text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::num(42.0).render(), "42");
        assert_eq!(Value::num(-7.0).render(), "-7");
        assert_eq!(Value::num(0.5).render(), "0.5");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Value::num(f64::NAN), Value::Null);
        assert_eq!(Value::num(f64::INFINITY), Value::Null);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn surrogate_escapes_parse_or_error_cleanly() {
        let esc = |body: &str| format!("\"{body}\"");
        let hi = "\\ud83d"; // a high surrogate escape, as 6 raw bytes
        let lo = "\\ude00";
        let bad = "\\ud800";
        // a valid escaped pair decodes to the supplementary-plane char
        assert_eq!(
            parse(&esc(&format!("{hi}{lo}"))).unwrap(),
            Value::str("\u{1F600}")
        );
        // malformed pairs are errors, never panics or mojibake
        assert!(parse(&esc(&format!("{bad}{bad}"))).is_err());
        assert!(parse(&esc(&format!("{bad}x"))).is_err());
        assert!(parse(&esc(bad)).is_err());
        // a lone low surrogate is not a valid char either
        assert!(parse(&esc(lo)).is_err());
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"z":1,"a":2}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.render(), text);
    }
}
