//! End-to-end integration: the ABC sender and router closing the loop over
//! the netsim substrate. These tests exercise the paper's core claims on
//! simple links where ground truth is computable by hand.

use abc_core::router::{AbcQdisc, AbcRouterConfig};
use abc_core::sender::AbcSender;
use netsim::link::{ConstantRate, SerialLink, SquareWave};
use netsim::linkqueue::LinkQueue;
use netsim::metrics::{new_hub, Metrics};
use netsim::packet::{FlowId, NodeId, Route};
use netsim::rate::Rate;
use netsim::sim::Simulator;
use netsim::time::{SimDuration, SimTime};
use netsim::flow::{Sender, Sink, TrafficSource};
use netsim::Transmitter;

struct AbcLoop {
    sim: Simulator,
    hub: Metrics,
    link_id: NodeId,
    sender_ids: Vec<NodeId>,
}

/// Build `n` ABC flows over one ABC bottleneck with ~100 ms RTT.
fn abc_over(tx: Box<dyn Transmitter>, n: u32, qcfg: AbcRouterConfig) -> AbcLoop {
    let mut sim = Simulator::new();
    let hub = new_hub();
    let link_id = sim.reserve_node();
    let mut sender_ids = Vec::new();
    for i in 0..n {
        let flow = FlowId(i + 1);
        let sender_id = sim.reserve_node();
        let sink_id = sim.reserve_node();
        let fwd = Route::new(vec![
            (link_id, SimDuration::from_millis(10)),
            (sink_id, SimDuration::from_millis(40)),
        ]);
        let back = Route::new(vec![(sender_id, SimDuration::from_millis(50))]);
        sim.install_node(
            sink_id,
            Box::new(Sink::new(flow, back).with_metrics(hub.clone())),
        );
        sim.install_node(
            sender_id,
            Box::new(Sender::new(
                flow,
                Box::new(AbcSender::new()),
                fwd,
                TrafficSource::Backlogged,
            )),
        );
        sender_ids.push(sender_id);
    }
    sim.install_node(
        link_id,
        Box::new(
            LinkQueue::new(Box::new(AbcQdisc::new(qcfg)), tx)
                .with_metrics("bottleneck", hub.clone()),
        ),
    );
    AbcLoop {
        sim,
        hub,
        link_id,
        sender_ids,
    }
}

fn finalize(l: &mut AbcLoop, end: SimTime) {
    let lq: &LinkQueue = l
        .sim
        .node(l.link_id)
        .and_then(|n| n.as_any().downcast_ref())
        .unwrap();
    lq.finalize_opportunity(end);
}

#[test]
fn abc_high_utilization_low_delay_constant_link() {
    let mut l = abc_over(
        Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(12.0)))),
        1,
        AbcRouterConfig::default(),
    );
    let end = SimTime::ZERO + SimDuration::from_secs(60);
    l.hub.borrow_mut().set_epoch(SimTime::ZERO + SimDuration::from_secs(10));
    l.sim.run_until(end);
    finalize(&mut l, end);

    let hub = l.hub.borrow();
    let util = hub.links["bottleneck"].utilization();
    assert!(
        util > 0.90,
        "ABC should achieve ≥ ~η utilization on a fixed link, got {util:.3}"
    );
    let q = hub.links["bottleneck"].qdelay_summary_ms();
    assert!(
        q.p95 < 50.0,
        "ABC 95p queuing delay should be low, got {:.1} ms",
        q.p95
    );
    assert_eq!(hub.links["bottleneck"].dropped_pkts, 0, "no drops expected");
}

#[test]
fn abc_tracks_square_wave_link() {
    // Fig. 17's link: 12 ↔ 24 Mbit/s every 500 ms. ABC should stay near
    // full utilization with bounded delays.
    let mut l = abc_over(
        Box::new(SerialLink::new(SquareWave::new(
            Rate::from_mbps(12.0),
            Rate::from_mbps(24.0),
            SimDuration::from_millis(500),
        ))),
        1,
        AbcRouterConfig::default(),
    );
    let end = SimTime::ZERO + SimDuration::from_secs(60);
    l.hub.borrow_mut().set_epoch(SimTime::ZERO + SimDuration::from_secs(10));
    l.sim.run_until(end);
    finalize(&mut l, end);

    let hub = l.hub.borrow();
    let util = hub.links["bottleneck"].utilization();
    assert!(util > 0.85, "utilization on square wave: {util:.3}");
    let q = hub.links["bottleneck"].qdelay_summary_ms();
    // Each capacity halving leaves ~1 RTT of over-window in the queue,
    // drained within δ; the paper's Fig. 17 shows the same ~100 ms spikes.
    assert!(q.p95 < 150.0, "95p queuing delay {:.1} ms", q.p95);
    assert!(q.p50 < 40.0, "median queuing delay {:.1} ms", q.p50);
}

#[test]
fn abc_flows_share_fairly() {
    // §6.5: competing ABC flows converge to a fair allocation. The MIMD
    // component makes windows slosh around the fair share (visible in the
    // paper's Fig. 3b too), so fairness is evaluated over a long window
    // after the additive-increase term has had time to act.
    let mut l = abc_over(
        Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(24.0)))),
        4,
        AbcRouterConfig::default(),
    );
    let end = SimTime::ZERO + SimDuration::from_secs(180);
    l.hub.borrow_mut().set_epoch(SimTime::ZERO + SimDuration::from_secs(60));
    l.sim.run_until(end);
    finalize(&mut l, end);

    let hub = l.hub.borrow();
    let j = hub.jain(SimDuration::from_secs(120));
    assert!(j > 0.95, "Jain index across 4 ABC flows: {j:.4}");
    let util = hub.links["bottleneck"].utilization();
    assert!(util > 0.90, "aggregate utilization {util:.3}");
}

#[test]
fn senders_see_mixed_accel_brake_in_steady_state() {
    let mut l = abc_over(
        Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(12.0)))),
        1,
        AbcRouterConfig::default(),
    );
    l.sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    let s: &Sender = l
        .sim
        .node(l.sender_ids[0])
        .and_then(|n| n.as_any().downcast_ref())
        .unwrap();
    let st = s.stats();
    assert!(st.accel_acks > 0, "no accelerates seen");
    assert!(st.brake_acks > 0, "no brakes seen");
    // steady state: roughly half accel (f ≈ 0.49·…)
    let frac = st.accel_acks as f64 / (st.accel_acks + st.brake_acks) as f64;
    assert!(
        (0.35..0.65).contains(&frac),
        "accelerate fraction {frac:.3} out of steady-state band"
    );
    assert_eq!(st.rtos, 0, "unexpected RTOs on a clean path");
}

#[test]
fn abc_router_brakes_hard_when_capacity_halves() {
    // Capacity halving is where window-based + dequeue-rate feedback
    // shines: the queue must drain within a few RTTs.
    let steps = netsim::link::StepSchedule::new(vec![
        (SimTime::ZERO, Rate::from_mbps(24.0)),
        (SimTime::ZERO + SimDuration::from_secs(20), Rate::from_mbps(6.0)),
    ]);
    let mut l = abc_over(
        Box::new(SerialLink::new(steps)),
        1,
        AbcRouterConfig::default(),
    );
    let end = SimTime::ZERO + SimDuration::from_secs(40);
    l.sim.run_until(end);
    finalize(&mut l, end);
    let hub = l.hub.borrow();
    // look at queuing delay *after* the drop settles (25s onward)
    let late: Vec<f64> = hub.links["bottleneck"]
        .qdelay_series
        .iter()
        .filter(|(t, _)| t.as_secs_f64() > 25.0)
        .map(|(_, d)| d.as_millis_f64())
        .collect();
    let s = netsim::stats::summarize(&late);
    assert!(
        s.p95 < 80.0,
        "queue should drain after capacity drop; late 95p = {:.1} ms",
        s.p95
    );
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut l = abc_over(
            Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(12.0)))),
            2,
            AbcRouterConfig::default(),
        );
        l.sim.run_until(SimTime::ZERO + SimDuration::from_secs(20));
        let hub = l.hub.borrow();
        (
            hub.flows[&FlowId(1)].delivered_bytes,
            hub.flows[&FlowId(2)].delivered_bytes,
            hub.links["bottleneck"].qdelay_series.len(),
        )
    };
    assert_eq!(run(), run(), "identical runs must produce identical results");
}

#[test]
fn dt_threshold_tolerates_batching_delay() {
    // With dt = 60 ms, standing queues below 60 ms must not reduce the
    // accel share; utilization should not suffer.
    let mut l = abc_over(
        Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(12.0)))),
        1,
        AbcRouterConfig {
            dt: SimDuration::from_millis(60),
            ..Default::default()
        },
    );
    let end = SimTime::ZERO + SimDuration::from_secs(40);
    l.hub.borrow_mut().set_epoch(SimTime::ZERO + SimDuration::from_secs(10));
    l.sim.run_until(end);
    finalize(&mut l, end);
    let util = l.hub.borrow().links["bottleneck"].utilization();
    assert!(util > 0.90, "utilization {util:.3}");
}
