//! Simulation-wide measurement collection.
//!
//! A [`MetricsHub`] is shared (single-threaded `Rc<RefCell>`) between the
//! nodes that produce measurements and the harness that reports them. The
//! quantities match what the paper reports: per-packet delay (mean and
//! 95th percentile), link utilization, per-flow throughput, and time series
//! for the figure plots.

use crate::packet::FlowId;
use crate::stats::{jain_index, summarize_in_place, Summary};
use crate::time::{SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Dense arena-backed flow table: a sparse `FlowId → slot` index over
/// struct-of-arrays per-slot storage.
///
/// The per-delivery hot path (`MetricsHub::on_delivery`) resolves a flow
/// to a slot with one bounds-checked vector load and then touches dense,
/// cache-adjacent arrays — no tree walk, no per-flow allocation beyond
/// the slot itself. This is what keeps O(10³–10⁴)-flow scenarios flat
/// relative to the sparse regime.
///
/// The read API mirrors the `BTreeMap<FlowId, FlowRecord>` it replaced:
/// [`get`](FlowTable::get), [`values`](FlowTable::values),
/// [`iter`](FlowTable::iter), `table[&flow]`, [`len`](FlowTable::len).
/// Iteration yields flows in ascending `FlowId` order (slots are sorted
/// on demand — iteration is a cold, report-time path), so aggregate
/// float reductions downstream remain bit-identical to the map era.
///
/// `FlowId`s are expected to be small dense integers (the experiment
/// engine assigns `1..=n`); the sparse index is a flat vector sized to
/// the largest id seen.
#[derive(Debug, Default)]
pub struct FlowTable {
    /// `FlowId.0 → slot + 1` (0 = no slot yet).
    index: Vec<u32>,
    /// FlowId of each slot (parallel to `records`).
    ids: Vec<FlowId>,
    /// Per-slot delivery accounting.
    records: Vec<FlowRecord>,
    /// Per-slot application expectations (see `register_app_flow`).
    metas: Vec<Option<AppFlowMeta>>,
    /// Slot visibility. App-flow registration pre-creates a *hidden*
    /// slot; it becomes a reportable flow only on its first post-epoch
    /// delivery — exactly the old map semantics, where registration
    /// never created a `FlowRecord` (a registered-but-idle flow must not
    /// show up in fairness or throughput aggregates).
    live: Vec<bool>,
    /// Number of live (visible) slots.
    live_count: usize,
    /// Number of slots carrying an `AppFlowMeta`; the per-delivery
    /// fast path skips all app accounting while this is zero.
    meta_count: usize,
}

impl FlowTable {
    /// Slot for `flow`, creating a hidden one on first touch.
    fn slot_of(&mut self, flow: FlowId) -> usize {
        let key = flow.0 as usize;
        if key >= self.index.len() {
            self.index.resize(key + 1, 0);
        }
        match self.index[key] {
            0 => {
                let slot = self.ids.len();
                self.index[key] = slot as u32 + 1;
                self.ids.push(flow);
                self.records.push(FlowRecord::default());
                self.metas.push(None);
                self.live.push(false);
                slot
            }
            s => s as usize - 1,
        }
    }

    /// Slot for `flow` if one was ever created (live or hidden).
    fn slot_lookup(&self, flow: FlowId) -> Option<usize> {
        match self.index.get(flow.0 as usize) {
            Some(&s) if s != 0 => Some(s as usize - 1),
            _ => None,
        }
    }

    /// Live slot indices in ascending `FlowId` order.
    fn ordered(&self) -> Vec<usize> {
        let mut v: Vec<usize> = (0..self.ids.len()).filter(|&i| self.live[i]).collect();
        v.sort_unstable_by_key(|&i| self.ids[i]);
        v
    }

    /// The record for `flow`, if it has delivered anything.
    pub fn get(&self, flow: &FlowId) -> Option<&FlowRecord> {
        let slot = self.slot_lookup(*flow)?;
        self.live[slot].then(|| &self.records[slot])
    }

    /// Number of flows that have delivered at least one packet.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True if no flow has delivered anything yet.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Flow records in ascending `FlowId` order.
    pub fn values(&self) -> impl Iterator<Item = &FlowRecord> + '_ {
        self.ordered().into_iter().map(move |i| &self.records[i])
    }

    /// `(FlowId, record)` pairs in ascending `FlowId` order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &FlowRecord)> + '_ {
        self.ordered()
            .into_iter()
            .map(move |i| (self.ids[i], &self.records[i]))
    }
}

impl std::ops::Index<&FlowId> for FlowTable {
    type Output = FlowRecord;
    fn index(&self, flow: &FlowId) -> &FlowRecord {
        self.get(flow).expect("no record for flow")
    }
}

/// Initial capacity hint for per-packet sample vectors: a few thousand
/// deliveries is the floor for any measured scenario, so early growth
/// reallocations are skipped.
const SAMPLES_HINT: usize = 4096;

/// Cheap shared handle to the hub.
pub type Metrics = Rc<RefCell<MetricsHub>>;

/// A fresh, empty, shareable [`MetricsHub`].
pub fn new_hub() -> Metrics {
    Rc::new(RefCell::new(MetricsHub::default()))
}

/// Application-level expectations for a flow, registered by the harness
/// before the run (see [`MetricsHub::register_app_flow`]). Everything is
/// optional so a flow can be tracked for completion, deadlines, or both.
#[derive(Debug, Clone, Copy, Default)]
pub struct AppFlowMeta {
    /// When the application started the flow (FCT measures from here).
    pub start: SimTime,
    /// The flow is complete once this many bytes have been delivered.
    pub expected_bytes: Option<u64>,
    /// Per-packet one-way-delay budget; first deliveries above it — or
    /// recovered via retransmission at all — count as deadline misses
    /// (RTC/interactive workloads: late data is as bad as lost data).
    pub deadline: Option<SimDuration>,
}

/// Per-flow delivery accounting (recorded by sinks).
#[derive(Debug, Clone, Default)]
pub struct FlowRecord {
    /// Wire bytes delivered (duplicates included).
    pub delivered_bytes: u64,
    /// Packets delivered (duplicates included).
    pub delivered_pkts: u64,
    /// Bytes/packets counted once per sequence number: duplicates from
    /// spurious retransmissions are excluded. App-level completion and
    /// deadline accounting key off these, never the wire counts.
    pub unique_bytes: u64,
    /// Packets counted once per sequence number.
    pub unique_pkts: u64,
    /// When the flow's first packet arrived (post-epoch).
    pub first_delivery: Option<SimTime>,
    /// When the flow's most recent packet arrived.
    pub last_delivery: Option<SimTime>,
    /// One-way packet delays (s), as observed by the receiver.
    pub delays_s: Vec<f64>,
    /// When cumulative *unique* delivery first reached the registered
    /// [`AppFlowMeta::expected_bytes`] (flow-completion instant).
    pub completed_at: Option<SimTime>,
    /// Unique deliveries that busted the registered
    /// [`AppFlowMeta::deadline`]: wire OWD above the budget, or data
    /// that had to be retransmitted (its first copy was lost, so the
    /// replacement is at least a loss-recovery delay late — the wire
    /// OWD of the retransmission alone would hide that).
    pub deadline_misses: u64,
}

impl FlowRecord {
    /// Average goodput over the flow's active period.
    pub fn throughput_bps(&self) -> f64 {
        match (self.first_delivery, self.last_delivery) {
            (Some(a), Some(b)) if b > a => {
                self.delivered_bytes as f64 * 8.0 / (b - a).as_secs_f64()
            }
            _ => 0.0,
        }
    }

    /// Average goodput over an externally-chosen window (the usual choice:
    /// the whole experiment, so idle flows score zero, matching how the
    /// paper computes aggregate utilization).
    pub fn throughput_over(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.delivered_bytes as f64 * 8.0 / window.as_secs_f64()
    }
}

/// Per-link accounting (recorded by link nodes).
#[derive(Debug, Clone, Default)]
pub struct LinkRecord {
    /// Wire bytes the link transmitted.
    pub delivered_bytes: u64,
    /// Packets the link transmitted.
    pub delivered_pkts: u64,
    /// Packets the link's qdisc dropped.
    pub dropped_pkts: u64,
    /// Packets offered to the link (accepted or dropped). Conservation:
    /// `offered == delivered + dropped + still queued` over a full
    /// measurement window (warmup 0, so no arrival predates the epoch).
    pub offered_pkts: u64,
    /// Bytes offered to the link (accepted or dropped).
    pub offered_bytes: u64,
    /// Bits the link could have carried while the experiment ran.
    pub opportunity_bits: f64,
    /// (time, queuing delay) samples taken at each dequeue.
    pub qdelay_series: Vec<(SimTime, SimDuration)>,
    /// Sort-once cache for [`LinkRecord::qdelay_summary_ms`], keyed by the
    /// series length at computation time.
    qdelay_cache: Cell<Option<(usize, Summary)>>,
}

impl LinkRecord {
    /// Delivered bits over opportunity bits, clamped to 1 (zero when no
    /// opportunity accounting ran).
    pub fn utilization(&self) -> f64 {
        if self.opportunity_bits <= 0.0 {
            return 0.0;
        }
        (self.delivered_bytes as f64 * 8.0 / self.opportunity_bits).min(1.0)
    }

    /// Queuing-delay summary (ms). Computed once per series state: repeat
    /// calls between dequeues return the cached summary instead of
    /// re-collecting and re-sorting the samples.
    pub fn qdelay_summary_ms(&self) -> Summary {
        let n = self.qdelay_series.len();
        if let Some((k, s)) = self.qdelay_cache.get() {
            if k == n {
                return s;
            }
        }
        let mut v: Vec<f64> = self
            .qdelay_series
            .iter()
            .map(|(_, d)| d.as_millis_f64())
            .collect();
        let s = summarize_in_place(&mut v);
        self.qdelay_cache.set(Some((n, s)));
        s
    }
}

/// One throughput sample bin: delivered bytes per flow in `[start, start+width)`.
#[derive(Debug, Clone)]
pub struct ThroughputBin {
    /// Bin start time.
    pub start: SimTime,
    /// Delivered bytes per [`FlowTable`] slot (dense, grown on write;
    /// slots beyond the vector's length delivered nothing in this bin).
    pub bytes: Vec<u64>,
}

/// Pass/hit accounting for one configured impairment wire (see
/// [`crate::fault`]). `label` is the spec's stable
/// `"<index>:<kind>:<direction>"` form, so a report names each wire
/// unambiguously even when two share a kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImpairmentRecord {
    /// Stable identity: `"<index>:<kind>:<direction>"`.
    pub label: String,
    /// Packets forwarded untouched.
    pub passed: u64,
    /// Packets dropped, rewritten, or delayed.
    pub impaired: u64,
}

/// The simulation-wide measurement collector (see the module docs).
#[derive(Debug)]
pub struct MetricsHub {
    /// Per-flow delivery accounting.
    pub flows: FlowTable,
    /// Per-link accounting, keyed by the link's metrics tag.
    pub links: BTreeMap<&'static str, LinkRecord>,
    /// Per-impairment-wire counters, in scenario spec order.
    pub impairments: Vec<ImpairmentRecord>,
    bin_width: SimDuration,
    bins: Vec<ThroughputBin>,
    /// Measurement starts here; earlier samples are warm-up and ignored.
    epoch: SimTime,
    /// Sort-once cache for [`MetricsHub::delay_summary_ms`], keyed by the
    /// total delivered-sample count.
    delay_cache: Cell<Option<(usize, Summary)>>,
}

impl Default for MetricsHub {
    fn default() -> Self {
        MetricsHub {
            flows: FlowTable::default(),
            links: BTreeMap::new(),
            impairments: Vec::new(),
            bin_width: SimDuration::from_millis(100),
            bins: Vec::new(),
            epoch: SimTime::ZERO,
            delay_cache: Cell::new(None),
        }
    }
}

impl MetricsHub {
    /// Ignore everything recorded before `t` (warm-up trimming).
    pub fn set_epoch(&mut self, t: SimTime) {
        self.epoch = t;
    }

    /// The configured measurement-start instant.
    pub fn epoch(&self) -> SimTime {
        self.epoch
    }

    /// Width of the throughput time-series bins (100 ms default).
    pub fn set_bin_width(&mut self, w: SimDuration) {
        assert!(!w.is_zero());
        self.bin_width = w;
    }

    /// Register application expectations for `flow` (FCT completion
    /// target and/or a per-packet delay deadline). Call before the run;
    /// bytes delivered during warmup do not count toward completion.
    /// Registration pre-creates a hidden arena slot; the flow is not
    /// visible in reports until its first post-epoch delivery.
    pub fn register_app_flow(&mut self, flow: FlowId, meta: AppFlowMeta) {
        let slot = self.flows.slot_of(flow);
        if self.flows.metas[slot].is_none() {
            self.flows.meta_count += 1;
        }
        self.flows.metas[slot] = Some(meta);
    }

    /// Register an impairment wire by label, returning the slot its
    /// [`on_impairment`](MetricsHub::on_impairment) updates. Call in spec
    /// order so reports list wires deterministically.
    pub fn register_impairment(&mut self, label: String) -> usize {
        self.impairments.push(ImpairmentRecord {
            label,
            passed: 0,
            impaired: 0,
        });
        self.impairments.len() - 1
    }

    /// Called by an impairment wire for every packet it inspects; `hit`
    /// marks packets the impairment touched (dropped/rewrote/delayed).
    pub fn on_impairment(&mut self, index: usize, hit: bool) {
        let rec = &mut self.impairments[index];
        if hit {
            rec.impaired += 1;
        } else {
            rec.passed += 1;
        }
    }

    /// Called by sinks for every delivered data packet. `unique` is false
    /// for duplicate deliveries of an already-received sequence (spurious
    /// retransmissions); `retransmit` marks a retransmitted copy. Wire
    /// counters take every delivery; app-level completion and deadline
    /// accounting only move on unique ones, so duplicates can neither
    /// complete a request early nor dilute a miss rate.
    pub fn on_delivery(
        &mut self,
        flow: FlowId,
        now: SimTime,
        delay: SimDuration,
        bytes: u32,
        unique: bool,
        retransmit: bool,
    ) {
        if now < self.epoch {
            return;
        }
        let ft = &mut self.flows;
        let slot = ft.slot_of(flow);
        if !ft.live[slot] {
            ft.live[slot] = true;
            ft.live_count += 1;
        }
        // Copy the meta out before the record borrow: one slot resolution
        // serves both, where the map era paid two tree lookups.
        let meta = if unique && ft.meta_count > 0 {
            ft.metas[slot]
        } else {
            None
        };
        let rec = &mut ft.records[slot];
        rec.delivered_bytes += bytes as u64;
        rec.delivered_pkts += 1;
        if unique {
            rec.unique_bytes += bytes as u64;
            rec.unique_pkts += 1;
        }
        rec.first_delivery.get_or_insert(now);
        rec.last_delivery = Some(now);
        if rec.delays_s.capacity() == 0 {
            rec.delays_s.reserve(SAMPLES_HINT);
        }
        rec.delays_s.push(delay.as_secs_f64());
        if let Some(meta) = meta {
            // A retransmitted frame busts the deadline regardless of
            // its own wire OWD: the original was lost, and the
            // replacement arrives at least a loss-recovery delay
            // after the application produced it.
            if meta.deadline.is_some_and(|d| retransmit || delay > d) {
                rec.deadline_misses += 1;
            }
            if rec.completed_at.is_none()
                && meta.expected_bytes.is_some_and(|b| rec.unique_bytes >= b)
            {
                rec.completed_at = Some(now);
            }
        }

        // throughput time series: dense per-slot counters per bin
        let bin_idx = (now.since(self.epoch).as_nanos() / self.bin_width.as_nanos()) as usize;
        while self.bins.len() <= bin_idx {
            let start = self.epoch + self.bin_width * self.bins.len() as u64;
            self.bins.push(ThroughputBin {
                start,
                bytes: Vec::new(),
            });
        }
        let bin = &mut self.bins[bin_idx];
        if bin.bytes.len() <= slot {
            bin.bytes.resize(slot + 1, 0);
        }
        bin.bytes[slot] += bytes as u64;
    }

    /// Called by link nodes at each dequeue.
    pub fn on_link_dequeue(
        &mut self,
        link: &'static str,
        now: SimTime,
        qdelay: SimDuration,
        bytes: u32,
    ) {
        if now < self.epoch {
            return;
        }
        let rec = self.links.entry(link).or_default();
        rec.delivered_bytes += bytes as u64;
        rec.delivered_pkts += 1;
        if rec.qdelay_series.capacity() == 0 {
            rec.qdelay_series.reserve(SAMPLES_HINT);
        }
        rec.qdelay_series.push((now, qdelay));
    }

    /// Called by link nodes for every packet arriving at their qdisc,
    /// before the enqueue decision — the arrival side of the per-hop
    /// byte-conservation ledger (`offered == delivered + dropped +
    /// queued`).
    pub fn on_link_offered(&mut self, link: &'static str, now: SimTime, bytes: u32) {
        if now < self.epoch {
            return;
        }
        let rec = self.links.entry(link).or_default();
        rec.offered_pkts += 1;
        rec.offered_bytes += bytes as u64;
    }

    /// Called by link nodes for every packet their qdisc drops.
    pub fn on_link_drop(&mut self, link: &'static str, now: SimTime) {
        if now < self.epoch {
            return;
        }
        self.links.entry(link).or_default().dropped_pkts += 1;
    }

    /// Called once, at teardown, with the link's total opportunity bits
    /// over the measurement period.
    pub fn set_link_opportunity(&mut self, link: &'static str, bits: f64) {
        self.links.entry(link).or_default().opportunity_bits = bits;
    }

    /// One-way delay summary (ms) across all packets of all flows.
    /// Sorted once per recorded state and cached for repeat calls.
    pub fn delay_summary_ms(&self) -> Summary {
        let n: usize = self.flows.values().map(|f| f.delays_s.len()).sum();
        if let Some((k, s)) = self.delay_cache.get() {
            if k == n {
                return s;
            }
        }
        let mut v: Vec<f64> = Vec::with_capacity(n);
        v.extend(
            self.flows
                .values()
                .flat_map(|f| f.delays_s.iter().map(|d| d * 1e3)),
        );
        let s = summarize_in_place(&mut v);
        self.delay_cache.set(Some((n, s)));
        s
    }

    /// Jain fairness index of per-flow throughput over `window`.
    pub fn jain(&self, window: SimDuration) -> f64 {
        let tputs: Vec<f64> = self
            .flows
            .values()
            .map(|f| f.throughput_over(window))
            .collect();
        jain_index(&tputs)
    }

    /// Total goodput across flows over `window`, bit/s.
    pub fn total_throughput_bps(&self, window: SimDuration) -> f64 {
        self.flows.values().map(|f| f.throughput_over(window)).sum()
    }

    /// Throughput time series for `flow`: (bin start seconds, Mbit/s).
    pub fn throughput_series_mbps(&self, flow: FlowId) -> Vec<(f64, f64)> {
        let w = self.bin_width.as_secs_f64();
        // Resolve the arena slot once, not once per bin.
        let slot = self.flows.slot_lookup(flow);
        self.bins
            .iter()
            .map(|b| {
                let bytes = slot.and_then(|s| b.bytes.get(s)).copied().unwrap_or(0);
                (b.start.as_secs_f64(), bytes as f64 * 8.0 / w / 1e6)
            })
            .collect()
    }

    /// Aggregate throughput time series across all flows.
    pub fn total_throughput_series_mbps(&self) -> Vec<(f64, f64)> {
        let w = self.bin_width.as_secs_f64();
        self.bins
            .iter()
            .map(|b| {
                let bytes: u64 = b.bytes.iter().sum();
                (b.start.as_secs_f64(), bytes as f64 * 8.0 / w / 1e6)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn delivery_accounting() {
        let hub = new_hub();
        {
            let mut h = hub.borrow_mut();
            for i in 0..10 {
                h.on_delivery(
                    FlowId(1),
                    at(100 * i),
                    SimDuration::from_millis(20),
                    1500,
                    true,
                    false,
                );
            }
        }
        let h = hub.borrow();
        let f = &h.flows[&FlowId(1)];
        assert_eq!(f.delivered_bytes, 15000);
        assert_eq!(f.delivered_pkts, 10);
        // 15000B over 1s window = 120 kbit/s
        assert!((f.throughput_over(SimDuration::from_secs(1)) - 120_000.0).abs() < 1.0);
    }

    #[test]
    fn epoch_trims_warmup() {
        let hub = new_hub();
        {
            let mut h = hub.borrow_mut();
            h.set_epoch(at(1000));
            h.on_delivery(
                FlowId(1),
                at(500),
                SimDuration::from_millis(5),
                1500,
                true,
                false,
            );
            h.on_delivery(
                FlowId(1),
                at(1500),
                SimDuration::from_millis(5),
                1500,
                true,
                false,
            );
        }
        assert_eq!(hub.borrow().flows[&FlowId(1)].delivered_pkts, 1);
    }

    #[test]
    fn utilization_capped_at_one() {
        let mut rec = LinkRecord {
            delivered_bytes: 2000,
            opportunity_bits: 8000.0,
            ..Default::default()
        };
        assert_eq!(rec.utilization(), 1.0);
        rec.delivered_bytes = 500;
        assert!((rec.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn throughput_series_bins() {
        let hub = new_hub();
        {
            let mut h = hub.borrow_mut();
            h.on_delivery(FlowId(1), at(50), SimDuration::ZERO, 1500, true, false);
            h.on_delivery(FlowId(1), at(250), SimDuration::ZERO, 1500, true, false);
            h.on_delivery(FlowId(1), at(260), SimDuration::ZERO, 1500, true, false);
        }
        let series = hub.borrow().throughput_series_mbps(FlowId(1));
        assert_eq!(series.len(), 3);
        // bin 0: 1500B/100ms = 0.12 Mbit/s
        assert!((series[0].1 - 0.12).abs() < 1e-9);
        assert!((series[1].1 - 0.0).abs() < 1e-12);
        assert!((series[2].1 - 0.24).abs() < 1e-9);
    }

    #[test]
    fn duplicates_cannot_complete_and_retransmits_always_miss() {
        let hub = new_hub();
        {
            let mut h = hub.borrow_mut();
            h.register_app_flow(
                FlowId(1),
                AppFlowMeta {
                    start: at(0),
                    expected_bytes: Some(3000),
                    deadline: Some(SimDuration::from_millis(100)),
                },
            );
            // unique on-time delivery: no miss, not yet complete
            h.on_delivery(
                FlowId(1),
                at(10),
                SimDuration::from_millis(20),
                1500,
                true,
                false,
            );
            // duplicate deliveries never advance completion or misses,
            // however late they are
            h.on_delivery(
                FlowId(1),
                at(20),
                SimDuration::from_millis(500),
                1500,
                false,
                true,
            );
            assert!(h.flows[&FlowId(1)].completed_at.is_none());
            assert_eq!(h.flows[&FlowId(1)].deadline_misses, 0);
        }
        {
            let mut h = hub.borrow_mut();
            // a recovered (retransmitted) frame is a miss even with a
            // fast wire OWD, and its unique bytes complete the flow
            h.on_delivery(
                FlowId(1),
                at(300),
                SimDuration::from_millis(20),
                1500,
                true,
                true,
            );
        }
        let h = hub.borrow();
        let rec = &h.flows[&FlowId(1)];
        assert_eq!(rec.completed_at, Some(at(300)));
        assert_eq!(rec.deadline_misses, 1);
        assert_eq!(rec.unique_pkts, 2);
        assert_eq!(rec.delivered_pkts, 3);
        assert_eq!(rec.unique_bytes, 3000);
        assert_eq!(rec.delivered_bytes, 4500);
    }

    #[test]
    fn jain_over_flows() {
        let hub = new_hub();
        {
            let mut h = hub.borrow_mut();
            h.on_delivery(FlowId(1), at(10), SimDuration::ZERO, 1000, true, false);
            h.on_delivery(FlowId(2), at(10), SimDuration::ZERO, 1000, true, false);
        }
        let j = hub.borrow().jain(SimDuration::from_secs(1));
        assert!((j - 1.0).abs() < 1e-12);
    }
}
