//! # cellular — trace-driven cellular link emulation
//!
//! The Mahimahi-style substrate for the paper's cellular experiments:
//!
//! * [`trace`] — the Mahimahi packet-delivery-trace format (parser/writer)
//!   and conversion into the simulator's trace-driven link;
//! * [`synth`] — seeded synthetic traces with the published statistical
//!   character of the paper's eight carrier captures (see DESIGN.md for
//!   the substitution rationale).

pub mod peruser;
pub mod synth;
pub mod trace;

pub use peruser::PerUserLink;
pub use synth::{all_builtin, builtin, builtin_specs, SynthSpec};
pub use trace::{CellTrace, TraceError};
