//! Appendix D: the square-wave time series (Fig. 17). Its sibling
//! per-trace sweep (Fig. 16) is campaign-backed and lives in
//! `campaign::figures`.

use super::Scale;
use crate::report::sparkline;
use crate::scenario::{CellScenario, LinkSpec};
use crate::scheme::Scheme;
use netsim::rate::Rate;
use netsim::time::SimDuration;
use std::fmt::Write;

/// Fig. 17: 12 ↔ 24 Mbit/s square wave every 500 ms. ABC and XCPw track
/// the rate; RCP (rate-based) lags and underutilizes after drops.
pub fn fig17(scale: Scale) -> String {
    let dur = scale.secs(30, 10, 2);
    let mut out = String::new();
    writeln!(out, "# Fig 17 — square-wave link 12↔24 Mbit/s every 500 ms").unwrap();
    for scheme in [Scheme::Abc, Scheme::Rcp, Scheme::Xcpw] {
        let mut sc = CellScenario::new(
            scheme,
            LinkSpec::Square {
                a: Rate::from_mbps(12.0),
                b: Rate::from_mbps(24.0),
                half_period: SimDuration::from_millis(500),
            },
        );
        sc.duration = dur;
        sc.warmup = scale.secs(2, 2, 0);
        let r = sc.run();
        writeln!(out, "\n## {}", scheme.name()).unwrap();
        writeln!(out, "goodput: {}", sparkline(&r.tput_series, 60)).unwrap();
        writeln!(out, "qdelay : {}", sparkline(&r.qdelay_series, 60)).unwrap();
        writeln!(
            out,
            "util {:>5.1}%  qdelay p50/p95 {:>5.0}/{:>5.0} ms",
            r.utilization * 100.0,
            r.qdelay_ms.p50,
            r.qdelay_ms.p95
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn utils_of(fig: &str) -> Vec<(String, f64)> {
        fig.lines()
            .filter(|l| l.contains("util") && l.contains('%'))
            .map(|l| {
                let u: f64 = l
                    .split("util")
                    .nth(1)
                    .unwrap()
                    .trim()
                    .split('%')
                    .next()
                    .unwrap()
                    .trim()
                    .parse()
                    .unwrap();
                (l.to_string(), u)
            })
            .collect()
    }

    #[test]
    fn fig17_abc_and_xcpw_beat_rcp_utilization() {
        let f = fig17(Scale::Fast);
        let utils = utils_of(&f);
        assert_eq!(utils.len(), 3, "{f}");
        let (abc, rcp, xcpw) = (utils[0].1, utils[1].1, utils[2].1);
        assert!(abc > rcp, "ABC {abc}% vs RCP {rcp}%\n{f}");
        assert!(xcpw > rcp, "XCPw {xcpw}% vs RCP {rcp}%\n{f}");
        assert!(abc > 85.0, "ABC utilization {abc}%");
    }
}
