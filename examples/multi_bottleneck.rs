//! Multi-bottleneck behavior (§3.1.2 and §5.1): first a two-hop cellular
//! path where either hop can bind — the accel→brake demotion rule makes
//! the sender obey the minimum target rate — then an ABC-wireless +
//! non-ABC-wired path where the dual windows (`w_abc`, `w_cubic`) swap
//! control as the bottleneck moves.
//!
//! ```sh
//! cargo run --release --example multi_bottleneck
//! ```
//!
//! `TwoHopScenario` and `MixedPathScenario` are presets over the scenario
//! engine (`experiments::engine`): each denotes a `ScenarioSpec`, and the
//! `ScenarioEngine` does all simulator wiring.

use abc_repro::experiments::{
    sparkline, CrossTraffic, LinkSpec, MixedPathScenario, Scheme, TwoHopScenario,
};
use abc_repro::netsim::rate::Rate;
use abc_repro::netsim::time::{SimDuration, SimTime};

fn main() {
    println!("== two ABC bottlenecks in series (uplink 24, downlink 12 Mbit/s) ==");
    let r = TwoHopScenario::new(
        Scheme::Abc,
        LinkSpec::Constant(Rate::from_mbps(24.0)),
        LinkSpec::Constant(Rate::from_mbps(12.0)),
    )
    .run();
    println!(
        "goodput {:.2} Mbit/s (the 12 Mbit/s hop binds), 95p delay {:.0} ms\n",
        r.total_tput_mbps, r.delay_ms.p95
    );

    println!("== ABC wireless + non-ABC wired, with on-off Cubic cross traffic ==");
    let steps: Vec<(SimTime, Rate)> = [16.0, 9.0, 5.0, 14.0, 7.0, 18.0]
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            (
                SimTime::ZERO + SimDuration::from_secs(i as u64 * 10),
                Rate::from_mbps(r),
            )
        })
        .collect();
    let res = MixedPathScenario {
        wireless: LinkSpec::Steps(steps),
        wired_rate: Rate::from_mbps(12.0),
        rtt: SimDuration::from_millis(100),
        buffer_pkts: 250,
        cross: CrossTraffic::OnOffCubic {
            on: SimDuration::from_secs(20),
            off: SimDuration::from_secs(10),
        },
        duration: SimDuration::from_secs(60),
    }
    .run();
    let wabc: Vec<(f64, f64)> = res
        .windows
        .samples
        .iter()
        .map(|&(t, a, ..)| (t, a))
        .collect();
    let wnon: Vec<(f64, f64)> = res
        .windows
        .samples
        .iter()
        .map(|&(t, _, n, _)| (t, n))
        .collect();
    let good: Vec<(f64, f64)> = res
        .windows
        .samples
        .iter()
        .map(|&(t, _, _, g)| (t, g))
        .collect();
    println!(
        "wireless capacity : {}",
        sparkline(&res.report.capacity_series, 70)
    );
    println!("ABC goodput       : {}", sparkline(&good, 70));
    println!("cross (Cubic)     : {}", sparkline(&res.cross_tput, 70));
    println!("w_abc             : {}", sparkline(&wabc, 70));
    println!("w_cubic           : {}", sparkline(&wnon, 70));
    println!(
        "wireless qdelay ms: {}",
        sparkline(&res.wireless_qdelay, 70)
    );
    println!("wired    qdelay ms: {}", sparkline(&res.wired_qdelay, 70));
    println!(
        "\nWhichever window is smaller governs: ABC behaves like Cubic when the \
         wired hop binds,\nand keeps the wireless queue short when the wireless hop binds."
    );
}
