//! BBR v1 [Cardwell et al., ACM Queue 2016] — model-based congestion
//! control. BBR paces at `pacing_gain × BtlBw` where `BtlBw` is a windowed
//! *maximum* of delivery-rate samples. On links whose capacity drops, that
//! max filter keeps the old (too high) estimate for ~10 RTTs, which is
//! exactly the overshoot the ABC paper observes (footnote 1, §2).

use netsim::flow::{AckEvent, CongestionControl, Pacing};
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

const STARTUP_GAIN: f64 = 2.885; // 2/ln(2)
const DRAIN_GAIN: f64 = 1.0 / 2.885;
const CWND_GAIN: f64 = 2.0;
const PROBE_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// BtlBw max-filter window, in round trips.
const BW_WINDOW_RTTS: u32 = 10;
/// RTprop min-filter window.
const RTPROP_WINDOW: SimDuration = SimDuration::from_secs(10);
const PROBE_RTT_INTERVAL: SimDuration = SimDuration::from_secs(10);
const PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);
const PROBE_RTT_CWND: f64 = 4.0;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

/// Windowed max filter over (time, value) samples.
#[derive(Debug, Default)]
struct MaxFilter {
    samples: VecDeque<(SimTime, f64)>,
}

impl MaxFilter {
    fn update(&mut self, now: SimTime, window: SimDuration, v: f64) {
        let cutoff = now.saturating_sub(window);
        while self.samples.front().is_some_and(|&(t, _)| t < cutoff) {
            self.samples.pop_front();
        }
        // monotonic deque: drop dominated samples
        while self.samples.back().is_some_and(|&(_, x)| x <= v) {
            self.samples.pop_back();
        }
        self.samples.push_back((now, v));
    }

    fn max(&mut self, now: SimTime, window: SimDuration) -> f64 {
        let cutoff = now.saturating_sub(window);
        while self.samples.front().is_some_and(|&(t, _)| t < cutoff) {
            self.samples.pop_front();
        }
        self.samples.front().map(|&(_, v)| v).unwrap_or(0.0)
    }
}

/// BBR (bottleneck bandwidth and RTT) congestion controller.
pub struct Bbr {
    state: State,
    bw_filter: MaxFilter,
    rtprop: SimDuration,
    rtprop_stamp: SimTime,
    srtt: SimDuration,

    /// Round bookkeeping: a round ends one srtt after it began.
    round_start: SimTime,
    round_count: u64,

    /// Startup exit detection: full pipe when bw hasn't grown 25% for 3 rounds.
    full_bw: f64,
    full_bw_rounds: u32,
    filled_pipe: bool,

    probe_phase: usize,
    phase_start: SimTime,

    probe_rtt_until: Option<SimTime>,
    probe_rtt_next: SimTime,

    pacing_gain: f64,
}

impl Bbr {
    /// A BBR flow in startup with an empty bandwidth filter.
    pub fn new() -> Self {
        Bbr {
            state: State::Startup,
            bw_filter: MaxFilter::default(),
            rtprop: SimDuration::MAX,
            rtprop_stamp: SimTime::ZERO,
            srtt: SimDuration::from_millis(100),
            round_start: SimTime::ZERO,
            round_count: 0,
            full_bw: 0.0,
            full_bw_rounds: 0,
            filled_pipe: false,
            probe_phase: 0,
            phase_start: SimTime::ZERO,
            probe_rtt_until: None,
            probe_rtt_next: SimTime::ZERO + PROBE_RTT_INTERVAL,
            pacing_gain: STARTUP_GAIN,
        }
    }

    fn btl_bw(&mut self, now: SimTime) -> Rate {
        let window = self.srtt * BW_WINDOW_RTTS as u64;
        Rate::from_bps(
            self.bw_filter
                .max(now, window.max(SimDuration::from_secs(1))),
        )
    }

    fn bdp_pkts(&mut self, now: SimTime) -> f64 {
        if self.rtprop == SimDuration::MAX {
            return 10.0;
        }
        let bw = self.btl_bw(now);
        (bw.bps() * self.rtprop.as_secs_f64() / (8.0 * 1500.0)).max(4.0)
    }

    fn advance_state(&mut self, now: SimTime, inflight: usize) {
        match self.state {
            State::Startup => {
                if self.filled_pipe {
                    self.state = State::Drain;
                    self.pacing_gain = DRAIN_GAIN;
                }
            }
            State::Drain => {
                if (inflight as f64) <= self.bdp_pkts(now) {
                    self.enter_probe_bw(now);
                }
            }
            State::ProbeBw => {
                // advance the gain cycle once per rtprop
                let phase_len = if self.rtprop == SimDuration::MAX {
                    self.srtt
                } else {
                    self.rtprop
                };
                if now.since(self.phase_start) >= phase_len {
                    self.probe_phase = (self.probe_phase + 1) % PROBE_GAINS.len();
                    self.phase_start = now;
                    self.pacing_gain = PROBE_GAINS[self.probe_phase];
                }
            }
            State::ProbeRtt => {
                if let Some(until) = self.probe_rtt_until {
                    if now >= until {
                        self.probe_rtt_until = None;
                        self.probe_rtt_next = now + PROBE_RTT_INTERVAL;
                        if self.filled_pipe {
                            self.enter_probe_bw(now);
                        } else {
                            self.state = State::Startup;
                            self.pacing_gain = STARTUP_GAIN;
                        }
                    }
                }
            }
        }
        // ProbeRTT entry: rtprop estimate stale
        if self.state != State::ProbeRtt
            && now >= self.probe_rtt_next
            && now.since(self.rtprop_stamp) > RTPROP_WINDOW
        {
            self.state = State::ProbeRtt;
            self.pacing_gain = 1.0;
            self.probe_rtt_until = Some(now + PROBE_RTT_DURATION);
        }
    }

    fn enter_probe_bw(&mut self, now: SimTime) {
        self.state = State::ProbeBw;
        // start in a random-ish but deterministic phase ≠ 0.75
        self.probe_phase = 2;
        self.phase_start = now;
        self.pacing_gain = PROBE_GAINS[self.probe_phase];
    }
}

impl Default for Bbr {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Bbr {
    fn name(&self) -> &'static str {
        "bbr"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        let now = ev.now;
        if !ev.srtt.is_zero() {
            self.srtt = ev.srtt;
        }
        if let Some(rtt) = ev.rtt {
            if rtt <= self.rtprop || now.since(self.rtprop_stamp) > RTPROP_WINDOW {
                self.rtprop = rtt;
                self.rtprop_stamp = now;
            }
        }
        if !ev.delivery_rate.is_zero() {
            let window = (self.srtt * BW_WINDOW_RTTS as u64).max(SimDuration::from_secs(1));
            self.bw_filter.update(now, window, ev.delivery_rate.bps());
        }

        // round accounting
        if now.since(self.round_start) >= self.srtt {
            self.round_start = now;
            self.round_count += 1;
            // startup full-pipe check
            if !self.filled_pipe {
                let bw = self.btl_bw(now).bps();
                if bw > self.full_bw * 1.25 {
                    self.full_bw = bw;
                    self.full_bw_rounds = 0;
                } else {
                    self.full_bw_rounds += 1;
                    if self.full_bw_rounds >= 3 {
                        self.filled_pipe = true;
                    }
                }
            }
        }
        self.advance_state(now, ev.inflight_pkts);
    }

    fn on_rto(&mut self, _now: SimTime) {
        // BBR v1 does not reduce on loss; an RTO restarts the model
        self.full_bw = 0.0;
        self.full_bw_rounds = 0;
        self.filled_pipe = false;
        self.state = State::Startup;
        self.pacing_gain = STARTUP_GAIN;
    }

    fn cwnd_pkts(&self) -> f64 {
        match self.state {
            State::ProbeRtt => PROBE_RTT_CWND,
            _ => {
                // cwnd_gain × BDP, computed from cached filters (read-only
                // view: recompute conservatively from current fields)
                let bw = self
                    .bw_filter
                    .samples
                    .front()
                    .map(|&(_, v)| v)
                    .unwrap_or(0.0);
                if bw == 0.0 || self.rtprop == SimDuration::MAX {
                    return 10.0; // initial window
                }
                (CWND_GAIN * bw * self.rtprop.as_secs_f64() / (8.0 * 1500.0)).max(4.0)
            }
        }
    }

    fn pacing(&self) -> Pacing {
        let bw = self
            .bw_filter
            .samples
            .front()
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        if bw == 0.0 {
            // no estimate yet: pace at a brisk default to start filling
            return Pacing::Rate(Rate::from_mbps(10.0));
        }
        Pacing::Rate(Rate::from_bps((bw * self.pacing_gain).max(1e4)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Ecn, Feedback};

    fn ack(now_ms: u64, rtt_ms: u64, rate_mbps: f64, inflight: usize) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + SimDuration::from_millis(now_ms),
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            min_rtt: SimDuration::from_millis(100),
            srtt: SimDuration::from_millis(rtt_ms),
            acked_bytes: 1500,
            ecn_echo: Ecn::NotEct,
            feedback: Feedback::None,
            inflight_pkts: inflight,
            delivery_rate: Rate::from_mbps(rate_mbps),
            one_way_delay: SimDuration::from_millis(rtt_ms / 2),
        }
    }

    #[test]
    fn max_filter_tracks_max_and_expires() {
        let mut f = MaxFilter::default();
        let w = SimDuration::from_secs(1);
        f.update(SimTime::from_nanos(0), w, 5.0);
        f.update(SimTime::ZERO + SimDuration::from_millis(100), w, 3.0);
        assert_eq!(f.max(SimTime::ZERO + SimDuration::from_millis(200), w), 5.0);
        // 5.0 expires, 3.0 remains
        assert_eq!(
            f.max(SimTime::ZERO + SimDuration::from_millis(1050), w),
            3.0
        );
    }

    #[test]
    fn startup_exits_when_bw_plateaus() {
        let mut b = Bbr::new();
        let mut t = 0;
        // growing bandwidth: stays in startup
        for i in 0..5 {
            b.on_ack(&ack(t, 100, 2.0 * (i + 1) as f64, 20));
            t += 100;
        }
        assert_eq!(b.state, State::Startup);
        // plateau for >3 rounds: exits to drain (inflight kept above BDP
        // ≈ 83 pkts so Drain doesn't complete immediately)
        for _ in 0..6 {
            b.on_ack(&ack(t, 100, 10.0, 200));
            t += 100;
        }
        assert!(b.filled_pipe);
        assert_eq!(b.state, State::Drain);
        // drain until inflight ≤ BDP → probe_bw
        b.on_ack(&ack(t, 100, 10.0, 2));
        assert_eq!(b.state, State::ProbeBw);
    }

    #[test]
    fn bw_estimate_holds_after_capacity_drop() {
        // The property ABC's motivation hinges on: after a link-rate drop,
        // BBR's max filter keeps the stale high estimate for ~10 RTTs.
        let mut b = Bbr::new();
        let mut t = 0;
        for _ in 0..20 {
            b.on_ack(&ack(t, 100, 10.0, 20));
            t += 100;
        }
        // capacity drops to 2 Mbit/s
        for _ in 0..3 {
            b.on_ack(&ack(t, 150, 2.0, 20));
            t += 100;
        }
        let bw = b.btl_bw(SimTime::ZERO + SimDuration::from_millis(t));
        assert!(
            bw.mbps() > 9.0,
            "max filter should still report ~10 Mbit/s, got {bw}"
        );
    }

    #[test]
    fn probe_rtt_reduces_cwnd() {
        let mut b = Bbr::new();
        b.state = State::ProbeRtt;
        assert_eq!(b.cwnd_pkts(), PROBE_RTT_CWND);
    }

    #[test]
    fn pacing_rate_scales_with_gain() {
        let mut b = Bbr::new();
        b.on_ack(&ack(0, 100, 8.0, 10));
        b.pacing_gain = 1.25;
        match b.pacing() {
            Pacing::Rate(r) => assert!((r.mbps() - 10.0).abs() < 0.1, "got {r}"),
            _ => panic!("BBR must pace"),
        }
    }
}
