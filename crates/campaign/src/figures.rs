//! The matrix/pareto/RTT-grid figures, migrated onto campaigns: each
//! figure's sweep is a [`Campaign`](crate::Campaign) preset and its body is a **pure
//! renderer over run records** — the same records `abc-campaign run`
//! writes to a store, so a stored sweep can be re-rendered without
//! re-simulating.
//!
//! [`all`] is the complete figure index of the reproduction: the
//! campaign-backed figures here plus the per-figure harnesses still in
//! [`experiments::figures`].

use crate::aggregate::stat_by;
use crate::presets;
use crate::runner::{find, labels_of, run_campaign, RunOptions, RunRecord};
use experiments::figures::{FigureFn, Scale};
use std::fmt::Write;

fn run(campaign: &crate::spec::Campaign) -> Vec<RunRecord> {
    run_campaign(campaign, &RunOptions::quiet())
}

/// Table 1 of §1: throughput and 95th-percentile delay normalized to ABC,
/// averaged over the traces.
pub fn table1(scale: Scale) -> String {
    use experiments::Scheme;
    let schemes = [
        Scheme::Abc,
        Scheme::Xcp,
        Scheme::CubicCodel,
        Scheme::Copa,
        Scheme::Cubic,
        Scheme::Pcc,
        Scheme::Bbr,
        Scheme::Sprout,
        Scheme::Verus,
    ];
    let campaign = presets::matrix_campaign(
        "table1",
        &schemes,
        &presets::traces(scale),
        presets::sim_duration(scale),
    );
    render_table1(&run(&campaign))
}

/// Render Table 1 from matrix records (axes `scheme` × `trace`).
pub fn render_table1(records: &[RunRecord]) -> String {
    let util = stat_by(records, "scheme", |r| r.report.utilization);
    let delay = stat_by(records, "scheme", |r| r.report.delay_ms.p95);
    let (abc_util, abc_delay) = (
        util.iter()
            .find(|(s, _)| s == "ABC")
            .expect("ABC row")
            .1
            .mean,
        delay
            .iter()
            .find(|(s, _)| s == "ABC")
            .expect("ABC row")
            .1
            .mean,
    );
    let mut out = String::new();
    writeln!(
        out,
        "# Table 1 — normalized throughput and 95p delay (ABC = 1)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>11} {:>18}",
        "Scheme", "Norm. Tput", "Norm. Delay (95%)"
    )
    .unwrap();
    for ((s, u), (_, d)) in util.iter().zip(&delay) {
        writeln!(
            out,
            "{:<14} {:>11.2} {:>18.2}",
            s,
            u.mean / abc_util,
            d.mean / abc_delay
        )
        .unwrap();
    }
    out
}

/// Fig. 8: utilization vs 95th-percentile per-packet delay on (a) a
/// downlink trace, (b) an uplink trace, (c) the two-hop uplink+downlink
/// path. One row per scheme per panel; the Pareto frontier of the
/// *non-ABC* schemes is flagged so ABC's position relative to it is
/// explicit.
pub fn fig8(scale: Scale) -> String {
    render_fig8(&run(&presets::pareto(scale)))
}

/// Render Fig. 8 from pareto records (axes `path` × `scheme`).
pub fn render_fig8(records: &[RunRecord]) -> String {
    let mut out = String::new();
    for (label, title) in [
        ("down", "a (downlink)"),
        ("up", "b (uplink)"),
        ("up+down", "c (uplink+downlink, two-hop)"),
    ] {
        let rows: Vec<(String, f64, f64)> = records
            .iter()
            .filter(|r| r.coords.get("path") == Some(label))
            .map(|r| {
                (
                    r.report.scheme.clone(),
                    r.report.utilization,
                    r.report.delay_ms.p95,
                )
            })
            .collect();
        writeln!(out, "\n## Fig 8{title}").unwrap();
        writeln!(
            out,
            "{:<14} {:>7} {:>16} {:>8}",
            "Scheme", "Util", "95p delay (ms)", "Pareto"
        )
        .unwrap();
        // Pareto frontier among non-ABC schemes: no other scheme has both
        // higher util and lower delay
        for (n, u, d) in &rows {
            let is_abc = n.starts_with("ABC");
            let dominated = rows
                .iter()
                .filter(|(m, ..)| !m.starts_with("ABC") && m != n)
                .any(|(_, u2, d2)| *u2 >= *u && *d2 <= *d);
            let tag = if is_abc {
                if !dominated {
                    "OUTSIDE"
                } else {
                    "inside"
                }
            } else if !dominated {
                "frontier"
            } else {
                ""
            };
            writeln!(out, "{:<14} {:>7.3} {:>16.1} {:>8}", n, u, d, tag).unwrap();
        }
    }
    out
}

/// Fig. 9: utilization and 95th-percentile delay for every scheme on every
/// trace, plus the cross-trace average.
pub fn fig9(scale: Scale) -> String {
    render_matrix(&run(&presets::cellular_matrix(scale)), false)
}

/// Fig. 15 (Appendix C): same sweep, *mean* per-packet delay.
pub fn fig15(scale: Scale) -> String {
    render_matrix(&run(&presets::cellular_matrix(scale)), true)
}

/// Render the scheme × trace matrix (Figs. 9/15) from its records.
pub fn render_matrix(records: &[RunRecord], mean_delay: bool) -> String {
    let schemes = labels_of(records, "scheme");
    let trs = labels_of(records, "trace");
    let mut out = String::new();
    let which = if mean_delay { "mean" } else { "95p" };
    writeln!(
        out,
        "# Fig {} — utilization and {which} per-packet delay per trace",
        if mean_delay { "15" } else { "9" }
    )
    .unwrap();
    write!(out, "{:<14}", "Scheme").unwrap();
    for t in &trs {
        write!(out, " {:>18}", t).unwrap();
    }
    writeln!(out, " {:>18}", "AVERAGE").unwrap();
    for s in &schemes {
        write!(out, "{:<14}", s).unwrap();
        let mut us = Vec::new();
        let mut ds = Vec::new();
        for t in &trs {
            let c = find(records, &[("scheme", s), ("trace", t)])
                .unwrap_or_else(|| panic!("matrix cell ({s}, {t}) missing"));
            let d = if mean_delay {
                c.report.delay_ms.mean
            } else {
                c.report.delay_ms.p95
            };
            us.push(c.report.utilization);
            ds.push(d);
            write!(out, " {:>8.2}/{:>6.0}ms", c.report.utilization, d).unwrap();
        }
        let mu = us.iter().sum::<f64>() / us.len() as f64;
        let md = ds.iter().sum::<f64>() / ds.len() as f64;
        writeln!(out, " {:>8.2}/{:>6.0}ms", mu, md).unwrap();
    }
    out
}

/// Fig. 16: utilization and 95p delay of ABC / XCP / XCPw / VCP / RCP
/// across the cellular traces.
pub fn fig16(scale: Scale) -> String {
    render_fig16(&run(&presets::explicit_matrix(scale)))
}

/// Render Fig. 16 from explicit-matrix records.
pub fn render_fig16(records: &[RunRecord]) -> String {
    let util = stat_by(records, "scheme", |r| r.report.utilization);
    let p95 = stat_by(records, "scheme", |r| r.report.delay_ms.p95);
    let mean = stat_by(records, "scheme", |r| r.report.delay_ms.mean);
    let n_traces = labels_of(records, "trace").len();
    let mut out = String::new();
    writeln!(
        out,
        "# Fig 16 — ABC vs explicit control (avg over {n_traces} traces)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:>7} {:>16} {:>16}",
        "Scheme", "Util", "95p delay (ms)", "mean delay (ms)"
    )
    .unwrap();
    for ((s, u), ((_, p), (_, m))) in util.iter().zip(p95.iter().zip(&mean)) {
        writeln!(
            out,
            "{:<8} {:>7.3} {:>16.1} {:>16.1}",
            s, u.mean, p.mean, m.mean
        )
        .unwrap();
    }
    out
}

/// Fig. 18 (Appendix E): the lineup at RTT ∈ {20, 50, 100, 200} ms on one
/// trace; reports utilization and 95p *queuing* delay (the appendix's
/// y-axis), so propagation differences don't mask the comparison.
pub fn fig18(scale: Scale) -> String {
    render_fig18(&run(&presets::rtt_grid(scale)))
}

/// Render Fig. 18 from rtt-grid records (axes `scheme` × `rtt_ms`).
pub fn render_fig18(records: &[RunRecord]) -> String {
    let schemes = labels_of(records, "scheme");
    let rtts = labels_of(records, "rtt_ms");
    let mut out = String::new();
    writeln!(
        out,
        "# Fig 18 — RTT sensitivity (utilization / 95p queuing delay ms)"
    )
    .unwrap();
    write!(out, "{:<14}", "Scheme").unwrap();
    for r in &rtts {
        write!(out, " {:>16}", format!("RTT {r}ms")).unwrap();
    }
    writeln!(out).unwrap();
    for s in &schemes {
        write!(out, "{:<14}", s).unwrap();
        for rtt in &rtts {
            let c = find(records, &[("scheme", s), ("rtt_ms", rtt)])
                .unwrap_or_else(|| panic!("rtt-grid cell ({s}, {rtt}) missing"));
            write!(
                out,
                " {:>8.2}/{:>5.0}ms",
                c.report.utilization, c.report.qdelay_ms.p95
            )
            .unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Web workload figure: FCT percentiles per scheme × offered load.
pub fn web_fct(scale: Scale) -> String {
    render_web_fct(&run(&presets::web_load_grid(scale)))
}

/// Render the web-FCT table from `web-load-grid` records (axes `scheme`
/// × `load`).
pub fn render_web_fct(records: &[RunRecord]) -> String {
    let schemes = labels_of(records, "scheme");
    let loads = labels_of(records, "load");
    let mut out = String::new();
    writeln!(
        out,
        "# Web FCT — completion time p50/p95/p99 (ms) per scheme × offered load"
    )
    .unwrap();
    write!(out, "{:<14}", "Scheme").unwrap();
    for l in &loads {
        write!(out, " {:>26}", format!("load {l}")).unwrap();
    }
    writeln!(out).unwrap();
    for s in &schemes {
        write!(out, "{:<14}", s).unwrap();
        for l in &loads {
            let c = find(records, &[("scheme", s), ("load", l)])
                .unwrap_or_else(|| panic!("web-load-grid cell ({s}, {l}) missing"));
            let web = c
                .report
                .app
                .as_ref()
                .and_then(|a| a.web.as_ref())
                .unwrap_or_else(|| panic!("cell ({s}, {l}) has no web metrics"));
            write!(
                out,
                " {:>7.0}/{:>7.0}/{:>7.0}ms",
                web.fct_ms.p50, web.fct_ms.p95, web.fct_ms.p99
            )
            .unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(out, "\ncompleted / issued requests:").unwrap();
    for s in &schemes {
        write!(out, "{:<14}", s).unwrap();
        for l in &loads {
            let c = find(records, &[("scheme", s), ("load", l)]).expect("cell");
            let web = c.report.app.as_ref().and_then(|a| a.web.as_ref()).unwrap();
            write!(out, " {:>12}", format!("{}/{}", web.completed, web.flows)).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// ABR video figure: rebuffer ratio, mean bitrate, and QoE per scheme ×
/// trace.
pub fn video_qoe(scale: Scale) -> String {
    render_video_qoe(&run(&presets::video_over_cellular(scale)))
}

/// Render the video-QoE matrix from `video-over-cellular` records (axes
/// `scheme` × `trace`).
pub fn render_video_qoe(records: &[RunRecord]) -> String {
    let schemes = labels_of(records, "scheme");
    let trs = labels_of(records, "trace");
    let mut out = String::new();
    writeln!(
        out,
        "# ABR video — rebuffer% / mean kbit/s / QoE per scheme × trace"
    )
    .unwrap();
    write!(out, "{:<14}", "Scheme").unwrap();
    for t in &trs {
        write!(out, " {:>22}", t).unwrap();
    }
    writeln!(out).unwrap();
    for s in &schemes {
        write!(out, "{:<14}", s).unwrap();
        for t in &trs {
            let c = find(records, &[("scheme", s), ("trace", t)])
                .unwrap_or_else(|| panic!("video cell ({s}, {t}) missing"));
            let v = c
                .report
                .app
                .as_ref()
                .and_then(|a| a.video.as_ref())
                .unwrap_or_else(|| panic!("cell ({s}, {t}) has no video metrics"));
            write!(
                out,
                " {:>6.1}%/{:>5.0}k/{:>6.2}",
                v.rebuffer_ratio * 100.0,
                v.mean_bitrate_kbps,
                v.qoe
            )
            .unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// RTC coexistence figure: deadline misses and bulk throughput per
/// scheme.
pub fn rtc_coexist_fig(scale: Scale) -> String {
    render_rtc_coexist(&run(&presets::rtc_coexist(scale)))
}

/// Render the RTC-coexistence table from `rtc-coexist` records (axis
/// `scheme`).
pub fn render_rtc_coexist(records: &[RunRecord]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "# RTC coexistence — a 300 kbit/s stream beside one bulk flow"
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>10} {:>14} {:>14} {:>16}",
        "Scheme", "miss rate", "OWD p95 (ms)", "OWD p99 (ms)", "total tput Mbit/s"
    )
    .unwrap();
    for r in records {
        let rtc = r
            .report
            .app
            .as_ref()
            .and_then(|a| a.rtc.as_ref())
            .unwrap_or_else(|| panic!("record {} has no rtc metrics", r.coords));
        writeln!(
            out,
            "{:<14} {:>9.1}% {:>14.1} {:>14.1} {:>16.2}",
            r.report.scheme,
            rtc.miss_rate * 100.0,
            rtc.owd_ms.p95,
            rtc.owd_ms.p99,
            r.report.total_tput_mbps
        )
        .unwrap();
    }
    out
}

/// Many-users figure: fairness and web tail FCT as the client count
/// scales 10 → 10k on one bottleneck.
pub fn many_users_fig(scale: Scale) -> String {
    render_many_users(&run(&presets::many_users(scale)))
}

/// Render the many-users table from `many-users` records (axis
/// `clients`): Jain fairness across the bulk fleet, web FCT tails from
/// the rider workload, and aggregate throughput per client count.
pub fn render_many_users(records: &[RunRecord]) -> String {
    let counts = labels_of(records, "clients");
    let mut out = String::new();
    writeln!(
        out,
        "# Many users — fairness and web tail FCT vs client count (one ABC bottleneck)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>8} {:>14} {:>14} {:>18}",
        "Clients", "Jain", "FCT p95 (ms)", "FCT p99 (ms)", "total tput Mbit/s"
    )
    .unwrap();
    for c in &counts {
        let r = find(records, &[("clients", c)])
            .unwrap_or_else(|| panic!("many-users cell clients={c} missing"));
        let web = r
            .report
            .app
            .as_ref()
            .and_then(|a| a.web.as_ref())
            .unwrap_or_else(|| panic!("clients={c} has no web metrics"));
        writeln!(
            out,
            "{:<10} {:>8.3} {:>14.0} {:>14.0} {:>18.2}",
            c, r.report.jain, web.fct_ms.p95, web.fct_ms.p99, r.report.total_tput_mbps
        )
        .unwrap();
    }
    out
}

/// Robustness figure: every scheme under the adversarial impairment
/// axis (loss, burst loss, reordering, jitter, outages, ACK
/// decimation), with the impaired-packet counts the wires recorded.
pub fn robustness_fig(scale: Scale) -> String {
    render_robustness(&run(&presets::robustness(scale)))
}

/// Render the robustness table from `robustness` records (axes
/// `scheme` × `impairment`). The `none` control row shows each scheme's
/// clean-path baseline; every other row shows how far throughput and
/// tail delay degrade under that impairment, plus how many packets the
/// impairment wires actually hit.
pub fn render_robustness(records: &[RunRecord]) -> String {
    let impairments = labels_of(records, "impairment");
    let schemes = labels_of(records, "scheme");
    let mut out = String::new();
    writeln!(
        out,
        "# Robustness — throughput and 95p delay under adversarial impairments"
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:<14} {:>12} {:>14} {:>14} {:>14}",
        "Impairment", "Scheme", "tput Mbit/s", "delay p95 (ms)", "delay p99 (ms)", "pkts impaired"
    )
    .unwrap();
    for imp in &impairments {
        for s in &schemes {
            let r = find(records, &[("impairment", imp), ("scheme", s)])
                .unwrap_or_else(|| panic!("robustness cell impairment={imp} scheme={s} missing"));
            let hit: u64 = r.report.impairments.iter().map(|i| i.impaired).sum();
            writeln!(
                out,
                "{:<14} {:<14} {:>12.2} {:>14.1} {:>14.1} {:>14}",
                imp, s, r.report.total_tput_mbps, r.report.delay_ms.p95, r.report.delay_ms.p99, hit
            )
            .unwrap();
        }
    }
    out
}

/// Incremental-deployment figure: throughput share and queueing delay
/// as the ABC-capable hop count on a 4-hop parking lot grows 0 → 4.
pub fn coexistence(scale: Scale) -> String {
    render_coexistence(&run(&presets::parking_lot(scale)))
}

/// Render the coexistence table from `parking-lot` records (axes
/// `abc_hops` × `seed`): the ABC-Cubic flow's throughput share against
/// its Cubic cross flow, and the last-hop queueing delay, per
/// ABC-capable hop count (averaged over seeds).
pub fn render_coexistence(records: &[RunRecord]) -> String {
    let hops = labels_of(records, "abc_hops");
    let mut out = String::new();
    writeln!(
        out,
        "# Coexistence — ABC-Cubic vs a Cubic cross flow on a 4-hop parking lot"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>9} {:>13} {:>14} {:>7} {:>16}",
        "ABC hops", "ABC frac", "main Mbit/s", "cross Mbit/s", "share", "qdelay p95 (ms)"
    )
    .unwrap();
    for h in &hops {
        let cells: Vec<&RunRecord> = records
            .iter()
            .filter(|r| r.coords.get("abc_hops") == Some(h.as_str()))
            .collect();
        assert!(!cells.is_empty(), "parking-lot cell abc_hops={h} missing");
        let n = cells.len() as f64;
        let mean = |f: &dyn Fn(&RunRecord) -> f64| cells.iter().map(|r| f(r)).sum::<f64>() / n;
        let main = mean(&|r| r.report.flow_tputs_mbps[0]);
        let cross = mean(&|r| r.report.flow_tputs_mbps.get(1).copied().unwrap_or(0.0));
        let qdelay = mean(&|r| r.report.qdelay_ms.p95);
        let share = if main + cross > 0.0 {
            main / (main + cross)
        } else {
            0.0
        };
        let frac = h.parse::<f64>().map(|k| k / 4.0).unwrap_or(0.0);
        writeln!(
            out,
            "{:<10} {:>9.2} {:>13.2} {:>14.2} {:>7.2} {:>16.1}",
            h, frac, main, cross, share, qdelay
        )
        .unwrap();
    }
    out
}

/// The complete figure index: campaign-backed figures (here) merged with
/// the per-figure harnesses still in [`experiments::figures`], in the
/// paper's order.
pub fn all() -> Vec<(&'static str, &'static str, FigureFn)> {
    let mut v = experiments::figures::all();
    v.extend([
        (
            "table1",
            "§1 normalized tput/delay summary",
            table1 as FigureFn,
        ),
        (
            "fig8",
            "utilization vs 95p delay Pareto (down/up/two-hop)",
            fig8 as FigureFn,
        ),
        (
            "fig9",
            "utilization + 95p delay across 8 traces",
            fig9 as FigureFn,
        ),
        (
            "fig15",
            "mean per-packet delay across traces",
            fig15 as FigureFn,
        ),
        (
            "fig16",
            "ABC vs explicit schemes (XCP/XCPw/RCP/VCP)",
            fig16 as FigureFn,
        ),
        ("fig18", "RTT sensitivity sweep", fig18 as FigureFn),
        (
            "web-fct",
            "web flow-completion times vs offered load",
            web_fct as FigureFn,
        ),
        (
            "video-qoe",
            "ABR video rebuffer/bitrate/QoE across traces",
            video_qoe as FigureFn,
        ),
        (
            "rtc-coexist",
            "RTC deadline misses beside a bulk flow",
            rtc_coexist_fig as FigureFn,
        ),
        (
            "many-users",
            "Jain fairness + web tail FCT at 10→10k clients",
            many_users_fig as FigureFn,
        ),
        (
            "robustness",
            "throughput/delay degradation under adversarial impairments",
            robustness_fig as FigureFn,
        ),
        (
            "coexistence",
            "ABC-Cubic throughput share + qdelay vs ABC-capable hop fraction",
            coexistence as FigureFn,
        ),
        (
            "dynamics",
            "control-law timeline (marks/token/qdelay/cwnd) from a telemetry sidecar",
            crate::dynamics::dynamics_figure as FigureFn,
        ),
    ]);
    v.sort_by_key(|(id, ..)| rank(id));
    v
}

/// Canonical figure order: table1 first, then `fig<N>` numerically, then
/// the named extras in their listed order.
fn rank(id: &str) -> u32 {
    if id == "table1" {
        return 0;
    }
    id.strip_prefix("fig")
        .and_then(|n| n.parse::<u32>().ok())
        .unwrap_or(1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_complete_and_ordered() {
        let all = all();
        assert!(all.len() >= 23, "figure index shrank to {}", all.len());
        let ids: Vec<&str> = all.iter().map(|(id, ..)| *id).collect();
        assert_eq!(ids[0], "table1");
        let f8 = ids.iter().position(|&i| i == "fig8").unwrap();
        let f9 = ids.iter().position(|&i| i == "fig9").unwrap();
        assert!(f8 < f9);
        assert!(ids.contains(&"stability") && ids.contains(&"marking"));
        // no duplicates
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate figure ids: {ids:?}");
    }

    #[test]
    fn table1_normalizes_to_abc() {
        let t = table1(Scale::Fast);
        // the ABC row must read 1.00 / 1.00
        let abc_line = t.lines().find(|l| l.starts_with("ABC")).unwrap();
        assert!(abc_line.contains("1.00"), "{abc_line}");
    }

    #[test]
    fn fig8_flags_abc_outside_frontier() {
        let f = fig8(Scale::Fast);
        assert!(f.contains("Fig 8a"));
        assert!(f.contains("Fig 8c"));
        // ABC should be outside the non-ABC frontier on at least one panel
        assert!(f.contains("OUTSIDE"), "{f}");
    }

    #[test]
    fn rendering_is_a_pure_function_of_stored_records() {
        // Re-rendering records loaded from a store must reproduce the
        // figure byte-for-byte: figures are renderers, not simulations.
        let campaign = presets::rtt_grid(Scale::Tiny);
        let records = run(&campaign);
        let direct = render_fig18(&records);
        let store = crate::store::ResultsStore::new(&campaign, records);
        let reloaded = crate::store::ResultsStore::from_jsonl(&store.to_jsonl()).unwrap();
        assert_eq!(render_fig18(&reloaded.records), direct);
    }
}
