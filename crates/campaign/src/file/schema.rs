//! The campaign-file schema: compiling a parsed TOML document into a
//! [`Campaign`].
//!
//! The format is documented end to end in `docs/campaign-file.md` (every
//! snippet there is parsed by a test). In outline:
//!
//! ```toml
//! [campaign]
//! name = "my-sweep"
//!
//! [base]                      # ScenarioSpec literals; defaults match
//! scheme = "ABC"              # ScenarioSpec::single(ABC, 0 Mbit/s)
//! link = { constant_mbps = 12.0 }
//! duration_s = 60
//!
//! [[axis]]                    # axes expand row-major, last fastest
//! name = "scheme"
//! schemes = ["ABC", "Cubic"]
//!
//! [[axis]]
//! name = "seed"
//! seeds = [1, 2]
//!
//! [[filter]]                  # drop points before execution
//! name = "abc-seed-1-only"
//! when = { scheme = "ABC" }
//! require = { seed = 1 }
//!
//! [scale.tiny]                # overrides applied at --scale tiny
//! duration_s = 2
//! ```
//!
//! Every error carries the line/column of the offending key or value.
//! Unknown keys are rejected (a typo must not silently produce a
//! different sweep), and empty axes / duplicate axis names are caught
//! here with positions instead of panicking later in [`Campaign`].

use super::toml::{self, Pos, Spanned, Table, TomlError, Value};
use crate::spec::{Axis, AxisValue, Campaign, Coords, Filter};
use experiments::engine::{
    AbcRouterConfig, FlowSchedule, HopQdisc, InjectedFault, ParkingHop, QdiscSpec, ScenarioSpec,
    Topology, WorkloadEntry,
};
use experiments::figures::Scale;
use experiments::scenario::LinkSpec;
use experiments::wifi::McsSpec;
use experiments::Scheme;
use netsim::fault::{Direction, ImpairmentKind, ImpairmentSpec};
use netsim::packet::MTU_BYTES;
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use workload::{AbrWorkload, ArrivalProcess, RtcWorkload, SizeDist, WebWorkload, WorkloadSpec};

/// Compile campaign-file text into a [`Campaign`] at the given
/// [`Scale`] (which selects the matching `[scale.*]` override table).
pub fn from_str(text: &str, scale: Scale) -> Result<Campaign, TomlError> {
    let root = toml::parse(text)?;
    compile(&root, scale)
}

fn err(pos: Pos, message: impl Into<String>) -> TomlError {
    TomlError::new(pos, message)
}

/// Reject entries whose key is not in `allowed`.
fn check_keys(t: &Table, context: &str, allowed: &[&str]) -> Result<(), TomlError> {
    for (k, v) in &t.entries {
        if !allowed.contains(&k.as_str()) {
            return Err(err(
                v.pos,
                format!(
                    "unknown key `{k}` in {context} (expected one of: {})",
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

fn expect_table<'a>(s: &'a Spanned, what: &str) -> Result<&'a Table, TomlError> {
    s.value.as_table().ok_or_else(|| {
        err(
            s.pos,
            format!("{what} must be a table, found {}", s.value.kind()),
        )
    })
}

fn expect_str<'a>(s: &'a Spanned, what: &str) -> Result<&'a str, TomlError> {
    s.value.as_str().ok_or_else(|| {
        err(
            s.pos,
            format!("{what} must be a string, found {}", s.value.kind()),
        )
    })
}

fn expect_array<'a>(s: &'a Spanned, what: &str) -> Result<&'a [Spanned], TomlError> {
    s.value.as_array().ok_or_else(|| {
        err(
            s.pos,
            format!("{what} must be an array, found {}", s.value.kind()),
        )
    })
}

fn expect_f64(s: &Spanned, what: &str) -> Result<f64, TomlError> {
    s.value.as_f64().ok_or_else(|| {
        err(
            s.pos,
            format!("{what} must be a number, found {}", s.value.kind()),
        )
    })
}

/// A non-negative integer (durations, seeds, counts).
fn expect_u64(s: &Spanned, what: &str) -> Result<u64, TomlError> {
    match s.value.as_int() {
        Some(i) if i >= 0 => Ok(i as u64),
        Some(i) => Err(err(
            s.pos,
            format!("{what} must be non-negative, found {i}"),
        )),
        None => Err(err(
            s.pos,
            format!("{what} must be an integer, found {}", s.value.kind()),
        )),
    }
}

/// A [`expect_u64`] that must also fit `u32` (counts, rates, sizes the
/// workload structs carry as `u32`).
fn expect_u32(s: &Spanned, what: &str) -> Result<u32, TomlError> {
    let v = expect_u64(s, what)?;
    u32::try_from(v).map_err(|_| err(s.pos, format!("{what} is too large ({v})")))
}

/// A [`expect_u64`] that must be at least 1 (intervals, chunk lengths —
/// zero would trip the workload constructors' asserts downstream).
fn expect_positive(s: &Spanned, what: &str) -> Result<u64, TomlError> {
    match expect_u64(s, what)? {
        0 => Err(err(s.pos, format!("{what} must be at least 1"))),
        v => Ok(v),
    }
}

/// A probability: finite and in `0..=1` (a negative drop rate or a
/// `loss_bad = 1.5` must not flow into an impairment wire).
fn expect_prob(s: &Spanned, what: &str) -> Result<f64, TomlError> {
    let p = expect_f64(s, what)?;
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(err(
            s.pos,
            format!("{what} must be a probability in 0..=1, found {p}"),
        ));
    }
    Ok(p)
}

/// A rate in Mbit/s: finite and non-negative (a negative or NaN rate
/// would flow into the simulator as nonsense).
fn expect_rate_mbps(s: &Spanned, what: &str) -> Result<Rate, TomlError> {
    let mbps = expect_f64(s, what)?;
    if !mbps.is_finite() || mbps < 0.0 {
        return Err(err(
            s.pos,
            format!("{what} must be a non-negative rate in Mbit/s, found {mbps}"),
        ));
    }
    Ok(Rate::from_mbps(mbps))
}

fn compile(root: &Table, scale: Scale) -> Result<Campaign, TomlError> {
    check_keys(
        root,
        "the top level",
        &["campaign", "base", "axis", "filter", "scale", "telemetry"],
    )?;

    // [campaign] name = "…"
    let meta = root
        .get("campaign")
        .ok_or_else(|| err(root.pos, "missing [campaign] table"))?;
    let meta_t = expect_table(meta, "[campaign]")?;
    check_keys(meta_t, "[campaign]", &["name"])?;
    let name = expect_str(
        meta_t
            .get("name")
            .ok_or_else(|| err(meta.pos, "[campaign] needs a `name`"))?,
        "campaign name",
    )?
    .to_string();

    // [base] + the [scale.<scale>] override, applied in file order.
    let mut base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::ZERO));
    if let Some(b) = root.get("base") {
        apply_settings(&mut base, expect_table(b, "[base]")?, "[base]")?;
    }
    if let Some(s) = root.get("scale") {
        let s_t = expect_table(s, "[scale]")?;
        check_keys(s_t, "[scale]", &["full", "fast", "tiny"])?;
        let key = match scale {
            Scale::Full => "full",
            Scale::Fast => "fast",
            Scale::Tiny => "tiny",
        };
        if let Some(over) = s_t.get(key) {
            let ctx = format!("[scale.{key}]");
            apply_settings(&mut base, expect_table(over, &ctx)?, &ctx)?;
        }
    }

    let mut campaign = Campaign::new(name, base);

    // [[axis]] …
    if let Some(axes) = root.get("axis") {
        for a in expect_array(axes, "[[axis]]")? {
            let axis = compile_axis(expect_table(a, "[[axis]]")?, a.pos)?;
            if campaign.axes.iter().any(|x| x.name == axis.name) {
                return Err(err(a.pos, format!("duplicate axis `{}`", axis.name)));
            }
            campaign.axes.push(axis);
        }
    }

    // [[filter]] …
    if let Some(filters) = root.get("filter") {
        let axis_names: Vec<String> = campaign.axes.iter().map(|a| a.name.clone()).collect();
        for f in expect_array(filters, "[[filter]]")? {
            campaign.filters.push(compile_filter(
                expect_table(f, "[[filter]]")?,
                f.pos,
                &axis_names,
            )?);
        }
    }

    // [telemetry] — attach a sidecar config to every expanded point.
    if let Some(t) = root.get("telemetry") {
        let t_t = expect_table(t, "[telemetry]")?;
        check_keys(t_t, "[telemetry]", &["signals", "sample_every_ms"])?;
        let mut cfg = match t_t.get("signals") {
            Some(s) => {
                let mut names = Vec::new();
                for item in expect_array(s, "telemetry signals")? {
                    names.push((expect_str(item, "a telemetry signal")?, item.pos));
                }
                let mut signals = Vec::with_capacity(names.len());
                for (name, pos) in names {
                    match netsim::telemetry::Signal::from_name(name) {
                        Some(sig) => signals.push(sig),
                        None => {
                            let catalog: Vec<&str> = netsim::telemetry::Signal::ALL
                                .iter()
                                .map(|s| s.name())
                                .collect();
                            return Err(err(
                                pos,
                                format!(
                                    "unknown telemetry signal `{name}` (expected one of: {})",
                                    catalog.join(", ")
                                ),
                            ));
                        }
                    }
                }
                netsim::telemetry::TelemetryConfig {
                    signals,
                    ..Default::default()
                }
            }
            None => netsim::telemetry::TelemetryConfig::default(),
        };
        if let Some(ms) = t_t.get("sample_every_ms") {
            let ms = expect_positive(ms, "telemetry sample_every_ms")?;
            cfg = cfg.with_sample_every(SimDuration::from_millis(ms));
        }
        campaign.telemetry = Some(cfg);
    }

    Ok(campaign)
}

/// The scenario-parameter keys `[base]`, `[scale.*]`, and axis values
/// share. Each maps to one [`AxisValue`] write.
const SETTING_KEYS: &[&str] = &[
    "scheme",
    "link",
    "topology",
    "qdisc",
    "rtt_ms",
    "buffer_pkts",
    "duration_s",
    "warmup_s",
    "seed",
    "flows",
    "workloads",
    "timer_slot_shift",
    "impairments",
    "inject_fault",
];

fn apply_settings(spec: &mut ScenarioSpec, t: &Table, context: &str) -> Result<(), TomlError> {
    check_keys(t, context, SETTING_KEYS)?;
    for (key, v) in &t.entries {
        setting(key, v)?.apply(spec);
    }
    Ok(())
}

/// One scenario-parameter write, as the [`AxisValue`] it denotes.
fn setting(key: &str, v: &Spanned) -> Result<AxisValue, TomlError> {
    Ok(match key {
        "scheme" => AxisValue::Scheme(scheme(v)?),
        "link" => AxisValue::Link(link_spec(v)?),
        "topology" => AxisValue::Topology(topology(v)?),
        "qdisc" => AxisValue::Qdisc(qdisc(v)?),
        "rtt_ms" => AxisValue::RttMs(expect_u64(v, "`rtt_ms`")?),
        "buffer_pkts" => AxisValue::BufferPkts(expect_u64(v, "`buffer_pkts`")? as usize),
        "duration_s" => AxisValue::DurationSecs(expect_u64(v, "`duration_s`")?),
        "warmup_s" => AxisValue::WarmupSecs(expect_u64(v, "`warmup_s`")?),
        "seed" => AxisValue::Seed(expect_u64(v, "`seed`")?),
        "flows" => AxisValue::Flows(flow_schedule(v)?),
        "timer_slot_shift" => {
            let shift = expect_u32(v, "`timer_slot_shift`")?;
            if !netsim::event::SLOT_SHIFT_RANGE.contains(&shift) {
                return Err(err(
                    v.pos,
                    format!(
                        "`timer_slot_shift` must be in {}..={} (log2 ns per wheel slot), found {shift}",
                        netsim::event::SLOT_SHIFT_RANGE.start(),
                        netsim::event::SLOT_SHIFT_RANGE.end()
                    ),
                ));
            }
            AxisValue::TimerSlotShift(shift)
        }
        "workloads" => {
            let entries = expect_array(v, "`workloads`")?
                .iter()
                .map(workload_entry)
                .collect::<Result<Vec<_>, _>>()?;
            AxisValue::Workloads(entries)
        }
        "impairments" => {
            let imps = expect_array(v, "`impairments`")?
                .iter()
                .map(impairment)
                .collect::<Result<Vec<_>, _>>()?;
            AxisValue::Impairments(imps)
        }
        "inject_fault" => {
            let s = expect_str(v, "`inject_fault`")?;
            match InjectedFault::from_name(s) {
                Some(f) => AxisValue::Fault(Some(f)),
                None if s == "none" => AxisValue::Fault(None),
                None => {
                    return Err(err(
                        v.pos,
                        format!("unknown fault {s:?} (expected \"panic\", \"stall\", or \"none\")"),
                    ))
                }
            }
        }
        other => return Err(err(v.pos, format!("unknown setting `{other}`"))),
    })
}

/// One impairment literal: a `kind` plus its parameters, with optional
/// `direction` (`"data"`/`"ack"`, default data) and `hop` (default 0) —
/// e.g. `{ kind = "drop", p = 0.01 }`,
/// `{ kind = "gilbert-elliott", p_good_bad = 0.01, p_bad_good = 0.3,
///    loss_good = 0.0, loss_bad = 0.5 }`,
/// `{ kind = "outage", start_ms = 3000, duration_ms = 200,
///    period_ms = 5000 }` (periodic flap; omit `period_ms` for one
/// outage), or `{ kind = "decimate", keep_one_in = 4, direction = "ack" }`.
fn impairment(v: &Spanned) -> Result<ImpairmentSpec, TomlError> {
    let t = expect_table(v, "an impairment")?;
    let kind_field = t
        .get("kind")
        .ok_or_else(|| err(v.pos, "an impairment needs a `kind`"))?;
    let kind_name = expect_str(kind_field, "impairment `kind`")?;
    let direction = match t.get("direction") {
        Some(d) => match expect_str(d, "`direction`")? {
            "data" => Direction::Data,
            "ack" => Direction::Ack,
            other => {
                return Err(err(
                    d.pos,
                    format!("unknown direction {other:?} (expected \"data\" or \"ack\")"),
                ))
            }
        },
        None => Direction::Data,
    };
    let hop = match t.get("hop") {
        Some(h) => expect_u64(h, "`hop`")? as usize,
        None => 0,
    };
    let field = |k: &str| -> Result<&Spanned, TomlError> {
        t.get(k)
            .ok_or_else(|| err(v.pos, format!("impairment kind {kind_name:?} needs `{k}`")))
    };
    const COMMON: [&str; 3] = ["kind", "direction", "hop"];
    let keys = |extra: &[&'static str]| -> Vec<&'static str> {
        COMMON.iter().chain(extra).copied().collect()
    };
    let kind = match kind_name {
        "drop" => {
            check_keys(t, "a `drop` impairment", &keys(&["p"]))?;
            ImpairmentKind::Drop {
                p: expect_prob(field("p")?, "`p`")?,
            }
        }
        "bleach-ecn" => {
            check_keys(t, "a `bleach-ecn` impairment", &keys(&["p"]))?;
            ImpairmentKind::BleachEcn {
                p: expect_prob(field("p")?, "`p`")?,
            }
        }
        "strip-feedback" => {
            check_keys(t, "a `strip-feedback` impairment", &keys(&["p"]))?;
            ImpairmentKind::StripFeedback {
                p: expect_prob(field("p")?, "`p`")?,
            }
        }
        "gilbert-elliott" => {
            check_keys(
                t,
                "a `gilbert-elliott` impairment",
                &keys(&["p_good_bad", "p_bad_good", "loss_good", "loss_bad"]),
            )?;
            ImpairmentKind::GilbertElliott {
                p_good_bad: expect_prob(field("p_good_bad")?, "`p_good_bad`")?,
                p_bad_good: expect_prob(field("p_bad_good")?, "`p_bad_good`")?,
                loss_good: expect_prob(field("loss_good")?, "`loss_good`")?,
                loss_bad: expect_prob(field("loss_bad")?, "`loss_bad`")?,
            }
        }
        "reorder" => {
            check_keys(t, "a `reorder` impairment", &keys(&["p", "hold_ms"]))?;
            ImpairmentKind::Reorder {
                p: expect_prob(field("p")?, "`p`")?,
                hold: SimDuration::from_millis(expect_positive(field("hold_ms")?, "`hold_ms`")?),
            }
        }
        "jitter" => {
            check_keys(t, "a `jitter` impairment", &keys(&["max_ms"]))?;
            ImpairmentKind::Jitter {
                max: SimDuration::from_millis(expect_positive(field("max_ms")?, "`max_ms`")?),
            }
        }
        "outage" => {
            check_keys(
                t,
                "an `outage` impairment",
                &keys(&["start_ms", "duration_ms", "period_ms"]),
            )?;
            ImpairmentKind::Outage {
                start: SimDuration::from_millis(expect_u64(field("start_ms")?, "`start_ms`")?),
                duration: SimDuration::from_millis(expect_positive(
                    field("duration_ms")?,
                    "`duration_ms`",
                )?),
                period: t
                    .get("period_ms")
                    .map(|p| expect_positive(p, "`period_ms`").map(SimDuration::from_millis))
                    .transpose()?,
            }
        }
        "decimate" => {
            check_keys(t, "a `decimate` impairment", &keys(&["keep_one_in"]))?;
            ImpairmentKind::Decimate {
                keep_one_in: expect_positive(field("keep_one_in")?, "`keep_one_in`")?,
            }
        }
        other => {
            return Err(err(
                kind_field.pos,
                format!(
                    "unknown impairment kind {other:?} (expected one of: drop, bleach-ecn, \
                     strip-feedback, gilbert-elliott, reorder, jitter, outage, decimate)"
                ),
            ))
        }
    };
    let spec = ImpairmentSpec {
        kind,
        direction,
        hop,
    };
    // The schema checks above should leave nothing for validate() to
    // reject, but route it anyway: the wire constructor panics on
    // invalid specs, and a file error must never panic the CLI.
    spec.validate().map_err(|m| err(v.pos, m))?;
    Ok(spec)
}

/// A scheme by its display name (`ABC`, `Cubic+Codel`, `ABC_50`, …),
/// case-insensitively.
fn scheme(v: &Spanned) -> Result<Scheme, TomlError> {
    let s = expect_str(v, "`scheme`")?;
    parse_scheme(s).ok_or_else(|| {
        err(
            v.pos,
            format!("unknown scheme {s:?} (try ABC, Cubic, Cubic+Codel, BBR, …)"),
        )
    })
}

/// Parse a scheme name as [`Scheme::name`] renders it (or any alias
/// [`Scheme::from_name`] knows). Kept as a re-exportable alias so the
/// file layer and `abcsim` cannot drift apart.
pub fn parse_scheme(s: &str) -> Option<Scheme> {
    Scheme::from_name(s)
}

/// A flow-schedule literal. Two forms:
///
/// * an integer — `0` means "no campaign-managed flows" (workload-only
///   scenarios), `n` means `n` backlogged flows all starting at 0;
/// * a table `{ count = n, stagger_ms = 500, stagger_departures = true }`
///   — `n` backlogged flows, flow `i` starting at `i × stagger_ms`;
///   with `stagger_departures`, flows also stop one by one (Fig. 3's
///   joins and leaves). Both stagger keys are optional.
fn flow_schedule(v: &Spanned) -> Result<FlowSchedule, TomlError> {
    if v.value.as_int().is_some() {
        let n = expect_u64(v, "`flows`")?;
        return Ok(if n == 0 {
            FlowSchedule::Explicit(Vec::new())
        } else {
            let n =
                u32::try_from(n).map_err(|_| err(v.pos, format!("`flows` is too large ({n})")))?;
            FlowSchedule::backlogged(n)
        });
    }
    let t = expect_table(v, "`flows`")
        .map_err(|_| err(v.pos, format!("`flows` must be an integer count or a table like {{ count = 8, stagger_ms = 500 }}, found {}", v.value.kind())))?;
    check_keys(t, "`flows`", &["count", "stagger_ms", "stagger_departures"])?;
    let count_field = t
        .get("count")
        .ok_or_else(|| err(v.pos, "`flows` table needs a `count`"))?;
    let n = expect_u32(count_field, "`count`")?;
    if n == 0 {
        return Err(err(
            count_field.pos,
            "`count` must be at least 1 (use `flows = 0` for no flows)",
        ));
    }
    let stagger = match t.get("stagger_ms") {
        Some(s) => SimDuration::from_millis(expect_u64(s, "`stagger_ms`")?),
        None => SimDuration::ZERO,
    };
    let stagger_departures = match t.get("stagger_departures") {
        Some(s) => s.value.as_bool().ok_or_else(|| {
            err(
                s.pos,
                format!(
                    "`stagger_departures` must be a boolean, found {}",
                    s.value.kind()
                ),
            )
        })?,
        None => false,
    };
    if stagger_departures && stagger.is_zero() {
        return Err(err(
            v.pos,
            "`stagger_departures` needs a non-zero `stagger_ms`",
        ));
    }
    Ok(FlowSchedule::Uniform {
        n,
        app: netsim::flow::TrafficSource::Backlogged,
        stagger,
        stagger_departures,
    })
}

/// A link literal:
/// `{ constant_mbps = 12.0 }`, `{ trace = "Verizon1" }`,
/// `{ square = { a_mbps = 12.0, b_mbps = 24.0, half_period_ms = 500 } }`,
/// or `{ steps = [[0.0, 6.0], [1.5, 18.0]] }` (seconds, Mbit/s).
fn link_spec(v: &Spanned) -> Result<LinkSpec, TomlError> {
    let t = expect_table(v, "a link literal")?;
    check_keys(
        t,
        "a link literal",
        &["constant_mbps", "trace", "square", "steps"],
    )?;
    if t.entries.len() != 1 {
        return Err(err(
            v.pos,
            "a link literal needs exactly one of: constant_mbps, trace, square, steps",
        ));
    }
    let (key, val) = &t.entries[0];
    Ok(match key.as_str() {
        "constant_mbps" => LinkSpec::Constant(expect_rate_mbps(val, "`constant_mbps`")?),
        "trace" => {
            let name = expect_str(val, "`trace`")?;
            let trace = cellular::builtin(name).ok_or_else(|| {
                err(
                    val.pos,
                    format!("unknown built-in trace {name:?} (try Verizon1)"),
                )
            })?;
            LinkSpec::Trace(trace)
        }
        "square" => {
            let sq = expect_table(val, "`square`")?;
            check_keys(sq, "`square`", &["a_mbps", "b_mbps", "half_period_ms"])?;
            let field = |k: &str| -> Result<&Spanned, TomlError> {
                sq.get(k)
                    .ok_or_else(|| err(val.pos, format!("`square` needs `{k}`")))
            };
            LinkSpec::Square {
                a: expect_rate_mbps(field("a_mbps")?, "`a_mbps`")?,
                b: expect_rate_mbps(field("b_mbps")?, "`b_mbps`")?,
                half_period: SimDuration::from_millis(expect_positive(
                    field("half_period_ms")?,
                    "`half_period_ms`",
                )?),
            }
        }
        "steps" => {
            let steps = expect_array(val, "`steps`")?
                .iter()
                .map(|p| {
                    let pair = expect_array(p, "a step")?;
                    if pair.len() != 2 {
                        return Err(err(p.pos, "a step is a [seconds, mbps] pair"));
                    }
                    let t_s = expect_f64(&pair[0], "step time")?;
                    let rate = expect_rate_mbps(&pair[1], "step rate")?;
                    if !t_s.is_finite() || t_s < 0.0 {
                        return Err(err(pair[0].pos, "step time must be non-negative"));
                    }
                    Ok((SimTime::from_secs_f64(t_s), rate))
                })
                .collect::<Result<Vec<_>, _>>()?;
            if steps.is_empty() {
                return Err(err(val.pos, "`steps` must not be empty"));
            }
            if steps.windows(2).any(|w| w[0].0 > w[1].0) {
                return Err(err(val.pos, "`steps` times must be non-decreasing"));
            }
            LinkSpec::Steps(steps)
        }
        _ => unreachable!("key list checked above"),
    })
}

/// A topology literal: `{ single = <link> }`,
/// `{ two_hop = { up = <link>, down = <link> } }`,
/// `{ mixed_path = { wireless = <link>, wired_mbps = 12.0 } }`,
/// `{ wifi = { mcs = <mcs>, ap_buffer_pkts = 100 } }`,
/// `{ parking_lot = [<hop>, …] }` (1–8 hops), or
/// `{ asymmetric = { down = <link>, up = <link>, down_delay_ms = 40,
/// up_delay_ms = 10 } }`.
fn topology(v: &Spanned) -> Result<Topology, TomlError> {
    let t = expect_table(v, "a topology literal")?;
    check_keys(
        t,
        "a topology literal",
        &[
            "single",
            "two_hop",
            "mixed_path",
            "wifi",
            "parking_lot",
            "asymmetric",
        ],
    )?;
    if t.entries.len() != 1 {
        return Err(err(
            v.pos,
            "a topology literal needs exactly one of: single, two_hop, mixed_path, \
             wifi, parking_lot, asymmetric",
        ));
    }
    let (key, val) = &t.entries[0];
    Ok(match key.as_str() {
        "single" => Topology::SingleBottleneck(link_spec(val)?),
        "two_hop" => {
            let h = expect_table(val, "`two_hop`")?;
            check_keys(h, "`two_hop`", &["up", "down"])?;
            let field = |k: &str| -> Result<&Spanned, TomlError> {
                h.get(k)
                    .ok_or_else(|| err(val.pos, format!("`two_hop` needs `{k}`")))
            };
            Topology::TwoHop {
                up: link_spec(field("up")?)?,
                down: link_spec(field("down")?)?,
            }
        }
        "mixed_path" => {
            let h = expect_table(val, "`mixed_path`")?;
            check_keys(h, "`mixed_path`", &["wireless", "wired_mbps"])?;
            let field = |k: &str| -> Result<&Spanned, TomlError> {
                h.get(k)
                    .ok_or_else(|| err(val.pos, format!("`mixed_path` needs `{k}`")))
            };
            Topology::MixedPath {
                wireless: link_spec(field("wireless")?)?,
                wired: expect_rate_mbps(field("wired_mbps")?, "`wired_mbps`")?,
            }
        }
        "wifi" => {
            let h = expect_table(val, "`wifi`")?;
            check_keys(h, "`wifi`", &["mcs", "ap_buffer_pkts"])?;
            let mcs = h
                .get("mcs")
                .ok_or_else(|| err(val.pos, "`wifi` needs `mcs`"))?;
            let buf = h
                .get("ap_buffer_pkts")
                .ok_or_else(|| err(val.pos, "`wifi` needs `ap_buffer_pkts`"))?;
            Topology::Wifi {
                mcs: mcs_spec(mcs)?,
                ap_buffer_pkts: expect_positive(buf, "`ap_buffer_pkts`")? as usize,
            }
        }
        "parking_lot" => {
            let hops = expect_array(val, "`parking_lot`")?
                .iter()
                .map(parking_hop)
                .collect::<Result<Vec<_>, _>>()?;
            if hops.is_empty() || hops.len() > 8 {
                return Err(err(
                    val.pos,
                    format!("`parking_lot` needs 1–8 hops, found {}", hops.len()),
                ));
            }
            Topology::ParkingLot { hops }
        }
        "asymmetric" => {
            let h = expect_table(val, "`asymmetric`")?;
            check_keys(
                h,
                "`asymmetric`",
                &["down", "up", "down_delay_ms", "up_delay_ms"],
            )?;
            let field = |k: &str| -> Result<&Spanned, TomlError> {
                h.get(k)
                    .ok_or_else(|| err(val.pos, format!("`asymmetric` needs `{k}`")))
            };
            Topology::Asymmetric {
                down: link_spec(field("down")?)?,
                up: link_spec(field("up")?)?,
                down_delay: SimDuration::from_millis(expect_positive(
                    field("down_delay_ms")?,
                    "`down_delay_ms`",
                )?),
                up_delay: SimDuration::from_millis(expect_positive(
                    field("up_delay_ms")?,
                    "`up_delay_ms`",
                )?),
            }
        }
        _ => unreachable!("key list checked above"),
    })
}

/// An MCS-process literal: `{ fixed = 5 }`,
/// `{ alternating = { a = 3, b = 7, period_ms = 500 } }`, or
/// `{ brownian = { min = 1, max = 7, period_ms = 100, seed = 7 } }`.
fn mcs_spec(v: &Spanned) -> Result<McsSpec, TomlError> {
    let t = expect_table(v, "an mcs literal")?;
    check_keys(t, "an mcs literal", &["fixed", "alternating", "brownian"])?;
    if t.entries.len() != 1 {
        return Err(err(
            v.pos,
            "an mcs literal needs exactly one of: fixed, alternating, brownian",
        ));
    }
    let (key, val) = &t.entries[0];
    let mcs_index = |s: &Spanned, what: &str| -> Result<u8, TomlError> {
        match s.value.as_int() {
            Some(i) if (0..=7).contains(&i) => Ok(i as u8),
            _ => Err(err(s.pos, format!("{what} must be an MCS index in 0..=7"))),
        }
    };
    Ok(match key.as_str() {
        "fixed" => McsSpec::Fixed(mcs_index(val, "`fixed`")?),
        "alternating" => {
            let h = expect_table(val, "`alternating`")?;
            check_keys(h, "`alternating`", &["a", "b", "period_ms"])?;
            let field = |k: &str| -> Result<&Spanned, TomlError> {
                h.get(k)
                    .ok_or_else(|| err(val.pos, format!("`alternating` needs `{k}`")))
            };
            McsSpec::Alternating(
                mcs_index(field("a")?, "`a`")?,
                mcs_index(field("b")?, "`b`")?,
                SimDuration::from_millis(expect_positive(field("period_ms")?, "`period_ms`")?),
            )
        }
        "brownian" => {
            let h = expect_table(val, "`brownian`")?;
            check_keys(h, "`brownian`", &["min", "max", "period_ms", "seed"])?;
            let field = |k: &str| -> Result<&Spanned, TomlError> {
                h.get(k)
                    .ok_or_else(|| err(val.pos, format!("`brownian` needs `{k}`")))
            };
            let (lo, hi) = (
                mcs_index(field("min")?, "`min`")?,
                mcs_index(field("max")?, "`max`")?,
            );
            if lo > hi {
                return Err(err(val.pos, "`brownian` needs `min` <= `max`"));
            }
            McsSpec::Brownian(
                lo,
                hi,
                SimDuration::from_millis(expect_positive(field("period_ms")?, "`period_ms`")?),
                expect_u64(field("seed")?, "`seed`")?,
            )
        }
        _ => unreachable!("key list checked above"),
    })
}

/// One parking-lot hop: `{ link = <link literal> [, qdisc = <hop qdisc>] }`
/// (the qdisc defaults to `"scheme-default"`).
fn parking_hop(v: &Spanned) -> Result<ParkingHop, TomlError> {
    let t = expect_table(v, "a parking-lot hop")?;
    check_keys(t, "a parking-lot hop", &["link", "qdisc"])?;
    let link = t
        .get("link")
        .ok_or_else(|| err(v.pos, "a parking-lot hop needs `link`"))?;
    let mut hop = ParkingHop::new(link_spec(link)?);
    if let Some(q) = t.get("qdisc") {
        hop = hop.qdisc(hop_qdisc(q)?);
    }
    Ok(hop)
}

/// A per-hop qdisc capability: `"scheme-default"`, `"droptail"`,
/// `"codel"`, `"abc"` (default router config), or `{ abc = { … } }` with
/// explicit [`AbcRouterConfig`] overrides.
fn hop_qdisc(v: &Spanned) -> Result<HopQdisc, TomlError> {
    if let Some(s) = v.value.as_str() {
        return match s {
            "scheme-default" => Ok(HopQdisc::SchemeDefault),
            "droptail" => Ok(HopQdisc::DropTail),
            "codel" => Ok(HopQdisc::Codel),
            "abc" => Ok(HopQdisc::Abc(AbcRouterConfig::default())),
            other => Err(err(
                v.pos,
                format!(
                    "unknown hop qdisc {other:?} (expected \"scheme-default\", \
                     \"droptail\", \"codel\", \"abc\", or an {{ abc = {{ … }} }} table)"
                ),
            )),
        };
    }
    let t = expect_table(v, "a hop qdisc")?;
    check_keys(t, "a hop qdisc", &["abc"])?;
    let cfg = t
        .get("abc")
        .ok_or_else(|| err(v.pos, "a hop-qdisc table needs `abc`"))?;
    Ok(HopQdisc::Abc(abc_router_config(cfg)?))
}

/// An explicit ABC router config: `{ eta = 0.95, delta_ms = 133,
/// dt_ms = 20, token_limit = 10.0, rate_window_ms = 40,
/// buffer_pkts = 250, seed = 2748 }` — every key optional, defaults
/// match [`AbcRouterConfig::default`]. (The enum-valued knobs — feedback
/// basis, marking mode, ECN dialect — stay Rust-side.)
fn abc_router_config(v: &Spanned) -> Result<AbcRouterConfig, TomlError> {
    let t = expect_table(v, "an ABC router config")?;
    check_keys(
        t,
        "an ABC router config",
        &[
            "eta",
            "delta_ms",
            "dt_ms",
            "token_limit",
            "rate_window_ms",
            "buffer_pkts",
            "seed",
        ],
    )?;
    let mut cfg = AbcRouterConfig::default();
    if let Some(s) = t.get("eta") {
        cfg.eta = expect_f64(s, "`eta`")?;
        if !(cfg.eta.is_finite() && cfg.eta > 0.0 && cfg.eta <= 1.0) {
            return Err(err(s.pos, "`eta` must be in (0, 1]"));
        }
    }
    if let Some(s) = t.get("delta_ms") {
        cfg.delta = SimDuration::from_millis(expect_positive(s, "`delta_ms`")?);
    }
    if let Some(s) = t.get("dt_ms") {
        cfg.dt = SimDuration::from_millis(expect_u64(s, "`dt_ms`")?);
    }
    if let Some(s) = t.get("token_limit") {
        cfg.token_limit = expect_f64(s, "`token_limit`")?;
        if !(cfg.token_limit.is_finite() && cfg.token_limit >= 1.0) {
            return Err(err(s.pos, "`token_limit` must be at least 1"));
        }
    }
    if let Some(s) = t.get("rate_window_ms") {
        cfg.rate_window = SimDuration::from_millis(expect_positive(s, "`rate_window_ms`")?);
    }
    if let Some(s) = t.get("buffer_pkts") {
        cfg.buffer_pkts = expect_positive(s, "`buffer_pkts`")? as usize;
    }
    if let Some(s) = t.get("seed") {
        cfg.seed = expect_u64(s, "`seed`")?;
    }
    Ok(cfg)
}

/// A qdisc literal: `"scheme-default"`, `"droptail"`, or
/// `{ abc = { … } }` with explicit [`AbcRouterConfig`] overrides. (The
/// dual-queue coexistence router stays Rust-side.)
fn qdisc(v: &Spanned) -> Result<QdiscSpec, TomlError> {
    if let Some(s) = v.value.as_str() {
        return match s {
            "scheme-default" => Ok(QdiscSpec::SchemeDefault),
            "droptail" => Ok(QdiscSpec::DropTail),
            other => Err(err(
                v.pos,
                format!(
                    "unknown qdisc {other:?} (expected \"scheme-default\", \"droptail\", \
                     or an {{ abc = {{ … }} }} table)"
                ),
            )),
        };
    }
    let t = expect_table(v, "a qdisc literal")?;
    check_keys(t, "a qdisc literal", &["abc"])?;
    let cfg = t
        .get("abc")
        .ok_or_else(|| err(v.pos, "a qdisc table needs `abc`"))?;
    Ok(QdiscSpec::AbcWith(abc_router_config(cfg)?))
}

/// A workload entry:
/// `{ web = { load = 0.5, link_mbps = 12.0 } }`,
/// `{ rtc = { kbps = 300 } }`, `{ video = { hd_stream_s = 60 } }`, …
/// with optional `scheme`, `start_s`, `entry_hop`, and `label` keys.
fn workload_entry(v: &Spanned) -> Result<WorkloadEntry, TomlError> {
    let t = expect_table(v, "a workload entry")?;
    check_keys(
        t,
        "a workload entry",
        &[
            "web",
            "rtc",
            "video",
            "scheme",
            "start_s",
            "entry_hop",
            "label",
        ],
    )?;
    let kinds: Vec<&(String, Spanned)> = t
        .entries
        .iter()
        .filter(|(k, _)| matches!(k.as_str(), "web" | "rtc" | "video"))
        .collect();
    let [(kind, val)] = kinds.as_slice() else {
        return Err(err(
            v.pos,
            "a workload entry needs exactly one of: web, rtc, video",
        ));
    };
    let spec = match kind.as_str() {
        "web" => WorkloadSpec::Web(web_workload(val)?),
        "rtc" => WorkloadSpec::Rtc(rtc_workload(val)?),
        "video" => WorkloadSpec::AbrVideo(abr_workload(val)?),
        _ => unreachable!("filtered above"),
    };
    let mut entry = WorkloadEntry::new(spec);
    if let Some(s) = t.get("scheme") {
        entry = entry.scheme(scheme(s)?);
    }
    if let Some(s) = t.get("start_s") {
        entry = entry.start_at(SimTime::ZERO + SimDuration::from_secs(expect_u64(s, "`start_s`")?));
    }
    if let Some(h) = t.get("entry_hop") {
        entry = entry.entry_hop(expect_u64(h, "`entry_hop`")? as usize);
    }
    if let Some(l) = t.get("label") {
        entry = entry.label(expect_str(l, "`label`")?);
    }
    Ok(entry)
}

/// `{ load = 0.5, link_mbps = 12.0 }` (offered-load fraction with the
/// built-in object sizes) or `{ per_sec = 10.0 [, object_bytes = 50000]
/// [, on_s = 2, off_s = 8] }` (explicit arrivals; fixed sizes when
/// `object_bytes` is given, the built-in web CDF otherwise).
fn web_workload(v: &Spanned) -> Result<WebWorkload, TomlError> {
    let t = expect_table(v, "`web`")?;
    check_keys(
        t,
        "`web`",
        &[
            "load",
            "link_mbps",
            "per_sec",
            "object_bytes",
            "on_s",
            "off_s",
        ],
    )?;
    match (t.get("load"), t.get("per_sec")) {
        (Some(load), None) => {
            let link = t
                .get("link_mbps")
                .ok_or_else(|| err(v.pos, "`web.load` needs `link_mbps` as its reference rate"))?;
            for bad in ["object_bytes", "on_s", "off_s"] {
                if let Some(x) = t.get(bad) {
                    return Err(err(x.pos, format!("`{bad}` only applies with `per_sec`")));
                }
            }
            let load_frac = expect_f64(load, "`load`")?;
            if !load_frac.is_finite() || load_frac < 0.0 {
                return Err(err(
                    load.pos,
                    format!("`load` must be a non-negative fraction, found {load_frac}"),
                ));
            }
            Ok(WebWorkload::poisson_load(
                load_frac,
                expect_rate_mbps(link, "`link_mbps`")?,
            ))
        }
        (None, Some(per_sec_field)) => {
            let per_sec = expect_f64(per_sec_field, "`per_sec`")?;
            // NaN would never terminate the arrival loop; negative is a
            // silent no-traffic workload — both are mistakes.
            if !per_sec.is_finite() || per_sec < 0.0 {
                return Err(err(
                    per_sec_field.pos,
                    format!("`per_sec` must be a non-negative rate, found {per_sec}"),
                ));
            }
            let arrivals = match (t.get("on_s"), t.get("off_s")) {
                (Some(on), Some(off)) => ArrivalProcess::OnOff {
                    per_sec,
                    // a zero on-phase would make every cycle silent (and a
                    // zero on+off period divides by zero downstream)
                    on: SimDuration::from_secs(expect_positive(on, "`on_s`")?),
                    off: SimDuration::from_secs(expect_u64(off, "`off_s`")?),
                },
                (None, None) => ArrivalProcess::Poisson { per_sec },
                _ => return Err(err(v.pos, "`on_s` and `off_s` come together")),
            };
            let sizes = match t.get("object_bytes") {
                Some(b) => SizeDist::Fixed(expect_u64(b, "`object_bytes`")?),
                None => SizeDist::web_objects(),
            };
            Ok(WebWorkload { arrivals, sizes })
        }
        _ => Err(err(v.pos, "`web` needs exactly one of `load` or `per_sec`")),
    }
}

/// `{ kbps = 300 }` (a 30 fps call with a 100 ms budget) or
/// `{ frame_bytes = 1200, interval_ms = 33, deadline_ms = 100 }`.
fn rtc_workload(v: &Spanned) -> Result<RtcWorkload, TomlError> {
    let t = expect_table(v, "`rtc`")?;
    check_keys(
        t,
        "`rtc`",
        &["kbps", "frame_bytes", "interval_ms", "deadline_ms"],
    )?;
    if let Some(kbps) = t.get("kbps") {
        for bad in ["frame_bytes", "interval_ms", "deadline_ms"] {
            if let Some(x) = t.get(bad) {
                return Err(err(x.pos, format!("`{bad}` conflicts with `kbps`")));
            }
        }
        return Ok(RtcWorkload::video_call(expect_u32(kbps, "`kbps`")?));
    }
    let field = |k: &str| -> Result<&Spanned, TomlError> {
        t.get(k)
            .ok_or_else(|| err(v.pos, format!("`rtc` needs `{k}` (or just `kbps`)")))
    };
    let frame_field = field("frame_bytes")?;
    let frame_bytes = expect_u32(frame_field, "`frame_bytes`")?;
    if !(1..=MTU_BYTES).contains(&frame_bytes) {
        return Err(err(
            frame_field.pos,
            format!("`frame_bytes` must be in 1..={MTU_BYTES} (one frame per packet), found {frame_bytes}"),
        ));
    }
    Ok(RtcWorkload {
        frame_bytes,
        interval: SimDuration::from_millis(expect_positive(
            field("interval_ms")?,
            "`interval_ms`",
        )?),
        deadline: SimDuration::from_millis(expect_u64(field("deadline_ms")?, "`deadline_ms`")?),
    })
}

/// `{ hd_stream_s = 60 }` (the built-in HD ladder) or an explicit
/// `{ ladder_kbps = […], chunk_s = 2, startup_chunks = 1,
/// max_buffer_s = 12, stream_s = 60, safety = 0.8 }`.
fn abr_workload(v: &Spanned) -> Result<AbrWorkload, TomlError> {
    let t = expect_table(v, "`video`")?;
    check_keys(
        t,
        "`video`",
        &[
            "hd_stream_s",
            "ladder_kbps",
            "chunk_s",
            "startup_chunks",
            "max_buffer_s",
            "stream_s",
            "safety",
        ],
    )?;
    if let Some(hd) = t.get("hd_stream_s") {
        if t.entries.len() != 1 {
            return Err(err(
                v.pos,
                "`hd_stream_s` stands alone (it fixes the whole ladder)",
            ));
        }
        return Ok(AbrWorkload::hd(SimDuration::from_secs(expect_u64(
            hd,
            "`hd_stream_s`",
        )?)));
    }
    let field = |k: &str| -> Result<&Spanned, TomlError> {
        t.get(k).ok_or_else(|| {
            err(
                v.pos,
                format!("`video` needs `{k}` (or just `hd_stream_s`)"),
            )
        })
    };
    let ladder_field = field("ladder_kbps")?;
    let ladder = expect_array(ladder_field, "`ladder_kbps`")?
        .iter()
        .map(|x| expect_u32(x, "a ladder rung"))
        .collect::<Result<Vec<_>, _>>()?;
    if ladder.is_empty() {
        return Err(err(ladder_field.pos, "`ladder_kbps` must not be empty"));
    }
    if ladder.windows(2).any(|w| w[0] > w[1]) {
        return Err(err(ladder_field.pos, "`ladder_kbps` must ascend"));
    }
    Ok(AbrWorkload {
        ladder_kbps: ladder,
        chunk: SimDuration::from_secs(expect_positive(field("chunk_s")?, "`chunk_s`")?),
        startup_chunks: expect_u32(field("startup_chunks")?, "`startup_chunks`")?,
        max_buffer: SimDuration::from_secs(expect_u64(field("max_buffer_s")?, "`max_buffer_s`")?),
        stream: SimDuration::from_secs(expect_u64(field("stream_s")?, "`stream_s`")?),
        safety: expect_f64(field("safety")?, "`safety`")?,
    })
}

/// One `[[axis]]` table: a `name` plus exactly one value list — a typed
/// shorthand (`schemes`, `traces`, `rtt_ms`, `buffer_pkts`, `seeds`,
/// `durations_s`, `flows`) or an explicit `[[axis.values]]` list.
fn compile_axis(t: &Table, pos: Pos) -> Result<Axis, TomlError> {
    check_keys(
        t,
        "[[axis]]",
        &[
            "name",
            "schemes",
            "traces",
            "rtt_ms",
            "buffer_pkts",
            "seeds",
            "durations_s",
            "flows",
            "values",
        ],
    )?;
    let name = expect_str(
        t.get("name")
            .ok_or_else(|| err(pos, "[[axis]] needs a `name`"))?,
        "axis name",
    )?
    .to_string();
    let lists: Vec<&(String, Spanned)> = t.entries.iter().filter(|(k, _)| k != "name").collect();
    let [(kind, val)] = lists.as_slice() else {
        return Err(err(
            pos,
            format!(
                "axis `{name}` needs exactly one value list \
                 (schemes, traces, rtt_ms, buffer_pkts, seeds, durations_s, flows, or values)"
            ),
        ));
    };
    let values: Vec<(String, AxisValue)> = match kind.as_str() {
        "schemes" => expect_array(val, "`schemes`")?
            .iter()
            .map(|s| scheme(s).map(|sch| (sch.name(), AxisValue::Scheme(sch))))
            .collect::<Result<_, _>>()?,
        "traces" => expect_array(val, "`traces`")?
            .iter()
            .map(|s| {
                let n = expect_str(s, "a trace name")?;
                let trace = cellular::builtin(n).ok_or_else(|| {
                    err(
                        s.pos,
                        format!("unknown built-in trace {n:?} (try Verizon1)"),
                    )
                })?;
                Ok((trace.name.clone(), AxisValue::Link(LinkSpec::Trace(trace))))
            })
            .collect::<Result<_, _>>()?,
        "rtt_ms" => int_axis(val, "`rtt_ms`", AxisValue::RttMs)?,
        "buffer_pkts" => int_axis(val, "`buffer_pkts`", |p| AxisValue::BufferPkts(p as usize))?,
        "seeds" => int_axis(val, "`seeds`", AxisValue::Seed)?,
        "durations_s" => int_axis(val, "`durations_s`", AxisValue::DurationSecs)?,
        // Client-count sweeps (`flows = [10, 100, 1000]`); each element
        // is any flow-schedule literal, labelled by its count.
        "flows" => expect_array(val, "`flows`")?
            .iter()
            .map(|entry| {
                let sched = flow_schedule(entry)?;
                let label = match &sched {
                    FlowSchedule::Uniform { n, .. } => n.to_string(),
                    FlowSchedule::Explicit(_) => "0".to_string(),
                };
                Ok((label, AxisValue::Flows(sched)))
            })
            .collect::<Result<_, _>>()?,
        "values" => expect_array(val, "`values`")?
            .iter()
            .map(|entry| {
                let et = expect_table(entry, "[[axis.values]]")?;
                let label = expect_str(
                    et.get("label")
                        .ok_or_else(|| err(entry.pos, "[[axis.values]] needs a `label`"))?,
                    "value label",
                )?
                .to_string();
                let settings: Vec<&(String, Spanned)> =
                    et.entries.iter().filter(|(k, _)| k != "label").collect();
                let [(key, v)] = settings.as_slice() else {
                    return Err(err(
                        entry.pos,
                        format!(
                            "value {label:?} needs exactly one setting \
                             (one of: {})",
                            SETTING_KEYS.join(", ")
                        ),
                    ));
                };
                if !SETTING_KEYS.contains(&key.as_str()) {
                    return Err(err(
                        v.pos,
                        format!(
                            "unknown setting `{key}` (expected one of: {})",
                            SETTING_KEYS.join(", ")
                        ),
                    ));
                }
                Ok((label, setting(key, v)?))
            })
            .collect::<Result<_, _>>()?,
        _ => unreachable!("key list checked above"),
    };
    if values.is_empty() {
        return Err(err(val.pos, format!("axis `{name}` has no values")));
    }
    // Duplicate labels would expand to points with identical coordinate
    // keys, which diff/aggregate silently conflate — reject them here.
    for (i, (label, _)) in values.iter().enumerate() {
        if values[..i].iter().any(|(l, _)| l == label) {
            return Err(err(
                val.pos,
                format!("axis `{name}` has duplicate value label {label:?}"),
            ));
        }
    }
    Ok(Axis::new(name, values))
}

/// An integer-valued shorthand axis: labels are the numbers themselves.
fn int_axis(
    val: &Spanned,
    what: &str,
    make: impl Fn(u64) -> AxisValue,
) -> Result<Vec<(String, AxisValue)>, TomlError> {
    expect_array(val, what)?
        .iter()
        .map(|x| expect_u64(x, what).map(|n| (n.to_string(), make(n))))
        .collect()
}

/// One `[[filter]]` table. Two forms:
///
/// * `deny = { axis = label, … }` — reject points matching **all**
///   conditions;
/// * `when = { … }` + `require = { … }` — points matching `when` must
///   also match `require` (`require` alone applies unconditionally).
///
/// A condition value is a label (string or integer) or an array of
/// labels (any-of).
fn compile_filter(t: &Table, pos: Pos, axes: &[String]) -> Result<Filter, TomlError> {
    check_keys(t, "[[filter]]", &["name", "deny", "when", "require"])?;
    let name = expect_str(
        t.get("name")
            .ok_or_else(|| err(pos, "[[filter]] needs a `name`"))?,
        "filter name",
    )?
    .to_string();
    let deny = t.get("deny").map(|d| conditions(d, axes)).transpose()?;
    let when = t.get("when").map(|d| conditions(d, axes)).transpose()?;
    let require = t.get("require").map(|d| conditions(d, axes)).transpose()?;
    match (deny, when, require) {
        (Some(_), Some(_), _) | (Some(_), _, Some(_)) => Err(err(
            pos,
            "a filter is either `deny` or `when`/`require`, not both",
        )),
        (Some(deny), None, None) => Ok(Filter::new(name, move |co: &Coords| !matches(&deny, co))),
        (None, when, Some(require)) => {
            let when = when.unwrap_or_default();
            Ok(Filter::new(name, move |co: &Coords| {
                !matches(&when, co) || matches(&require, co)
            }))
        }
        (None, Some(_), None) => Err(err(pos, "`when` needs a `require` to enforce")),
        (None, None, None) => Err(err(pos, "a filter needs `deny` or `when`/`require`")),
    }
}

/// `(axis, any-of labels)` pairs compiled from a condition table.
type Conditions = Vec<(String, Vec<String>)>;

fn conditions(v: &Spanned, axes: &[String]) -> Result<Conditions, TomlError> {
    let t = expect_table(v, "a filter condition")?;
    t.entries
        .iter()
        .map(|(axis, val)| {
            if !axes.iter().any(|a| a == axis) {
                return Err(err(
                    val.pos,
                    format!(
                        "filter references unknown axis `{axis}` (declared: {})",
                        axes.join(", ")
                    ),
                ));
            }
            let labels = match &val.value {
                Value::Array(items) => items
                    .iter()
                    .map(|i| label(i, axis))
                    .collect::<Result<Vec<_>, _>>()?,
                _ => vec![label(val, axis)?],
            };
            Ok((axis.clone(), labels))
        })
        .collect()
}

/// A coordinate label: a string, or an integer rendered the way integer
/// axes label themselves.
fn label(v: &Spanned, axis: &str) -> Result<String, TomlError> {
    match &v.value {
        Value::Str(s) => Ok(s.clone()),
        Value::Int(i) => Ok(i.to_string()),
        other => Err(err(
            v.pos,
            format!(
                "condition on `{axis}` must be a string or integer label, found {}",
                other.kind()
            ),
        )),
    }
}

/// Does a point match all conditions? Points that lack a referenced axis
/// never match.
fn matches(conds: &Conditions, co: &Coords) -> bool {
    conds
        .iter()
        .all(|(axis, labels)| co.get(axis).is_some_and(|l| labels.iter().any(|x| x == l)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_tiny(text: &str) -> Result<Campaign, TomlError> {
        from_str(text, Scale::Tiny)
    }

    const MINIMAL: &str = "[campaign]\nname = \"t\"\n";

    #[test]
    fn minimal_file_is_one_point_of_defaults() {
        let c = compile_tiny(MINIMAL).unwrap();
        assert_eq!(c.name, "t");
        let pts = c.expand();
        assert_eq!(pts.len(), 1);
        // defaults are exactly ScenarioSpec::single(ABC, 0 Mbit/s)
        let d = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::ZERO));
        assert_eq!(pts[0].spec.seed, d.seed);
        assert_eq!(pts[0].spec.rtt, d.rtt);
        assert_eq!(pts[0].spec.buffer_pkts, d.buffer_pkts);
    }

    #[test]
    fn base_and_axes_compile() {
        let c = compile_tiny(
            "[campaign]\nname = \"s\"\n[base]\nscheme = \"Cubic\"\nlink = { constant_mbps = 12.0 }\nduration_s = 2\nwarmup_s = 1\n[[axis]]\nname = \"scheme\"\nschemes = [\"ABC\", \"Cubic+Codel\"]\n[[axis]]\nname = \"seed\"\nseeds = [1, 2, 3]\n",
        )
        .unwrap();
        assert_eq!(c.axes.len(), 2);
        let pts = c.expand();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0].coords.key(), "scheme=ABC,seed=1");
        assert_eq!(pts[5].spec.scheme, Scheme::CubicCodel);
        assert_eq!(pts[0].spec.duration, SimDuration::from_secs(2));
    }

    #[test]
    fn scale_overrides_apply_to_the_selected_scale_only() {
        let text = "[campaign]\nname = \"s\"\n[base]\nduration_s = 120\n[scale.tiny]\nduration_s = 2\n[scale.fast]\nduration_s = 20\n";
        let tiny = from_str(text, Scale::Tiny).unwrap();
        let fast = from_str(text, Scale::Fast).unwrap();
        let full = from_str(text, Scale::Full).unwrap();
        assert_eq!(tiny.base.duration, SimDuration::from_secs(2));
        assert_eq!(fast.base.duration, SimDuration::from_secs(20));
        assert_eq!(full.base.duration, SimDuration::from_secs(120));
    }

    #[test]
    fn filters_deny_and_require() {
        let c = compile_tiny(
            "[campaign]\nname = \"f\"\n[[axis]]\nname = \"scheme\"\nschemes = [\"ABC\", \"Cubic\"]\n[[axis]]\nname = \"rtt_ms\"\nrtt_ms = [20, 100]\n[[filter]]\nname = \"no-cubic-100\"\ndeny = { scheme = \"Cubic\", rtt_ms = 100 }\n",
        )
        .unwrap();
        let keys: Vec<String> = c.expand().iter().map(|p| p.coords.key()).collect();
        assert_eq!(keys.len(), 3);
        assert!(!keys.contains(&"scheme=Cubic,rtt_ms=100".to_string()));

        let c = compile_tiny(
            "[campaign]\nname = \"f\"\n[[axis]]\nname = \"scheme\"\nschemes = [\"ABC\", \"Cubic\"]\n[[axis]]\nname = \"rtt_ms\"\nrtt_ms = [20, 100]\n[[filter]]\nname = \"abc-short-only\"\nwhen = { scheme = \"ABC\" }\nrequire = { rtt_ms = [20] }\n",
        )
        .unwrap();
        let keys: Vec<String> = c.expand().iter().map(|p| p.coords.key()).collect();
        assert_eq!(keys.len(), 3);
        assert!(!keys.contains(&"scheme=ABC,rtt_ms=100".to_string()));
    }

    #[test]
    fn workload_axis_compiles() {
        let c = compile_tiny(
            "[campaign]\nname = \"w\"\n[base]\nflows = 0\n[[axis]]\nname = \"load\"\n[[axis.values]]\nlabel = \"0.2\"\nworkloads = [{ web = { load = 0.2, link_mbps = 12.0 } }]\n",
        )
        .unwrap();
        let pts = c.expand();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].spec.workloads.len(), 1);
        assert!(matches!(
            pts[0].spec.flows,
            FlowSchedule::Explicit(ref v) if v.is_empty()
        ));
    }

    #[test]
    fn telemetry_table_compiles_and_reaches_every_point() {
        let c = compile_tiny(
            "[campaign]\nname = \"t\"\n[[axis]]\nname = \"seed\"\nseeds = [1, 2]\n[telemetry]\nsignals = [\"cwnd\", \"qdelay_ms\"]\nsample_every_ms = 50\n",
        )
        .unwrap();
        let cfg = c.telemetry.clone().expect("[telemetry] sets the config");
        assert_eq!(
            cfg.signals,
            vec![
                netsim::telemetry::Signal::Cwnd,
                netsim::telemetry::Signal::QdelayMs
            ]
        );
        assert_eq!(cfg.sample_every, SimDuration::from_millis(50));
        for p in c.expand() {
            assert_eq!(p.spec.telemetry.as_ref(), Some(&cfg));
        }
    }

    #[test]
    fn empty_telemetry_table_means_the_default_config() {
        let c = compile_tiny("[campaign]\nname = \"t\"\n[telemetry]\n").unwrap();
        assert_eq!(
            c.telemetry,
            Some(netsim::telemetry::TelemetryConfig::default())
        );
        // and no [telemetry] table at all means none
        assert_eq!(compile_tiny(MINIMAL).unwrap().telemetry, None);
    }

    #[test]
    fn flows_table_form_compiles_to_staggered_uniform() {
        let c = compile_tiny(
            "[campaign]\nname = \"f\"\n[base]\nflows = { count = 4, stagger_ms = 500, stagger_departures = true }\n",
        )
        .unwrap();
        match &c.base.flows {
            FlowSchedule::Uniform {
                n,
                stagger,
                stagger_departures,
                ..
            } => {
                assert_eq!(*n, 4);
                assert_eq!(*stagger, SimDuration::from_millis(500));
                assert!(*stagger_departures);
            }
            other => panic!("expected Uniform, got {other:?}"),
        }
    }

    #[test]
    fn flows_axis_shorthand_labels_by_count() {
        let c = compile_tiny(
            "[campaign]\nname = \"f\"\n[[axis]]\nname = \"clients\"\nflows = [10, 100, { count = 4, stagger_ms = 250 }]\n",
        )
        .unwrap();
        let keys: Vec<String> = c.expand().iter().map(|p| p.coords.key()).collect();
        assert_eq!(keys, ["clients=10", "clients=100", "clients=4"]);
    }

    #[test]
    fn timer_slot_shift_setting_applies() {
        let c = compile_tiny("[campaign]\nname = \"t\"\n[base]\ntimer_slot_shift = 20\n").unwrap();
        assert_eq!(c.base.timer_slot_shift, Some(20));
    }

    #[test]
    fn impairments_compile_inline_and_as_array_of_tables() {
        // inline array form
        let c = compile_tiny(
            "[campaign]\nname = \"i\"\n[base]\nimpairments = [{ kind = \"drop\", p = 0.01 }, { kind = \"decimate\", keep_one_in = 4, direction = \"ack\" }]\n",
        )
        .unwrap();
        assert_eq!(c.base.impairments.len(), 2);
        assert!(matches!(
            c.base.impairments[0].kind,
            ImpairmentKind::Drop { p } if p == 0.01
        ));
        assert_eq!(c.base.impairments[1].direction, Direction::Ack);

        // [[base.impairments]] array-of-tables form
        let c = compile_tiny(
            "[campaign]\nname = \"i\"\n[[base.impairments]]\nkind = \"gilbert-elliott\"\np_good_bad = 0.01\np_bad_good = 0.3\nloss_good = 0.0\nloss_bad = 0.5\n[[base.impairments]]\nkind = \"outage\"\nstart_ms = 3000\nduration_ms = 200\nperiod_ms = 5000\nhop = 0\n",
        )
        .unwrap();
        assert_eq!(c.base.impairments.len(), 2);
        assert!(matches!(
            c.base.impairments[0].kind,
            ImpairmentKind::GilbertElliott { .. }
        ));
        assert!(matches!(
            c.base.impairments[1].kind,
            ImpairmentKind::Outage {
                period: Some(p), ..
            } if p == SimDuration::from_millis(5000)
        ));
    }

    #[test]
    fn impairment_axis_compiles_with_an_unimpaired_control() {
        let c = compile_tiny(
            "[campaign]\nname = \"i\"\n[[axis]]\nname = \"impairment\"\n[[axis.values]]\nlabel = \"none\"\nimpairments = []\n[[axis.values]]\nlabel = \"burst\"\nimpairments = [{ kind = \"reorder\", p = 0.05, hold_ms = 10 }]\n",
        )
        .unwrap();
        let pts = c.expand();
        assert_eq!(pts.len(), 2);
        assert!(pts[0].spec.impairments.is_empty());
        assert_eq!(pts[1].spec.impairments.len(), 1);
        assert_eq!(pts[1].coords.key(), "impairment=burst");
    }

    #[test]
    fn inject_fault_setting_compiles() {
        let c =
            compile_tiny("[campaign]\nname = \"f\"\n[base]\ninject_fault = \"panic\"\n").unwrap();
        assert_eq!(c.base.fault, Some(InjectedFault::Panic));
        let c =
            compile_tiny("[campaign]\nname = \"f\"\n[base]\ninject_fault = \"none\"\n").unwrap();
        assert_eq!(c.base.fault, None);
    }

    // ---- negative cases: every diagnostic names a line and column ----

    fn error_at(text: &str) -> (usize, usize, String) {
        let e = compile_tiny(text).unwrap_err();
        (e.pos.line, e.pos.col, e.message)
    }

    #[test]
    fn unknown_impairment_kind_is_rejected_with_position() {
        let (line, _, msg) =
            error_at("[campaign]\nname = \"x\"\n[[base.impairments]]\nkind = \"packet-eater\"\n");
        assert_eq!(line, 4);
        assert!(msg.contains("unknown impairment kind"), "{msg}");
        assert!(msg.contains("gilbert-elliott"), "{msg}");
    }

    #[test]
    fn impairment_probability_out_of_range_is_rejected() {
        let (line, _, msg) =
            error_at("[campaign]\nname = \"x\"\n[[base.impairments]]\nkind = \"drop\"\np = 1.5\n");
        assert_eq!(line, 5);
        assert!(msg.contains("probability"), "{msg}");
    }

    #[test]
    fn impairment_bad_direction_is_rejected() {
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[[base.impairments]]\nkind = \"drop\"\np = 0.1\ndirection = \"sideways\"\n",
        );
        assert!(msg.contains("direction"), "{msg}");
    }

    #[test]
    fn impairment_zero_duration_is_rejected() {
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[[base.impairments]]\nkind = \"outage\"\nstart_ms = 100\nduration_ms = 0\n",
        );
        assert!(msg.contains("duration_ms"), "{msg}");
    }

    #[test]
    fn impairment_missing_kind_param_is_rejected() {
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[[base.impairments]]\nkind = \"reorder\"\np = 0.1\n",
        );
        assert!(msg.contains("hold_ms"), "{msg}");
    }

    #[test]
    fn decimate_keep_one_in_zero_is_rejected() {
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[[base.impairments]]\nkind = \"decimate\"\nkeep_one_in = 0\n",
        );
        assert!(msg.contains("keep_one_in"), "{msg}");
    }

    #[test]
    fn unknown_inject_fault_is_rejected() {
        let (line, _, msg) =
            error_at("[campaign]\nname = \"x\"\n[base]\ninject_fault = \"gremlin\"\n");
        assert_eq!(line, 4);
        assert!(msg.contains("unknown fault"), "{msg}");
    }

    #[test]
    fn unknown_top_level_key_is_rejected() {
        let (line, _, msg) = error_at("[campaign]\nname = \"x\"\n[bogus]\na = 1\n");
        assert_eq!(line, 3);
        assert!(msg.contains("unknown key `bogus`"), "{msg}");
    }

    #[test]
    fn unknown_base_key_is_rejected() {
        let (line, col, msg) = error_at("[campaign]\nname = \"x\"\n[base]\nduration_sec = 5\n");
        assert_eq!((line, col), (4, 16));
        assert!(msg.contains("unknown key `duration_sec`"), "{msg}");
    }

    #[test]
    fn unknown_scheme_is_rejected_with_position() {
        let (line, col, msg) =
            error_at("[campaign]\nname = \"x\"\n[base]\nscheme = \"Reno2000\"\n");
        assert_eq!((line, col), (4, 10));
        assert!(msg.contains("unknown scheme"), "{msg}");
    }

    #[test]
    fn timer_slot_shift_out_of_range_is_rejected() {
        let (line, _, msg) = error_at("[campaign]\nname = \"t\"\n[base]\ntimer_slot_shift = 30\n");
        assert_eq!(line, 4);
        assert!(msg.contains("timer_slot_shift"), "{msg}");
    }

    #[test]
    fn stagger_departures_without_stagger_is_rejected() {
        let (line, _, msg) = error_at(
            "[campaign]\nname = \"f\"\n[base]\nflows = { count = 4, stagger_departures = true }\n",
        );
        assert_eq!(line, 4);
        assert!(msg.contains("non-zero `stagger_ms`"), "{msg}");
    }

    #[test]
    fn flows_zero_count_table_is_rejected() {
        let (_, _, msg) = error_at("[campaign]\nname = \"f\"\n[base]\nflows = { count = 0 }\n");
        assert!(msg.contains("at least 1"), "{msg}");
    }

    #[test]
    fn missing_campaign_name_is_rejected() {
        let e = compile_tiny("[campaign]\n").unwrap_err();
        assert!(e.message.contains("needs a `name`"), "{e}");
    }

    #[test]
    fn axis_without_values_is_rejected() {
        let (line, _, msg) = error_at("[campaign]\nname = \"x\"\n[[axis]]\nname = \"seed\"\n");
        assert_eq!(line, 3);
        assert!(msg.contains("exactly one value list"), "{msg}");
    }

    #[test]
    fn empty_axis_is_rejected() {
        let (_, _, msg) =
            error_at("[campaign]\nname = \"x\"\n[[axis]]\nname = \"seed\"\nseeds = []\n");
        assert!(msg.contains("has no values"), "{msg}");
    }

    #[test]
    fn duplicate_axis_is_rejected() {
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[[axis]]\nname = \"seed\"\nseeds = [1]\n[[axis]]\nname = \"seed\"\nseeds = [2]\n",
        );
        assert!(msg.contains("duplicate axis"), "{msg}");
    }

    #[test]
    fn filter_on_unknown_axis_is_rejected() {
        let (line, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[[axis]]\nname = \"seed\"\nseeds = [1]\n[[filter]]\nname = \"f\"\ndeny = { scheme = \"ABC\" }\n",
        );
        assert_eq!(line, 8);
        assert!(msg.contains("unknown axis `scheme`"), "{msg}");
    }

    #[test]
    fn unknown_telemetry_signal_is_rejected_with_the_catalog() {
        let (line, col, msg) = error_at(
            "[campaign]\nname = \"x\"\n[telemetry]\nsignals = [\"cwnd\", \"congestion\"]\n",
        );
        assert_eq!((line, col), (4, 20));
        assert!(
            msg.contains("unknown telemetry signal `congestion`"),
            "{msg}"
        );
        assert!(msg.contains("qdelay_ms"), "catalog missing from: {msg}");
    }

    #[test]
    fn telemetry_cadence_must_be_a_positive_integer() {
        let (line, _, msg) =
            error_at("[campaign]\nname = \"x\"\n[telemetry]\nsample_every_ms = 0\n");
        assert_eq!(line, 4);
        assert!(msg.contains("at least 1"), "{msg}");
        let (_, _, msg) =
            error_at("[campaign]\nname = \"x\"\n[telemetry]\nsample_every_ms = \"fast\"\n");
        assert!(msg.contains("must be an integer, found string"), "{msg}");
        let (_, _, msg) = error_at("[campaign]\nname = \"x\"\n[telemetry]\ncadence = 5\n");
        assert!(msg.contains("unknown key `cadence`"), "{msg}");
    }

    #[test]
    fn unknown_trace_is_rejected() {
        let (line, col, msg) = error_at(
            "[campaign]\nname = \"x\"\n[[axis]]\nname = \"trace\"\ntraces = [\"Nokia9\"]\n",
        );
        assert_eq!((line, col), (5, 11));
        assert!(msg.contains("unknown built-in trace"), "{msg}");
    }

    #[test]
    fn link_literal_needs_exactly_one_kind() {
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\nlink = { constant_mbps = 12.0, trace = \"Verizon1\" }\n",
        );
        assert!(msg.contains("exactly one of"), "{msg}");
    }

    #[test]
    fn negative_seed_is_rejected() {
        let (line, _, msg) = error_at("[campaign]\nname = \"x\"\n[base]\nseed = -1\n");
        assert_eq!(line, 4);
        assert!(msg.contains("non-negative"), "{msg}");
    }

    #[test]
    fn wrong_type_is_named() {
        let (_, _, msg) = error_at("[campaign]\nname = \"x\"\n[base]\nrtt_ms = \"fast\"\n");
        assert!(msg.contains("must be an integer, found string"), "{msg}");
    }

    #[test]
    fn zero_rtc_interval_is_rejected_not_panicked() {
        let (line, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\nworkloads = [{ rtc = { frame_bytes = 1200, interval_ms = 0, deadline_ms = 100 } }]\n",
        );
        assert_eq!(line, 4);
        assert!(msg.contains("`interval_ms` must be at least 1"), "{msg}");
    }

    #[test]
    fn oversized_frame_bytes_is_rejected_not_wrapped() {
        // 2^32 + 1200 would silently truncate to 1200 via `as u32`.
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\nworkloads = [{ rtc = { frame_bytes = 4294968496, interval_ms = 33, deadline_ms = 100 } }]\n",
        );
        assert!(msg.contains("too large"), "{msg}");
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\nworkloads = [{ rtc = { frame_bytes = 9000, interval_ms = 33, deadline_ms = 100 } }]\n",
        );
        assert!(msg.contains("one frame per packet"), "{msg}");
    }

    #[test]
    fn descending_ladder_and_zero_chunk_are_rejected() {
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\nworkloads = [{ video = { ladder_kbps = [1000, 350], chunk_s = 2, startup_chunks = 1, max_buffer_s = 12, stream_s = 60, safety = 0.8 } }]\n",
        );
        assert!(msg.contains("must ascend"), "{msg}");
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\nworkloads = [{ video = { ladder_kbps = [350, 1000], chunk_s = 0, startup_chunks = 1, max_buffer_s = 12, stream_s = 60, safety = 0.8 } }]\n",
        );
        assert!(msg.contains("`chunk_s` must be at least 1"), "{msg}");
    }

    #[test]
    fn duplicate_axis_labels_are_rejected() {
        let (_, _, msg) =
            error_at("[campaign]\nname = \"x\"\n[[axis]]\nname = \"seed\"\nseeds = [1, 1]\n");
        assert!(msg.contains("duplicate value label"), "{msg}");
        // scheme names parse case-insensitively into the same label
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[[axis]]\nname = \"s\"\nschemes = [\"ABC\", \"abc\"]\n",
        );
        assert!(msg.contains("duplicate value label"), "{msg}");
    }

    #[test]
    fn multibyte_scheme_names_error_instead_of_panicking() {
        let (line, _, msg) = error_at("[campaign]\nname = \"x\"\n[base]\nscheme = \"ABC\u{e9}\"\n");
        assert_eq!(line, 4);
        assert!(msg.contains("unknown scheme"), "{msg}");
    }

    #[test]
    fn empty_and_unsorted_steps_are_rejected() {
        let (_, _, msg) = error_at("[campaign]\nname = \"x\"\n[base]\nlink = { steps = [] }\n");
        assert!(msg.contains("`steps` must not be empty"), "{msg}");
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\nlink = { steps = [[5.0, 6.0], [1.0, 18.0]] }\n",
        );
        assert!(msg.contains("non-decreasing"), "{msg}");
    }

    #[test]
    fn zero_square_period_and_negative_rates_are_rejected() {
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\nlink = { square = { a_mbps = 12.0, b_mbps = 24.0, half_period_ms = 0 } }\n",
        );
        assert!(msg.contains("`half_period_ms` must be at least 1"), "{msg}");
        let (_, _, msg) =
            error_at("[campaign]\nname = \"x\"\n[base]\nlink = { constant_mbps = -5.0 }\n");
        assert!(msg.contains("non-negative rate"), "{msg}");
    }

    #[test]
    fn degenerate_web_arrivals_are_rejected() {
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\nworkloads = [{ web = { per_sec = 10.0, on_s = 0, off_s = 0 } }]\n",
        );
        assert!(msg.contains("`on_s` must be at least 1"), "{msg}");
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\nworkloads = [{ web = { per_sec = -1.0 } }]\n",
        );
        assert!(
            msg.contains("`per_sec` must be a non-negative rate"),
            "{msg}"
        );
    }

    #[test]
    fn wifi_topology_literal_compiles() {
        let c = compile_tiny(
            "[campaign]\nname = \"w\"\n[base]\ntopology = { wifi = { mcs = { alternating = { a = 3, b = 7, period_ms = 500 } }, ap_buffer_pkts = 100 } }\n",
        )
        .unwrap();
        match &c.base.topology {
            Topology::Wifi {
                mcs,
                ap_buffer_pkts,
            } => {
                assert!(
                    matches!(mcs, McsSpec::Alternating(3, 7, p) if *p == SimDuration::from_millis(500))
                );
                assert_eq!(*ap_buffer_pkts, 100);
            }
            other => panic!("expected wifi, got {other:?}"),
        }
        let c = compile_tiny(
            "[campaign]\nname = \"w\"\n[base]\ntopology = { wifi = { mcs = { brownian = { min = 1, max = 7, period_ms = 100, seed = 9 } }, ap_buffer_pkts = 50 } }\n",
        )
        .unwrap();
        assert!(matches!(
            &c.base.topology,
            Topology::Wifi {
                mcs: McsSpec::Brownian(1, 7, _, 9),
                ..
            }
        ));
    }

    #[test]
    fn parking_lot_literal_compiles_with_per_hop_qdiscs() {
        let c = compile_tiny(
            "[campaign]\nname = \"p\"\n[base]\ntopology = { parking_lot = [\
             { link = { constant_mbps = 12.0 }, qdisc = \"abc\" }, \
             { link = { constant_mbps = 12.0 }, qdisc = { abc = { eta = 0.9, dt_ms = 60 } } }, \
             { link = { constant_mbps = 24.0 }, qdisc = \"codel\" }, \
             { link = { constant_mbps = 12.0 }, qdisc = \"droptail\" }, \
             { link = { constant_mbps = 12.0 } }] }\n",
        )
        .unwrap();
        let Topology::ParkingLot { hops } = &c.base.topology else {
            panic!("expected a parking lot, got {:?}", c.base.topology);
        };
        assert_eq!(hops.len(), 5);
        assert!(matches!(&hops[0].qdisc, HopQdisc::Abc(cfg) if *cfg == AbcRouterConfig::default()));
        match &hops[1].qdisc {
            HopQdisc::Abc(cfg) => {
                assert_eq!(cfg.eta, 0.9);
                assert_eq!(cfg.dt, SimDuration::from_millis(60));
                // untouched keys keep their defaults
                assert_eq!(cfg.delta, AbcRouterConfig::default().delta);
            }
            other => panic!("expected explicit ABC config, got {other:?}"),
        }
        assert!(matches!(hops[2].qdisc, HopQdisc::Codel));
        assert!(matches!(hops[3].qdisc, HopQdisc::DropTail));
        assert!(matches!(hops[4].qdisc, HopQdisc::SchemeDefault));
    }

    #[test]
    fn asymmetric_literal_compiles() {
        let c = compile_tiny(
            "[campaign]\nname = \"a\"\n[base]\ntopology = { asymmetric = { down = { constant_mbps = 12.0 }, up = { constant_mbps = 1.0 }, down_delay_ms = 40, up_delay_ms = 10 } }\n",
        )
        .unwrap();
        match &c.base.topology {
            Topology::Asymmetric {
                down_delay,
                up_delay,
                ..
            } => {
                assert_eq!(*down_delay, SimDuration::from_millis(40));
                assert_eq!(*up_delay, SimDuration::from_millis(10));
            }
            other => panic!("expected asymmetric, got {other:?}"),
        }
    }

    #[test]
    fn abc_qdisc_table_compiles_at_base_and_axis() {
        let c = compile_tiny(
            "[campaign]\nname = \"q\"\n[base]\nqdisc = { abc = { eta = 0.95, buffer_pkts = 100 } }\n",
        )
        .unwrap();
        match &c.base.qdisc {
            QdiscSpec::AbcWith(cfg) => {
                assert_eq!(cfg.eta, 0.95);
                assert_eq!(cfg.buffer_pkts, 100);
            }
            other => panic!("expected AbcWith, got {other:?}"),
        }
        let c = compile_tiny(
            "[campaign]\nname = \"q\"\n[[axis]]\nname = \"qdisc\"\n[[axis.values]]\nlabel = \"abc\"\nqdisc = { abc = { } }\n[[axis.values]]\nlabel = \"droptail\"\nqdisc = \"droptail\"\n",
        )
        .unwrap();
        let pts = c.expand();
        assert_eq!(pts.len(), 2);
        assert!(matches!(
            pts[0].spec.qdisc,
            QdiscSpec::AbcWith(cfg) if cfg == AbcRouterConfig::default()
        ));
        assert!(matches!(pts[1].spec.qdisc, QdiscSpec::DropTail));
    }

    #[test]
    fn bad_parking_lot_and_hop_qdisc_are_rejected_with_position() {
        let (line, _, msg) =
            error_at("[campaign]\nname = \"x\"\n[base]\ntopology = { parking_lot = [] }\n");
        assert_eq!(line, 4);
        assert!(msg.contains("1–8 hops"), "{msg}");
        let (line, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\ntopology = { parking_lot = [{ link = { constant_mbps = 12.0 }, qdisc = \"red\" }] }\n",
        );
        assert_eq!(line, 4);
        assert!(msg.contains("unknown hop qdisc"), "{msg}");
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\ntopology = { parking_lot = [{ qdisc = \"abc\" }] }\n",
        );
        assert!(msg.contains("needs `link`"), "{msg}");
    }

    #[test]
    fn bad_wifi_and_asymmetric_are_rejected_with_position() {
        let (line, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\ntopology = { wifi = { mcs = { fixed = 9 }, ap_buffer_pkts = 100 } }\n",
        );
        assert_eq!(line, 4);
        assert!(msg.contains("MCS index in 0..=7"), "{msg}");
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\ntopology = { wifi = { mcs = { fixed = 5 } } }\n",
        );
        assert!(msg.contains("needs `ap_buffer_pkts`"), "{msg}");
        let (_, _, msg) = error_at(
            "[campaign]\nname = \"x\"\n[base]\ntopology = { asymmetric = { down = { constant_mbps = 12.0 }, up = { constant_mbps = 1.0 }, down_delay_ms = 40 } }\n",
        );
        assert!(msg.contains("needs `up_delay_ms`"), "{msg}");
    }

    #[test]
    fn bad_abc_router_config_is_rejected_with_position() {
        let (line, _, msg) =
            error_at("[campaign]\nname = \"x\"\n[base]\nqdisc = { abc = { eta = 1.5 } }\n");
        assert_eq!(line, 4);
        assert!(msg.contains("`eta` must be in (0, 1]"), "{msg}");
        let (_, _, msg) =
            error_at("[campaign]\nname = \"x\"\n[base]\nqdisc = { abc = { delta = 133 } }\n");
        assert!(msg.contains("unknown key `delta`"), "{msg}");
    }

    #[test]
    fn scheme_names_round_trip() {
        for s in [
            Scheme::Abc,
            Scheme::AbcDt(50),
            Scheme::CubicCodel,
            Scheme::Xcpw,
            Scheme::Vcp,
        ] {
            assert_eq!(parse_scheme(&s.name()), Some(s), "{}", s.name());
        }
        assert_eq!(parse_scheme("abc"), Some(Scheme::Abc));
        // abcsim's historical aliases resolve through the same parser
        assert_eq!(parse_scheme("codel"), Some(Scheme::CubicCodel));
        assert_eq!(parse_scheme("abc-dt50"), Some(Scheme::AbcDt(50)));
        assert_eq!(parse_scheme("cubic-codel"), Some(Scheme::CubicCodel));
        assert_eq!(
            parse_scheme("Abc_50"),
            Some(Scheme::AbcDt(50)),
            "prefix is case-insensitive"
        );
        assert_eq!(parse_scheme("nope"), None);
        assert_eq!(parse_scheme("ABC_"), None);
    }
}
