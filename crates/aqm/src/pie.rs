//! PIE — Proportional Integral controller Enhanced [Pan et al., HPSR 2013 /
//! RFC 8033]. Drop probability is updated periodically from the current
//! queuing-delay estimate and its trend.

use netsim::packet::{Ecn, Packet};
use netsim::queue::{Qdisc, QdiscStats};
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
pub struct PieConfig {
    /// Delay reference the controller regulates to (RFC 8033 default 15 ms).
    pub target: SimDuration,
    /// Probability update period (RFC 8033 default 15 ms).
    pub t_update: SimDuration,
    /// Proportional gain α and integral gain β (RFC 8033 §4.2).
    pub alpha: f64,
    pub beta: f64,
    pub buffer_pkts: usize,
    pub ecn_marking: bool,
    pub seed: u64,
}

impl Default for PieConfig {
    fn default() -> Self {
        PieConfig {
            target: SimDuration::from_millis(15),
            t_update: SimDuration::from_millis(15),
            alpha: 0.125,
            beta: 1.25,
            buffer_pkts: 250,
            ecn_marking: false,
            seed: 0x91e,
        }
    }
}

pub struct Pie {
    cfg: PieConfig,
    queue: VecDeque<Box<Packet>>,
    bytes: u64,
    drop_prob: f64,
    qdelay_old: SimDuration,
    last_update: Option<SimTime>,
    /// Departure-rate estimate for the delay model.
    depart_bytes: u64,
    depart_start: SimTime,
    avg_drate: f64, // bytes/s
    rng: StdRng,
    stats: QdiscStats,
}

impl Pie {
    pub fn new(cfg: PieConfig) -> Self {
        assert!(!cfg.t_update.is_zero());
        Pie {
            cfg,
            queue: VecDeque::new(),
            bytes: 0,
            drop_prob: 0.0,
            qdelay_old: SimDuration::ZERO,
            last_update: None,
            depart_bytes: 0,
            depart_start: SimTime::ZERO,
            avg_drate: 0.0,
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: QdiscStats::default(),
        }
    }

    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Current queuing-delay estimate: queue bytes over departure rate.
    fn qdelay(&self) -> SimDuration {
        if self.avg_drate <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(self.bytes as f64 / self.avg_drate)
    }

    fn maybe_update(&mut self, now: SimTime) {
        let last = *self.last_update.get_or_insert(now);
        if now.since(last) < self.cfg.t_update {
            return;
        }
        self.last_update = Some(now);
        let qdelay = self.qdelay();
        // p += α·(qdelay − target) + β·(qdelay − qdelay_old), scaled down
        // while p is small (RFC 8033 §4.2 auto-tuning ladder, abbreviated)
        let scale = if self.drop_prob < 0.000_001 {
            1.0 / 2048.0
        } else if self.drop_prob < 0.000_01 {
            1.0 / 512.0
        } else if self.drop_prob < 0.000_1 {
            1.0 / 128.0
        } else if self.drop_prob < 0.001 {
            1.0 / 32.0
        } else if self.drop_prob < 0.01 {
            1.0 / 8.0
        } else if self.drop_prob < 0.1 {
            1.0 / 2.0
        } else {
            1.0
        };
        let err = qdelay.as_secs_f64() - self.cfg.target.as_secs_f64();
        let trend = qdelay.as_secs_f64() - self.qdelay_old.as_secs_f64();
        self.drop_prob += scale * (self.cfg.alpha * err + self.cfg.beta * trend);
        // decay when the queue is idle
        if qdelay.is_zero() && self.qdelay_old.is_zero() {
            self.drop_prob *= 0.98;
        }
        self.drop_prob = self.drop_prob.clamp(0.0, 1.0);
        self.qdelay_old = qdelay;
    }
}

impl Qdisc for Pie {
    netsim::impl_qdisc_downcast!();

    fn enqueue(&mut self, mut pkt: Box<Packet>, now: SimTime) -> bool {
        self.maybe_update(now);
        if self.queue.len() >= self.cfg.buffer_pkts {
            self.stats.dropped_pkts += 1;
            return false;
        }
        // early drop/mark decision on enqueue (PIE is an enqueue-side AQM);
        // bypass while the queue is tiny (RFC 8033 §4.1 burst allowance)
        if self.queue.len() > 2 && self.drop_prob > 0.0 {
            let roll: f64 = self.rng.gen();
            if roll < self.drop_prob {
                if self.cfg.ecn_marking && pkt.ecn.is_ect() && self.drop_prob < 0.1 {
                    pkt.ecn = Ecn::Ce;
                    self.stats.ce_marked += 1;
                } else {
                    self.stats.dropped_pkts += 1;
                    return false;
                }
            }
        }
        pkt.enqueued_at = now;
        self.bytes += pkt.size as u64;
        self.queue.push_back(pkt);
        self.stats.enqueued_pkts += 1;
        true
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Box<Packet>> {
        self.maybe_update(now);
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size as u64;
        // departure-rate measurement
        if self.depart_start == SimTime::ZERO {
            self.depart_start = now;
        }
        self.depart_bytes += pkt.size as u64;
        let span = now.since(self.depart_start);
        if span >= SimDuration::from_millis(30) {
            let rate = self.depart_bytes as f64 / span.as_secs_f64();
            self.avg_drate = if self.avg_drate == 0.0 {
                rate
            } else {
                0.9 * self.avg_drate + 0.1 * rate
            };
            self.depart_bytes = 0;
            self.depart_start = now;
        }
        self.stats.dequeued_pkts += 1;
        self.stats.dequeued_bytes += pkt.size as u64;
        Some(pkt)
    }

    fn peek_size(&self) -> Option<u32> {
        self.queue.front().map(|p| p.size)
    }

    fn len_pkts(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn on_capacity(&mut self, rate: Rate, _now: SimTime) {
        // a capacity oracle sharpens the delay model when available
        if !rate.is_zero() {
            self.avg_drate = rate.bps() / 8.0;
        }
    }

    fn head_sojourn(&self, now: SimTime) -> Option<SimDuration> {
        self.queue.front().map(|p| now.since(p.enqueued_at))
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Feedback, FlowId, NodeId, Route};

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn pkt(seq: u64) -> Box<Packet> {
        Box::new(Packet {
            flow: FlowId(0),
            seq,
            size: 1500,
            ecn: Ecn::NotEct,
            feedback: Feedback::None,
            abc_capable: false,
            sent_at: SimTime::ZERO,
            retransmit: false,
            ack: None,
            route: Route::new(vec![(NodeId(0), SimDuration::ZERO)]),
            hop: 0,
            enqueued_at: SimTime::ZERO,
        })
    }

    #[test]
    fn idle_queue_keeps_zero_drop_prob() {
        let mut q = Pie::new(PieConfig::default());
        for i in 0..100 {
            q.enqueue(pkt(i), at(i * 10));
            q.dequeue(at(i * 10));
        }
        assert_eq!(q.drop_prob(), 0.0);
        assert_eq!(q.stats().dropped_pkts, 0);
    }

    #[test]
    fn standing_queue_raises_drop_prob() {
        let mut q = Pie::new(PieConfig::default());
        q.on_capacity(Rate::from_mbps(12.0), at(0));
        // 100-packet standing queue at 12 Mbit/s = 100 ms delay ≫ 15 ms
        for i in 0..100 {
            q.enqueue(pkt(i), at(0));
        }
        // seq runs ahead of t by the 99-packet preload
        for t in 1..1000u64 {
            q.enqueue(pkt(t + 99), at(t));
            q.dequeue(at(t));
        }
        assert!(q.drop_prob() > 0.0, "p = {}", q.drop_prob());
        assert!(q.stats().dropped_pkts > 0);
    }

    #[test]
    fn drop_prob_decays_when_idle() {
        let mut q = Pie::new(PieConfig::default());
        q.drop_prob = 0.5;
        // empty queue, let updates run
        for t in 0..200u64 {
            q.maybe_update(at(t * 15));
        }
        assert!(q.drop_prob() < 0.1, "p = {}", q.drop_prob());
    }

    #[test]
    fn burst_allowance_spares_tiny_queues() {
        let mut q = Pie::new(PieConfig::default());
        q.drop_prob = 1.0; // even at certain drop...
        assert!(q.enqueue(pkt(0), at(0))); // ...first packets pass
        assert!(q.enqueue(pkt(1), at(0)));
        assert!(q.enqueue(pkt(2), at(0)));
        assert_eq!(q.stats().dropped_pkts, 0);
    }
}
