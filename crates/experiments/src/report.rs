//! Experiment results in the units the paper reports.

use netsim::metrics::ImpairmentRecord;
use netsim::stats::Summary;
use workload::{RtcMetrics, VideoMetrics, WebMetrics};

/// Application-level outcomes of a scenario that ran workloads on top of
/// (or instead of) bulk flows. Absent (`Report::app == None`) for
/// bulk-only scenarios, which keeps their serialized records — and the
/// pinned tiny campaign baseline — byte-identical.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// Web request/response FCTs, aggregated over every web workload.
    pub web: Option<WebMetrics>,
    /// RTC deadline accounting, aggregated over every RTC stream.
    pub rtc: Option<RtcMetrics>,
    /// ABR video outcomes, chunk-weighted over every session.
    pub video: Option<VideoMetrics>,
}

/// Outcome of one scenario run.
///
/// `PartialEq` compares every metric bit-for-bit — the determinism tests
/// rely on two runs of the same spec producing equal `Report`s. Floats
/// are compared by bit pattern, not `==`, so `NaN` fields (Wi-Fi
/// utilization has no opportunity accounting) still compare equal across
/// identical runs.
#[derive(Debug, Clone)]
pub struct Report {
    /// Display name of the scheme that ran.
    pub scheme: String,
    /// Delivered bits ÷ link delivery opportunities (cellular emulation's
    /// utilization definition).
    pub utilization: f64,
    /// One-way per-packet delay (ms), receiver-observed: queuing +
    /// propagation. The paper's "95th percentile packet delay" axis.
    pub delay_ms: Summary,
    /// Queuing delay at the bottleneck (ms) — Appendix E's y-axis.
    pub qdelay_ms: Summary,
    /// Per-flow mean goodput (Mbit/s) over the measurement window.
    pub flow_tputs_mbps: Vec<f64>,
    /// Sum of the per-flow goodputs.
    pub total_tput_mbps: f64,
    /// Jain fairness index across flows.
    pub jain: f64,
    /// Packets dropped across all hops.
    pub drops: u64,
    /// (t seconds, Mbit/s) aggregate goodput series.
    pub tput_series: Vec<(f64, f64)>,
    /// (t seconds, ms) bottleneck queuing delay, downsampled.
    pub qdelay_series: Vec<(f64, f64)>,
    /// (t seconds, Mbit/s) link capacity series (for plots).
    pub capacity_series: Vec<(f64, f64)>,
    /// Application-level metrics; `None` for bulk-only scenarios.
    pub app: Option<AppReport>,
    /// Per-impairment-wire pass/hit counters, in scenario spec order.
    /// Empty for unimpaired scenarios, which keeps their serialized
    /// records — and the pinned tiny campaign baseline — byte-identical.
    pub impairments: Vec<ImpairmentRecord>,
}

/// Bitwise float equality: identical runs must compare equal even where
/// a metric is `NaN` (Wi-Fi utilization, silent RTC streams, …).
fn feq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn sumeq(a: &Summary, b: &Summary) -> bool {
    a.count == b.count
        && feq(a.mean, b.mean)
        && feq(a.std_dev, b.std_dev)
        && feq(a.min, b.min)
        && feq(a.max, b.max)
        && feq(a.p50, b.p50)
        && feq(a.p95, b.p95)
        && feq(a.p99, b.p99)
}

impl PartialEq for AppReport {
    fn eq(&self, other: &Self) -> bool {
        fn webeq(a: &WebMetrics, b: &WebMetrics) -> bool {
            a.flows == b.flows && a.completed == b.completed && sumeq(&a.fct_ms, &b.fct_ms)
        }
        fn rtceq(a: &RtcMetrics, b: &RtcMetrics) -> bool {
            a.pkts == b.pkts
                && a.misses == b.misses
                && feq(a.miss_rate, b.miss_rate)
                && sumeq(&a.owd_ms, &b.owd_ms)
        }
        fn videq(a: &VideoMetrics, b: &VideoMetrics) -> bool {
            a.chunks_downloaded == b.chunks_downloaded
                && a.chunks_total == b.chunks_total
                && feq(a.mean_bitrate_kbps, b.mean_bitrate_kbps)
                && feq(a.play_s, b.play_s)
                && feq(a.rebuffer_s, b.rebuffer_s)
                && feq(a.rebuffer_ratio, b.rebuffer_ratio)
                && feq(a.startup_delay_ms, b.startup_delay_ms)
                && a.switches == b.switches
                && feq(a.qoe, b.qoe)
        }
        fn opteq<T>(a: &Option<T>, b: &Option<T>, eq: impl Fn(&T, &T) -> bool) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(x), Some(y)) => eq(x, y),
                _ => false,
            }
        }
        opteq(&self.web, &other.web, webeq)
            && opteq(&self.rtc, &other.rtc, rtceq)
            && opteq(&self.video, &other.video, videq)
    }
}

impl PartialEq for Report {
    fn eq(&self, other: &Self) -> bool {
        fn veq(a: &[f64], b: &[f64]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| feq(*x, *y))
        }
        fn seq(a: &[(f64, f64)], b: &[(f64, f64)]) -> bool {
            a.len() == b.len()
                && a.iter()
                    .zip(b)
                    .all(|((t1, v1), (t2, v2))| feq(*t1, *t2) && feq(*v1, *v2))
        }
        self.scheme == other.scheme
            && feq(self.utilization, other.utilization)
            && sumeq(&self.delay_ms, &other.delay_ms)
            && sumeq(&self.qdelay_ms, &other.qdelay_ms)
            && veq(&self.flow_tputs_mbps, &other.flow_tputs_mbps)
            && feq(self.total_tput_mbps, other.total_tput_mbps)
            && feq(self.jain, other.jain)
            && self.drops == other.drops
            && seq(&self.tput_series, &other.tput_series)
            && seq(&self.qdelay_series, &other.qdelay_series)
            && seq(&self.capacity_series, &other.capacity_series)
            && self.app == other.app
            && self.impairments == other.impairments
    }
}

impl Report {
    /// One row of the standard util/delay table.
    pub fn row(&self) -> String {
        format!(
            "{:<14} util {:>5.1}%  tput {:>7.3} Mbit/s  delay p50/p95/mean {:>7.1}/{:>7.1}/{:>7.1} ms  qdelay p95 {:>7.1} ms  drops {:>6}",
            self.scheme,
            self.utilization * 100.0,
            self.total_tput_mbps,
            self.delay_ms.p50,
            self.delay_ms.p95,
            self.delay_ms.mean,
            self.qdelay_ms.p95,
            self.drops
        )
    }
}

/// Downsample a dense series to at most `n` points (mean per bucket).
/// Series no longer than `n` (including empty ones) come back unchanged;
/// `n == 0` yields an empty series, honoring the "at most `n`" contract.
pub fn downsample(series: &[(f64, f64)], n: usize) -> Vec<(f64, f64)> {
    if n == 0 {
        return Vec::new();
    }
    if series.len() <= n {
        return series.to_vec();
    }
    let bucket = series.len().div_ceil(n);
    series
        .chunks(bucket)
        .map(|c| {
            let t = c[0].0;
            let v = c.iter().map(|p| p.1).sum::<f64>() / c.len() as f64;
            (t, v)
        })
        .collect()
}

/// Render a small ASCII sparkline of a series (figures in a terminal).
pub fn sparkline(series: &[(f64, f64)], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let pts = downsample(series, width);
    let max = pts.iter().map(|p| p.1).fold(f64::MIN, f64::max);
    let min = pts.iter().map(|p| p.1).fold(f64::MAX, f64::min);
    if pts.is_empty() || !max.is_finite() || max <= min {
        return String::new();
    }
    pts.iter()
        .map(|p| {
            let idx = ((p.1 - min) / (max - min) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_preserves_short_series() {
        let s = vec![(0.0, 1.0), (1.0, 2.0)];
        assert_eq!(downsample(&s, 10), s);
    }

    #[test]
    fn downsample_of_empty_series_is_empty() {
        assert!(downsample(&[], 10).is_empty());
        assert!(downsample(&[], 0).is_empty());
    }

    #[test]
    fn downsample_to_zero_points_is_empty() {
        let s = vec![(0.0, 1.0), (1.0, 2.0)];
        assert!(downsample(&s, 0).is_empty());
    }

    #[test]
    fn downsample_shorter_than_target_is_identity() {
        let s: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, i as f64)).collect();
        assert_eq!(downsample(&s, 5), s, "len == n must be identity");
        assert_eq!(downsample(&s, 6), s, "len < n must be identity");
    }

    #[test]
    fn downsample_single_point_series() {
        let s = vec![(3.0, 9.0)];
        assert_eq!(downsample(&s, 1), s);
        assert_eq!(downsample(&s, 600), s);
    }

    #[test]
    fn downsample_never_exceeds_target() {
        for len in [1usize, 7, 99, 600, 601, 1234] {
            let s: Vec<(f64, f64)> = (0..len).map(|i| (i as f64, 0.0)).collect();
            for n in [1usize, 2, 10, 600] {
                assert!(
                    downsample(&s, n).len() <= n,
                    "len {len} downsampled to {} > {n}",
                    downsample(&s, n).len()
                );
            }
        }
    }

    #[test]
    fn downsample_buckets_means() {
        let s: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        let d = downsample(&s, 10);
        assert_eq!(d.len(), 10);
        assert!((d[0].1 - 4.5).abs() < 1e-9); // mean of 0..=9
    }

    #[test]
    fn sparkline_spans_range() {
        let s: Vec<(f64, f64)> = (0..64).map(|i| (i as f64, i as f64)).collect();
        let sp = sparkline(&s, 16);
        assert_eq!(sp.chars().count(), 16);
        assert!(sp.starts_with('▁'));
        assert!(sp.ends_with('█'));
    }
}
