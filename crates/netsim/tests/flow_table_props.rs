//! Property tests for the arena-backed [`FlowTable`] inside
//! [`MetricsHub`]: under arbitrary interleavings of app-flow
//! registration and deliveries, the arena must be observationally
//! identical to the naive `BTreeMap<FlowId, FlowRecord>` it replaced —
//! same lookups, same lengths, and iteration in ascending `FlowId`
//! order (which is what keeps report-time float reductions
//! bit-identical to the map era).
//!
//! [`FlowTable`]: netsim::metrics::FlowTable

use netsim::metrics::{AppFlowMeta, FlowRecord, MetricsHub};
use netsim::packet::FlowId;
use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The pre-arena reference: the exact per-delivery bookkeeping
/// `MetricsHub::on_delivery` performed when `flows` was a
/// `BTreeMap<FlowId, FlowRecord>` and registration lived in a side map.
#[derive(Default)]
struct MapHub {
    epoch: SimTime,
    flows: BTreeMap<FlowId, FlowRecord>,
    metas: BTreeMap<FlowId, AppFlowMeta>,
}

impl MapHub {
    fn register_app_flow(&mut self, flow: FlowId, meta: AppFlowMeta) {
        self.metas.insert(flow, meta);
    }

    fn on_delivery(
        &mut self,
        flow: FlowId,
        now: SimTime,
        delay: SimDuration,
        bytes: u32,
        unique: bool,
        retransmit: bool,
    ) {
        if now < self.epoch {
            return;
        }
        let rec = self.flows.entry(flow).or_default();
        rec.delivered_bytes += bytes as u64;
        rec.delivered_pkts += 1;
        if unique {
            rec.unique_bytes += bytes as u64;
            rec.unique_pkts += 1;
        }
        rec.first_delivery.get_or_insert(now);
        rec.last_delivery = Some(now);
        rec.delays_s.push(delay.as_secs_f64());
        if unique {
            if let Some(meta) = self.metas.get(&flow) {
                if meta.deadline.is_some_and(|d| retransmit || delay > d) {
                    rec.deadline_misses += 1;
                }
                if rec.completed_at.is_none()
                    && meta.expected_bytes.is_some_and(|b| rec.unique_bytes >= b)
                {
                    rec.completed_at = Some(now);
                }
            }
        }
    }
}

/// Field-by-field record equality; delay samples compared bitwise so a
/// float-path divergence can't hide behind `==` on equal-looking NaNs.
/// Returns the proptest-shim error type so `?` composes with
/// `prop_assert!` inside `proptest!` bodies.
fn assert_records_eq(a: &FlowRecord, b: &FlowRecord) -> Result<(), String> {
    prop_assert_eq!(a.delivered_bytes, b.delivered_bytes);
    prop_assert_eq!(a.delivered_pkts, b.delivered_pkts);
    prop_assert_eq!(a.unique_bytes, b.unique_bytes);
    prop_assert_eq!(a.unique_pkts, b.unique_pkts);
    prop_assert_eq!(a.first_delivery, b.first_delivery);
    prop_assert_eq!(a.last_delivery, b.last_delivery);
    prop_assert_eq!(a.completed_at, b.completed_at);
    prop_assert_eq!(a.deadline_misses, b.deadline_misses);
    let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
    prop_assert_eq!(bits(&a.delays_s), bits(&b.delays_s));
    Ok(())
}

/// Flow-id universe kept deliberately small so cases revisit the same
/// flows (exercising slot reuse) and leave gaps (exercising the sparse
/// index and registered-but-idle hidden slots).
const FLOW_IDS: u64 = 24;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arena hub and map hub observe identical state under arbitrary
    /// register/deliver interleavings: `get` per flow, `len`, and
    /// ascending-`FlowId` iteration via both `iter()` and `values()`.
    #[test]
    fn arena_matches_btreemap_reference(
        ops in proptest::collection::vec(
            (0u8..10, 0u64..FLOW_IDS, 0u64..20_000_000_000),
            1..300,
        ),
    ) {
        let mut arena = MetricsHub::default();
        let mut model = MapHub::default();
        // Nonzero epoch so early deliveries are warm-up-dropped in both.
        let epoch = SimTime::from_nanos(1_000_000_000);
        arena.set_epoch(epoch);
        model.epoch = epoch;

        for (op, raw_flow, raw_t) in ops {
            let flow = FlowId(raw_flow as u32);
            let now = SimTime::from_nanos(raw_t);
            match op {
                // 70% deliveries, varying delay/size/uniqueness with
                // the timestamp so duplicates and retransmits appear.
                0..=6 => {
                    let delay = SimDuration::from_nanos(raw_t % 50_000_000);
                    let bytes = (raw_t % 1500 + 1) as u32;
                    let unique = raw_t % 4 != 0;
                    let retransmit = raw_t % 5 == 0;
                    arena.on_delivery(flow, now, delay, bytes, unique, retransmit);
                    model.on_delivery(flow, now, delay, bytes, unique, retransmit);
                }
                // 30% registrations, sometimes re-registering a flow
                // that already delivered (meta replacement).
                _ => {
                    let meta = AppFlowMeta {
                        start: now,
                        expected_bytes: (raw_t % 3 != 0).then_some(raw_t % 40_000),
                        deadline: (raw_t % 2 == 0)
                            .then(|| SimDuration::from_nanos(raw_t % 10_000_000)),
                    };
                    arena.register_app_flow(flow, meta);
                    model.register_app_flow(flow, meta);
                }
            }
        }

        prop_assert_eq!(arena.flows.len(), model.flows.len());
        prop_assert_eq!(arena.flows.is_empty(), model.flows.is_empty());

        // Point lookups agree over the whole id universe, including ids
        // never touched and ids registered but never delivered (hidden
        // slots must stay invisible, exactly like the map).
        for id in 0..FLOW_IDS {
            let flow = FlowId(id as u32);
            match (arena.flows.get(&flow), model.flows.get(&flow)) {
                (Some(a), Some(b)) => assert_records_eq(a, b)?,
                (None, None) => {}
                (a, b) => prop_assert!(
                    false,
                    "visibility diverged for {:?}: arena={} model={}",
                    flow, a.is_some(), b.is_some()
                ),
            }
        }

        // Iteration yields the same flows in the same ascending-FlowId
        // order with the same records.
        let arena_ids: Vec<FlowId> = arena.flows.iter().map(|(id, _)| id).collect();
        let model_ids: Vec<FlowId> = model.flows.keys().copied().collect();
        prop_assert_eq!(&arena_ids, &model_ids);
        let mut sorted = arena_ids.clone();
        sorted.sort();
        prop_assert_eq!(&arena_ids, &sorted);
        for ((aid, arec), (mid, mrec)) in arena.flows.iter().zip(model.flows.iter()) {
            prop_assert_eq!(aid, *mid);
            assert_records_eq(arec, mrec)?;
        }
        for (arec, mrec) in arena.flows.values().zip(model.flows.values()) {
            assert_records_eq(arec, mrec)?;
        }
    }
}

/// Registration pre-creates only a *hidden* slot: a registered-but-idle
/// flow must not appear in lookups, lengths, or iteration until its
/// first post-epoch delivery — the old map semantics, where fairness
/// and throughput aggregates never saw idle flows.
#[test]
fn registered_but_idle_flow_stays_hidden() {
    let mut hub = MetricsHub::default();
    hub.register_app_flow(
        FlowId(7),
        AppFlowMeta {
            start: SimTime::ZERO,
            expected_bytes: Some(1_000),
            deadline: None,
        },
    );
    assert!(hub.flows.is_empty());
    assert!(hub.flows.get(&FlowId(7)).is_none());
    assert_eq!(hub.flows.iter().count(), 0);

    hub.on_delivery(
        FlowId(7),
        SimTime::from_nanos(5),
        SimDuration::from_nanos(1),
        1_200,
        true,
        false,
    );
    assert_eq!(hub.flows.len(), 1);
    let rec = &hub.flows[&FlowId(7)];
    assert_eq!(rec.unique_bytes, 1_200);
    // 1 200 unique bytes ≥ the registered 1 000-byte target.
    assert!(rec.completed_at.is_some());
}
