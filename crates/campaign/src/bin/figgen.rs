//! Regenerate any table/figure of the paper.
//!
//! ```text
//! cargo run --release -p campaign --bin figgen            # list figures
//! cargo run --release -p campaign --bin figgen fig8       # one figure
//! cargo run --release -p campaign --bin figgen all        # everything
//! cargo run --release -p campaign --bin figgen fig8 --fast    # reduced scale
//! cargo run --release -p campaign --bin figgen all --tiny     # wiring check
//! cargo run --release -p campaign --bin figgen all --jobs 4   # cap the pool
//! ```

use campaign::figures;
use experiments::figures::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--tiny") {
        Scale::Tiny
    } else if args.iter().any(|a| a == "--fast") {
        Scale::Fast
    } else {
        Scale::Full
    };
    // --jobs N caps every engine the figure harnesses construct, via the
    // ABC_JOBS fallback ScenarioEngine::new() honors.
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        match args.get(i + 1).and_then(|x| x.parse::<usize>().ok()) {
            Some(n) if n >= 1 => std::env::set_var("ABC_JOBS", n.to_string()),
            _ => {
                eprintln!("--jobs needs a positive integer");
                std::process::exit(2);
            }
        }
    }
    let mut skip_next = false;
    let which: Vec<&String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            skip_next = a.as_str() == "--jobs";
            !a.starts_with("--")
        })
        .collect();
    let all = figures::all();

    if which.is_empty() {
        eprintln!("figures available:");
        for (id, desc, _) in &all {
            eprintln!("  {id:<10} {desc}");
        }
        eprintln!("usage: figgen <id>|all [--fast|--tiny] [--jobs N]");
        std::process::exit(2);
    }

    for name in which {
        if name == "all" {
            for (id, _, f) in &all {
                eprintln!(">>> {id}");
                println!("{}", f(scale));
            }
            continue;
        }
        match all.iter().find(|(id, ..)| id == name) {
            Some((_, _, f)) => println!("{}", f(scale)),
            None => {
                eprintln!("unknown figure {name:?}; run with no args for the list");
                std::process::exit(2);
            }
        }
    }
}
