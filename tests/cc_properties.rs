//! Property tests over the congestion-control state machines: no window
//! ever collapses below its floor, explodes to non-finite values, or
//! violates its scheme's monotonicity rules, under arbitrary ACK streams.

use abc_repro::baselines::{Bbr, Copa, Cubic, NewReno, PccVivace, Sprout, Vegas, Verus};
use abc_repro::explicit::{RcpSender, VcpSender, XcpSender};
use abc_repro::netsim::flow::{AckEvent, CongestionControl, Pacing};
use abc_repro::netsim::packet::{Ecn, Feedback, VcpLoad};
use abc_repro::netsim::rate::Rate;
use abc_repro::netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Drive any controller with an arbitrary but plausible ACK stream and
/// random loss/RTO events; assert universal invariants.
fn fuzz_cc(mut cc: Box<dyn CongestionControl>, script: &[(u8, u16, u16)]) {
    let mut now_ms: u64 = 0;
    for &(kind, rtt_extra_ms, gap_ms) in script {
        now_ms += gap_ms as u64 + 1;
        let now = SimTime::ZERO + SimDuration::from_millis(now_ms);
        match kind % 8 {
            6 => cc.on_loss(now),
            7 => cc.on_rto(now),
            k => {
                let ecn = match k {
                    0 | 1 => Ecn::Accelerate,
                    2 => Ecn::Brake,
                    3 => Ecn::Ce,
                    _ => Ecn::NotEct,
                };
                let feedback = match k {
                    4 => Feedback::Rcp {
                        rate_bps: 1e6 + rtt_extra_ms as f64 * 1e4,
                    },
                    5 => Feedback::Vcp(match rtt_extra_ms % 3 {
                        0 => VcpLoad::Low,
                        1 => VcpLoad::High,
                        _ => VcpLoad::Overload,
                    }),
                    _ => Feedback::Xcp {
                        cwnd_bytes: 30_000.0,
                        rtt_s: 0.1,
                        delta_bytes: (rtt_extra_ms as f64 - 500.0) * 10.0,
                    },
                };
                let rtt = SimDuration::from_millis(100 + rtt_extra_ms as u64 % 900);
                cc.on_ack(&AckEvent {
                    now,
                    rtt: Some(rtt),
                    min_rtt: SimDuration::from_millis(100),
                    srtt: rtt,
                    acked_bytes: 1500,
                    ecn_echo: ecn,
                    feedback,
                    inflight_pkts: (rtt_extra_ms % 300) as usize,
                    delivery_rate: Rate::from_bps(rtt_extra_ms as f64 * 1e4),
                    one_way_delay: rtt / 2,
                });
            }
        }
        let w = cc.cwnd_pkts();
        assert!(w.is_finite(), "{}: non-finite window", cc.name());
        assert!(w >= 1.0, "{}: window {} below 1 packet", cc.name(), w);
        assert!(w < 1e9, "{}: window {} exploded", cc.name(), w);
        if let Pacing::Rate(r) = cc.pacing() {
            assert!(
                r.bps().is_finite() && r.bps() >= 0.0,
                "{}: bad pacing",
                cc.name()
            );
        }
    }
}

macro_rules! cc_fuzz_test {
    ($name:ident, $make:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn $name(script in proptest::collection::vec((0u8..8, 0u16..1000, 0u16..200), 1..300)) {
                fuzz_cc(Box::new($make), &script);
            }
        }
    };
}

cc_fuzz_test!(cubic_invariants, Cubic::new());
cc_fuzz_test!(cubic_ecn_invariants, Cubic::new().with_ecn());
cc_fuzz_test!(newreno_invariants, NewReno::new());
cc_fuzz_test!(vegas_invariants, Vegas::new());
cc_fuzz_test!(bbr_invariants, Bbr::new());
cc_fuzz_test!(copa_invariants, Copa::new());
cc_fuzz_test!(pcc_invariants, PccVivace::new());
cc_fuzz_test!(sprout_invariants, Sprout::new());
cc_fuzz_test!(verus_invariants, Verus::new());
cc_fuzz_test!(xcp_invariants, XcpSender::new());
cc_fuzz_test!(rcp_invariants, RcpSender::new());
cc_fuzz_test!(vcp_invariants, VcpSender::new());
cc_fuzz_test!(
    abc_invariants,
    abc_repro::abc_core::sender::AbcSender::new()
);
