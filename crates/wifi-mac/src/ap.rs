//! The 802.11n access-point node: A-MPDU batch transmission over a
//! time-varying MCS, block-ACK timing, and the ABC link-rate estimator in
//! the loop (§4.1, §6.1).
//!
//! Model: when the radio is idle and the queue non-empty, the AP locks a
//! batch of up to `M` frames, transmits for `Σbits/R + h(t)` where `h(t)`
//! is the per-batch overhead (channel contention, PHY preamble, block-ACK
//! reception — independent of batch size, Eq. 7), then delivers all frames
//! at the block-ACK instant and records the batch with the estimator. The
//! estimator's capacity estimate µ̂ is fed to the qdisc before dequeueing,
//! so an ABC qdisc computes its target rate from estimated (not oracle)
//! capacity — exactly the deployed-prototype configuration.

use crate::estimator::{BatchSample, EstimatorConfig, WifiRateEstimator};
use crate::mcs::{mcs_rate, McsProcess};
use netsim::event::EventKind;
use netsim::metrics::Metrics;
use netsim::node::{Context, Node};
use netsim::packet::Packet;
use netsim::queue::Qdisc;
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BATCH_DONE: u64 = 1;

/// Per-batch overhead model: `base + U(0, jitter)`, plus an occasional
/// contention spike (the "crowded computer lab" of §6.3).
#[derive(Debug, Clone, Copy)]
pub struct OverheadModel {
    pub base: SimDuration,
    pub jitter: SimDuration,
    pub spike_prob: f64,
    pub spike_max: SimDuration,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            base: SimDuration::from_micros(800),
            jitter: SimDuration::from_micros(1400),
            spike_prob: 0.05,
            spike_max: SimDuration::from_millis(4),
        }
    }
}

impl OverheadModel {
    fn sample(&self, rng: &mut StdRng) -> SimDuration {
        let mut h = self.base + SimDuration::from_nanos(rng.gen_range(0..=self.jitter.as_nanos()));
        if rng.gen::<f64>() < self.spike_prob {
            h += SimDuration::from_nanos(rng.gen_range(0..=self.spike_max.as_nanos()));
        }
        h
    }

    /// Expected overhead (ignoring spikes), for ground-truth capacity.
    pub fn mean(&self) -> SimDuration {
        self.base + self.jitter / 2
    }
}

#[derive(Debug, Clone, Copy)]
pub struct WifiApConfig {
    /// Maximum frames per A-MPDU (M).
    pub max_batch: u32,
    pub overhead: OverheadModel,
    pub seed: u64,
    /// Feed the estimator's µ̂ to the qdisc (`true` = the ABC prototype;
    /// `false` leaves passive qdiscs undisturbed — they ignore it anyway).
    pub feed_estimate: bool,
}

impl Default for WifiApConfig {
    fn default() -> Self {
        WifiApConfig {
            max_batch: 20,
            overhead: OverheadModel::default(),
            seed: 0x11f1,
            feed_estimate: true,
        }
    }
}

pub struct WifiAp {
    cfg: WifiApConfig,
    qdisc: Box<dyn Qdisc>,
    mcs: Box<dyn McsProcess>,
    estimator: WifiRateEstimator,
    rng: StdRng,
    // Pooled Deliver boxes ride through the batch unchanged.
    #[allow(clippy::vec_box)]
    in_flight: Vec<Box<Packet>>,
    busy: bool,
    batch_started: SimTime,
    phy_rate: Rate,
    tag: &'static str,
    metrics: Option<Metrics>,
    pub batches_sent: u64,
}

impl WifiAp {
    pub fn new(cfg: WifiApConfig, qdisc: Box<dyn Qdisc>, mcs: Box<dyn McsProcess>) -> Self {
        let est_cfg = EstimatorConfig {
            max_batch: cfg.max_batch,
            ..Default::default()
        };
        WifiAp {
            cfg,
            qdisc,
            mcs,
            estimator: WifiRateEstimator::new(est_cfg),
            rng: StdRng::seed_from_u64(cfg.seed),
            in_flight: Vec::new(),
            busy: false,
            batch_started: SimTime::ZERO,
            phy_rate: Rate::ZERO,
            tag: "wifi",
            metrics: None,
            batches_sent: 0,
        }
    }

    pub fn with_metrics(mut self, tag: &'static str, metrics: Metrics) -> Self {
        self.tag = tag;
        self.metrics = Some(metrics);
        self
    }

    pub fn estimator(&self) -> &WifiRateEstimator {
        &self.estimator
    }

    pub fn estimator_mut(&mut self) -> &mut WifiRateEstimator {
        &mut self.estimator
    }

    pub fn qdisc(&self) -> &dyn Qdisc {
        &*self.qdisc
    }

    /// Ground-truth full-batch capacity at `t` (for Fig. 5 accuracy):
    /// `M·S / (M·S/R(t) + E[h])`, with S = MTU frames.
    pub fn true_capacity_at(&mut self, t: SimTime) -> Rate {
        let r = mcs_rate(self.mcs.mcs_at(t)).bps();
        let m = self.cfg.max_batch as f64;
        let frame_bits = netsim::packet::MTU_BYTES as f64 * 8.0;
        let t_full = m * frame_bits / r + self.cfg.overhead.mean().as_secs_f64();
        Rate::from_bps(m * frame_bits / t_full)
    }

    fn start_batch(&mut self, ctx: &mut Context) {
        if self.busy || self.qdisc.is_empty() {
            return;
        }
        let now = ctx.now();
        // µ̂ from the estimator drives the ABC target rate
        if self.cfg.feed_estimate {
            let mu = self.estimator.estimate(now);
            if !mu.is_zero() {
                self.qdisc.on_capacity(mu, now);
            }
        }
        self.phy_rate = mcs_rate(self.mcs.mcs_at(now));
        let mut bits = 0.0;
        while (self.in_flight.len() as u32) < self.cfg.max_batch {
            match self.qdisc.dequeue(now) {
                Some(p) => {
                    bits += p.size as f64 * 8.0;
                    self.in_flight.push(p);
                }
                None => break,
            }
        }
        if self.in_flight.is_empty() {
            return; // qdisc dropped everything it held
        }
        let h = self.cfg.overhead.sample(&mut self.rng);
        let dur = SimDuration::from_secs_f64(bits / self.phy_rate.bps()) + h;
        self.busy = true;
        self.batch_started = now;
        ctx.set_timer(dur, BATCH_DONE);
    }

    fn finish_batch(&mut self, ctx: &mut Context) {
        let now = ctx.now();
        self.busy = false;
        self.batches_sent += 1;
        let b = self.in_flight.len() as u32;
        if b > 0 {
            self.estimator.on_batch(BatchSample {
                when: now,
                batch: b,
                frame_bytes: netsim::packet::MTU_BYTES,
                phy_rate: self.phy_rate,
                inter_ack: now.since(self.batch_started),
            });
        }
        for pkt in self.in_flight.drain(..) {
            if let Some(m) = &self.metrics {
                m.borrow_mut()
                    .on_link_dequeue(self.tag, now, now.since(pkt.enqueued_at), pkt.size);
            }
            if pkt.next_hop().is_some() {
                ctx.forward_boxed(pkt);
            } else {
                ctx.recycle(pkt);
            }
        }
        self.start_batch(ctx);
    }
}

impl Node for WifiAp {
    netsim::impl_node_downcast!();

    fn handle(&mut self, ctx: &mut Context, event: EventKind) {
        match event {
            EventKind::Deliver(pkt) => {
                let ok = self.qdisc.enqueue(pkt, ctx.now());
                if !ok {
                    if let Some(m) = &self.metrics {
                        m.borrow_mut().on_link_drop(self.tag, ctx.now());
                    }
                }
                self.start_batch(ctx);
            }
            EventKind::Timer(BATCH_DONE) => self.finish_batch(ctx),
            EventKind::Timer(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::FixedMcs;
    use netsim::metrics::new_hub;
    use netsim::packet::{Ecn, Feedback, FlowId, NodeId, Route};
    use netsim::queue::DropTail;
    use netsim::sim::Simulator;

    struct Recorder {
        arrivals: Vec<(SimTime, u64)>,
    }

    impl Node for Recorder {
        netsim::impl_node_downcast!();
        fn handle(&mut self, ctx: &mut Context, ev: EventKind) {
            if let EventKind::Deliver(p) = ev {
                self.arrivals.push((ctx.now(), p.seq));
            }
        }
    }

    struct Blaster {
        n: u64,
        gap: SimDuration,
        ap: NodeId,
        sink: NodeId,
        sent: u64,
    }

    impl Node for Blaster {
        netsim::impl_node_downcast!();
        fn start(&mut self, ctx: &mut Context) {
            ctx.set_timer(SimDuration::ZERO, 0);
        }
        fn handle(&mut self, ctx: &mut Context, ev: EventKind) {
            if let EventKind::Timer(_) = ev {
                if self.sent < self.n {
                    let route = Route::new(vec![
                        (self.ap, SimDuration::ZERO),
                        (self.sink, SimDuration::from_micros(100)),
                    ]);
                    ctx.forward(Packet {
                        flow: FlowId(1),
                        seq: self.sent,
                        size: 1500,
                        ecn: Ecn::NotEct,
                        feedback: Feedback::None,
                        abc_capable: false,
                        sent_at: ctx.now(),
                        retransmit: false,
                        ack: None,
                        route,
                        hop: 0,
                        enqueued_at: ctx.now(),
                    });
                    self.sent += 1;
                    ctx.set_timer(self.gap, 0);
                }
            }
        }
    }

    fn run_ap(n: u64, gap_us: u64, mcs: u8) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new();
        let hub = new_hub();
        let ap_id = sim.reserve_node();
        let rec_id = sim.reserve_node();
        sim.install_node(
            ap_id,
            Box::new(
                WifiAp::new(
                    WifiApConfig::default(),
                    Box::new(DropTail::new(250)),
                    Box::new(FixedMcs(mcs)),
                )
                .with_metrics("wifi", hub),
            ),
        );
        sim.install_node(rec_id, Box::new(Recorder { arrivals: vec![] }));
        sim.add_node(Box::new(Blaster {
            n,
            gap: SimDuration::from_micros(gap_us),
            ap: ap_id,
            sink: rec_id,
            sent: 0,
        }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
        (sim, ap_id, rec_id)
    }

    fn ap_of(sim: &Simulator, id: NodeId) -> &WifiAp {
        sim.node(id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap()
    }

    #[test]
    fn batches_deliver_together() {
        // burst of 40 packets: two full batches of 20
        let (sim, ap_id, rec_id) = run_ap(40, 1, 1);
        let rec: &Recorder = sim
            .node(rec_id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        assert_eq!(rec.arrivals.len(), 40);
        let ap = ap_of(&sim, ap_id);
        // 40 packets injected at 1 µs apart: the first batch locks almost
        // immediately (small b), the rest drain in full batches
        assert!(ap.batches_sent >= 2 && ap.batches_sent < 40);
        // frames within one batch arrive at the same instant
        let mut same_time = 0;
        for w in rec.arrivals.windows(2) {
            if w[0].0 == w[1].0 {
                same_time += 1;
            }
        }
        assert!(same_time > 10, "batched arrivals should share timestamps");
    }

    #[test]
    fn backlogged_throughput_matches_true_capacity() {
        // saturate: 13 Mbit/s PHY (MCS 1), M=20 → µ ≈ 11.4 Mbit/s with
        // mean overhead 1.5 ms
        let (mut sim_owner, ap_id, rec_id) = {
            let (s, a, r) = run_ap(200_000, 500, 1); // 24 Mbit/s offered
            (s, a, r)
        };
        let delivered = {
            let rec: &Recorder = sim_owner
                .node(rec_id)
                .and_then(|n| n.as_any().downcast_ref())
                .unwrap();
            rec.arrivals.len()
        };
        let tput = delivered as f64 * 12_000.0 / 30.0;
        // recompute the truth (needs &mut for the MCS process)
        let truth = {
            let ap_mut: &mut WifiAp = sim_owner
                .node_mut(ap_id)
                .and_then(|n| n.as_any_mut().downcast_mut())
                .unwrap();
            ap_mut.true_capacity_at(SimTime::ZERO).bps()
        };
        let _ = ap_id;
        assert!(
            (tput - truth).abs() / truth < 0.1,
            "tput {tput} vs truth {truth}"
        );
    }

    #[test]
    fn estimator_tracks_capacity_when_not_backlogged() {
        // offered ~3 Mbit/s ≪ capacity (~11.4): batches are small, yet the
        // estimate must land within 5% of the full-batch capacity (Fig. 5)
        let (mut sim, ap_id, _rec) = run_ap(200_000, 4_000, 1);
        let (est, truth) = {
            let ap: &mut WifiAp = sim
                .node_mut(ap_id)
                .and_then(|n| n.as_any_mut().downcast_mut())
                .unwrap();
            let t = SimTime::ZERO + SimDuration::from_secs(29);
            (ap.estimator.estimate(t).bps(), ap.true_capacity_at(t).bps())
        };
        // the 2×cr cap may bind below the truth at this low offered load;
        // accept either the capped value or a within-5% estimate
        let offered = 3e6;
        if est < truth * 0.95 {
            assert!(
                est >= 2.0 * offered * 0.5,
                "estimate {est} below any plausible cap (truth {truth})"
            );
        } else {
            assert!(
                (est - truth).abs() / truth < 0.05,
                "est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn batch_log_shows_linear_inter_ack_relationship() {
        // Fig. 4: mean inter-ACK time grows linearly in batch size with
        // slope S/R
        let (sim, ap_id, _rec) = run_ap(200_000, 900, 1);
        let ap = ap_of(&sim, ap_id);
        let log = ap.estimator().batch_log();
        assert!(log.len() > 100, "too few batches: {}", log.len());
        // regress T_IA on b
        let n = log.len() as f64;
        let sx: f64 = log.iter().map(|s| s.batch as f64).sum();
        let sy: f64 = log.iter().map(|s| s.inter_ack.as_secs_f64()).sum();
        let sxx: f64 = log.iter().map(|s| (s.batch as f64).powi(2)).sum();
        let sxy: f64 = log
            .iter()
            .map(|s| s.batch as f64 * s.inter_ack.as_secs_f64())
            .sum();
        let denom = n * sxx - sx * sx;
        assert!(denom.abs() > 1e-12, "no batch-size variation");
        let slope = (n * sxy - sx * sy) / denom;
        let expected = 12_000.0 / 13e6; // S/R seconds per frame
        assert!(
            (slope - expected).abs() / expected < 0.15,
            "slope {slope} vs S/R {expected}"
        );
    }
}
