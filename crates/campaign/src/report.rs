//! Run-health report rendered from a run ledger: wall-time breakdown,
//! worker utilization, straggler table, retry/watchdog/error rollup —
//! and, given the run's telemetry sidecars, cross-point aggregation
//! that merges the bit-deterministic counters and [`LogHistogram`]s
//! across all points grouped by axis value (histogram merging is
//! associative and commutative, so the grouping order cannot change
//! the numbers).

use crate::json::{self, Value};
use crate::runlog::{stats, RunLedger};
use netsim::telemetry::LogHistogram;
use std::collections::BTreeMap;
use std::fmt::Write;
use std::path::Path;

/// Deterministic (sim-time) aggregates parsed out of one point's
/// telemetry sidecar: counters and histograms, summed/merged over
/// scopes within the point.
#[derive(Debug, Clone, Default)]
pub struct SidecarAgg {
    /// `counter name → total` over every scope in the sidecar.
    pub counters: BTreeMap<String, u64>,
    /// `histogram name → merged histogram` over every scope.
    pub hists: BTreeMap<String, LogHistogram>,
}

impl SidecarAgg {
    /// Fold another point's aggregates in.
    pub fn merge(&mut self, other: &SidecarAgg) {
        for (k, n) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += n;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }
}

/// Parse the counter and histogram rows of an `abc-telemetry/v1`
/// sidecar (gauge samples are skipped — aggregation wants totals and
/// distributions, not time series).
pub fn parse_sidecar(text: &str) -> Result<SidecarAgg, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (i, first) = lines.next().ok_or_else(|| "empty sidecar".to_string())?;
    let header = json::parse(first).map_err(|e| format!("sidecar line {}: {e}", i + 1))?;
    match header.get("schema").and_then(Value::as_str) {
        Some(s) if s == netsim::telemetry::SIDECAR_SCHEMA => {}
        other => return Err(format!("sidecar line 1: schema {other:?}")),
    }
    let mut agg = SidecarAgg::default();
    for (i, line) in lines {
        let row = json::parse(line).map_err(|e| format!("sidecar line {}: {e}", i + 1))?;
        if let (Some(counter), Some(n)) = (
            row.get("counter").and_then(Value::as_str),
            row.get("n").and_then(Value::as_f64),
        ) {
            *agg.counters.entry(counter.to_string()).or_insert(0) += n as u64;
        } else if let (Some(hist), Some(buckets)) = (
            row.get("hist").and_then(Value::as_str),
            row.get("buckets").and_then(Value::as_arr),
        ) {
            let h = agg.hists.entry(hist.to_string()).or_default();
            for pair in buckets {
                let (Some(b), Some(n)) = (
                    pair.as_arr()
                        .and_then(|a| a.first())
                        .and_then(Value::as_f64),
                    pair.as_arr().and_then(|a| a.get(1)).and_then(Value::as_f64),
                ) else {
                    return Err(format!("sidecar line {}: malformed bucket pair", i + 1));
                };
                h.add_bucket(b as usize, n as u64);
            }
        }
        // sample and events rows are skipped
    }
    Ok(agg)
}

fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Render the run-health report. With `sidecar_dir` set, sidecars named
/// `<ordinal>.jsonl` are read for every completed ordinal and their
/// counters/histograms aggregated per axis value.
pub fn render_report(ledger: &RunLedger, sidecar_dir: Option<&Path>) -> Result<String, String> {
    let s = stats(ledger);
    let h = &ledger.header;
    let mut out = String::new();
    writeln!(out, "# run report: {}", h.campaign).unwrap();
    let scale = h.scale.as_deref().unwrap_or("?");
    let shard = match h.shard {
        Some((k, n)) => format!("{k}/{n}"),
        None => "-".to_string(),
    };
    writeln!(
        out,
        "scale {scale} · {} point(s) · {} worker(s) · chunk {} · shard {shard} · retries {} · profile {}",
        h.points, s.workers, h.chunk, h.retries, h.profile
    )
    .unwrap();

    writeln!(out, "\n## wall time").unwrap();
    writeln!(out, "total            {:>10.2} s", secs(s.wall_ns)).unwrap();
    writeln!(
        out,
        "point execution  {:>10.2} s busy across {} worker(s) ({:.0}% utilization)",
        secs(s.busy_ns),
        s.workers,
        100.0 * s.utilization
    )
    .unwrap();
    writeln!(out, "store flushes    {:>10.2} s", secs(s.flush_ns)).unwrap();
    writeln!(
        out,
        "sim events       {:>10} over completed attempts",
        s.events
    )
    .unwrap();

    writeln!(out, "\n## workers").unwrap();
    let mut per_worker: BTreeMap<usize, (u64, usize)> = BTreeMap::new();
    for p in &ledger.points {
        let e = per_worker.entry(p.worker).or_insert((0, 0));
        e.0 += p.end_ns.saturating_sub(p.start_ns);
        e.1 += 1;
    }
    for (w, (busy, n)) in &per_worker {
        let util = if s.wall_ns == 0 {
            0.0
        } else {
            100.0 * *busy as f64 / s.wall_ns as f64
        };
        writeln!(
            out,
            "worker {w}: {n} attempt(s), {:.2} s busy ({util:.0}%)",
            secs(*busy)
        )
        .unwrap();
    }

    writeln!(out, "\n## stragglers").unwrap();
    writeln!(
        out,
        "point wall time p50 {:.1} ms · p99 {:.1} ms · max {:.1} ms · straggler ratio {:.1}x",
        ms(s.p50_ns),
        ms(s.p99_ns),
        ms(s.max_ns),
        s.straggler_ratio
    )
    .unwrap();
    let mut slowest: Vec<_> = ledger.points.iter().collect();
    slowest.sort_by_key(|p| std::cmp::Reverse(p.end_ns.saturating_sub(p.start_ns)));
    for p in slowest.iter().take(5) {
        writeln!(
            out,
            "  {:>8.1} ms  #{} {} (worker {}, attempt {}, {})",
            ms(p.end_ns.saturating_sub(p.start_ns)),
            p.ordinal,
            p.coords.key(),
            p.worker,
            p.attempt,
            p.outcome.name()
        )
        .unwrap();
    }

    writeln!(out, "\n## outcomes").unwrap();
    writeln!(
        out,
        "{} ok · {} failed · {} attempt(s) · {} retr{}",
        s.ok_points,
        s.failed_points,
        s.attempts,
        s.retries,
        if s.retries == 1 { "y" } else { "ies" }
    )
    .unwrap();
    let mut failures: BTreeMap<&str, usize> = BTreeMap::new();
    for p in &ledger.points {
        if !p.outcome.is_ok() {
            *failures.entry(p.outcome.name()).or_insert(0) += 1;
        }
    }
    for (kind, n) in &failures {
        writeln!(out, "  {kind}: {n} attempt(s)").unwrap();
    }

    if let Some(dir) = sidecar_dir {
        render_sidecar_aggregation(&mut out, ledger, dir)?;
    }
    Ok(out)
}

/// Cross-point telemetry aggregation: merge each completed ordinal's
/// sidecar counters and histograms, grouped by every axis value.
fn render_sidecar_aggregation(
    out: &mut String,
    ledger: &RunLedger,
    dir: &Path,
) -> Result<(), String> {
    // One parse per completed ordinal (the final attempt decides).
    let mut last_ok: BTreeMap<usize, &crate::runlog::PointSpan> = BTreeMap::new();
    for p in &ledger.points {
        if p.outcome.is_ok() {
            last_ok.insert(p.ordinal, p);
        } else {
            last_ok.remove(&p.ordinal);
        }
    }
    let mut aggs: BTreeMap<usize, SidecarAgg> = BTreeMap::new();
    let mut missing = 0usize;
    for &ordinal in last_ok.keys() {
        let path = dir.join(format!("{ordinal}.jsonl"));
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let agg = parse_sidecar(&text).map_err(|e| format!("{}: {e}", path.display()))?;
                aggs.insert(ordinal, agg);
            }
            Err(_) => missing += 1,
        }
    }
    writeln!(out, "\n## telemetry aggregation ({})", dir.display()).unwrap();
    if aggs.is_empty() {
        writeln!(out, "no sidecars found for the completed ordinals").unwrap();
        return Ok(());
    }
    if missing > 0 {
        writeln!(out, "({missing} completed ordinal(s) without a sidecar)").unwrap();
    }
    // Axis order from the first completed span; label order first-seen.
    let axes: Vec<String> = last_ok
        .values()
        .next()
        .map(|p| p.coords.0.iter().map(|(a, _)| a.clone()).collect())
        .unwrap_or_default();
    for axis in &axes {
        writeln!(out, "\n### axis {axis}").unwrap();
        let mut labels: Vec<&str> = Vec::new();
        for p in last_ok.values() {
            if let Some(l) = p.coords.get(axis) {
                if !labels.contains(&l) {
                    labels.push(l);
                }
            }
        }
        for label in labels {
            let mut merged = SidecarAgg::default();
            let mut n = 0usize;
            for (ordinal, p) in &last_ok {
                if p.coords.get(axis) == Some(label) {
                    if let Some(agg) = aggs.get(ordinal) {
                        merged.merge(agg);
                        n += 1;
                    }
                }
            }
            writeln!(out, "{axis}={label} ({n} point(s)):").unwrap();
            for (name, h) in &merged.hists {
                if h.is_empty() {
                    continue;
                }
                // qdelay histograms record nanoseconds (ms × 1e6).
                let q = |q: f64| h.quantile_upper(q).unwrap_or(0) as f64 / 1e6;
                writeln!(
                    out,
                    "  hist {name}: {} sample(s), p50 ≤ {:.3} ms, p99 ≤ {:.3} ms",
                    h.count(),
                    q(0.50),
                    q(0.99)
                )
                .unwrap();
            }
            if !merged.counters.is_empty() {
                let rendered: Vec<String> = merged
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                writeln!(out, "  counters: {}", rendered.join(" ")).unwrap();
            }
            let hit = merged.counters.get("pool_hit").copied().unwrap_or(0);
            let miss = merged.counters.get("pool_miss").copied().unwrap_or(0);
            if hit + miss > 0 {
                writeln!(
                    out,
                    "  pool hit rate: {:.3}",
                    hit as f64 / (hit + miss) as f64
                )
                .unwrap();
            }
            let samples = merged.counters.get("wheel_samples").copied().unwrap_or(0);
            if samples > 0 {
                let mean =
                    |k: &str| merged.counters.get(k).copied().unwrap_or(0) as f64 / samples as f64;
                writeln!(
                    out,
                    "  wheel occupancy mean: near {:.1} · slots {:.1} · overflow {:.1}",
                    mean("wheel_near"),
                    mean("wheel_slots"),
                    mean("wheel_overflow")
                )
                .unwrap();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_parse_merges_counters_and_rebuilds_histograms() {
        let text = concat!(
            "{\"schema\":\"abc-telemetry/v1\",\"signals\":[\"qdelay_ms\"],\"sample_every_ns\":0}\n",
            "{\"t_ns\":5,\"signal\":\"cwnd\",\"scope\":\"flow:0\",\"v\":10}\n",
            "{\"counter\":\"rto_arm\",\"scope\":\"flow:0\",\"n\":3}\n",
            "{\"counter\":\"rto_arm\",\"scope\":\"flow:1\",\"n\":4}\n",
            "{\"hist\":\"qdelay_ns\",\"scope\":\"link:b\",\"count\":3,\"buckets\":[[0,1],[21,2]]}\n",
        );
        let agg = parse_sidecar(text).expect("parses");
        assert_eq!(agg.counters.get("rto_arm"), Some(&7));
        let h = agg.hists.get("qdelay_ns").expect("hist");
        assert_eq!(h.count(), 3);
        // merging two parses doubles everything (associative + commutative)
        let mut twice = agg.clone();
        twice.merge(&agg);
        assert_eq!(twice.counters.get("rto_arm"), Some(&14));
        assert_eq!(twice.hists.get("qdelay_ns").unwrap().count(), 6);
    }

    #[test]
    fn foreign_schema_is_rejected() {
        assert!(parse_sidecar("{\"schema\":\"nope/v9\"}\n").is_err());
    }
}
