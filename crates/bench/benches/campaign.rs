//! The campaign executor's perf trajectory: times the `tiny` preset end
//! to end (expand → chunked parallel execution → serialize) and appends
//! one entry to `BENCH_campaign.json` at the repo root, so sweep
//! throughput accumulates history across commits.
//!
//! ```text
//! cargo bench -p bench --bench campaign
//! ```

use campaign::json::{self, Value};
use campaign::presets;
use campaign::runner::{run_campaign, RunOptions};
use campaign::store::ResultsStore;
use experiments::figures::Scale;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

const ITERS: usize = 3;

fn main() {
    let campaign = presets::tiny(Scale::Tiny);
    let points = campaign.expand();
    let scenarios = points.len();
    let sim_secs: f64 = points.iter().map(|p| p.spec.duration.as_secs_f64()).sum();
    let opts = RunOptions::quiet();
    let jobs = match opts.jobs {
        Some(n) => n,
        None => experiments::engine::ScenarioEngine::new().threads(),
    };

    // one warmup, then best-of-N (the trajectory tracks the kernel, not
    // scheduler noise)
    let mut store_bytes = 0usize;
    run_campaign(&campaign, &opts);
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let t = Instant::now();
        let records = run_campaign(&campaign, &opts);
        let store = ResultsStore::new(&campaign, records);
        store_bytes = store.to_jsonl().len();
        best = best.min(t.elapsed().as_secs_f64());
    }

    // One instrumented run outside the timed loop: the run ledger's
    // utilization and straggler ratio ride along as context (no
    // `_per_sec` suffix, so bench-diff never gates on them).
    let ledger_path = std::env::temp_dir().join(format!(
        "abc-bench-campaign-runlog-{}.jsonl",
        std::process::id()
    ));
    let ledger_opts = opts
        .clone()
        .with_runlog(Some(campaign::RunLogConfig::new(ledger_path.clone())));
    run_campaign(&campaign, &ledger_opts);
    let ledger_stats = campaign::runlog::RunLedger::load(&ledger_path)
        .map(|l| campaign::runlog::stats(&l))
        .expect("bench run ledger loads");
    let _ = std::fs::remove_file(&ledger_path);

    let entry = Value::Obj(vec![
        ("schema".into(), Value::str("abc-campaign-bench/v1")),
        ("preset".into(), Value::str("tiny")),
        ("scenarios".into(), Value::num(scenarios as f64)),
        ("sim_secs".into(), Value::num(sim_secs)),
        ("jobs".into(), Value::num(jobs as f64)),
        ("wall_secs_best".into(), Value::num(best)),
        (
            "scenarios_per_sec".into(),
            Value::num(scenarios as f64 / best),
        ),
        ("sim_x_realtime".into(), Value::num(sim_secs / best)),
        ("store_bytes".into(), Value::num(store_bytes as f64)),
        (
            "runlog_worker_utilization".into(),
            Value::num(ledger_stats.utilization),
        ),
        (
            "runlog_straggler_ratio".into(),
            Value::num(ledger_stats.straggler_ratio),
        ),
        (
            "unix_time".into(),
            Value::num(
                SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_secs() as f64)
                    .unwrap_or(0.0),
            ),
        ),
    ]);

    // BENCH_campaign.json is a JSON array of entries, newest last
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    let mut trajectory = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .and_then(|v| match v {
            Value::Arr(items) => Some(items),
            _ => None,
        })
        .unwrap_or_default();
    trajectory.push(entry);
    let mut out = String::from("[\n");
    for (i, e) in trajectory.iter().enumerate() {
        out.push_str(&e.render());
        out.push_str(if i + 1 < trajectory.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("]\n");
    std::fs::write(path, &out).expect("write BENCH_campaign.json");

    println!(
        "campaign/tiny: {scenarios} scenarios ({sim_secs:.0} sim-s) in {best:.3}s best-of-{ITERS} \
         on {jobs} worker(s) = {:.1} scenarios/s, {:.1}x realtime; trajectory now {} entries",
        scenarios as f64 / best,
        sim_secs / best,
        trajectory.len()
    );
}
