//! Run ledger → Chrome trace-event JSON, viewable in Perfetto (or
//! `chrome://tracing`): one track per worker slot carrying point spans,
//! dedicated tracks for wave boundaries and store flushes, and instant
//! events marking retries, panics, and watchdog cancellations.
//!
//! The output is the classic "JSON object format": a `traceEvents`
//! array of `ph:"B"`/`ph:"E"` duration pairs (balanced by construction
//! — CI counts them), `ph:"i"` instants, and `ph:"M"` metadata naming
//! the tracks. Timestamps are microseconds from run start.

use crate::json::Value;
use crate::runlog::RunLedger;

/// Synthetic thread id carrying wave-boundary spans.
pub const WAVE_TID: u64 = 10_000;

/// Synthetic thread id carrying store-flush spans.
pub const FLUSH_TID: u64 = 10_001;

fn ts_us(ns: u64) -> Value {
    Value::num(ns as f64 / 1000.0)
}

fn meta(name: &str, tid: u64, value: &str) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::str(name)),
        ("ph".into(), Value::str("M")),
        ("pid".into(), Value::num(1.0)),
        ("tid".into(), Value::num(tid as f64)),
        (
            "args".into(),
            Value::Obj(vec![("name".into(), Value::str(value))]),
        ),
    ])
}

fn begin(name: &str, cat: &str, ts_ns: u64, tid: u64, args: Vec<(String, Value)>) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::str(name)),
        ("cat".into(), Value::str(cat)),
        ("ph".into(), Value::str("B")),
        ("ts".into(), ts_us(ts_ns)),
        ("pid".into(), Value::num(1.0)),
        ("tid".into(), Value::num(tid as f64)),
        ("args".into(), Value::Obj(args)),
    ])
}

fn end(ts_ns: u64, tid: u64) -> Value {
    Value::Obj(vec![
        ("ph".into(), Value::str("E")),
        ("ts".into(), ts_us(ts_ns)),
        ("pid".into(), Value::num(1.0)),
        ("tid".into(), Value::num(tid as f64)),
    ])
}

fn instant(name: &str, cat: &str, ts_ns: u64, tid: u64, args: Vec<(String, Value)>) -> Value {
    Value::Obj(vec![
        ("name".into(), Value::str(name)),
        ("cat".into(), Value::str(cat)),
        ("ph".into(), Value::str("i")),
        ("s".into(), Value::str("t")),
        ("ts".into(), ts_us(ts_ns)),
        ("pid".into(), Value::num(1.0)),
        ("tid".into(), Value::num(tid as f64)),
        ("args".into(), Value::Obj(args)),
    ])
}

/// Convert a parsed ledger into Chrome trace-event JSON. Every point
/// span in the ledger — each attempt, retries included — becomes one
/// `B`/`E` pair on its worker's track, so the trace covers every
/// executed point.
pub fn chrome_trace(ledger: &RunLedger) -> String {
    let mut events: Vec<Value> = Vec::new();
    events.push(meta(
        "process_name",
        0,
        &format!("abc-campaign {}", ledger.header.campaign),
    ));
    let mut workers: Vec<usize> = ledger.points.iter().map(|p| p.worker).collect();
    workers.sort_unstable();
    workers.dedup();
    for w in &workers {
        events.push(meta("thread_name", *w as u64, &format!("worker {w}")));
    }
    if !ledger.waves.is_empty() {
        events.push(meta("thread_name", WAVE_TID, "waves"));
    }
    if !ledger.flushes.is_empty() {
        events.push(meta("thread_name", FLUSH_TID, "store flushes"));
    }
    for p in &ledger.points {
        let tid = p.worker as u64;
        let mut args = vec![
            ("ordinal".to_string(), Value::num(p.ordinal as f64)),
            ("attempt".to_string(), Value::num(p.attempt as f64)),
            ("outcome".to_string(), Value::str(p.outcome.name())),
            ("events".to_string(), Value::num(p.events as f64)),
            ("events_per_sec".to_string(), Value::num(p.events_per_sec)),
        ];
        if let Some(reason) = p.outcome.reason() {
            args.push(("reason".to_string(), Value::str(reason)));
        }
        if let Some(prof) = &p.profile {
            args.push((
                "profile".to_string(),
                Value::Obj(vec![
                    ("deliver_frac".into(), Value::num(prof.deliver_frac)),
                    ("timer_frac".into(), Value::num(prof.timer_frac)),
                    ("batch_frac".into(), Value::num(prof.batch_frac)),
                    ("pool_hit_rate".into(), Value::num(prof.pool_hit_rate)),
                ]),
            ));
        }
        let name = format!("#{} {}", p.ordinal, p.coords.key());
        events.push(begin(&name, "point", p.start_ns, tid, args));
        if p.attempt > 0 {
            events.push(instant(
                "retry",
                "fault",
                p.start_ns,
                tid,
                vec![
                    ("ordinal".to_string(), Value::num(p.ordinal as f64)),
                    ("attempt".to_string(), Value::num(p.attempt as f64)),
                ],
            ));
        }
        if let Some(reason) = p.outcome.reason() {
            events.push(instant(
                p.outcome.name(),
                "fault",
                p.end_ns,
                tid,
                vec![
                    ("ordinal".to_string(), Value::num(p.ordinal as f64)),
                    ("reason".to_string(), Value::str(reason)),
                ],
            ));
        }
        events.push(end(p.end_ns, tid));
    }
    for w in &ledger.waves {
        events.push(begin(
            &format!("wave {}", w.index),
            "wave",
            w.start_ns,
            WAVE_TID,
            vec![("points".to_string(), Value::num(w.points as f64))],
        ));
        events.push(end(w.end_ns, WAVE_TID));
    }
    for f in &ledger.flushes {
        events.push(begin(
            &format!("flush {}", f.wave),
            "flush",
            f.start_ns,
            FLUSH_TID,
            Vec::new(),
        ));
        events.push(end(f.end_ns, FLUSH_TID));
    }
    Value::Obj(vec![
        ("displayTimeUnit".into(), Value::str("ms")),
        ("traceEvents".into(), Value::Arr(events)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::runlog::{LedgerHeader, PointSpan, SpanOutcome, WaveSpan};
    use crate::spec::Coords;

    fn tiny_ledger() -> RunLedger {
        RunLedger {
            header: LedgerHeader {
                campaign: "t".into(),
                scale: None,
                points: 2,
                workers: 2,
                chunk: 32,
                shard: None,
                retries: 1,
                watchdog_budget_s: None,
                keep_going: false,
                profile: false,
            },
            points: vec![
                PointSpan {
                    ordinal: 0,
                    coords: Coords(vec![("seed".into(), "1".into())]),
                    attempt: 0,
                    worker: 0,
                    queued_ns: 0,
                    start_ns: 10,
                    end_ns: 100,
                    events: 50,
                    events_per_sec: 5.0e8,
                    outcome: SpanOutcome::Ok,
                    profile: None,
                },
                PointSpan {
                    ordinal: 1,
                    coords: Coords(vec![("seed".into(), "2".into())]),
                    attempt: 1,
                    worker: 1,
                    queued_ns: 0,
                    start_ns: 20,
                    end_ns: 90,
                    events: 0,
                    events_per_sec: 0.0,
                    outcome: SpanOutcome::Panic("boom".into()),
                    profile: None,
                },
            ],
            waves: vec![WaveSpan {
                index: 0,
                start_ns: 0,
                end_ns: 110,
                points: 2,
            }],
            flushes: Vec::new(),
        }
    }

    #[test]
    fn trace_has_balanced_span_pairs_and_covers_every_point() {
        let text = chrome_trace(&tiny_ledger());
        let v = json::parse(&text).expect("trace parses as JSON");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents array");
        let ph = |p: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some(p))
                .count()
        };
        assert_eq!(ph("B"), ph("E"), "unbalanced begin/end pairs");
        // 2 point spans + 1 wave span
        assert_eq!(ph("B"), 3);
        // retry + panic instants for the failed attempt
        assert_eq!(ph("i"), 2);
        assert!(text.contains("#0 seed=1") && text.contains("#1 seed=2"));
    }
}
