//! # abc-repro — a reproduction of *ABC: A Simple Explicit Congestion
//! Controller for Wireless Networks* (NSDI 2020)
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`netsim`] — the deterministic discrete-event network simulator;
//! * [`abc_core`] — the ABC sender, router, and coexistence machinery;
//! * [`baselines`] — Cubic, NewReno, Vegas, BBR, Copa, PCC-Vivace,
//!   Sprout-like, Verus-like;
//! * [`explicit`] — XCP/XCPw, RCP, VCP;
//! * [`aqm`] — CoDel, PIE, RED;
//! * [`wifi_mac`] — the 802.11n A-MPDU MAC model and ABC's link-rate
//!   estimator;
//! * [`cellular`] — Mahimahi trace parsing and synthetic carrier traces;
//! * [`experiments`] — scenario builders and per-figure harnesses;
//! * [`campaign`] — declarative sweep orchestration, the JSONL results
//!   store, aggregation, and regression gating.
//!
//! Start with `examples/quickstart.rs`, then DESIGN.md for the system
//! inventory and EXPERIMENTS.md for the paper-vs-measured results.

pub use abc_core;
pub use aqm;
pub use baselines;
pub use campaign;
pub use cellular;
pub use experiments;
pub use explicit;
pub use netsim;
pub use wifi_mac;

/// Crate-level smoke check used by the docs: the whole stack is linked.
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

#[cfg(test)]
mod tests {
    #[test]
    fn stack_links() {
        assert!(!super::version().is_empty());
        // one symbol from each member crate
        let _ = netsim::Rate::from_mbps(1.0);
        let _ = abc_core::AbcSenderConfig::default();
        let _ = baselines::Cubic::new();
        let _ = explicit::XcpSender::new();
        let _ = aqm::CodelConfig::default();
        let _ = wifi_mac::MCS_RATE_MBPS;
        assert_eq!(cellular::builtin_specs().len(), 8);
        assert!(!experiments::figures::all().is_empty());
        // the complete index: experiments' figures + the campaign-backed ones
        assert!(campaign::figures::all().len() >= 20);
    }
}
