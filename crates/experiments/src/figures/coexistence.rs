//! Coexistence figures: Fig. 6 (non-ABC bottleneck, dual windows), Fig. 7
//! (dual queue vs Cubic), Fig. 11 (cross traffic), Fig. 12 (max-min vs
//! Zombie-List under short-flow load), Fig. 13 (application-limited flows).

use super::Scale;
use crate::engine::{FlowSchedule, FlowSpec, ScenarioEngine, ScenarioSpec};
use crate::report::sparkline;
use crate::scenario::LinkSpec;
use crate::scheme::Scheme;
use crate::topos::{CoexistScenario, CrossTraffic, MixedPathScenario};
use abc_core::coexist::WeightPolicy;
use netsim::flow::TrafficSource;
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use std::fmt::Write;

/// Fig. 6: wireless rate steps every 5 s; a 12 Mbit/s wired droptail link
/// sits behind it. The flow must obey whichever window is tighter.
pub fn fig6(scale: Scale) -> String {
    let steps_s: &[(u64, f64)] = &[
        (0, 16.0),
        (5, 9.0),
        (10, 5.0),
        (15, 14.0),
        (20, 7.0),
        (25, 18.0),
        (30, 16.0),
    ];
    let reps = scale.pick(5u64, 1, 1);
    let mut schedule = Vec::new();
    for rep in 0..reps {
        for &(t, r) in steps_s {
            schedule.push((
                SimTime::ZERO + SimDuration::from_secs(rep * 35 + t),
                Rate::from_mbps(r),
            ));
        }
    }
    // Tiny runs a 2 s prefix of the single-rep schedule
    let duration = scale.pick(
        SimDuration::from_secs(reps * 35),
        SimDuration::from_secs(reps * 35),
        SimDuration::from_secs(2),
    );
    let res = MixedPathScenario {
        wireless: LinkSpec::Steps(schedule),
        wired_rate: Rate::from_mbps(12.0),
        rtt: SimDuration::from_millis(100),
        buffer_pkts: 250,
        cross: CrossTraffic::None,
        duration,
    }
    .run();
    let mut out = String::new();
    writeln!(
        out,
        "# Fig 6 — coexistence with a non-ABC (wired) bottleneck"
    )
    .unwrap();
    let wabc: Vec<(f64, f64)> = res
        .windows
        .samples
        .iter()
        .map(|&(t, a, _, _)| (t, a))
        .collect();
    let wnon: Vec<(f64, f64)> = res
        .windows
        .samples
        .iter()
        .map(|&(t, _, n, _)| (t, n))
        .collect();
    let good: Vec<(f64, f64)> = res
        .windows
        .samples
        .iter()
        .map(|&(t, _, _, g)| (t, g))
        .collect();
    writeln!(
        out,
        "wireless cap: {}",
        sparkline(&res.report.capacity_series, 60)
    )
    .unwrap();
    writeln!(out, "goodput     : {}", sparkline(&good, 60)).unwrap();
    writeln!(out, "w_abc       : {}", sparkline(&wabc, 60)).unwrap();
    writeln!(out, "w_cubic     : {}", sparkline(&wnon, 60)).unwrap();
    writeln!(
        out,
        "wireless qdelay: {}",
        sparkline(&res.wireless_qdelay, 60)
    )
    .unwrap();
    writeln!(out, "wired    qdelay: {}", sparkline(&res.wired_qdelay, 60)).unwrap();

    // regime analysis: when wireless < 12 the wireless hop binds; goodput
    // should track min(wireless, 12) throughout
    let mut err = 0.0;
    let mut n = 0;
    for &(t, _, _, g) in &res.windows.samples {
        if t < 3.0 {
            continue; // ramp
        }
        let phase = (t as u64) % 35;
        let wireless = steps_s
            .iter()
            .rev()
            .find(|&&(s, _)| phase >= s)
            .map(|&(_, r)| r)
            .unwrap_or(16.0);
        let ideal = wireless.min(12.0);
        err += ((g - ideal) / ideal).abs();
        n += 1;
    }
    writeln!(
        out,
        "mean |goodput − min(wireless, wired)| / ideal = {:.1}% over {n} samples",
        err / n as f64 * 100.0
    )
    .unwrap();
    out
}

/// Fig. 7: two ABC flows then two Cubic flows arrive one after another on
/// a dual-queue 24 Mbit/s bottleneck.
pub fn fig7(scale: Scale) -> String {
    let r = CoexistScenario {
        link_rate: Rate::from_mbps(24.0),
        n_abc: 2,
        n_cubic: 2,
        stagger: scale.pick(
            SimDuration::from_secs(25),
            SimDuration::from_secs(10),
            SimDuration::from_millis(250),
        ),
        duration: scale.secs(200, 60, 2),
        warmup: scale.secs(80, 25, 0),
        ..Default::default()
    }
    .run();
    let mut out = String::new();
    writeln!(
        out,
        "# Fig 7 — ABC and Cubic flows sharing a dual-queue ABC router"
    )
    .unwrap();
    for (name, series) in &r.series {
        writeln!(out, "{name:<8}: {}", sparkline(series, 60)).unwrap();
    }
    let abc_mean = r.abc_tputs.iter().sum::<f64>() / r.abc_tputs.len() as f64;
    let cub_mean = r.cubic_tputs.iter().sum::<f64>() / r.cubic_tputs.len() as f64;
    writeln!(
        out,
        "steady-state per-flow goodput: ABC {:.2} Mbit/s, Cubic {:.2} Mbit/s ({:+.1}% apart)",
        abc_mean,
        cub_mean,
        (abc_mean - cub_mean) / cub_mean * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "ABC-class 95p queuing delay: {:.1} ms",
        r.abc_qdelay_p95_ms
    )
    .unwrap();
    out
}

/// Fig. 11: like Fig. 6 but with on-off Cubic cross traffic contending on
/// the wired hop; ABC should track min(wireless, fair share of wired).
pub fn fig11(scale: Scale) -> String {
    let dur = scale.pick(80u64, 40, 2);
    let steps: Vec<(SimTime, Rate)> = (0..(dur / 5).max(1))
        .map(|i| {
            let rates = [10.0, 6.0, 4.0, 8.0, 3.0, 9.0, 5.0, 7.0];
            (
                SimTime::ZERO + SimDuration::from_secs(i * 5),
                Rate::from_mbps(rates[(i % 8) as usize]),
            )
        })
        .collect();
    let res = MixedPathScenario {
        wireless: LinkSpec::Steps(steps.clone()),
        wired_rate: Rate::from_mbps(12.0),
        rtt: SimDuration::from_millis(100),
        buffer_pkts: 250,
        cross: CrossTraffic::OnOffCubic {
            on: SimDuration::from_secs(20),
            off: SimDuration::from_secs(10),
        },
        duration: SimDuration::from_secs(dur),
    }
    .run();
    let mut out = String::new();
    writeln!(
        out,
        "# Fig 11 — non-ABC bottleneck with on-off Cubic cross traffic"
    )
    .unwrap();
    let good: Vec<(f64, f64)> = res
        .windows
        .samples
        .iter()
        .map(|&(t, _, _, g)| (t, g))
        .collect();
    writeln!(
        out,
        "wireless cap : {}",
        sparkline(&res.report.capacity_series, 60)
    )
    .unwrap();
    writeln!(out, "ABC goodput  : {}", sparkline(&good, 60)).unwrap();
    writeln!(out, "cross traffic: {}", sparkline(&res.cross_tput, 60)).unwrap();
    writeln!(
        out,
        "wireless qdly: {}",
        sparkline(&res.wireless_qdelay, 60)
    )
    .unwrap();

    // tracking error against the ideal rate: min(wireless, wired fair share)
    let mut err = 0.0;
    let mut n = 0;
    for &(t, _, _, g) in &res.windows.samples {
        if t < 3.0 {
            continue;
        }
        let wireless = steps
            .iter()
            .rev()
            .find(|(s, _)| t >= s.as_secs_f64())
            .map(|(_, r)| r.mbps())
            .unwrap_or(10.0);
        let cross_on = (t as u64) % 30 < 20;
        let wired_share = if cross_on { 6.0 } else { 12.0 };
        let ideal = wireless.min(wired_share);
        err += ((g - ideal) / ideal).abs();
        n += 1;
    }
    writeln!(
        out,
        "mean |goodput − ideal| / ideal = {:.1}%",
        err / n as f64 * 100.0
    )
    .unwrap();
    out
}

/// Fig. 12: 3 ABC + 3 Cubic long flows + Poisson 10-KB short flows at
/// several offered loads; max-min weights vs RCP's Zombie List.
pub fn fig12(scale: Scale) -> String {
    let loads: &[f64] = if scale.reduced() {
        &[0.125, 0.5]
    } else {
        &[0.0625, 0.125, 0.25, 0.5]
    };
    let runs = scale.pick(3u64, 1, 1);
    let mut out = String::new();
    writeln!(
        out,
        "# Fig 12 — long-flow fairness under short-flow churn (96 Mbit/s)"
    )
    .unwrap();
    for (pname, policy) in [
        ("ABC max-min", WeightPolicy::MaxMin { headroom: 0.10 }),
        ("RCP Zombie-List", WeightPolicy::ZombieList),
    ] {
        writeln!(out, "\n## {pname}").unwrap();
        writeln!(
            out,
            "{:>12} {:>22} {:>22} {:>8}",
            "load", "ABC Mbit/s (mean±sd)", "Cubic Mbit/s (mean±sd)", "gap"
        )
        .unwrap();
        for &load in loads {
            let mut abc_all = Vec::new();
            let mut cub_all = Vec::new();
            for run in 0..runs {
                let r = CoexistScenario {
                    policy,
                    short_flow_load: load,
                    duration: scale.secs(40, 40, 2),
                    warmup: scale.secs(10, 10, 0),
                    seed: 100 + run,
                    ..Default::default()
                }
                .run();
                abc_all.extend(r.abc_tputs);
                cub_all.extend(r.cubic_tputs);
            }
            let a = netsim::stats::summarize_in_place(&mut abc_all);
            let c = netsim::stats::summarize_in_place(&mut cub_all);
            writeln!(
                out,
                "{:>11.2}% {:>15.2}±{:<5.2} {:>15.2}±{:<5.2} {:>+7.1}%",
                load * 100.0,
                a.mean,
                a.std_dev,
                c.mean,
                c.std_dev,
                (c.mean - a.mean) / a.mean * 100.0
            )
            .unwrap();
        }
    }
    out
}

/// Fig. 13: one backlogged ABC flow sharing a cellular link with 200
/// application-limited ABC flows (1 Mbit/s aggregate).
pub fn fig13(scale: Scale) -> String {
    let n_limited = scale.pick(200u32, 50, 10);
    let trace = cellular::builtin("Verizon1").unwrap();
    // flow 1 backlogged, the rest rate-limited to 1 Mbit/s aggregate
    let per_flow = Rate::from_bps(1e6 / n_limited as f64);
    let mut flows = vec![FlowSpec::new("backlogged")];
    for i in 0..n_limited {
        flows.push(
            FlowSpec::new(format!("limited {}", i + 1)).app(TrafficSource::RateLimited {
                rate: per_flow,
                burst_bytes: 4500.0,
            }),
        );
    }
    let mut spec = ScenarioSpec::single(Scheme::Abc, LinkSpec::Trace(trace))
        .duration(scale.secs(60, 20, 2))
        .warmup(scale.secs(5, 5, 0));
    spec.flows = FlowSchedule::Explicit(flows);
    let mut b = ScenarioEngine::new().build(&spec);
    let limited_ids: Vec<_> = b
        .flows
        .iter()
        .filter(|(n, _)| n.starts_with("limited"))
        .map(|(_, f)| *f)
        .collect();
    b.run_to_end();
    let hub = b.hub.clone();
    let report = b.finish();
    let mut out = String::new();
    writeln!(
        out,
        "# Fig 13 — {n_limited} application-limited ABC flows + 1 backlogged"
    )
    .unwrap();
    writeln!(out, "goodput : {}", sparkline(&report.tput_series, 60)).unwrap();
    writeln!(out, "qdelay  : {}", sparkline(&report.qdelay_series, 60)).unwrap();
    let hubref = hub.borrow();
    let limited_bytes: u64 = limited_ids
        .iter()
        .filter_map(|f| hubref.flows.get(f))
        .map(|r| r.delivered_bytes)
        .sum();
    writeln!(
        out,
        "util {:>5.1}%  qdelay p95 {:>6.1} ms  app-limited aggregate {:.2} Mbit/s",
        report.utilization * 100.0,
        report.qdelay_ms.p95,
        limited_bytes as f64 * 8.0 / report.tput_series.len().max(1) as f64 / 0.1 / 1e6
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_tracks_the_binding_constraint() {
        let f = fig6(Scale::Fast);
        let err: f64 = f
            .lines()
            .find(|l| l.contains("mean |goodput"))
            .and_then(|l| l.split('=').nth(1))
            .and_then(|x| {
                x.trim()
                    .trim_end_matches(|c: char| !c.is_ascii_digit() && c != '.')
                    .split('%')
                    .next()
            })
            .and_then(|x| x.trim().parse().ok())
            .unwrap();
        assert!(err < 30.0, "tracking error {err}%");
    }

    #[test]
    fn fig12_maxmin_fairer_than_zombie() {
        let f = fig12(Scale::Fast);
        // extract the gap column for the highest load of each policy
        let gaps: Vec<f64> = f
            .lines()
            .filter(|l| l.trim_start().starts_with("50.00%"))
            .map(|l| {
                l.trim_end_matches('%')
                    .rsplit_once(' ')
                    .unwrap()
                    .1
                    .parse::<f64>()
                    .unwrap()
                    .abs()
            })
            .collect();
        assert_eq!(gaps.len(), 2, "expected one 50% row per policy:\n{f}");
        assert!(
            gaps[0] < gaps[1],
            "max-min gap {}% should beat zombie-list {}%\n{f}",
            gaps[0],
            gaps[1]
        );
    }
}
