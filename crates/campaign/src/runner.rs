//! The campaign executor: chunked dispatch of expanded points onto
//! [`ScenarioEngine::run_batch`], with progress reporting on stderr.
//!
//! Results are **bit-identical** across reruns and worker-pool sizes: the
//! engine guarantees each report is a pure function of its spec, chunking
//! only affects dispatch granularity (never result order), and progress
//! goes to stderr so the artifact stream stays clean.
//!
//! Execution is **fault-tolerant**: every point runs inside a panic
//! boundary ([`std::panic::catch_unwind`]) with an optional per-point
//! wall-clock watchdog (the simulator's cooperative
//! [`RunGuards`]). A point that panics is retried
//! a bounded number of times, then recorded as a structured
//! [`ErrorRecord`] — the store stays valid, diffable, and resumable, and
//! `--resume` re-attempts exactly the failed ordinals.
//!
//! Execution is **observable**: with a [`RunLogConfig`] (or a telemetry
//! dir, which gets a `runlog.jsonl` by default) the runner streams an
//! `abc-runlog/v1` ledger of per-attempt point spans, wave boundaries,
//! and store-flush spans (see [`crate::runlog`]). Wall-clock data lives
//! only there — the results store stays byte-identical with or without
//! the ledger and `--profile`.

use crate::runlog::{self, RunLogConfig, SpanOutcome};
use crate::spec::{Campaign, Coords};
use experiments::engine::{PointRun, ScenarioEngine, ScenarioSpec};
use experiments::report::Report;
use netsim::sim::RunGuards;
use std::io::Write;
use std::time::Instant;

/// How a campaign run is executed. `jobs: None` defers to
/// [`ScenarioEngine::new`], which honors the `ABC_JOBS` environment
/// variable and otherwise uses every core.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker-pool size; `None` defers to [`ScenarioEngine::new`].
    pub jobs: Option<usize>,
    /// Scenarios per dispatch wave. Progress is reported after each wave,
    /// so smaller chunks mean finer progress at slightly more pool churn.
    pub chunk: usize,
    /// Report progress to stderr after every chunk.
    pub progress: bool,
    /// Write one telemetry sidecar per executed point to this directory
    /// (`<ordinal>.jsonl`). Points whose spec carries no telemetry config
    /// get the default signal set. Sidecars bypass the results store, so
    /// stored bytes stay identical with or without this.
    pub telemetry_dir: Option<std::path::PathBuf>,
    /// Keep executing the remaining points after one fails (panic or
    /// watchdog abort). When `false` — the default — dispatch stops after
    /// the wave that failed; either way the failed point becomes an
    /// [`ErrorRecord`] and the store stays valid and resumable.
    pub keep_going: bool,
    /// How many extra attempts a *panicking* point gets before it is
    /// recorded as failed. Watchdog aborts are never retried — the budget
    /// would only expire again.
    pub retries: u32,
    /// Wall-clock budget per point. Exceeding it cancels the point
    /// cooperatively (via [`RunGuards`]) and records a
    /// [`ErrorKind::Watchdog`] error instead of hanging the campaign.
    pub watchdog: Option<std::time::Duration>,
    /// Write an `abc-runlog/v1` run ledger (see [`crate::runlog`]).
    /// `None` still emits one into `telemetry_dir` (as `runlog.jsonl`)
    /// when that is set.
    pub runlog: Option<RunLogConfig>,
    /// Profile every point with the wall-clock event-loop profiler and
    /// record the headline fractions on its ledger span. Wall-only:
    /// the results store is unaffected.
    pub profile: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            jobs: None,
            chunk: 32,
            progress: false,
            telemetry_dir: None,
            keep_going: false,
            retries: 1,
            watchdog: None,
            runlog: None,
            profile: false,
        }
    }
}

impl RunOptions {
    /// Quiet defaults for harnesses and tests.
    pub fn quiet() -> Self {
        RunOptions::default()
    }

    /// Set the worker-pool size (`None` = `ABC_JOBS`/all cores).
    pub fn with_jobs(mut self, jobs: Option<usize>) -> Self {
        self.jobs = jobs;
        self
    }

    /// Toggle stderr progress reporting.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Write per-point telemetry sidecars to `dir` (`None` disables).
    pub fn with_telemetry_dir(mut self, dir: Option<std::path::PathBuf>) -> Self {
        self.telemetry_dir = dir;
        self
    }

    /// Keep executing remaining points after a failure.
    pub fn with_keep_going(mut self, keep_going: bool) -> Self {
        self.keep_going = keep_going;
        self
    }

    /// Extra attempts for panicking points before recording an error.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Per-point wall-clock budget (`None` disables the watchdog).
    pub fn with_watchdog(mut self, budget: Option<std::time::Duration>) -> Self {
        self.watchdog = budget;
        self
    }

    /// Write the run ledger to this destination (`None` falls back to
    /// `telemetry_dir/runlog.jsonl` when a telemetry dir is set).
    pub fn with_runlog(mut self, runlog: Option<RunLogConfig>) -> Self {
        self.runlog = runlog;
        self
    }

    /// Profile every point and annotate its ledger span.
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    fn engine(&self) -> ScenarioEngine {
        match self.jobs {
            Some(n) => ScenarioEngine::with_threads(n),
            None => ScenarioEngine::new(),
        }
    }
}

/// One executed campaign point: its stable ordinal, coordinates, and the
/// engine's [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The point's position in the unfiltered cartesian product.
    pub ordinal: usize,
    /// `(axis, label)` coordinates in axis order.
    pub coords: Coords,
    /// The engine's full report for this point.
    pub report: Report,
}

/// Why a campaign point failed to produce a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The scenario panicked; the panic was caught at the point boundary.
    Panic,
    /// The per-point wall-clock watchdog cancelled the run.
    Watchdog,
}

impl ErrorKind {
    /// The stable store-schema name: `"panic"` or `"watchdog"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::Panic => "panic",
            ErrorKind::Watchdog => "watchdog",
        }
    }

    /// Inverse of [`ErrorKind::as_str`].
    pub fn from_name(name: &str) -> Option<ErrorKind> {
        match name {
            "panic" => Some(ErrorKind::Panic),
            "watchdog" => Some(ErrorKind::Watchdog),
            _ => None,
        }
    }
}

/// The structured failure a crashed point leaves behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointError {
    /// What went wrong.
    pub kind: ErrorKind,
    /// The panic payload, or the watchdog's abort description. Watchdog
    /// messages name the configured budget — never the elapsed time — so
    /// they are deterministic and safe to store.
    pub message: String,
}

/// A failed campaign point. The store writes these alongside the clean
/// records, so a campaign with a crashing point still leaves a valid,
/// diffable, resumable store behind.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorRecord {
    /// The point's position in the unfiltered cartesian product.
    pub ordinal: usize,
    /// `(axis, label)` coordinates in axis order.
    pub coords: Coords,
    /// What went wrong.
    pub error: PointError,
}

/// One executed point: a clean [`RunRecord`] or a structured
/// [`ErrorRecord`].
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // Ok is the overwhelmingly common case
pub enum PointOutcome {
    /// The point ran to completion.
    Ok(RunRecord),
    /// The point panicked (after retries) or tripped the watchdog.
    Err(ErrorRecord),
}

impl PointOutcome {
    /// The point's stable ordinal, whichever way it went.
    pub fn ordinal(&self) -> usize {
        match self {
            PointOutcome::Ok(r) => r.ordinal,
            PointOutcome::Err(e) => e.ordinal,
        }
    }

    /// The clean record, if the point succeeded.
    pub fn ok(self) -> Option<RunRecord> {
        match self {
            PointOutcome::Ok(r) => Some(r),
            PointOutcome::Err(_) => None,
        }
    }
}

/// Split a run's outcomes into clean records and errors, both in the
/// original (expansion) order.
pub fn split_outcomes(outcomes: Vec<PointOutcome>) -> (Vec<RunRecord>, Vec<ErrorRecord>) {
    let mut records = Vec::new();
    let mut errors = Vec::new();
    for o in outcomes {
        match o {
            PointOutcome::Ok(r) => records.push(r),
            PointOutcome::Err(e) => errors.push(e),
        }
    }
    (records, errors)
}

/// Expand and execute a campaign; `records[i]` belongs to the `i`-th
/// surviving point of [`Campaign::expand`]. Panics if any point fails —
/// use [`run_campaign_outcomes`] to observe failures as data instead.
pub fn run_campaign(campaign: &Campaign, opts: &RunOptions) -> Vec<RunRecord> {
    run_campaign_skipping(campaign, opts, &std::collections::HashSet::new())
}

/// [`run_campaign`] minus the points whose stable ordinals appear in
/// `skip` — the engine behind `abc-campaign run --resume`, which reuses an
/// interrupted store's records and executes only the missing points.
pub fn run_campaign_skipping(
    campaign: &Campaign,
    opts: &RunOptions,
    skip: &std::collections::HashSet<usize>,
) -> Vec<RunRecord> {
    expect_clean(run_campaign_with(campaign, opts, skip, |_| {}))
}

/// Expand and execute a campaign, returning every point's outcome —
/// clean reports and structured errors alike. The fault-tolerant
/// counterpart of [`run_campaign`].
pub fn run_campaign_outcomes(campaign: &Campaign, opts: &RunOptions) -> Vec<PointOutcome> {
    run_campaign_with(campaign, opts, &std::collections::HashSet::new(), |_| {})
}

fn expect_clean(outcomes: Vec<PointOutcome>) -> Vec<RunRecord> {
    outcomes
        .into_iter()
        .map(|o| match o {
            PointOutcome::Ok(r) => r,
            PointOutcome::Err(e) => panic!(
                "campaign point {} failed ({}): {}",
                e.ordinal,
                e.error.kind.as_str(),
                e.error.message
            ),
        })
        .collect()
}

/// [`run_campaign_skipping`] with a per-chunk callback: `on_chunk` sees
/// each dispatch wave's outcomes as soon as they complete, in expansion
/// order — the hook the CLI uses to stream a store to disk so an
/// interrupted run leaves every finished chunk behind for `--resume`.
pub fn run_campaign_with<F: FnMut(&[PointOutcome])>(
    campaign: &Campaign,
    opts: &RunOptions,
    skip: &std::collections::HashSet<usize>,
    on_chunk: F,
) -> Vec<PointOutcome> {
    run_points_with(campaign, campaign.expand(), opts, skip, on_chunk)
}

/// One execution attempt's wall-clock record, accumulated inside the
/// worker closure against the shared run epoch.
struct AttemptLog {
    start_ns: u64,
    end_ns: u64,
    events: u64,
    outcome: SpanOutcome,
    profile: Option<runlog::ProfileFractions>,
}

/// What one point's worker-side execution returns: the store-facing
/// result plus the ledger-facing span data (worker slot, one
/// [`AttemptLog`] per attempt).
struct PointExec {
    result: Result<PointRun, PointError>,
    worker: usize,
    attempts: Vec<AttemptLog>,
}

/// Best-effort ledger writer: an I/O error prints once and disables the
/// ledger — observability must never fail the run it observes.
struct LedgerWriter(Option<(std::io::BufWriter<std::fs::File>, std::path::PathBuf)>);

impl LedgerWriter {
    fn off() -> Self {
        LedgerWriter(None)
    }

    fn create(path: &std::path::Path) -> Self {
        match std::fs::File::create(path) {
            Ok(f) => LedgerWriter(Some((std::io::BufWriter::new(f), path.to_path_buf()))),
            Err(e) => {
                eprintln!(
                    "[abc-campaign] cannot create run ledger {}: {e}",
                    path.display()
                );
                LedgerWriter(None)
            }
        }
    }

    fn line(&mut self, line: &str) {
        let failed = match &mut self.0 {
            Some((w, path)) => match writeln!(w, "{line}") {
                Ok(()) => false,
                Err(e) => {
                    eprintln!(
                        "[abc-campaign] run ledger write to {} failed: {e} (disabling ledger)",
                        path.display()
                    );
                    true
                }
            },
            None => false,
        };
        if failed {
            self.0 = None;
        }
    }

    fn flush(&mut self) {
        let failed = match &mut self.0 {
            Some((w, path)) => match w.flush() {
                Ok(()) => false,
                Err(e) => {
                    eprintln!(
                        "[abc-campaign] run ledger flush to {} failed: {e} (disabling ledger)",
                        path.display()
                    );
                    true
                }
            },
            None => false,
        };
        if failed {
            self.0 = None;
        }
    }
}

/// ETA extrapolates from this many most-recent waves (plus the current
/// checkpoint), so one long-tail dense point early in the run stops
/// skewing the estimate for the remainder.
const ETA_WINDOW_WAVES: usize = 8;

/// Render a caught panic payload the way `std`'s default hook would.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The execution core under every run path: takes an already-expanded
/// point list so callers that need the expansion for other purposes
/// (header point counts, shard slicing) expand exactly once. Each point
/// runs inside a panic boundary with the configured watchdog; failures
/// become [`PointOutcome::Err`] and — unless `keep_going` is set — stop
/// dispatch after the current wave.
fn run_points_with<F: FnMut(&[PointOutcome])>(
    campaign: &Campaign,
    points: Vec<crate::spec::CampaignPoint>,
    opts: &RunOptions,
    skip: &std::collections::HashSet<usize>,
    mut on_chunk: F,
) -> Vec<PointOutcome> {
    let points: Vec<_> = points
        .into_iter()
        .filter(|p| !skip.contains(&p.ordinal))
        .collect();
    let engine = opts.engine();
    let total = points.len();
    let start = Instant::now();
    let workers = engine.threads().min(total.max(1));
    if opts.progress {
        eprintln!(
            "[abc-campaign] {}: {} scenarios ({} unfiltered, {} resumed) on {} worker(s)",
            campaign.name,
            total,
            campaign.size_unfiltered(),
            skip.len(),
            workers,
        );
    }
    if let Some(dir) = &opts.telemetry_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "[abc-campaign] cannot create telemetry dir {}: {e}",
                dir.display()
            );
        }
    }
    // Ledger destination: an explicit config wins; a telemetry dir gets
    // one by default so instrumented runs are self-contained.
    let runlog_cfg = opts.runlog.clone().or_else(|| {
        opts.telemetry_dir
            .as_ref()
            .map(|d| RunLogConfig::new(d.join("runlog.jsonl")))
    });
    let mut ledger = match &runlog_cfg {
        Some(cfg) => LedgerWriter::create(&cfg.path),
        None => LedgerWriter::off(),
    };
    if let Some(cfg) = &runlog_cfg {
        ledger.line(&runlog::render_header(&runlog::LedgerHeader {
            campaign: campaign.name.clone(),
            scale: cfg.scale.clone(),
            points: total,
            workers,
            chunk: opts.chunk.max(1),
            shard: cfg.shard,
            retries: opts.retries,
            watchdog_budget_s: opts.watchdog.map(|d| d.as_secs_f64()),
            keep_going: opts.keep_going,
            profile: opts.profile,
        }));
    }
    let guards = RunGuards {
        max_events: None,
        max_wall_time: opts.watchdog,
    };
    let retries = opts.retries;
    let profile_on = opts.profile;
    let mut outcomes: Vec<PointOutcome> = Vec::with_capacity(total);
    let mut events_total = 0u64;
    let mut failed = false;
    // `(elapsed, done)` checkpoints of recent waves for the ETA window.
    let mut recent: std::collections::VecDeque<(f64, usize)> = std::collections::VecDeque::new();
    for (wave_index, chunk) in points.chunks(opts.chunk.max(1)).enumerate() {
        let specs: Vec<ScenarioSpec> = chunk
            .iter()
            .map(|p| {
                let mut spec = p.spec.clone();
                if opts.telemetry_dir.is_some() && spec.telemetry.is_none() {
                    spec.telemetry = Some(netsim::telemetry::TelemetryConfig::default());
                }
                spec
            })
            .collect();
        let wave_start_ns = start.elapsed().as_nanos() as u64;
        // The boundary must sit *inside* the worker closure: a panic that
        // escapes it would poison the pool's result slots and abort the
        // whole process instead of failing one point.
        let results = engine.run_batch_map_indexed(&specs, |e, s, worker| {
            let mut attempts: Vec<AttemptLog> = Vec::new();
            loop {
                let t0 = start.elapsed().as_nanos() as u64;
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    e.run_point(s, guards, profile_on)
                }));
                let t1 = start.elapsed().as_nanos() as u64;
                match run {
                    Ok(Ok(out)) => {
                        attempts.push(AttemptLog {
                            start_ns: t0,
                            end_ns: t1,
                            events: out.events,
                            outcome: SpanOutcome::Ok,
                            profile: out.profile.as_ref().map(runlog::ProfileFractions::of),
                        });
                        return PointExec {
                            result: Ok(out),
                            worker,
                            attempts,
                        };
                    }
                    // Watchdog abort: deterministic, retrying would only
                    // burn the budget again.
                    Ok(Err(msg)) => {
                        attempts.push(AttemptLog {
                            start_ns: t0,
                            end_ns: t1,
                            events: 0,
                            outcome: SpanOutcome::Watchdog(msg.clone()),
                            profile: None,
                        });
                        return PointExec {
                            result: Err(PointError {
                                kind: ErrorKind::Watchdog,
                                message: msg,
                            }),
                            worker,
                            attempts,
                        };
                    }
                    Err(payload) => {
                        let message = panic_message(payload);
                        attempts.push(AttemptLog {
                            start_ns: t0,
                            end_ns: t1,
                            events: 0,
                            outcome: SpanOutcome::Panic(message.clone()),
                            profile: None,
                        });
                        if (attempts.len() as u32) <= retries {
                            continue;
                        }
                        return PointExec {
                            result: Err(PointError {
                                kind: ErrorKind::Panic,
                                message,
                            }),
                            worker,
                            attempts,
                        };
                    }
                }
            }
        });
        let wave_end_ns = start.elapsed().as_nanos() as u64;
        let chunk_start = outcomes.len();
        for (point, exec) in chunk.iter().zip(results) {
            // One ledger span per attempt, retries included.
            for (attempt, a) in exec.attempts.iter().enumerate() {
                let dur = a.end_ns.saturating_sub(a.start_ns).max(1);
                ledger.line(&runlog::render_point(&runlog::PointSpan {
                    ordinal: point.ordinal,
                    coords: point.coords.clone(),
                    attempt: attempt as u32,
                    worker: exec.worker,
                    queued_ns: wave_start_ns,
                    start_ns: a.start_ns,
                    end_ns: a.end_ns,
                    events: a.events,
                    events_per_sec: a.events as f64 * 1e9 / dur as f64,
                    outcome: a.outcome.clone(),
                    profile: a.profile,
                }));
            }
            match exec.result {
                Ok(out) => {
                    events_total += out.events;
                    if let (Some(dir), Some(sidecar)) = (&opts.telemetry_dir, out.sidecar) {
                        let path = dir.join(format!("{}.jsonl", point.ordinal));
                        if let Err(e) = std::fs::write(&path, sidecar) {
                            eprintln!("[abc-campaign] cannot write {}: {e}", path.display());
                        }
                    }
                    outcomes.push(PointOutcome::Ok(RunRecord {
                        ordinal: point.ordinal,
                        coords: point.coords.clone(),
                        report: out.report,
                    }));
                }
                Err(error) => {
                    failed = true;
                    eprintln!(
                        "[abc-campaign] point {} failed ({}): {}",
                        point.ordinal,
                        error.kind.as_str(),
                        error.message
                    );
                    outcomes.push(PointOutcome::Err(ErrorRecord {
                        ordinal: point.ordinal,
                        coords: point.coords.clone(),
                        error,
                    }));
                }
            }
        }
        ledger.line(&runlog::render_wave(&runlog::WaveSpan {
            index: wave_index,
            start_ns: wave_start_ns,
            end_ns: wave_end_ns,
            points: chunk.len(),
        }));
        let flush_start_ns = start.elapsed().as_nanos() as u64;
        on_chunk(&outcomes[chunk_start..]);
        let flush_end_ns = start.elapsed().as_nanos() as u64;
        ledger.line(&runlog::render_flush(&runlog::FlushSpan {
            wave: wave_index,
            start_ns: flush_start_ns,
            end_ns: flush_end_ns,
        }));
        ledger.flush();
        if opts.progress {
            let done = outcomes.len();
            let elapsed = start.elapsed().as_secs_f64();
            // ETA from a sliding window of recent waves (falling back to
            // the whole-run average until a second checkpoint exists);
            // blank until the first wave lands and once the run is done.
            recent.push_back((elapsed, done));
            while recent.len() > ETA_WINDOW_WAVES + 1 {
                recent.pop_front();
            }
            let eta = if done > 0 && done < total {
                let (t0, d0) = *recent.front().expect("window is nonempty");
                let (dt, dd) = (elapsed - t0, done - d0);
                let rate = if dd > 0 && dt > 1e-9 {
                    dd as f64 / dt
                } else {
                    done as f64 / elapsed.max(1e-9)
                };
                format!(" · ETA {:.0}s", (total - done) as f64 / rate.max(1e-9))
            } else {
                String::new()
            };
            eprintln!(
                "[abc-campaign] {}: {}/{} scenarios ({:.0}%) in {:.1}s · {:.1} Mev/s{}",
                campaign.name,
                done,
                total,
                100.0 * done as f64 / total.max(1) as f64,
                elapsed,
                events_total as f64 / elapsed.max(1e-9) / 1e6,
                eta,
            );
        }
        if failed && !opts.keep_going {
            eprintln!(
                "[abc-campaign] {}: stopping after failed wave (pass --keep-going to run the rest)",
                campaign.name
            );
            break;
        }
    }
    outcomes
}

/// Does `ordinal` belong to shard `k` of `n` (`k` is 1-based)? The
/// assignment is round-robin over the *unfiltered* cartesian ordinals,
/// which are stable shard ids: adding filters never moves a point to a
/// different shard, and the `n` shards partition any campaign exactly.
pub fn in_shard(ordinal: usize, (k, n): (usize, usize)) -> bool {
    debug_assert!(n >= 1 && (1..=n).contains(&k), "shard {k}/{n} out of range");
    ordinal % n == k - 1
}

/// Merge an interrupted store's records with a freshly-run remainder:
/// executes the points missing from `prior` and returns the full record
/// set in expansion (ordinal) order — byte-identical to an uninterrupted
/// run, because each record is a pure function of its spec. The in-memory
/// sibling of [`run_campaign_streaming`]. Panics if a fresh point fails;
/// prior *error* records must not be passed in (resume re-attempts them).
pub fn resume_campaign(
    campaign: &Campaign,
    opts: &RunOptions,
    prior: Vec<RunRecord>,
) -> Vec<RunRecord> {
    let mut records = Vec::new();
    run_campaign_merged(
        campaign,
        campaign.expand(),
        opts,
        prior,
        None,
        |o| match o {
            PointOutcome::Ok(r) => records.push(r.clone()),
            PointOutcome::Err(e) => panic!(
                "campaign point {} failed ({}): {}",
                e.ordinal,
                e.error.kind.as_str(),
                e.error.message
            ),
        },
    );
    records
}

/// What a streaming run wrote to its store, after the header line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamTally {
    /// Clean record lines written (reused prior + freshly run).
    pub records: usize,
    /// Structured error lines written.
    pub errors: usize,
}

impl StreamTally {
    /// Total store lines written after the header.
    pub fn lines(&self) -> usize {
        self.records + self.errors
    }
}

/// Execute the points missing from `prior` and stream the complete store
/// — header (promising the full point count) first, then every record in
/// ordinal order, each written as soon as its dispatch wave completes —
/// to `w`. An interrupted write leaves a valid partial store behind for
/// `--resume`; a completed one is byte-identical to
/// [`crate::store::ResultsStore::to_jsonl`] of an uninterrupted run.
/// Failed points are written as structured error lines and tallied.
pub fn run_campaign_streaming<W: std::io::Write>(
    campaign: &Campaign,
    opts: &RunOptions,
    prior: Vec<RunRecord>,
    w: &mut W,
) -> std::io::Result<StreamTally> {
    run_campaign_streaming_sharded(campaign, opts, prior, None, w)
}

/// [`run_campaign_streaming`] restricted to the ordinal-stable `k/n`
/// slice of the campaign (see [`in_shard`]): the header promises the
/// shard's point count and only in-shard points execute, so `n` machines
/// each running one shard produce stores that
/// [`merge_stores`](crate::store::merge_stores) stitches back into a
/// byte-identical equivalent of one unsharded run.
pub fn run_campaign_streaming_sharded<W: std::io::Write>(
    campaign: &Campaign,
    opts: &RunOptions,
    prior: Vec<RunRecord>,
    shard: Option<(usize, usize)>,
    w: &mut W,
) -> std::io::Result<StreamTally> {
    use crate::store;
    // One expansion serves the header count, the shard slice, and the
    // execution itself (points carry cloned specs — traces included — so
    // re-expanding per use would triple that cost).
    let points = campaign.expand();
    let in_shard_count = match shard {
        Some(s) => points.iter().filter(|p| in_shard(p.ordinal, s)).count(),
        None => points.len(),
    };
    let header = store::header_for(campaign, in_shard_count);
    writeln!(w, "{}", store::render_header(&header))?;
    let mut tally = StreamTally::default();
    let mut err: Option<std::io::Error> = None;
    run_campaign_merged(campaign, points, opts, prior, shard, |o| {
        if err.is_none() {
            let line = match o {
                PointOutcome::Ok(r) => store::render_record(r),
                PointOutcome::Err(e) => store::render_error_record(e),
            };
            // flush per record: a kill can tear at most the line in flight
            match writeln!(w, "{line}").and_then(|()| w.flush()) {
                Ok(()) => match o {
                    PointOutcome::Ok(_) => tally.records += 1,
                    PointOutcome::Err(_) => tally.errors += 1,
                },
                Err(e) => err = Some(e),
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    w.flush()?;
    Ok(tally)
}

/// The single prior/fresh merge the resume and shard paths share: runs
/// the in-shard points whose ordinals are missing from `prior` and emits
/// every outcome — reused and fresh — in ordinal order, each as soon as
/// it is available. Prior records are emitted as clean outcomes; callers
/// resuming a store with error records must leave those out of `prior` so
/// the failed ordinals are re-attempted.
fn run_campaign_merged<F: FnMut(&PointOutcome)>(
    campaign: &Campaign,
    points: Vec<crate::spec::CampaignPoint>,
    opts: &RunOptions,
    mut prior: Vec<RunRecord>,
    shard: Option<(usize, usize)>,
    mut emit: F,
) {
    prior.sort_by_key(|r| r.ordinal);
    let mut skip: std::collections::HashSet<usize> = prior.iter().map(|r| r.ordinal).collect();
    if let Some(s) = shard {
        skip.extend(
            points
                .iter()
                .map(|p| p.ordinal)
                .filter(|&o| !in_shard(o, s)),
        );
    }
    let mut prior_iter = prior.into_iter().map(PointOutcome::Ok).peekable();
    run_points_with(campaign, points, opts, &skip, |chunk| {
        for rec in chunk {
            while prior_iter
                .peek()
                .is_some_and(|p| p.ordinal() < rec.ordinal())
            {
                let p = prior_iter.next().expect("peeked record vanished");
                emit(&p);
            }
            emit(rec);
        }
    });
    for p in prior_iter {
        emit(&p);
    }
}

/// First-seen order of the labels a set of records carries on `axis` —
/// for rendering, this reproduces the axis's declared value order.
pub fn labels_of(records: &[RunRecord], axis: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for r in records {
        if let Some(l) = r.coords.get(axis) {
            if !out.iter().any(|x| x == l) {
                out.push(l.to_string());
            }
        }
    }
    out
}

/// The record at the given axis labels, if present.
pub fn find<'a>(records: &'a [RunRecord], at: &[(&str, &str)]) -> Option<&'a RunRecord> {
    records.iter().find(|r| {
        at.iter()
            .all(|(axis, label)| r.coords.get(axis) == Some(*label))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Axis;
    use experiments::scenario::LinkSpec;
    use experiments::Scheme;
    use netsim::rate::Rate;

    fn tiny_campaign(chunk_seeds: &[u64]) -> Campaign {
        let base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
            .duration_secs(1)
            .warmup_secs(0);
        Campaign::new("unit", base)
            .axis(Axis::schemes(&[Scheme::Abc, Scheme::Cubic]))
            .axis(Axis::seeds(chunk_seeds))
    }

    #[test]
    fn chunked_dispatch_matches_single_batch() {
        let c = tiny_campaign(&[1, 2]);
        let one = run_campaign(
            &c,
            &RunOptions {
                chunk: 64,
                ..RunOptions::quiet()
            },
        );
        let many = run_campaign(
            &c,
            &RunOptions {
                chunk: 1,
                ..RunOptions::quiet()
            },
        );
        assert_eq!(one.len(), 4);
        assert_eq!(one, many, "chunk size changed results");
    }

    #[test]
    fn labels_and_find_address_records() {
        let c = tiny_campaign(&[1]);
        let records = run_campaign(&c, &RunOptions::quiet());
        assert_eq!(labels_of(&records, "scheme"), vec!["ABC", "Cubic"]);
        let abc = find(&records, &[("scheme", "ABC"), ("seed", "1")]).unwrap();
        assert_eq!(abc.report.scheme, "ABC");
        assert!(find(&records, &[("scheme", "BBR")]).is_none());
    }

    #[test]
    fn error_kind_names_round_trip() {
        for kind in [ErrorKind::Panic, ErrorKind::Watchdog] {
            assert_eq!(ErrorKind::from_name(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorKind::from_name("oom"), None);
    }

    #[test]
    fn split_outcomes_partitions_in_order() {
        let c = tiny_campaign(&[1]);
        let template = run_campaign(&c, &RunOptions::quiet()).remove(0);
        let ok = |o: usize| {
            let mut r = template.clone();
            r.ordinal = o;
            PointOutcome::Ok(r)
        };
        let err = PointOutcome::Err(ErrorRecord {
            ordinal: 1,
            coords: Coords(Vec::new()),
            error: PointError {
                kind: ErrorKind::Panic,
                message: "boom".into(),
            },
        });
        let (records, errors) = split_outcomes(vec![ok(0), err, ok(2)]);
        assert_eq!(
            records.iter().map(|r| r.ordinal).collect::<Vec<_>>(),
            [0, 2]
        );
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].ordinal, 1);
    }
}
