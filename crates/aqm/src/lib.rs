//! # aqm — active queue management baselines
//!
//! The AQMs the paper pairs with Cubic: [`codel`] (Cubic+Codel), [`pie`]
//! (Cubic+PIE), and classical [`red`]. All implement
//! [`netsim::queue::Qdisc`] and support both drop and ECN-marking modes.
//! §2's point about these schemes — they can signal *decreases* early but
//! have no way to signal *increases* — is what the Fig. 1c / Fig. 8
//! underutilization results exhibit.

pub mod codel;
pub mod pie;
pub mod red;

pub use codel::{Codel, CodelConfig};
pub use pie::{Pie, PieConfig};
pub use red::{Red, RedConfig};
