//! Link and flow rate primitives (bits per second).

use crate::time::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A data rate in bits per second.
///
/// Rates are `f64` internally: unlike time, rates enter multiplicative
/// control laws (`η·µ`, `tr/2cr`) where exactness buys nothing and integer
/// quantization would distort small fractions.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rate(f64);

impl Rate {
    /// No throughput at all (a stalled link).
    pub const ZERO: Rate = Rate(0.0);

    /// A rate of `bps` bits per second.
    #[inline]
    pub fn from_bps(bps: f64) -> Self {
        debug_assert!(bps >= 0.0 && bps.is_finite(), "invalid rate: {bps}");
        Rate(bps)
    }

    /// A rate of `kbps` kilobits per second.
    #[inline]
    pub fn from_kbps(kbps: f64) -> Self {
        Self::from_bps(kbps * 1e3)
    }

    /// A rate of `mbps` megabits per second.
    #[inline]
    pub fn from_mbps(mbps: f64) -> Self {
        Self::from_bps(mbps * 1e6)
    }

    /// Rate implied by transmitting `bytes` in `dur`. Zero duration yields
    /// zero rate (callers probe empty measurement windows).
    #[inline]
    pub fn from_bytes_per(bytes: u64, dur: SimDuration) -> Self {
        if dur.is_zero() {
            Rate::ZERO
        } else {
            Rate(bytes as f64 * 8.0 / dur.as_secs_f64())
        }
    }

    /// The rate in bits per second.
    #[inline]
    pub fn bps(self) -> f64 {
        self.0
    }

    /// The rate in megabits per second.
    #[inline]
    pub fn mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// True for a stalled (zero) rate.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 <= 0.0
    }

    /// Time to serialize `bytes` at this rate. Infinite (far-future) for a
    /// zero rate, so stalled links park rather than divide by zero.
    #[inline]
    pub fn tx_time(self, bytes: u32) -> SimDuration {
        if self.is_zero() {
            SimDuration::MAX
        } else {
            SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.0)
        }
    }

    /// Bits deliverable in `dur` at this rate.
    #[inline]
    pub fn bits_in(self, dur: SimDuration) -> f64 {
        self.0 * dur.as_secs_f64()
    }

    /// The slower of the two rates.
    #[inline]
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }

    /// The faster of the two rates.
    #[inline]
    pub fn max(self, other: Rate) -> Rate {
        Rate(self.0.max(other.0))
    }

    /// The rate restricted to `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Rate, hi: Rate) -> Rate {
        Rate(self.0.clamp(lo.0, hi.0))
    }
}

impl Add for Rate {
    type Output = Rate;
    #[inline]
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl AddAssign for Rate {
    #[inline]
    fn add_assign(&mut self, rhs: Rate) {
        self.0 += rhs.0;
    }
}

impl Sub for Rate {
    type Output = Rate;
    /// Saturates at zero: spare-capacity computations (`C − y` in XCP/RCP)
    /// treat overload as zero spare rather than negative rate.
    #[inline]
    fn sub(self, rhs: Rate) -> Rate {
        Rate((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn mul(self, rhs: f64) -> Rate {
        Rate((self.0 * rhs).max(0.0))
    }
}

impl Div<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn div(self, rhs: f64) -> Rate {
        Rate(self.0 / rhs)
    }
}

/// Ratio of two rates (e.g. `tr/cr` in ABC's marking fraction).
impl Div<Rate> for Rate {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Rate) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        Rate(iter.map(|r| r.0).sum())
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} Mbit/s", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3} kbit/s", self.0 / 1e3)
        } else {
            write!(f, "{:.1} bit/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_of_mtu_at_12mbps() {
        let r = Rate::from_mbps(12.0);
        let t = r.tx_time(1500);
        assert_eq!(t.as_nanos(), 1_000_000); // 1500*8/12e6 = 1 ms
    }

    #[test]
    fn zero_rate_parks_transmission() {
        assert_eq!(Rate::ZERO.tx_time(1500), SimDuration::MAX);
    }

    #[test]
    fn from_bytes_per_window() {
        let r = Rate::from_bytes_per(1_500_000, SimDuration::from_secs(1));
        assert!((r.mbps() - 12.0).abs() < 1e-9);
        assert_eq!(Rate::from_bytes_per(100, SimDuration::ZERO), Rate::ZERO);
    }

    #[test]
    fn subtraction_saturates() {
        let a = Rate::from_mbps(5.0);
        let b = Rate::from_mbps(7.0);
        assert_eq!(a - b, Rate::ZERO);
        assert!(((b - a).mbps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bits_in_window() {
        let r = Rate::from_mbps(24.0);
        assert!((r.bits_in(SimDuration::from_millis(500)) - 12e6).abs() < 1.0);
    }

    #[test]
    fn ratio_and_scale() {
        let tr = Rate::from_mbps(9.0);
        let cr = Rate::from_mbps(12.0);
        assert!((tr / cr - 0.75).abs() < 1e-12);
        assert!(((cr * 0.5).mbps() - 6.0).abs() < 1e-12);
    }
}
