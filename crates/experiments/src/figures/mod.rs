//! One module per table/figure of the paper's evaluation. Every module
//! exposes `run(scale) -> String`: the rendered rows/series the paper
//! reports, at [`Scale::Full`] (what EXPERIMENTS.md records),
//! [`Scale::Fast`] (reduced, for benches and local iteration), or
//! [`Scale::Tiny`] (≤ 2 s of simulated time per scenario, for smoke
//! tests and CI wiring checks).
//!
//! The matrix-shaped sweeps (Table 1, Figs. 8/9/15/16/18) live in the
//! `campaign` crate as [`Campaign`]-backed pure renderers; its
//! `campaign::figures::all()` merges them with [`all`] into the
//! workspace's complete figure index (what the `figgen` binary serves).
//!
//! [`Campaign`]: https://docs.rs/campaign (crates/campaign)

use netsim::time::SimDuration;

pub mod ablations;
pub mod coexistence;
pub mod explicit_figs;
pub mod motivation;
pub mod stability_fig;
pub mod wifi_figs;

/// How much simulated time a figure run spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper scale — the numbers EXPERIMENTS.md records.
    Full,
    /// Reduced scale for benches and quick local runs.
    Fast,
    /// ≤ 2 s of simulated time per scenario: only checks the wiring.
    Tiny,
}

impl Scale {
    /// Pick a value per scale.
    pub fn pick<T>(self, full: T, fast: T, tiny: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Fast => fast,
            Scale::Tiny => tiny,
        }
    }

    /// Pick a duration (seconds) per scale.
    pub fn secs(self, full: u64, fast: u64, tiny: u64) -> SimDuration {
        SimDuration::from_secs(self.pick(full, fast, tiny))
    }

    /// Anything below paper scale.
    pub fn reduced(self) -> bool {
        self != Scale::Full
    }
}

/// A figure generator: renders its rows/series at the given scale.
pub type FigureFn = fn(Scale) -> String;

/// Index of the generators implemented in this crate: (id, description,
/// runner). The campaign-backed figures (table1, fig8/9/15/16/18) are
/// indexed by `campaign::figures::all()`, which merges this list.
pub fn all() -> Vec<(&'static str, &'static str, FigureFn)> {
    vec![
        (
            "fig1",
            "motivation time series (Cubic/Verus/Cubic+CoDel/ABC)",
            motivation::fig1 as FigureFn,
        ),
        ("fig2", "dequeue- vs enqueue-rate feedback", ablations::fig2),
        (
            "fig3",
            "fairness with/without additive increase",
            ablations::fig3,
        ),
        (
            "fig4",
            "Wi-Fi inter-ACK time vs batch size",
            wifi_figs::fig4,
        ),
        (
            "fig5",
            "Wi-Fi link-rate prediction accuracy",
            wifi_figs::fig5,
        ),
        (
            "fig6",
            "coexistence with a non-ABC bottleneck (dual windows)",
            coexistence::fig6,
        ),
        (
            "fig7",
            "coexistence with non-ABC flows (dual queue)",
            coexistence::fig7,
        ),
        (
            "fig10",
            "Wi-Fi throughput/delay, 1 and 2 users",
            wifi_figs::fig10,
        ),
        (
            "fig11",
            "non-ABC bottleneck with cross traffic",
            coexistence::fig11,
        ),
        (
            "fig12",
            "max-min vs Zombie-List weights under short flows",
            coexistence::fig12,
        ),
        ("fig13", "application-limited ABC flows", coexistence::fig13),
        ("fig14", "Wi-Fi Brownian-motion MCS", wifi_figs::fig14),
        (
            "fig17",
            "square-wave link time series (ABC/RCP/XCPw)",
            explicit_figs::fig17,
        ),
        (
            "pk_abc",
            "§6.6 perfect-future-knowledge ABC",
            ablations::pk_abc,
        ),
        (
            "stability",
            "Theorem 3.1 δ/τ stability sweep",
            stability_fig::stability,
        ),
        ("jain", "§6.5 Jain index, 2..32 ABC flows", ablations::jain),
        (
            "marking",
            "deterministic vs probabilistic marking ablation",
            ablations::marking,
        ),
    ]
}
