//! # User-defined campaigns from TOML files
//!
//! The built-in [`presets`](crate::presets) cover the paper's sweeps,
//! but a sweep engine is only general once users can drive it without
//! writing Rust. This module loads a `campaign.toml` — a base scenario,
//! named axes, declarative filters, and per-[`Scale`] overrides — into
//! the exact same [`Campaign`] type the presets build, so everything
//! downstream (expansion, the parallel runner, the JSONL store, resume,
//! sharding, merge, diff, figures) works on file-defined campaigns
//! unchanged. `abc-campaign run --file sweep.toml` is the CLI entry.
//!
//! Two layers:
//!
//! * [`toml`] — a zero-dependency parser for the TOML subset campaign
//!   files need (the workspace builds offline, so no `toml` crate);
//! * [`schema`] — compiles the parsed tree into a [`Campaign`], with
//!   every diagnostic carrying the line/column of the offending key.
//!
//! The format reference lives in `docs/campaign-file.md`; committed
//! examples live in `examples/campaigns/`. The TOML-expressed `tiny`
//! campaign is pinned byte-identical to the preset-built one in CI.
//!
//! ```
//! use campaign::file;
//! use experiments::figures::Scale;
//!
//! let c = file::from_str(r#"
//!     [campaign]
//!     name = "quick"
//!
//!     [base]
//!     link = { constant_mbps = 12.0 }
//!     duration_s = 2
//!
//!     [[axis]]
//!     name = "scheme"
//!     schemes = ["ABC", "Cubic"]
//! "#, Scale::Tiny).unwrap();
//! assert_eq!(c.name, "quick");
//! assert_eq!(c.expand().len(), 2);
//!
//! // Malformed files fail with a line/column diagnostic:
//! let err = file::from_str("[campaign]\nname = 42\n", Scale::Tiny).unwrap_err();
//! assert!(err.to_string().contains("line 2"));
//! ```

pub mod schema;
pub mod toml;

use crate::spec::Campaign;
use experiments::figures::Scale;
use std::fmt;
use std::path::Path;

pub use schema::parse_scheme;
pub use toml::{Pos, TomlError};

/// Why a campaign file failed to load.
#[derive(Debug)]
pub enum FileError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file read fine but does not describe a valid campaign; the
    /// error carries the line/column of the offending token.
    Parse(TomlError),
}

impl fmt::Display for FileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileError::Io(e) => write!(f, "{e}"),
            FileError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FileError {}

impl From<TomlError> for FileError {
    fn from(e: TomlError) -> Self {
        FileError::Parse(e)
    }
}

impl From<std::io::Error> for FileError {
    fn from(e: std::io::Error) -> Self {
        FileError::Io(e)
    }
}

/// Compile campaign-file text into a [`Campaign`]. `scale` selects
/// which `[scale.*]` override table (if any) applies on top of
/// `[base]`.
pub fn from_str(text: &str, scale: Scale) -> Result<Campaign, FileError> {
    Ok(schema::from_str(text, scale)?)
}

/// [`from_str`] for a file on disk.
pub fn load(path: impl AsRef<Path>, scale: Scale) -> Result<Campaign, FileError> {
    let text = std::fs::read_to_string(path)?;
    from_str(&text, scale)
}
