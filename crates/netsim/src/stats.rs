//! Measurement primitives: windowed rate estimation, EWMA, percentiles.

use crate::rate::Rate;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Rate over a sliding time window: the ABC router measures both its
/// dequeue rate `cr(t)` and (on Wi-Fi) the link capacity `µ(t)` this way,
/// over a window `T` (§3.1.2; the Wi-Fi prototype uses `T = 40 ms`).
#[derive(Debug, Clone)]
pub struct WindowedRate {
    window: SimDuration,
    /// `window.as_secs_f64()`, hoisted out of the per-packet [`rate`]
    /// call (bit-identical: same conversion, computed once).
    window_secs: f64,
    samples: VecDeque<(SimTime, u64)>, // (when, bytes)
    total_bytes: u64,
}

impl WindowedRate {
    /// An empty estimator over a sliding `window`.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "rate window must be positive");
        WindowedRate {
            window,
            window_secs: window.as_secs_f64(),
            samples: VecDeque::new(),
            total_bytes: 0,
        }
    }

    /// The configured averaging window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Record `bytes` transferred at `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        self.samples.push_back((now, bytes));
        self.total_bytes += bytes;
        self.expire(now);
    }

    fn expire(&mut self, now: SimTime) {
        let cutoff = now.saturating_sub(self.window);
        while let Some(&(t, b)) = self.samples.front() {
            if t < cutoff {
                self.samples.pop_front();
                self.total_bytes -= b;
            } else {
                break;
            }
        }
    }

    /// Average rate over the trailing window ending at `now`.
    pub fn rate(&mut self, now: SimTime) -> Rate {
        self.expire(now);
        // Same math as `Rate::from_bytes_per(total_bytes, window)` with
        // the window's seconds conversion precomputed (window > 0 by the
        // constructor assert, so no zero-duration branch is needed).
        Rate::from_bps(self.total_bytes as f64 * 8.0 / self.window_secs)
    }

    /// Bytes currently inside the window.
    pub fn bytes_in_window(&mut self, now: SimTime) -> u64 {
        self.expire(now);
        self.total_bytes
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` is the weight of each new sample (0 < alpha ≤ 1).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range: {alpha}");
        Ewma { alpha, value: None }
    }

    /// Fold in a sample and return the new average (the first sample
    /// seeds the average directly).
    pub fn update(&mut self, sample: f64) -> f64 {
        let v = match self.value {
            None => sample,
            Some(prev) => prev + self.alpha * (sample - prev),
        };
        self.value = Some(v);
        v
    }

    /// The current average, once at least one sample has arrived.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// The current average, or `default` before any sample.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Forget all samples.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Summary statistics over a set of `f64` samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Percentile by linear interpolation between closest ranks
/// (the convention NumPy's default uses). `p` in [0, 100].
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    match sorted.len() {
        0 => f64::NAN,
        1 => sorted[0],
        n => {
            let rank = p / 100.0 * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Compute a [`Summary`] of `samples` (need not be pre-sorted).
///
/// Clones the slice to sort it; hot paths that own their samples should
/// use [`summarize_in_place`] and skip the copy.
pub fn summarize(samples: &[f64]) -> Summary {
    let mut sorted = samples.to_vec();
    summarize_in_place(&mut sorted)
}

/// Compute a [`Summary`] by sorting `samples` in place — the zero-copy
/// sibling of [`summarize`] for callers that own the buffer. Sorting is
/// deterministic: `f64` ordering with a panic on NaN, like `summarize`.
pub fn summarize_in_place(samples: &mut [f64]) -> Summary {
    if samples.is_empty() {
        return Summary::default();
    }
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    Summary {
        count: n,
        mean,
        std_dev: var.sqrt(),
        min: samples[0],
        max: samples[n - 1],
        p50: percentile(samples, 50.0),
        p95: percentile(samples, 95.0),
        p99: percentile(samples, 99.0),
    }
}

/// Jain's fairness index over per-flow throughputs:
/// `(Σx)² / (n·Σx²)` — 1.0 means perfectly fair.
pub fn jain_index(throughputs: &[f64]) -> f64 {
    if throughputs.is_empty() {
        return f64::NAN;
    }
    let sum: f64 = throughputs.iter().sum();
    let sum_sq: f64 = throughputs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return f64::NAN;
    }
    sum * sum / (throughputs.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn windowed_rate_basic() {
        let mut wr = WindowedRate::new(SimDuration::from_millis(100));
        // 10 × 1500B over 100ms = 15 kB / 0.1 s = 1.2 Mbit/s
        for i in 0..10 {
            wr.record(t(10 * i), 1500);
        }
        let r = wr.rate(t(95));
        assert!((r.mbps() - 1.2).abs() < 1e-9, "got {r}");
    }

    #[test]
    fn windowed_rate_expires_old_samples() {
        let mut wr = WindowedRate::new(SimDuration::from_millis(100));
        wr.record(t(0), 100_000);
        wr.record(t(200), 1500);
        // only the second sample is inside [100ms, 200ms]
        assert_eq!(wr.bytes_in_window(t(200)), 1500);
    }

    #[test]
    fn windowed_rate_empty_is_zero() {
        let mut wr = WindowedRate::new(SimDuration::from_millis(40));
        assert_eq!(wr.rate(t(1000)), Rate::ZERO);
    }

    #[test]
    fn ewma_first_sample_initializes() {
        let mut e = Ewma::new(0.25);
        assert_eq!(e.update(8.0), 8.0);
        assert_eq!(e.update(4.0), 7.0); // 8 + 0.25·(4−8)
    }

    #[test]
    #[should_panic(expected = "alpha out of range")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 2.5);
        assert!((percentile(&v, 95.0) - 3.85).abs() < 1e-12);
    }

    #[test]
    fn summary_of_constant_samples() {
        let s = summarize(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p95, 5.0);
        assert_eq!(s.count, 10);
    }

    #[test]
    fn summary_empty() {
        assert_eq!(summarize(&[]).count, 0);
    }

    #[test]
    fn jain_index_extremes() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // one flow hogging everything among n flows → 1/n
        let j = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }
}
