//! ABC's Wi-Fi link-rate estimator (§4.1, Eqs. 5–8, Figs. 4–5).
//!
//! The AP observes, per A-MPDU batch: the batch size `b`, the frame size
//! `S`, the PHY bitrate `R`, and the inter-ACK time `T_IA`. The estimator
//! extrapolates what the ACK interval *would have been* for a full batch
//! of `M` frames —
//!
//! ```text
//! T̂IA(M) = T_IA(b) + (M − b)·S/R          (Eq. 8)
//! µ̂       = M·S / T̂IA(M)                  (Eq. 6)
//! ```
//!
//! — then smooths the samples with a moving average over a sliding window
//! `T` (40 ms in the paper) and caps the prediction at 2× the current
//! dequeue rate (ABC cannot use more than a doubling per RTT anyway).

use netsim::rate::Rate;
use netsim::stats::WindowedRate;
use netsim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// One observed batch transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSample {
    pub when: SimTime,
    /// Frames in the A-MPDU.
    pub batch: u32,
    /// Frame size (bytes).
    pub frame_bytes: u32,
    /// PHY bitrate used.
    pub phy_rate: Rate,
    /// Time between this block-ACK and the start of the batch.
    pub inter_ack: SimDuration,
}

#[derive(Debug, Clone, Copy)]
pub struct EstimatorConfig {
    /// Maximum A-MPDU frames the receiver negotiated (M).
    pub max_batch: u32,
    /// Smoothing window T (must exceed the largest inter-ACK time).
    pub window: SimDuration,
    /// Cap factor relative to the current dequeue rate.
    pub cap_factor: f64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            max_batch: 20,
            window: SimDuration::from_millis(40),
            cap_factor: 2.0,
        }
    }
}

pub struct WifiRateEstimator {
    cfg: EstimatorConfig,
    /// Recent per-batch capacity estimates: (time, µ̂ sample bps, weight).
    samples: VecDeque<(SimTime, f64, f64)>,
    dequeue_rate: WindowedRate,
    /// All raw samples (for the Fig. 4 scatter), cheaply cap-limited.
    log: Vec<BatchSample>,
    log_cap: usize,
}

impl WifiRateEstimator {
    pub fn new(cfg: EstimatorConfig) -> Self {
        assert!(cfg.max_batch > 0);
        assert!(!cfg.window.is_zero());
        WifiRateEstimator {
            cfg,
            samples: VecDeque::new(),
            dequeue_rate: WindowedRate::new(cfg.window),
            log: Vec::new(),
            log_cap: 100_000,
        }
    }

    pub fn config(&self) -> &EstimatorConfig {
        &self.cfg
    }

    /// Record a completed batch and its block-ACK timing.
    pub fn on_batch(&mut self, s: BatchSample) {
        assert!(s.batch > 0, "empty batch");
        if self.log.len() < self.log_cap {
            self.log.push(s);
        }
        self.dequeue_rate
            .record(s.when, s.batch as u64 * s.frame_bytes as u64);

        let m = self.cfg.max_batch as f64;
        let b = (s.batch.min(self.cfg.max_batch)) as f64;
        let frame_bits = s.frame_bytes as f64 * 8.0;
        let r = s.phy_rate.bps();
        if r <= 0.0 {
            return;
        }
        // Eq. 8: extrapolate the ACK interval to a full batch
        let t_full = s.inter_ack.as_secs_f64() + (m - b) * frame_bits / r;
        if t_full <= 0.0 {
            return;
        }
        // Eq. 6
        let mu_hat = m * frame_bits / t_full;
        // weight longer batches more: they carry more signal about h(t)
        self.samples.push_back((s.when, mu_hat, b));
        let cutoff = s.when.saturating_sub(self.cfg.window);
        while self.samples.front().is_some_and(|&(t, ..)| t < cutoff) {
            self.samples.pop_front();
        }
    }

    /// Smoothed, capped link-capacity estimate at `now`.
    pub fn estimate(&mut self, now: SimTime) -> Rate {
        let cutoff = now.saturating_sub(self.cfg.window);
        while self.samples.front().is_some_and(|&(t, ..)| t < cutoff) {
            self.samples.pop_front();
        }
        if self.samples.is_empty() {
            return Rate::ZERO;
        }
        let wsum: f64 = self.samples.iter().map(|&(_, _, w)| w).sum();
        let mean = self.samples.iter().map(|&(_, v, w)| v * w).sum::<f64>() / wsum;
        let cr = self.dequeue_rate.rate(now).bps();
        let capped = if cr > 0.0 {
            mean.min(self.cfg.cap_factor * cr)
        } else {
            mean
        };
        Rate::from_bps(capped)
    }

    /// Raw batch log (for the Fig. 4 inter-ACK scatter).
    pub fn batch_log(&self) -> &[BatchSample] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    /// Synthetic ground truth: R = 13 Mbit/s PHY, overhead h = 1.5 ms,
    /// M = 20, S = 1500 B → µ = M·S·8/(M·S·8/R + h).
    fn true_capacity(r_mbps: f64, h_ms: f64, m: f64) -> f64 {
        let frame_bits = 1500.0 * 8.0;
        m * frame_bits / (m * frame_bits / (r_mbps * 1e6) + h_ms / 1e3)
    }

    fn sample(when: SimTime, b: u32, r_mbps: f64, h_ms: f64) -> BatchSample {
        let frame_bits = 1500.0 * 8.0;
        let tx = b as f64 * frame_bits / (r_mbps * 1e6);
        BatchSample {
            when,
            batch: b,
            frame_bytes: 1500,
            phy_rate: Rate::from_mbps(r_mbps),
            inter_ack: SimDuration::from_secs_f64(tx + h_ms / 1e3),
        }
    }

    #[test]
    fn full_batches_recover_capacity_exactly() {
        let mut e = WifiRateEstimator::new(EstimatorConfig::default());
        let mut t = 0;
        for _ in 0..20 {
            e.on_batch(sample(at(t), 20, 13.0, 1.5));
            t += 2_000;
        }
        let est = e.estimate(at(t)).bps();
        let truth = true_capacity(13.0, 1.5, 20.0);
        assert!(
            (est - truth).abs() / truth < 0.01,
            "est {est} vs true {truth}"
        );
    }

    #[test]
    fn partial_batches_extrapolate_within_5_percent() {
        // the headline Fig. 5 property: a NON-backlogged user (small
        // batches) still yields the full-batch capacity
        for b in [1u32, 2, 5, 10, 15] {
            let mut e = WifiRateEstimator::new(EstimatorConfig::default());
            let mut t = 0;
            for _ in 0..30 {
                e.on_batch(sample(at(t), b, 13.0, 1.5));
                t += 2_000;
            }
            let est = e.estimate(at(t)).bps();
            let truth = true_capacity(13.0, 1.5, 20.0);
            // disable the cr cap effect by checking the raw ratio range:
            // small batches under-drive the link, so the 2× cap may bind
            let cr = b as f64 * 12000.0 / 0.002; // bytes→bits per 2 ms
            let expected = truth.min(2.0 * cr);
            assert!(
                (est - expected).abs() / expected < 0.05,
                "b={b}: est {est} vs expected {expected}"
            );
        }
    }

    #[test]
    fn overhead_variation_averages_out() {
        let mut e = WifiRateEstimator::new(EstimatorConfig {
            window: SimDuration::from_millis(100),
            ..Default::default()
        });
        let mut t = 0;
        // alternate short/long overheads around 1.5 ms
        for i in 0..50 {
            let h = if i % 2 == 0 { 1.0 } else { 2.0 };
            e.on_batch(sample(at(t), 20, 13.0, h));
            t += 2_000;
        }
        let est = e.estimate(at(t)).bps();
        let truth = true_capacity(13.0, 1.5, 20.0);
        assert!(
            (est - truth).abs() / truth < 0.05,
            "est {est} vs true {truth}"
        );
    }

    #[test]
    fn cap_limits_prediction_to_twice_dequeue_rate() {
        let mut e = WifiRateEstimator::new(EstimatorConfig::default());
        // a single tiny batch: µ̂ extrapolates high, but cr is tiny
        e.on_batch(sample(at(0), 1, 65.0, 1.0));
        let est = e.estimate(at(100)).bps();
        let cr = 1500.0 * 8.0 / 0.04; // one frame in the 40 ms window
        assert!(
            est <= 2.0 * cr + 1.0,
            "estimate {est} exceeds 2×cr {}",
            2.0 * cr
        );
    }

    #[test]
    fn stale_samples_expire() {
        let mut e = WifiRateEstimator::new(EstimatorConfig::default());
        e.on_batch(sample(at(0), 20, 13.0, 1.5));
        assert!(e.estimate(at(1_000)).bps() > 0.0);
        // 1 s later the 40 ms window is long empty
        assert_eq!(e.estimate(at(1_000_000)).bps(), 0.0);
    }

    #[test]
    fn tracks_mcs_change() {
        let mut e = WifiRateEstimator::new(EstimatorConfig::default());
        let mut t = 0;
        for _ in 0..30 {
            e.on_batch(sample(at(t), 20, 13.0, 1.5));
            t += 2_000;
        }
        // MCS jumps to 65 Mbit/s
        for _ in 0..30 {
            e.on_batch(sample(at(t), 20, 65.0, 1.5));
            t += 2_000;
        }
        let est = e.estimate(at(t)).bps();
        let truth = true_capacity(65.0, 1.5, 20.0);
        assert!(
            (est - truth).abs() / truth < 0.05,
            "est {est} vs true {truth}"
        );
    }
}
