//! Coexistence with non-ABC flows (§5.2): the dual-queue router.
//!
//! ABC and non-ABC packets are isolated into two queues served by a
//! weighted scheduler. The weight of each queue is set by a
//! [`WeightPolicy`]:
//!
//! * [`WeightPolicy::MaxMin`] — the paper's contribution: measure the rate
//!   of the top-K flows per queue ([`crate::topk::SpaceSaving`]), treat the
//!   rest as a short-flow aggregate, inflate top-K demands by X%, compute
//!   the max-min allocation ([`crate::maxmin`]), and weight each queue by
//!   the total allocation of its flows;
//! * [`WeightPolicy::ZombieList`] — the RCP baseline: estimate the flow
//!   *count* per queue with an SRED-style zombie list and equalize
//!   per-flow average rate, which overweights queues full of short flows
//!   (the unfairness Fig. 12b demonstrates);
//! * [`WeightPolicy::Fixed`] — a static split, for tests.

use crate::maxmin::{max_min_allocate, Demand};
use crate::router::{AbcQdisc, AbcRouterConfig};
use crate::topk::SpaceSaving;
use netsim::packet::{FlowId, Packet};
use netsim::queue::{Qdisc, QdiscStats};
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// How the dual queue assigns scheduler weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightPolicy {
    /// Max-min over estimated demands; `headroom` is X (demands of top-K
    /// flows are assumed X% above current throughput; the paper uses 10%).
    MaxMin {
        /// Demand headroom X: top-K demands assumed X% above throughput.
        headroom: f64,
    },
    /// RCP's approach: weight ∝ estimated number of flows.
    ZombieList,
    /// Fixed ABC-queue weight.
    Fixed(f64),
}

/// SRED-style flow-count estimator: a small cache of recently seen flows
/// ("zombies"); the hit probability of new arrivals against a random
/// zombie estimates 1/N.
#[derive(Debug)]
struct ZombieList {
    zombies: Vec<FlowId>,
    capacity: usize,
    hit_prob: f64,
    rng: StdRng,
}

impl ZombieList {
    fn new(capacity: usize, seed: u64) -> Self {
        ZombieList {
            zombies: Vec::with_capacity(capacity),
            capacity,
            hit_prob: 1.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn observe(&mut self, flow: FlowId) {
        if self.zombies.len() < self.capacity {
            self.zombies.push(flow);
            return;
        }
        let idx = self.rng.gen_range(0..self.zombies.len());
        let hit = self.zombies[idx] == flow;
        // EWMA with the SRED constant
        const ALPHA: f64 = 0.02;
        self.hit_prob += ALPHA * ((hit as u8 as f64) - self.hit_prob);
        if !hit && self.rng.gen::<f64>() < 0.25 {
            self.zombies[idx] = flow;
        }
    }

    /// Estimated number of active flows.
    fn flow_count(&self) -> f64 {
        if self.zombies.is_empty() {
            return 0.0;
        }
        (1.0 / self.hit_prob.max(1e-3)).max(1.0)
    }
}

/// Per-queue measurement state for the weight update.
struct QueueMeter {
    topk: SpaceSaving,
    dequeued_bytes: u64,
    zombies: ZombieList,
    /// Consecutive epochs each flow has stayed in the top-K with a
    /// non-trivial guaranteed count. Long-running flows persist across
    /// epochs; a 10-KB short flow cannot appear twice.
    persist: std::collections::HashMap<FlowId, u32>,
}

impl QueueMeter {
    fn new(k: usize, seed: u64) -> Self {
        QueueMeter {
            topk: SpaceSaving::new(k),
            dequeued_bytes: 0,
            zombies: ZombieList::new(100, seed),
            persist: std::collections::HashMap::new(),
        }
    }

    fn on_dequeue(&mut self, flow: FlowId, bytes: u64) {
        self.topk.record(flow, bytes);
        self.dequeued_bytes += bytes;
        self.zombies.observe(flow);
    }

    /// Demands per §5.2: top-K flows want X% more than their measured
    /// rate; the short-flow remainder wants exactly its current rate.
    /// Returns the elephant demands and the short-flow aggregate rate
    /// separately: the short aggregate is *inelastic* (those flows cannot
    /// send faster), so the weight computation grants it off the top and
    /// runs max-min only over the elephants — lumping the shorts into one
    /// max-min entry would cap hundreds of flows at a single flow's fair
    /// share and starve the queue they share with elephants.
    fn demands(&self, tag: usize, epoch: SimDuration, headroom: f64) -> (Vec<Demand>, f64) {
        let mut out = Vec::new();
        let mut top_bytes = 0u64;
        // An entry is a long-running flow only if its *guaranteed* count
        // (count − error) is substantial: a 10-KB short flow can never
        // guarantee more than 10 KB, while an elephant moves hundreds of
        // KB per epoch. Entries that merely inherited an evicted counter
        // under churn stay classified as short traffic.
        const ELEPHANT_MIN_BYTES: u64 = 50_000;
        // …or it has persisted in the top-K across epochs: a starved
        // elephant moves few bytes per epoch but keeps reappearing,
        // while 10-KB shorts cannot outlive one epoch.
        const PERSIST_EPOCHS: u32 = 3;
        for e in self.topk.top() {
            let guaranteed = e.count - e.error;
            let persisted = self.persist.get(&e.flow).copied().unwrap_or(0);
            if guaranteed < ELEPHANT_MIN_BYTES && persisted < PERSIST_EPOCHS {
                continue;
            }
            // subtract the full (over-)count so inherited short bytes are
            // not double-counted in the short aggregate; for genuine
            // elephants error ≈ 0 so demand is barely affected
            top_bytes += e.count;
            let rate = guaranteed as f64 * 8.0 / epoch.as_secs_f64();
            out.push(Demand {
                tag,
                demand: rate * (1.0 + headroom),
            });
        }
        let short_bytes = self.dequeued_bytes.saturating_sub(top_bytes);
        let short_rate = short_bytes as f64 * 8.0 / epoch.as_secs_f64();
        (out, short_rate)
    }

    fn reset_epoch(&mut self) {
        // update flow persistence before forgetting the epoch's counts
        let seen: std::collections::HashSet<FlowId> = self
            .topk
            .top()
            .iter()
            .filter(|e| e.count - e.error >= 11_000)
            .map(|e| e.flow)
            .collect();
        self.persist.retain(|f, _| seen.contains(f));
        for f in seen {
            *self.persist.entry(f).or_insert(0) += 1;
        }
        self.topk.reset();
        self.dequeued_bytes = 0;
    }
}

/// Configuration of the dual-queue coexistence router.
#[derive(Debug, Clone, Copy)]
pub struct DualQueueConfig {
    /// Control-law configuration for the ABC queue.
    pub abc: AbcRouterConfig,
    /// How scheduler weights are assigned.
    pub policy: WeightPolicy,
    /// Per-queue buffer (packets).
    pub buffer_pkts: usize,
    /// Weight-update epoch.
    pub epoch: SimDuration,
    /// Track this many heavy hitters per queue.
    pub top_k: usize,
    /// Weight clamp, keeps either class from starving entirely.
    pub min_weight: f64,
}

impl Default for DualQueueConfig {
    fn default() -> Self {
        DualQueueConfig {
            abc: AbcRouterConfig::default(),
            policy: WeightPolicy::MaxMin { headroom: 0.10 },
            buffer_pkts: 250,
            epoch: SimDuration::from_millis(200),
            top_k: 20,
            min_weight: 0.05,
        }
    }
}

/// The dual-queue qdisc.
pub struct DualQueue {
    cfg: DualQueueConfig,
    /// The ABC class: a full ABC router over its share of the link.
    abc_q: AbcQdisc,
    /// The legacy class: plain FIFO.
    other_q: VecDeque<Box<Packet>>,
    other_bytes: u64,
    /// Scheduler virtual time: bytes served normalized by weight.
    v_abc: f64,
    v_other: f64,
    w_abc: f64,
    mu: Rate,
    meter_abc: QueueMeter,
    meter_other: QueueMeter,
    epoch_start: Option<SimTime>,
    /// EWMA of "the non-ABC queue is idle", so the ABC class's capacity
    /// share ramps smoothly between its weighted share and the full link
    /// instead of flapping 10× whenever the other queue drains for a
    /// moment (which whipsaws ABC's control loop into overshoot).
    other_idle: f64,
    stats: QdiscStats,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Class {
    Abc,
    Other,
}

impl DualQueue {
    /// A dual queue at the configured initial weight, both queues empty.
    pub fn new(cfg: DualQueueConfig) -> Self {
        let abc_cfg = AbcRouterConfig {
            buffer_pkts: cfg.buffer_pkts,
            ..cfg.abc
        };
        let w0 = match cfg.policy {
            WeightPolicy::Fixed(w) => w,
            _ => 0.5,
        };
        DualQueue {
            cfg,
            abc_q: AbcQdisc::new(abc_cfg),
            other_q: VecDeque::new(),
            other_bytes: 0,
            v_abc: 0.0,
            v_other: 0.0,
            w_abc: w0.clamp(cfg.min_weight, 1.0 - cfg.min_weight),
            mu: Rate::ZERO,
            meter_abc: QueueMeter::new(cfg.top_k, 0x5eed_0001),
            meter_other: QueueMeter::new(cfg.top_k, 0x5eed_0002),
            epoch_start: None,
            other_idle: 1.0,
            stats: QdiscStats::default(),
        }
    }

    /// Current scheduler weight of the ABC queue.
    pub fn weight_abc(&self) -> f64 {
        self.w_abc
    }

    /// The ABC-side qdisc.
    pub fn abc_queue(&self) -> &AbcQdisc {
        &self.abc_q
    }

    /// Packets queued on the non-ABC side.
    pub fn other_len_pkts(&self) -> usize {
        self.other_q.len()
    }

    /// Which class the scheduler serves next (weighted virtual time; work
    /// conserving when one class is idle).
    fn choose(&self) -> Option<Class> {
        let abc_empty = self.abc_q.is_empty();
        let other_empty = self.other_q.is_empty();
        match (abc_empty, other_empty) {
            (true, true) => None,
            (false, true) => Some(Class::Abc),
            (true, false) => Some(Class::Other),
            (false, false) => {
                if self.v_abc <= self.v_other {
                    Some(Class::Abc)
                } else {
                    Some(Class::Other)
                }
            }
        }
    }

    fn maybe_update_weights(&mut self, now: SimTime) {
        let start = *self.epoch_start.get_or_insert(now);
        if now.since(start) < self.cfg.epoch {
            return;
        }
        self.epoch_start = Some(now);
        let epoch = self.cfg.epoch;
        let w = match self.cfg.policy {
            WeightPolicy::Fixed(w) => w,
            WeightPolicy::MaxMin { headroom } => {
                let (mut demands, short_abc) = self.meter_abc.demands(0, epoch, headroom);
                let (other_demands, short_other) = self.meter_other.demands(1, epoch, headroom);
                demands.extend(other_demands);
                // A persistently backlogged class is *not* demand-limited:
                // its serviced rate understates what its elephants want
                // (measured×(1+X) would freeze a starved class at its
                // current share). Let such elephants enter the water-fill
                // as unsatisfied so they get equalized at the fair share.
                let abc_backlogged = self.abc_q.len_pkts() > 20;
                let other_backlogged = self.other_q.len() > 20;
                for d in demands.iter_mut() {
                    let backlogged = if d.tag == 0 {
                        abc_backlogged
                    } else {
                        other_backlogged
                    };
                    if backlogged {
                        d.demand = d.demand.max(self.mu.bps());
                    }
                }
                // A backlogged class with no measurable elephants (flows
                // in timeout move too few bytes to register) still has
                // demand: the standing queue is the evidence.
                if abc_backlogged && !demands.iter().any(|d| d.tag == 0) {
                    demands.push(Demand {
                        tag: 0,
                        demand: self.mu.bps(),
                    });
                }
                if other_backlogged && !demands.iter().any(|d| d.tag == 1) {
                    demands.push(Demand {
                        tag: 1,
                        demand: self.mu.bps(),
                    });
                }
                if (demands.is_empty() && short_abc + short_other <= 0.0) || self.mu.is_zero() {
                    self.w_abc
                } else {
                    // grant the inelastic short aggregates off the top
                    // (with the same headroom so their service can grow),
                    // then max-min the elephants over what remains
                    let shorts = (short_abc + short_other) * (1.0 + headroom);
                    let remaining = (self.mu.bps() - shorts).max(self.mu.bps() * 0.05);
                    let alloc = max_min_allocate(&demands, remaining);
                    let abc_share: f64 = alloc
                        .iter()
                        .filter(|a| a.tag == 0)
                        .map(|a| a.allocated)
                        .sum::<f64>()
                        + short_abc * (1.0 + headroom);
                    // §5.2: "it sets the weight of each queue to be equal
                    // to the total max-min rate allocation of its flows" —
                    // normalize by capacity, not by the total allocation:
                    // ABC's η-headroom (it deliberately uses 98% of its
                    // share) must not compound into a shrinking weight.
                    if self.mu.is_zero() {
                        self.w_abc
                    } else {
                        abc_share / self.mu.bps()
                    }
                }
            }
            WeightPolicy::ZombieList => {
                let na = self.meter_abc.zombies.flow_count();
                let no = self.meter_other.zombies.flow_count();
                if na + no <= 0.0 {
                    self.w_abc
                } else {
                    na / (na + no)
                }
            }
        };
        // Slew-limit the weight: a class arrival can halve the computed
        // allocation in a single epoch, but applying that step instantly
        // leaves the ABC class targeting a stale capacity for a full
        // control lag — the queue overshoots, drops, and the measured-rate
        // demand estimate collapses into a self-sustaining starvation.
        // Bounding the per-epoch change keeps both classes' control loops
        // inside their stable region while the weights converge.
        const MAX_STEP: f64 = 0.05;
        let target = w.clamp(self.cfg.min_weight, 1.0 - self.cfg.min_weight);
        let step = (target - self.w_abc).clamp(-MAX_STEP, MAX_STEP);
        self.w_abc += step;
        self.meter_abc.reset_epoch();
        self.meter_other.reset_epoch();
    }

    /// Capacity the ABC control law should target: its weighted share,
    /// blending up to the whole link as the other class goes idle (work
    /// conservation, smoothed over ~500 packets).
    fn abc_share(&self) -> Rate {
        self.mu * (self.w_abc + (1.0 - self.w_abc) * self.other_idle)
    }
}

impl Qdisc for DualQueue {
    netsim::impl_qdisc_downcast!();

    fn enqueue(&mut self, mut pkt: Box<Packet>, now: SimTime) -> bool {
        self.maybe_update_weights(now);
        if pkt.abc_capable {
            let ok = self.abc_q.enqueue(pkt, now);
            if !ok {
                self.stats.dropped_pkts += 1;
            } else {
                self.stats.enqueued_pkts += 1;
            }
            ok
        } else {
            if self.other_q.len() >= self.cfg.buffer_pkts {
                self.stats.dropped_pkts += 1;
                return false;
            }
            pkt.enqueued_at = now;
            self.other_bytes += pkt.size as u64;
            self.other_q.push_back(pkt);
            self.stats.enqueued_pkts += 1;
            true
        }
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Box<Packet>> {
        self.maybe_update_weights(now);
        const IDLE_ALPHA: f64 = 0.02;
        self.other_idle += IDLE_ALPHA * ((self.other_q.is_empty() as u8 as f64) - self.other_idle);
        // the ABC class computes its feedback against its current share
        self.abc_q.on_capacity(self.abc_share(), now);
        let class = self.choose()?;
        let pkt = match class {
            Class::Abc => {
                let p = self.abc_q.dequeue(now)?;
                self.v_abc += p.size as f64 / self.w_abc.max(1e-6);
                self.meter_abc.on_dequeue(p.flow, p.size as u64);
                p
            }
            Class::Other => {
                let p = self.other_q.pop_front()?;
                self.other_bytes -= p.size as u64;
                self.v_other += p.size as f64 / (1.0 - self.w_abc).max(1e-6);
                self.meter_other.on_dequeue(p.flow, p.size as u64);
                p
            }
        };
        // keep idle-class virtual time from falling behind unboundedly
        let vmin = self.v_abc.min(self.v_other);
        self.v_abc -= vmin;
        self.v_other -= vmin;
        self.stats.dequeued_pkts += 1;
        self.stats.dequeued_bytes += pkt.size as u64;
        Some(pkt)
    }

    fn peek_size(&self) -> Option<u32> {
        match self.choose()? {
            Class::Abc => self.abc_q.peek_size(),
            Class::Other => self.other_q.front().map(|p| p.size),
        }
    }

    fn len_pkts(&self) -> usize {
        self.abc_q.len_pkts() + self.other_q.len()
    }

    fn len_bytes(&self) -> u64 {
        self.abc_q.len_bytes() + self.other_bytes
    }

    fn on_capacity(&mut self, rate: Rate, _now: SimTime) {
        self.mu = rate;
    }

    fn head_sojourn(&self, now: SimTime) -> Option<SimDuration> {
        match self.choose()? {
            Class::Abc => self.abc_q.head_sojourn(now),
            Class::Other => self.other_q.front().map(|p| now.since(p.enqueued_at)),
        }
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Ecn, Feedback, NodeId, Route};

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn pkt(flow: u32, abc: bool, seq: u64) -> Box<Packet> {
        Box::new(Packet {
            flow: FlowId(flow),
            seq,
            size: 1500,
            ecn: if abc { Ecn::Accelerate } else { Ecn::NotEct },
            feedback: Feedback::None,
            abc_capable: abc,
            sent_at: SimTime::ZERO,
            retransmit: false,
            ack: None,
            route: Route::new(vec![(NodeId(0), SimDuration::ZERO)]),
            hop: 0,
            enqueued_at: SimTime::ZERO,
        })
    }

    #[test]
    fn classifies_by_abc_flag() {
        let mut q = DualQueue::new(DualQueueConfig::default());
        q.enqueue(pkt(1, true, 0), at(0));
        q.enqueue(pkt(2, false, 0), at(0));
        assert_eq!(q.abc_queue().len_pkts(), 1);
        assert_eq!(q.other_len_pkts(), 1);
    }

    #[test]
    fn fixed_weights_split_service() {
        let mut q = DualQueue::new(DualQueueConfig {
            policy: WeightPolicy::Fixed(0.75),
            ..Default::default()
        });
        q.on_capacity(Rate::from_mbps(12.0), at(0));
        // keep both queues backlogged, observe the service mix
        let mut abc_served = 0;
        let mut other_served = 0;
        // seq tracks t one-to-one
        for t in 0..400u64 {
            q.enqueue(pkt(1, true, t), at(t));
            q.enqueue(pkt(2, false, t), at(t));
            if let Some(p) = q.dequeue(at(t)) {
                if p.abc_capable {
                    abc_served += 1;
                } else {
                    other_served += 1;
                }
            }
        }
        let share = abc_served as f64 / (abc_served + other_served) as f64;
        assert!((share - 0.75).abs() < 0.05, "abc share {share}");
    }

    #[test]
    fn work_conserving_when_one_class_idle() {
        let mut q = DualQueue::new(DualQueueConfig {
            policy: WeightPolicy::Fixed(0.5),
            ..Default::default()
        });
        q.on_capacity(Rate::from_mbps(12.0), at(0));
        for i in 0..10 {
            q.enqueue(pkt(1, true, i), at(0));
        }
        for i in 0..10 {
            assert!(q.dequeue(at(i)).is_some(), "must serve the busy class");
        }
    }

    #[test]
    fn maxmin_weights_track_demand() {
        let mut q = DualQueue::new(DualQueueConfig {
            policy: WeightPolicy::MaxMin { headroom: 0.10 },
            epoch: SimDuration::from_millis(100),
            ..Default::default()
        });
        q.on_capacity(Rate::from_mbps(12.0), at(0));
        // one elephant per class, balanced load → weight near 0.5
        // seq tracks t one-to-one
        for t in 0..2000u64 {
            q.enqueue(pkt(1, true, t), at(t));
            q.enqueue(pkt(2, false, t), at(t));
            q.dequeue(at(t));
            q.dequeue(at(t));
        }
        assert!(
            (q.weight_abc() - 0.5).abs() < 0.15,
            "weight {}",
            q.weight_abc()
        );
    }

    #[test]
    fn zombie_list_estimates_flow_count() {
        let mut z = ZombieList::new(100, 42);
        // 4 flows, uniform traffic
        for i in 0..20_000u32 {
            z.observe(FlowId(i % 4));
        }
        let n = z.flow_count();
        assert!((n - 4.0).abs() < 1.5, "estimated {n} flows");
        // many flows → larger estimate
        let mut z2 = ZombieList::new(100, 43);
        for i in 0..20_000u32 {
            z2.observe(FlowId(i % 40));
        }
        assert!(z2.flow_count() > 20.0, "estimated {}", z2.flow_count());
    }

    #[test]
    fn abc_share_blends_toward_weight_when_other_busy() {
        let mut q = DualQueue::new(DualQueueConfig {
            policy: WeightPolicy::Fixed(0.3),
            ..Default::default()
        });
        q.on_capacity(Rate::from_mbps(10.0), at(0));
        // other class idle since start → full link
        assert!((q.abc_share().mbps() - 10.0).abs() < 1e-9);
        // keep the other class backlogged: the idle EWMA decays and the
        // share approaches the 30% weight
        // seq tracks t one-to-one
        for t in 0..4000u64 {
            q.enqueue(pkt(1, true, t), at(t));
            q.enqueue(pkt(2, false, t), at(t));
            q.dequeue(at(t));
        }
        let share = q.abc_share().mbps();
        assert!(
            (share - 3.0).abs() < 0.4,
            "share {share} should approach w·µ = 3"
        );
    }
}
