//! Wi-Fi experiments (§6.3 Fig. 10, Appendix B Fig. 14, and the
//! estimator-accuracy studies of Figs. 4-5): flows through the 802.11n
//! A-MPDU access-point model with a time-varying MCS index.

use crate::report::{downsample, Report};
use crate::scheme::Scheme;
use netsim::flow::{Sender, Sink, TrafficSource};
use netsim::metrics::new_hub;
use netsim::packet::{FlowId, Route};
use netsim::sim::Simulator;
use netsim::stats::summarize;
use netsim::time::{SimDuration, SimTime};
use wifi_mac::{AlternatingMcs, BrownianMcs, FixedMcs, McsProcess, WifiAp, WifiApConfig};

/// MCS-variation pattern of the experiment.
#[derive(Debug, Clone, Copy)]
pub enum McsSpec {
    Fixed(u8),
    /// §6.3: alternate between two indices every period.
    Alternating(u8, u8, SimDuration),
    /// Appendix B: Brownian walk over [min, max].
    Brownian(u8, u8, SimDuration, u64),
}

impl McsSpec {
    pub fn build(&self) -> Box<dyn McsProcess> {
        match *self {
            McsSpec::Fixed(i) => Box::new(FixedMcs(i)),
            McsSpec::Alternating(a, b, p) => Box::new(AlternatingMcs { a, b, period: p }),
            McsSpec::Brownian(lo, hi, p, seed) => Box::new(BrownianMcs::new(lo, hi, p, seed)),
        }
    }
}

pub struct WifiScenario {
    pub scheme: Scheme,
    pub users: u32,
    pub mcs: McsSpec,
    pub rtt: SimDuration,
    pub duration: SimDuration,
    pub warmup: SimDuration,
    pub app: TrafficSource,
}

impl WifiScenario {
    pub fn new(scheme: Scheme, users: u32, mcs: McsSpec) -> Self {
        WifiScenario {
            scheme,
            users,
            mcs,
            rtt: SimDuration::from_millis(100),
            duration: SimDuration::from_secs(45),
            warmup: SimDuration::from_secs(5),
            app: TrafficSource::Backlogged,
        }
    }

    pub fn run(&self) -> Report {
        let mut sim = Simulator::new();
        let hub = new_hub();
        hub.borrow_mut().set_epoch(SimTime::ZERO + self.warmup);
        let ap_id = sim.reserve_node();
        let q = self.rtt / 4;
        for i in 0..self.users {
            let flow = FlowId(i + 1);
            let sender_id = sim.reserve_node();
            let sink_id = sim.reserve_node();
            let fwd = Route::new(vec![(ap_id, q), (sink_id, q)]);
            let back = Route::new(vec![(sender_id, self.rtt / 2)]);
            sim.install_node(
                sink_id,
                Box::new(Sink::new(flow, back).with_metrics(hub.clone())),
            );
            sim.install_node(
                sender_id,
                Box::new(Sender::new(flow, self.scheme.make_cc(), fwd, self.app)),
            );
        }
        // Commodity Wi-Fi routers ship bufferbloat-sized queues (the paper
        // observes multi-second tail delays on its NETGEAR testbed).
        let ap = WifiAp::new(
            WifiApConfig::default(),
            self.scheme.make_qdisc(2000),
            self.mcs.build(),
        )
        .with_metrics("wifi", hub.clone());
        sim.install_node(ap_id, Box::new(ap));
        sim.run_until(SimTime::ZERO + self.duration);

        let hubref = hub.borrow();
        let window = self.duration.saturating_sub(self.warmup);
        static EMPTY: std::sync::OnceLock<netsim::metrics::LinkRecord> = std::sync::OnceLock::new();
        let link = hubref
            .links
            .get("wifi")
            .unwrap_or_else(|| EMPTY.get_or_init(Default::default));
        let qdelay_series: Vec<(f64, f64)> = link
            .qdelay_series
            .iter()
            .map(|(t, d)| (t.as_secs_f64(), d.as_millis_f64()))
            .collect();
        let flow_tputs: Vec<f64> = hubref
            .flows
            .values()
            .map(|f| f.throughput_over(window) / 1e6)
            .collect();
        Report {
            scheme: self.scheme.name(),
            utilization: f64::NAN, // no opportunity accounting on Wi-Fi
            delay_ms: hubref.delay_summary_ms(),
            qdelay_ms: link.qdelay_summary_ms(),
            total_tput_mbps: flow_tputs.iter().sum(),
            jain: hubref.jain(window),
            drops: link.dropped_pkts,
            flow_tputs_mbps: flow_tputs,
            tput_series: hubref.total_throughput_series_mbps(),
            qdelay_series: downsample(&qdelay_series, 600),
            capacity_series: Vec::new(),
        }
    }
}

/// Fig. 5: estimator accuracy for a non-backlogged sender at a given
/// offered load over a fixed-MCS link. Returns (offered Mbit/s, predicted
/// Mbit/s, true capacity Mbit/s).
pub fn estimator_accuracy(mcs: u8, offered_mbps: f64, duration: SimDuration) -> (f64, f64, f64) {
    let mut sc = WifiScenario::new(Scheme::Cubic, 1, McsSpec::Fixed(mcs));
    sc.duration = duration;
    sc.app = TrafficSource::RateLimited {
        rate: netsim::rate::Rate::from_mbps(offered_mbps),
        burst_bytes: 6000.0,
    };
    // run manually so we can reach into the AP afterwards
    let mut sim = Simulator::new();
    let hub = new_hub();
    let ap_id = sim.reserve_node();
    let sender_id = sim.reserve_node();
    let sink_id = sim.reserve_node();
    let q = sc.rtt / 4;
    let fwd = Route::new(vec![(ap_id, q), (sink_id, q)]);
    let back = Route::new(vec![(sender_id, sc.rtt / 2)]);
    sim.install_node(
        sink_id,
        Box::new(Sink::new(FlowId(1), back).with_metrics(hub.clone())),
    );
    sim.install_node(
        sender_id,
        Box::new(Sender::new(FlowId(1), sc.scheme.make_cc(), fwd, sc.app)),
    );
    sim.install_node(
        ap_id,
        Box::new(WifiAp::new(
            WifiApConfig::default(),
            sc.scheme.make_qdisc(250),
            sc.mcs.build(),
        )),
    );
    // sample the estimate periodically over the second half of the run
    let mut estimates = Vec::new();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + duration;
    while t < end {
        sim.run_until(t + SimDuration::from_millis(500));
        t += SimDuration::from_millis(500);
        if t.as_secs_f64() > duration.as_secs_f64() / 2.0 {
            let ap: &mut WifiAp = sim
                .node_mut(ap_id)
                .and_then(|n| n.as_any_mut().downcast_mut())
                .unwrap();
            let e = ap.estimator().batch_log().len(); // ensure activity
            if e > 0 {
                let est = {
                    // estimate() needs &mut (window expiry)
                    let est_rate = {
                        let ap2: &mut WifiAp = sim
                            .node_mut(ap_id)
                            .and_then(|n| n.as_any_mut().downcast_mut())
                            .unwrap();
                        ap2.estimator_mut().estimate(t)
                    };
                    est_rate
                };
                if !est.is_zero() {
                    estimates.push(est.mbps());
                }
            }
        }
    }
    let truth = {
        let ap: &mut WifiAp = sim
            .node_mut(ap_id)
            .and_then(|n| n.as_any_mut().downcast_mut())
            .unwrap();
        ap.true_capacity_at(end).mbps()
    };
    let predicted = summarize(&estimates).mean;
    (offered_mbps, predicted, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abc_beats_cubic_delay_on_wifi() {
        let mcs = McsSpec::Alternating(1, 7, SimDuration::from_secs(2));
        let abc = WifiScenario::new(Scheme::AbcDt(60), 1, mcs).run();
        let cubic = WifiScenario::new(Scheme::Cubic, 1, mcs).run();
        assert!(
            abc.delay_ms.p95 < cubic.delay_ms.p95 / 1.5,
            "ABC p95 {:.0} vs Cubic p95 {:.0}",
            abc.delay_ms.p95,
            cubic.delay_ms.p95
        );
        assert!(
            abc.total_tput_mbps > cubic.total_tput_mbps * 0.6,
            "ABC tput {:.1} vs Cubic {:.1}",
            abc.total_tput_mbps,
            cubic.total_tput_mbps
        );
    }

    #[test]
    fn two_user_scenario_shares() {
        let mcs = McsSpec::Fixed(5);
        let r = WifiScenario::new(Scheme::AbcDt(60), 2, mcs).run();
        assert_eq!(r.flow_tputs_mbps.len(), 2);
        assert!(r.jain > 0.85, "jain {}", r.jain);
    }

    #[test]
    fn estimator_accuracy_within_5_percent_when_loaded() {
        // at high offered load the estimator must nail the capacity
        let (_, predicted, truth) =
            estimator_accuracy(1, 20.0, SimDuration::from_secs(20));
        let err = (predicted - truth).abs() / truth;
        assert!(err < 0.05, "pred {predicted:.2} vs true {truth:.2} ({err:.3})");
    }
}
