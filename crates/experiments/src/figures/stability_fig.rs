//! Theorem 3.1 validation: the fluid-model δ/τ sweep plus a full-simulator
//! sweep showing the same boundary empirically.

use super::Scale;
use crate::engine::{QdiscSpec, ScenarioEngine};
use crate::scenario::{CellScenario, LinkSpec};
use crate::scheme::Scheme;
use abc_core::router::AbcRouterConfig;
use abc_core::stability::{fluid_a, integrate_fluid, is_stable};
use netsim::rate::Rate;
use netsim::time::SimDuration;
use std::fmt::Write;

/// Appendix C: utilization/delay across the ABC δ stability sweep.
pub fn stability(scale: Scale) -> String {
    let mut out = String::new();
    writeln!(out, "# Theorem 3.1 — stability requires δ > ⅔·τ").unwrap();

    // fluid model sweep: fix τ = 100 ms, sweep δ/τ
    let tau = SimDuration::from_millis(100);
    writeln!(out, "\n## fluid model (A > 0 regime)").unwrap();
    writeln!(
        out,
        "{:>8} {:>10} {:>12} {:>10}",
        "δ/τ", "criterion", "residual", "verdict"
    )
    .unwrap();
    let ratios: &[f64] = if scale.reduced() {
        &[0.3, 0.5, 0.8, 1.33]
    } else {
        &[0.2, 0.33, 0.5, 0.6, 0.7, 0.8, 1.0, 1.33, 2.0]
    };
    let a = fluid_a(0.98, 20, Rate::from_mbps(12.0), 1500, 0.1);
    for &ratio in ratios {
        let delta = tau.mul_f64(ratio);
        let tr = integrate_fluid(a, delta, SimDuration::from_millis(20), tau, 0.4, 30.0, 5e-4);
        let criterion = is_stable(delta, tau);
        let converged = tr.residual < 0.005;
        writeln!(
            out,
            "{:>8.2} {:>10} {:>12.5} {:>10}",
            ratio,
            if criterion { "stable" } else { "unstable" },
            tr.residual,
            if converged { "converged" } else { "oscillates" }
        )
        .unwrap();
    }

    // full-simulator sweep: N ABC flows on a constant link, vary δ;
    // measure queuing-delay dispersion after convergence
    writeln!(out, "\n## full simulator (20 flows, 12 Mbit/s, τ = 100 ms)").unwrap();
    writeln!(
        out,
        "{:>9} {:>10} {:>14} {:>12}",
        "δ (ms)", "criterion", "qdelay sd (ms)", "util"
    )
    .unwrap();
    let deltas: &[u64] = if scale.reduced() {
        &[30, 200]
    } else {
        &[20, 40, 60, 90, 133, 200, 400]
    };
    // one spec per δ, with the router override declared in the spec; the
    // sweep runs in parallel
    let specs: Vec<_> = deltas
        .iter()
        .map(|&dms| {
            let mut sc = CellScenario::new(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)));
            sc.n_flows = 20;
            sc.duration = scale.secs(60, 30, 2);
            sc.warmup = scale.secs(10, 10, 0);
            sc.spec().qdisc(QdiscSpec::AbcWith(AbcRouterConfig {
                delta: SimDuration::from_millis(dms),
                ..Default::default()
            }))
        })
        .collect();
    let reports = ScenarioEngine::new().run_batch(&specs);
    for (&dms, r) in deltas.iter().zip(&reports) {
        writeln!(
            out,
            "{:>9} {:>10} {:>14.1} {:>11.1}%",
            dms,
            if is_stable(SimDuration::from_millis(dms), SimDuration::from_millis(100)) {
                "stable"
            } else {
                "unstable"
            },
            r.qdelay_ms.std_dev,
            r.utilization * 100.0
        )
        .unwrap();
    }
    writeln!(
        out,
        "(small δ ⇒ oscillation: larger qdelay dispersion and/or lost utilization)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fluid_verdicts_match_criterion() {
        let s = stability(Scale::Fast);
        // every fluid-model row labeled "stable" must have converged and
        // the 0.3 ratio must oscillate
        let mut saw_unstable_oscillation = false;
        for line in s.lines() {
            let cols: Vec<&str> = line.split_whitespace().collect();
            if cols.len() == 4 && cols[1] == "stable" && cols[3] == "oscillates" {
                panic!("stable parameters failed to converge: {line}");
            }
            if cols.len() == 4 && cols[1] == "unstable" && cols[3] == "oscillates" {
                saw_unstable_oscillation = true;
            }
        }
        assert!(
            saw_unstable_oscillation,
            "sweep never exhibited instability:\n{s}"
        );
    }
}
