//! Deterministic adversarial-network impairments.
//!
//! The paper's robustness story (§2, §4) is about paths that misbehave:
//! cellular outages, lost ACKs, middleboxes that bleach ECN or strip
//! unknown header options. This module makes those conditions first-class
//! simulator primitives: an [`ImpairmentWire`] is a node spliced into a
//! route that applies one [`ImpairmentKind`] — Bernoulli drop / ECN
//! bleach / feedback strip, Gilbert–Elliott burst loss, seeded
//! hold-and-release reordering, uniform delay jitter, scheduled outages
//! (optionally periodic, i.e. link flaps), or counter-based decimation
//! (the classic "keep one ACK in k") — to every packet that crosses it.
//!
//! Every impairment is **bit-deterministic**: all randomness comes from a
//! per-wire [`StdRng`] seeded from the scenario seed, outages and
//! decimation use no randomness at all, and re-scheduled (jittered or
//! held) packets flow through the ordinary event queue, so the
//! event-order fingerprint of an impaired run is identical across reruns
//! and worker-pool widths. Counters ([`ImpairmentWire::passed`] /
//! [`ImpairmentWire::impaired`]) feed the shared
//! [`MetricsHub`](crate::metrics::MetricsHub) and the telemetry signal
//! catalog, so an impaired run reports what actually hit the wire.
//!
//! Placement is described by [`ImpairmentSpec`] (which kind, data or ACK
//! direction, which hop) — the experiment engine splices wires into the
//! built routes from that description.

use crate::event::EventKind;
use crate::metrics::Metrics;
use crate::node::{Context, Node};
use crate::packet::{Ecn, Feedback};
use crate::telemetry::{Scope, Signal};
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the legacy Bernoulli wire does to unlucky packets. Retained as
/// the compact form of the three middlebox impairments; `From` lifts a
/// `(p, Impairment)` pair into the full [`ImpairmentKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Impairment {
    /// Drop the packet entirely.
    Drop,
    /// Deliver it, but wipe its ECN bits to Not-ECT (a middlebox that
    /// bleaches ECN — a real deployment hazard for ABC).
    BleachEcn,
    /// Deliver it, but strip explicit-feedback headers (a middlebox that
    /// drops unknown options — §2's argument against XCP-style headers).
    StripFeedback,
}

/// Which direction of a scenario path a wire impairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// The data path, sender → sink (spliced ahead of a hop queue).
    Data,
    /// The ACK/feedback return path, sink → sender.
    Ack,
}

impl Direction {
    /// Stable wire name, used in labels and TOML.
    pub fn name(self) -> &'static str {
        match self {
            Direction::Data => "data",
            Direction::Ack => "ack",
        }
    }
}

/// One impairment behavior. All probabilities are per-packet and must be
/// in `[0, 1]`; all durations are simulation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImpairmentKind {
    /// Bernoulli loss: drop each packet with probability `p`.
    Drop {
        /// Per-packet drop probability.
        p: f64,
    },
    /// Bernoulli ECN bleaching: wipe ECN bits to Not-ECT with
    /// probability `p`.
    BleachEcn {
        /// Per-packet bleach probability.
        p: f64,
    },
    /// Bernoulli feedback stripping: clear explicit-feedback headers
    /// with probability `p`.
    StripFeedback {
        /// Per-packet strip probability.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst loss. The wire is in a *good* or
    /// *bad* state; each packet is dropped with that state's loss rate,
    /// then the state flips with the corresponding transition
    /// probability. Exactly two RNG draws per packet (loss, then
    /// transition), in that order — the reference implementation in the
    /// tests replays the identical draw sequence.
    GilbertElliott {
        /// P(good → bad) per packet.
        p_good_bad: f64,
        /// P(bad → good) per packet.
        p_bad_good: f64,
        /// Loss rate while in the good state.
        loss_good: f64,
        /// Loss rate while in the bad state.
        loss_bad: f64,
    },
    /// Seeded hold-and-release reordering: with probability `p` a packet
    /// is held for an extra `hold` before continuing, letting later
    /// packets overtake it.
    Reorder {
        /// Per-packet hold probability.
        p: f64,
        /// Extra delay applied to held packets.
        hold: SimDuration,
    },
    /// Uniform delay jitter: every packet gets an extra delay drawn
    /// uniformly from `[0, max)`.
    Jitter {
        /// Upper bound (exclusive) of the per-packet extra delay.
        max: SimDuration,
    },
    /// Scheduled link outage: every packet arriving within the outage
    /// window is dropped. With `period`, the window repeats (link
    /// flaps): windows cover `[start + k·period, start + k·period +
    /// duration)` for `k = 0, 1, …`. No randomness.
    Outage {
        /// Offset of the first outage from simulation start.
        start: SimDuration,
        /// Length of each outage window.
        duration: SimDuration,
        /// Repeat interval; `None` means a single outage.
        period: Option<SimDuration>,
    },
    /// Counter-based decimation: keep every `keep_one_in`-th packet and
    /// drop the rest. Placed on the ACK direction this is the paper's
    /// "ABC survives ACK thinning" condition. No randomness.
    Decimate {
        /// Keep one packet in this many (`1` passes everything).
        keep_one_in: u64,
    },
}

/// Check a probability field, naming it in the error.
fn check_prob(name: &str, p: f64) -> Result<(), String> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(format!("{name} must be in [0, 1], got {p}"))
    }
}

impl ImpairmentKind {
    /// Stable kind name, used in labels, telemetry scopes, and TOML.
    pub fn name(self) -> &'static str {
        match self {
            ImpairmentKind::Drop { .. } => "drop",
            ImpairmentKind::BleachEcn { .. } => "bleach-ecn",
            ImpairmentKind::StripFeedback { .. } => "strip-feedback",
            ImpairmentKind::GilbertElliott { .. } => "gilbert-elliott",
            ImpairmentKind::Reorder { .. } => "reorder",
            ImpairmentKind::Jitter { .. } => "jitter",
            ImpairmentKind::Outage { .. } => "outage",
            ImpairmentKind::Decimate { .. } => "decimate",
        }
    }

    /// Validate parameter ranges; the TOML schema layer surfaces these
    /// messages with source positions, and wire construction asserts on
    /// them as a backstop.
    pub fn validate(self) -> Result<(), String> {
        match self {
            ImpairmentKind::Drop { p } => check_prob("drop p", p),
            ImpairmentKind::BleachEcn { p } => check_prob("bleach-ecn p", p),
            ImpairmentKind::StripFeedback { p } => check_prob("strip-feedback p", p),
            ImpairmentKind::GilbertElliott {
                p_good_bad,
                p_bad_good,
                loss_good,
                loss_bad,
            } => {
                check_prob("gilbert-elliott p_good_bad", p_good_bad)?;
                check_prob("gilbert-elliott p_bad_good", p_bad_good)?;
                check_prob("gilbert-elliott loss_good", loss_good)?;
                check_prob("gilbert-elliott loss_bad", loss_bad)
            }
            ImpairmentKind::Reorder { p, .. } => check_prob("reorder p", p),
            ImpairmentKind::Jitter { .. } => Ok(()),
            ImpairmentKind::Outage {
                duration, period, ..
            } => {
                if duration.is_zero() {
                    return Err("outage duration must be positive".into());
                }
                if matches!(period, Some(p) if p.is_zero()) {
                    return Err("outage period must be positive".into());
                }
                Ok(())
            }
            ImpairmentKind::Decimate { keep_one_in } => {
                if keep_one_in == 0 {
                    Err("decimate keep_one_in must be at least 1".into())
                } else {
                    Ok(())
                }
            }
        }
    }
}

impl From<(f64, Impairment)> for ImpairmentKind {
    fn from((p, what): (f64, Impairment)) -> ImpairmentKind {
        match what {
            Impairment::Drop => ImpairmentKind::Drop { p },
            Impairment::BleachEcn => ImpairmentKind::BleachEcn { p },
            Impairment::StripFeedback => ImpairmentKind::StripFeedback { p },
        }
    }
}

/// Where on a scenario path an impairment sits: which [`ImpairmentKind`],
/// which [`Direction`], and (for the data direction) ahead of which hop
/// queue, 0-indexed along the path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpairmentSpec {
    /// The behavior.
    pub kind: ImpairmentKind,
    /// Data or ACK direction.
    pub direction: Direction,
    /// Data-direction hop index the wire precedes; ignored for
    /// [`Direction::Ack`] (the return path has a single leg).
    pub hop: usize,
}

impl ImpairmentSpec {
    /// An impairment on the data path, ahead of hop 0.
    pub fn data(kind: ImpairmentKind) -> Self {
        ImpairmentSpec {
            kind,
            direction: Direction::Data,
            hop: 0,
        }
    }

    /// An impairment on the ACK/feedback return path.
    pub fn ack(kind: ImpairmentKind) -> Self {
        ImpairmentSpec {
            kind,
            direction: Direction::Ack,
            hop: 0,
        }
    }

    /// Builder: place the (data-direction) wire ahead of hop `hop`.
    pub fn at_hop(mut self, hop: usize) -> Self {
        self.hop = hop;
        self
    }

    /// Report/metrics label: `"<index>:<kind>:<direction>"`, unique per
    /// configured impairment (`index` is the position in the spec list).
    pub fn label(&self, index: usize) -> String {
        format!("{index}:{}:{}", self.kind.name(), self.direction.name())
    }

    /// Validate the kind's parameters (see [`ImpairmentKind::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        self.kind.validate()
    }
}

/// What the wire decided to do with one packet.
enum Verdict {
    Pass,
    Drop,
    Bleach,
    Strip,
    Hold(SimDuration),
}

/// A route-spliced node applying one [`ImpairmentKind`] to every packet
/// it sees, forwarding survivors along their route. All state (RNG, GE
/// good/bad, decimation counter) is owned and seeded, so behavior is a
/// pure function of `(kind, seed, packet arrival order)`.
pub struct ImpairmentWire {
    kind: ImpairmentKind,
    rng: StdRng,
    /// Gilbert–Elliott: currently in the bad state.
    bad: bool,
    /// Decimate: packets seen so far.
    seen: u64,
    /// Packets forwarded untouched.
    pub passed: u64,
    /// Packets hit by the impairment (dropped, rewritten, or delayed).
    pub impaired: u64,
    /// Shared hub + registered impairment-record index, when attached.
    metrics: Option<(Metrics, usize)>,
}

/// Back-compat name for the Bernoulli middlebox wire; construct with
/// [`ImpairmentWire::new`], which keeps the historical
/// `(p, Impairment, seed)` signature and draw sequence.
pub type LossyWire = ImpairmentWire;

impl ImpairmentWire {
    /// A Bernoulli wire applying `what` with probability `p`, randomized
    /// by `seed` — the legacy [`LossyWire`] constructor, draw-for-draw
    /// compatible with it.
    pub fn new(p: f64, what: Impairment, seed: u64) -> Self {
        ImpairmentWire::from_kind(ImpairmentKind::from((p, what)), seed)
    }

    /// A wire applying `kind`, with all randomness derived from `seed`.
    ///
    /// # Panics
    /// If the kind's parameters are out of range (see
    /// [`ImpairmentKind::validate`]).
    pub fn from_kind(kind: ImpairmentKind, seed: u64) -> Self {
        if let Err(e) = kind.validate() {
            panic!("invalid impairment: {e}");
        }
        ImpairmentWire {
            kind,
            rng: StdRng::seed_from_u64(seed),
            bad: false,
            seen: 0,
            passed: 0,
            impaired: 0,
            metrics: None,
        }
    }

    /// Attach the shared hub; `index` is the slot returned by
    /// [`MetricsHub::register_impairment`](crate::metrics::MetricsHub::register_impairment).
    pub fn with_metrics(mut self, hub: Metrics, index: usize) -> Self {
        self.metrics = Some((hub, index));
        self
    }

    /// The configured behavior.
    pub fn kind(&self) -> ImpairmentKind {
        self.kind
    }

    /// Decide this packet's fate, advancing RNG/state exactly as the
    /// per-kind contract documents.
    fn verdict(&mut self, now: SimTime) -> Verdict {
        match self.kind {
            ImpairmentKind::Drop { p } => {
                if self.rng.gen::<f64>() < p {
                    Verdict::Drop
                } else {
                    Verdict::Pass
                }
            }
            ImpairmentKind::BleachEcn { p } => {
                if self.rng.gen::<f64>() < p {
                    Verdict::Bleach
                } else {
                    Verdict::Pass
                }
            }
            ImpairmentKind::StripFeedback { p } => {
                if self.rng.gen::<f64>() < p {
                    Verdict::Strip
                } else {
                    Verdict::Pass
                }
            }
            ImpairmentKind::GilbertElliott {
                p_good_bad,
                p_bad_good,
                loss_good,
                loss_bad,
            } => {
                let loss = if self.bad { loss_bad } else { loss_good };
                let dropped = self.rng.gen::<f64>() < loss;
                let flip = if self.bad { p_bad_good } else { p_good_bad };
                if self.rng.gen::<f64>() < flip {
                    self.bad = !self.bad;
                }
                if dropped {
                    Verdict::Drop
                } else {
                    Verdict::Pass
                }
            }
            ImpairmentKind::Reorder { p, hold } => {
                if self.rng.gen::<f64>() < p {
                    Verdict::Hold(hold)
                } else {
                    Verdict::Pass
                }
            }
            ImpairmentKind::Jitter { max } => {
                let extra = (max.as_nanos() as f64 * self.rng.gen::<f64>()) as u64;
                Verdict::Hold(SimDuration::from_nanos(extra))
            }
            ImpairmentKind::Outage {
                start,
                duration,
                period,
            } => {
                let since_start = now.since(SimTime::ZERO).as_nanos();
                if since_start < start.as_nanos() {
                    return Verdict::Pass;
                }
                let mut off = since_start - start.as_nanos();
                if let Some(per) = period {
                    off %= per.as_nanos();
                }
                if off < duration.as_nanos() {
                    Verdict::Drop
                } else {
                    Verdict::Pass
                }
            }
            ImpairmentKind::Decimate { keep_one_in } => {
                self.seen += 1;
                if self.seen.is_multiple_of(keep_one_in) {
                    Verdict::Pass
                } else {
                    Verdict::Drop
                }
            }
        }
    }
}

impl Node for ImpairmentWire {
    crate::impl_node_downcast!();

    fn handle(&mut self, ctx: &mut Context, event: EventKind) {
        let EventKind::Deliver(mut pkt) = event else {
            return;
        };
        let verdict = self.verdict(ctx.now());
        let hit = !matches!(verdict, Verdict::Pass);
        if hit {
            self.impaired += 1;
        } else {
            self.passed += 1;
        }
        if let Some((hub, index)) = &self.metrics {
            hub.borrow_mut().on_impairment(*index, hit);
        }
        if ctx.telemetry_on() {
            let signal = if hit {
                Signal::ImpairHit
            } else {
                Signal::ImpairPass
            };
            ctx.count(signal, Scope::Link(self.kind.name()), 1);
        }
        match verdict {
            Verdict::Drop => {
                ctx.recycle(pkt);
                return;
            }
            Verdict::Bleach => pkt.ecn = Ecn::NotEct,
            Verdict::Strip => pkt.feedback = Feedback::None,
            Verdict::Hold(extra) => {
                // forward_boxed with an extra delay: advance the route by
                // hand and schedule the delivery ourselves.
                match pkt.next_hop() {
                    Some((next, delay)) => {
                        pkt.hop += 1;
                        ctx.deliver(next, delay + extra, *pkt);
                    }
                    None => ctx.recycle(pkt),
                }
                return;
            }
            Verdict::Pass => {}
        }
        if pkt.next_hop().is_some() {
            ctx.forward_boxed(pkt);
        } else {
            ctx.recycle(pkt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, NodeId, Packet, Route};
    use crate::sim::Simulator;
    use crate::time::{SimDuration, SimTime};

    struct Counter {
        got: u64,
        ecn_seen: Vec<Ecn>,
        seqs: Vec<u64>,
        arrivals: Vec<SimTime>,
    }

    impl Node for Counter {
        crate::impl_node_downcast!();
        fn handle(&mut self, ctx: &mut Context, ev: EventKind) {
            if let EventKind::Deliver(p) = ev {
                self.got += 1;
                self.ecn_seen.push(p.ecn);
                self.seqs.push(p.seq);
                self.arrivals.push(ctx.now());
            }
        }
    }

    struct Src {
        n: u64,
        spacing: SimDuration,
        wire: NodeId,
        sink: NodeId,
    }

    impl Node for Src {
        crate::impl_node_downcast!();
        fn start(&mut self, ctx: &mut Context) {
            for seq in 0..self.n {
                let route = Route::new(vec![
                    (self.wire, SimDuration::from_millis(1) + self.spacing * seq),
                    (self.sink, SimDuration::from_millis(1)),
                ]);
                ctx.forward(Packet {
                    flow: FlowId(1),
                    seq,
                    size: 1500,
                    ecn: Ecn::Accelerate,
                    feedback: Feedback::Rcp { rate_bps: 1e6 },
                    abc_capable: true,
                    sent_at: ctx.now(),
                    retransmit: false,
                    ack: None,
                    route,
                    hop: 0,
                    enqueued_at: ctx.now(),
                });
            }
        }
        fn handle(&mut self, _: &mut Context, _: EventKind) {}
    }

    /// Push `n` packets (spaced `spacing` apart at the wire) through a
    /// wire of `kind`; return what the sink saw.
    fn run_kind(kind: ImpairmentKind, n: u64, spacing: SimDuration) -> (u64, Vec<Ecn>, Vec<u64>) {
        let mut sim = Simulator::new();
        let wire_id = sim.reserve_node();
        let sink_id = sim.reserve_node();
        sim.install_node(wire_id, Box::new(ImpairmentWire::from_kind(kind, 42)));
        sim.install_node(
            sink_id,
            Box::new(Counter {
                got: 0,
                ecn_seen: vec![],
                seqs: vec![],
                arrivals: vec![],
            }),
        );
        sim.add_node(Box::new(Src {
            n,
            spacing,
            wire: wire_id,
            sink: sink_id,
        }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(3600));
        let c: &Counter = sim
            .node(sink_id)
            .and_then(|nd| nd.as_any().downcast_ref())
            .unwrap();
        (c.got, c.ecn_seen.clone(), c.seqs.clone())
    }

    fn run(p: f64, what: Impairment, n: u64) -> (u64, Vec<Ecn>) {
        let (got, ecn, _) = run_kind(ImpairmentKind::from((p, what)), n, SimDuration::ZERO);
        (got, ecn)
    }

    #[test]
    fn drop_rate_matches_probability() {
        let (got, _) = run(0.2, Impairment::Drop, 10_000);
        let loss = 1.0 - got as f64 / 10_000.0;
        assert!((loss - 0.2).abs() < 0.02, "observed loss {loss}");
    }

    #[test]
    fn zero_probability_is_transparent() {
        let (got, ecn) = run(0.0, Impairment::Drop, 1000);
        assert_eq!(got, 1000);
        assert!(ecn.iter().all(|&e| e == Ecn::Accelerate));
    }

    #[test]
    fn bleaching_wipes_ecn_but_delivers() {
        let (got, ecn) = run(1.0, Impairment::BleachEcn, 1000);
        assert_eq!(got, 1000);
        assert!(ecn.iter().all(|&e| e == Ecn::NotEct));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(0.3, Impairment::Drop, 5000).0;
        let b = run(0.3, Impairment::Drop, 5000).0;
        assert_eq!(a, b);
    }

    /// The naive Gilbert–Elliott reference: same draw order (loss first,
    /// then transition), run against a fresh `StdRng` with the wire's
    /// seed. The wire must keep exactly this mask.
    fn naive_gilbert_elliott(
        seed: u64,
        n: u64,
        p_good_bad: f64,
        p_bad_good: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bad = false;
        let mut kept = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let loss = if bad { loss_bad } else { loss_good };
            let dropped = rng.gen::<f64>() < loss;
            let flip = if bad { p_bad_good } else { p_good_bad };
            if rng.gen::<f64>() < flip {
                bad = !bad;
            }
            kept.push(!dropped);
        }
        kept
    }

    #[test]
    fn gilbert_elliott_matches_naive_reference() {
        let (p_gb, p_bg, lg, lb) = (0.05, 0.3, 0.001, 0.5);
        let kind = ImpairmentKind::GilbertElliott {
            p_good_bad: p_gb,
            p_bad_good: p_bg,
            loss_good: lg,
            loss_bad: lb,
        };
        let n = 20_000;
        let (_, _, seqs) = run_kind(kind, n, SimDuration::from_micros(10));
        let reference = naive_gilbert_elliott(42, n, p_gb, p_bg, lg, lb);
        let expect: Vec<u64> = (0..n).filter(|&s| reference[s as usize]).collect();
        assert_eq!(seqs, expect, "wire mask diverged from the GE reference");
        // burstiness sanity: the bad state must actually bite
        let loss = 1.0 - expect.len() as f64 / n as f64;
        assert!(loss > 0.02, "GE loss suspiciously low: {loss}");
    }

    #[test]
    fn reorder_reorders_and_delivers_everything() {
        let kind = ImpairmentKind::Reorder {
            p: 0.3,
            hold: SimDuration::from_millis(50),
        };
        // 10 ms spacing, 50 ms hold: a held packet is overtaken.
        let (got, _, seqs) = run_kind(kind, 500, SimDuration::from_millis(10));
        assert_eq!(got, 500, "reordering must not lose packets");
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_ne!(seqs, sorted, "expected at least one out-of-order arrival");
        assert_eq!(sorted, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn jitter_delivers_everything_within_bound() {
        let max = SimDuration::from_millis(20);
        let kind = ImpairmentKind::Jitter { max };
        let mut sim = Simulator::new();
        let wire_id = sim.reserve_node();
        let sink_id = sim.reserve_node();
        sim.install_node(wire_id, Box::new(ImpairmentWire::from_kind(kind, 7)));
        sim.install_node(
            sink_id,
            Box::new(Counter {
                got: 0,
                ecn_seen: vec![],
                seqs: vec![],
                arrivals: vec![],
            }),
        );
        let spacing = SimDuration::from_millis(100);
        sim.add_node(Box::new(Src {
            n: 200,
            spacing,
            wire: wire_id,
            sink: sink_id,
        }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
        let c: &Counter = sim
            .node(sink_id)
            .and_then(|nd| nd.as_any().downcast_ref())
            .unwrap();
        assert_eq!(c.got, 200);
        for (&seq, &at) in c.seqs.iter().zip(&c.arrivals) {
            // nominal path: 1 ms + seq·spacing to the wire, 1 ms onward
            let nominal = SimTime::ZERO + SimDuration::from_millis(2) + spacing * seq;
            let extra = at.since(nominal);
            assert!(extra < max, "packet {seq} jittered by {extra:?} >= {max:?}");
        }
    }

    #[test]
    fn outage_drops_exactly_the_window() {
        // packets arrive at t = 1 ms + seq·1 ms; outage [100 ms, 150 ms)
        let kind = ImpairmentKind::Outage {
            start: SimDuration::from_millis(100),
            duration: SimDuration::from_millis(50),
            period: None,
        };
        let (got, _, seqs) = run_kind(kind, 300, SimDuration::from_millis(1));
        // seq s arrives at the wire at (1 + s) ms: dropped for 99 <= s < 149
        let expect: Vec<u64> = (0..300).filter(|&s| !(99..149).contains(&s)).collect();
        assert_eq!(seqs, expect);
        assert_eq!(got, 250);
    }

    #[test]
    fn periodic_outage_flaps() {
        // windows [100, 120), [200, 220), ... in ms at the wire
        let kind = ImpairmentKind::Outage {
            start: SimDuration::from_millis(100),
            duration: SimDuration::from_millis(20),
            period: Some(SimDuration::from_millis(100)),
        };
        let (_, _, seqs) = run_kind(kind, 400, SimDuration::from_millis(1));
        let expect: Vec<u64> = (0..400)
            .filter(|&s| {
                let at_ms = 1 + s; // arrival at the wire
                at_ms < 100 || (at_ms - 100) % 100 >= 20
            })
            .collect();
        assert_eq!(seqs, expect);
    }

    #[test]
    fn decimate_keeps_exactly_one_in_k() {
        let kind = ImpairmentKind::Decimate { keep_one_in: 4 };
        let (got, _, seqs) = run_kind(kind, 100, SimDuration::from_micros(10));
        assert_eq!(got, 25);
        // the 4th, 8th, ... packets survive (seq 3, 7, 11, ...)
        assert_eq!(seqs, (0..100).filter(|s| s % 4 == 3).collect::<Vec<_>>());
    }

    #[test]
    fn counters_split_passed_and_impaired() {
        let mut wire = ImpairmentWire::from_kind(ImpairmentKind::Decimate { keep_one_in: 2 }, 1);
        let hub = crate::metrics::new_hub();
        let idx = hub
            .borrow_mut()
            .register_impairment("0:decimate:data".into());
        wire = wire.with_metrics(hub.clone(), idx);
        let mut sim = Simulator::new();
        let wire_id = sim.reserve_node();
        let sink_id = sim.reserve_node();
        sim.install_node(wire_id, Box::new(wire));
        sim.install_node(
            sink_id,
            Box::new(Counter {
                got: 0,
                ecn_seen: vec![],
                seqs: vec![],
                arrivals: vec![],
            }),
        );
        sim.add_node(Box::new(Src {
            n: 10,
            spacing: SimDuration::ZERO,
            wire: wire_id,
            sink: sink_id,
        }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        let w: &ImpairmentWire = sim
            .node(wire_id)
            .and_then(|nd| nd.as_any().downcast_ref())
            .unwrap();
        assert_eq!((w.passed, w.impaired), (5, 5));
        let h = hub.borrow();
        assert_eq!(h.impairments[idx].label, "0:decimate:data");
        assert_eq!(
            (h.impairments[idx].passed, h.impairments[idx].impaired),
            (5, 5)
        );
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ImpairmentKind::Drop { p: 1.5 }.validate().is_err());
        assert!(ImpairmentKind::Decimate { keep_one_in: 0 }
            .validate()
            .is_err());
        assert!(ImpairmentKind::Outage {
            start: SimDuration::ZERO,
            duration: SimDuration::ZERO,
            period: None,
        }
        .validate()
        .is_err());
        assert!(ImpairmentKind::GilbertElliott {
            p_good_bad: 0.1,
            p_bad_good: -0.1,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn labels_are_unique_and_stable() {
        let a = ImpairmentSpec::data(ImpairmentKind::Drop { p: 0.1 });
        let b = ImpairmentSpec::ack(ImpairmentKind::Decimate { keep_one_in: 4 });
        assert_eq!(a.label(0), "0:drop:data");
        assert_eq!(b.label(1), "1:decimate:ack");
    }
}
