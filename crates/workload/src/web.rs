//! The request/response **web** workload: seeded arrivals of short finite
//! flows with an empirical, short-flow-heavy object-size distribution.
//!
//! The model is the simulator-native analogue of the traffic generators
//! real testbeds (including the ABC artifact's Mahimahi setup) put behind
//! their emulated links: most objects are a handful of packets, a few are
//! megabytes, and arrivals are either memoryless (Poisson) or bursty
//! (Poisson gated by an on/off phase). Expansion is a pure function of
//! `(spec, seed, duration)`, so two expansions — on any thread — are
//! identical.

use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// When new web requests arrive.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `per_sec` requests per second.
    Poisson {
        /// Mean arrival rate (requests per second).
        per_sec: f64,
    },
    /// Poisson at `per_sec` during `[0, on)` of each `on + off` cycle,
    /// silent otherwise — flash-crowd style burstiness.
    OnOff {
        /// Arrival rate during the on-phase (requests per second).
        per_sec: f64,
        /// On-phase length.
        on: SimDuration,
        /// Off-phase length.
        off: SimDuration,
    },
}

/// Object sizes offered per request.
#[derive(Debug, Clone)]
pub enum SizeDist {
    /// Every request transfers exactly this many bytes.
    Fixed(u64),
    /// An empirical CDF of `(bytes, cumulative probability)` points,
    /// log-interpolated between points. The last point must have
    /// cumulative probability 1.0.
    Empirical(Vec<(u64, f64)>),
}

impl SizeDist {
    /// The built-in web-object size distribution: short-flow heavy
    /// (median ≈ 5 KB, a one-packet floor) with a multi-megabyte tail —
    /// the shape HTTP object measurements consistently report.
    pub fn web_objects() -> SizeDist {
        SizeDist::Empirical(vec![
            (400, 0.15),
            (1_500, 0.35),
            (6_000, 0.55),
            (15_000, 0.70),
            (50_000, 0.85),
            (200_000, 0.95),
            (1_000_000, 0.99),
            (5_000_000, 1.0),
        ])
    }

    /// Sample one object size. Draws exactly one uniform variate, so the
    /// caller's RNG stream advances identically for every distribution.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen_range(0.0f64..1.0);
        match self {
            SizeDist::Fixed(b) => *b,
            SizeDist::Empirical(points) => {
                debug_assert!(!points.is_empty());
                let mut lo_bytes = 0.0f64;
                let mut lo_p = 0.0f64;
                for &(bytes, p) in points {
                    if u <= p {
                        let frac = if p > lo_p {
                            (u - lo_p) / (p - lo_p)
                        } else {
                            1.0
                        };
                        // log-interpolate (sizes span 4 decades)
                        let lo_ln = if lo_bytes > 0.0 { lo_bytes.ln() } else { 0.0 };
                        let hi_ln = (bytes as f64).ln();
                        let base = if lo_bytes > 0.0 { lo_ln } else { hi_ln };
                        let ln = base + (hi_ln - base) * frac;
                        return ln.exp().round().max(1.0) as u64;
                    }
                    lo_bytes = bytes as f64;
                    lo_p = p;
                }
                points.last().expect("non-empty CDF").0
            }
        }
    }

    /// Approximate mean object size (piecewise midpoint of the CDF
    /// segments) — the reference for offered-load arithmetic.
    pub fn mean_bytes(&self) -> f64 {
        match self {
            SizeDist::Fixed(b) => *b as f64,
            SizeDist::Empirical(points) => {
                let mut mean = 0.0;
                let mut lo_bytes = points.first().map(|&(b, _)| b as f64).unwrap_or(0.0);
                let mut lo_p = 0.0;
                for &(bytes, p) in points {
                    mean += (p - lo_p) * 0.5 * (lo_bytes + bytes as f64);
                    lo_bytes = bytes as f64;
                    lo_p = p;
                }
                mean
            }
        }
    }
}

/// The web workload spec: arrivals × sizes.
#[derive(Debug, Clone)]
pub struct WebWorkload {
    /// When requests arrive.
    pub arrivals: ArrivalProcess,
    /// How many bytes each request transfers.
    pub sizes: SizeDist,
}

/// One expanded request: when it starts and how many bytes it transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WebFlow {
    /// When the request starts.
    pub start: SimTime,
    /// Object size in bytes.
    pub bytes: u64,
}

impl WebWorkload {
    /// A Poisson workload offering `load` (fraction of `link`) with the
    /// built-in object-size distribution.
    pub fn poisson_load(load: f64, link: Rate) -> WebWorkload {
        let sizes = SizeDist::web_objects();
        let per_sec = load * link.bps() / 8.0 / sizes.mean_bytes();
        WebWorkload {
            arrivals: ArrivalProcess::Poisson { per_sec },
            sizes,
        }
    }

    /// A fleet of `clients` browsing users, each issuing
    /// `per_client_per_sec` Poisson requests with the built-in
    /// object-size distribution. Memoryless arrivals superpose, so the
    /// fleet expands as one Poisson process at the aggregate rate — the
    /// expansion cost is O(requests), not O(clients), which is what lets
    /// the many-users campaigns size fleets in the thousands.
    pub fn fleet(clients: u32, per_client_per_sec: f64) -> WebWorkload {
        assert!(
            per_client_per_sec.is_finite() && per_client_per_sec >= 0.0,
            "invalid per-client rate: {per_client_per_sec}"
        );
        WebWorkload {
            arrivals: ArrivalProcess::Poisson {
                per_sec: clients as f64 * per_client_per_sec,
            },
            sizes: SizeDist::web_objects(),
        }
    }

    /// Expand into concrete requests over `[0, duration)`. Deterministic:
    /// a pure function of `(self, seed, duration)`.
    pub fn expand(&self, seed: u64, duration: SimDuration) -> Vec<WebFlow> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let horizon = duration.as_secs_f64();
        let (per_sec, gate) = match self.arrivals {
            ArrivalProcess::Poisson { per_sec } => (per_sec, None),
            ArrivalProcess::OnOff { per_sec, on, off } => (per_sec, Some((on, off))),
        };
        if per_sec <= 0.0 {
            return out;
        }
        let mut t = 0.0f64;
        loop {
            let gap = -rng.gen_range(1e-9f64..1.0).ln() / per_sec;
            t += gap;
            if t >= horizon {
                break;
            }
            if let Some((on, off)) = gate {
                let period = (on + off).as_nanos();
                let phase = SimTime::from_secs_f64(t).as_nanos() % period;
                if phase >= on.as_nanos() {
                    // off-phase arrival is dropped; the size draw still
                    // happens so the stream position is phase-independent
                    let _ = self.sizes.sample(&mut rng);
                    continue;
                }
            }
            let bytes = self.sizes.sample(&mut rng);
            out.push(WebFlow {
                start: SimTime::from_secs_f64(t),
                bytes,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn web(per_sec: f64) -> WebWorkload {
        WebWorkload {
            arrivals: ArrivalProcess::Poisson { per_sec },
            sizes: SizeDist::web_objects(),
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let w = web(50.0);
        let a = w.expand(7, SimDuration::from_secs(10));
        let b = w.expand(7, SimDuration::from_secs(10));
        assert!(!a.is_empty());
        assert_eq!(a, b);
        let c = w.expand(8, SimDuration::from_secs(10));
        assert_ne!(a, c, "different seeds must reshuffle arrivals");
    }

    #[test]
    fn arrival_rate_is_roughly_honored() {
        let n = web(100.0).expand(3, SimDuration::from_secs(50)).len() as f64;
        assert!((n - 5000.0).abs() < 400.0, "got {n} arrivals");
    }

    #[test]
    fn onoff_gates_arrivals_to_the_on_phase() {
        let w = WebWorkload {
            arrivals: ArrivalProcess::OnOff {
                per_sec: 100.0,
                on: SimDuration::from_secs(1),
                off: SimDuration::from_secs(1),
            },
            sizes: SizeDist::Fixed(1000),
        };
        let flows = w.expand(5, SimDuration::from_secs(20));
        assert!(!flows.is_empty());
        for f in &flows {
            let phase = f.start.as_nanos() % SimDuration::from_secs(2).as_nanos();
            assert!(
                phase < SimDuration::from_secs(1).as_nanos(),
                "arrival in off phase at {:?}",
                f.start
            );
        }
        // roughly half the always-on count
        assert!(
            (flows.len() as f64 - 1000.0).abs() < 300.0,
            "{}",
            flows.len()
        );
    }

    #[test]
    fn sizes_stay_inside_the_cdf_support() {
        let dist = SizeDist::web_objects();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5000 {
            let b = dist.sample(&mut rng);
            assert!((1..=5_000_000).contains(&b), "sampled {b}");
        }
    }

    #[test]
    fn empirical_median_is_short_flow_heavy() {
        let dist = SizeDist::web_objects();
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u64> = (0..10_000).map(|_| dist.sample(&mut rng)).collect();
        v.sort_unstable();
        let median = v[v.len() / 2];
        assert!(median < 10_000, "median {median} not short-flow heavy");
        // heavy tail exists
        assert!(*v.last().unwrap() > 1_000_000);
    }

    #[test]
    fn zero_rate_expands_to_nothing() {
        assert!(web(0.0).expand(1, SimDuration::from_secs(5)).is_empty());
    }

    #[test]
    fn poisson_load_matches_mean_size_arithmetic() {
        let w = WebWorkload::poisson_load(0.5, Rate::from_mbps(12.0));
        let ArrivalProcess::Poisson { per_sec } = w.arrivals else {
            panic!("expected poisson")
        };
        let expect = 0.5 * 12e6 / 8.0 / SizeDist::web_objects().mean_bytes();
        assert!((per_sec - expect).abs() < 1e-9);
    }
}
