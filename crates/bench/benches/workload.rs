//! The workload subsystem's perf trajectory: times the three workload
//! presets (`web-load-grid`, `video-over-cellular`, `rtc-coexist`) at
//! Tiny scale end to end — expand → execute → serialize — and appends
//! one entry to `BENCH_workload.json` at the repo root, so
//! application-layer scenario throughput accumulates history across
//! commits.
//!
//! ```text
//! cargo bench -p bench --bench workload
//! ```

use campaign::json::{self, Value};
use campaign::presets;
use campaign::runner::{run_campaign, RunOptions};
use campaign::store::ResultsStore;
use experiments::figures::Scale;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

const ITERS: usize = 3;
const PRESETS: [&str; 3] = ["web-load-grid", "video-over-cellular", "rtc-coexist"];

fn main() {
    let campaigns: Vec<_> = PRESETS
        .iter()
        .map(|name| presets::by_name(name, Scale::Tiny).expect("workload preset"))
        .collect();
    let scenarios: usize = campaigns.iter().map(|c| c.expand().len()).sum();
    let sim_secs: f64 = campaigns
        .iter()
        .flat_map(|c| c.expand())
        .map(|p| p.spec.duration.as_secs_f64())
        .sum();
    let opts = RunOptions::quiet();
    let jobs = match opts.jobs {
        Some(n) => n,
        None => experiments::engine::ScenarioEngine::new().threads(),
    };

    // one warmup pass, then best-of-N wall time over all three presets
    let mut store_bytes = 0usize;
    for c in &campaigns {
        run_campaign(c, &opts);
    }
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let t = Instant::now();
        let mut bytes = 0usize;
        for c in &campaigns {
            let records = run_campaign(c, &opts);
            bytes += ResultsStore::new(c, records).to_jsonl().len();
        }
        store_bytes = bytes;
        best = best.min(t.elapsed().as_secs_f64());
    }

    let entry = Value::Obj(vec![
        ("schema".into(), Value::str("abc-workload-bench/v1")),
        (
            "presets".into(),
            Value::Arr(PRESETS.iter().map(|&p| Value::str(p)).collect()),
        ),
        ("scenarios".into(), Value::num(scenarios as f64)),
        ("sim_secs".into(), Value::num(sim_secs)),
        ("jobs".into(), Value::num(jobs as f64)),
        ("wall_secs_best".into(), Value::num(best)),
        (
            "scenarios_per_sec".into(),
            Value::num(scenarios as f64 / best),
        ),
        ("sim_x_realtime".into(), Value::num(sim_secs / best)),
        ("store_bytes".into(), Value::num(store_bytes as f64)),
        (
            "unix_time".into(),
            Value::num(
                SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_secs() as f64)
                    .unwrap_or(0.0),
            ),
        ),
    ]);

    // BENCH_workload.json is a JSON array of entries, newest last
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_workload.json");
    let mut trajectory = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .and_then(|v| match v {
            Value::Arr(items) => Some(items),
            _ => None,
        })
        .unwrap_or_default();
    trajectory.push(entry);
    let mut out = String::from("[\n");
    for (i, e) in trajectory.iter().enumerate() {
        out.push_str(&e.render());
        out.push_str(if i + 1 < trajectory.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("]\n");
    std::fs::write(path, &out).expect("write BENCH_workload.json");

    println!(
        "workload/tiny: {scenarios} scenarios ({sim_secs:.0} sim-s) in {best:.3}s best-of-{ITERS} \
         on {jobs} worker(s) = {:.1} scenarios/s, {:.1}x realtime; trajectory now {} entries",
        scenarios as f64 / best,
        sim_secs / best,
        trajectory.len()
    );
}
