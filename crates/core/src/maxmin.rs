//! Water-filling max-min fair allocation.
//!
//! §5.2: the ABC router estimates per-flow demands (top-K flows are assumed
//! to want X% more than they currently get; short-flow aggregates exactly
//! what they get), computes the max-min fair allocation of the link among
//! those demands, and sets each queue's scheduler weight to the sum of its
//! flows' allocations.

/// One demand entering the allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Opaque tag the caller uses to map allocations back (e.g. queue id).
    pub tag: usize,
    /// Requested rate (any consistent unit; bit/s here).
    pub demand: f64,
}

/// Result of the allocation for one demand, same order as the input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Allocation {
    /// The demand's tag, echoed back.
    pub tag: usize,
    /// The requested rate, echoed back.
    pub demand: f64,
    /// The granted amount (≤ demand).
    pub allocated: f64,
}

/// Progressive-filling max-min: repeatedly divide remaining capacity
/// equally among unsatisfied demands; demands below the fair share are
/// granted fully and removed.
///
/// Properties (checked by the property tests below):
/// * Σ allocated ≤ capacity, with equality when Σ demand ≥ capacity;
/// * allocated ≤ demand for every entry;
/// * any two unsatisfied demands receive equal allocations.
pub fn max_min_allocate(demands: &[Demand], capacity: f64) -> Vec<Allocation> {
    assert!(capacity >= 0.0 && capacity.is_finite());
    let mut alloc: Vec<Allocation> = demands
        .iter()
        .map(|d| {
            assert!(d.demand >= 0.0 && d.demand.is_finite(), "bad demand");
            Allocation {
                tag: d.tag,
                demand: d.demand,
                allocated: 0.0,
            }
        })
        .collect();

    let mut remaining = capacity;
    let mut unsatisfied: Vec<usize> = (0..alloc.len()).collect();
    while !unsatisfied.is_empty() && remaining > 1e-9 {
        let share = remaining / unsatisfied.len() as f64;
        let mut granted_fully = Vec::new();
        for &i in &unsatisfied {
            let want = alloc[i].demand - alloc[i].allocated;
            if want <= share {
                alloc[i].allocated = alloc[i].demand;
                remaining -= want;
                granted_fully.push(i);
            }
        }
        if granted_fully.is_empty() {
            // everyone takes the equal share and is capped by capacity
            for &i in &unsatisfied {
                alloc[i].allocated += share;
            }
            break;
        }
        unsatisfied.retain(|i| !granted_fully.contains(i));
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn d(tag: usize, demand: f64) -> Demand {
        Demand { tag, demand }
    }

    #[test]
    fn under_subscribed_grants_everything() {
        let a = max_min_allocate(&[d(0, 10.0), d(1, 20.0)], 100.0);
        assert_eq!(a[0].allocated, 10.0);
        assert_eq!(a[1].allocated, 20.0);
    }

    #[test]
    fn over_subscribed_splits_equally() {
        let a = max_min_allocate(&[d(0, 100.0), d(1, 100.0)], 60.0);
        assert!((a[0].allocated - 30.0).abs() < 1e-9);
        assert!((a[1].allocated - 30.0).abs() < 1e-9);
    }

    #[test]
    fn small_demand_filled_then_rest_split() {
        // classic water-filling: demands 10, 100, 100 over 90
        // → 10 granted; remaining 80 split 40/40
        let a = max_min_allocate(&[d(0, 10.0), d(1, 100.0), d(2, 100.0)], 90.0);
        assert!((a[0].allocated - 10.0).abs() < 1e-9);
        assert!((a[1].allocated - 40.0).abs() < 1e-9);
        assert!((a[2].allocated - 40.0).abs() < 1e-9);
    }

    #[test]
    fn paper_short_flow_scenario() {
        // The RCP-zombie-list failure mode (§5.2): queue A has one elephant
        // (demand 100) and many mice (aggregate demand 5, inelastic);
        // queue B has one elephant (demand 100). Capacity 85.
        // Max-min: mice get 5, elephants get 40 each → queue weights
        // 45 vs 40, *not* 50/50-by-flow-count.
        let a = max_min_allocate(&[d(0, 100.0), d(0, 5.0), d(1, 100.0)], 85.0);
        let qa: f64 = a.iter().filter(|x| x.tag == 0).map(|x| x.allocated).sum();
        let qb: f64 = a.iter().filter(|x| x.tag == 1).map(|x| x.allocated).sum();
        assert!((qa - 45.0).abs() < 1e-9, "queue A got {qa}");
        assert!((qb - 40.0).abs() < 1e-9, "queue B got {qb}");
    }

    #[test]
    fn empty_input() {
        assert!(max_min_allocate(&[], 10.0).is_empty());
    }

    #[test]
    fn zero_capacity_grants_nothing() {
        let a = max_min_allocate(&[d(0, 5.0)], 0.0);
        assert_eq!(a[0].allocated, 0.0);
    }

    proptest! {
        #[test]
        fn never_exceeds_demand_or_capacity(
            demands in proptest::collection::vec(0.0f64..1000.0, 1..20),
            capacity in 0.0f64..5000.0,
        ) {
            let ds: Vec<Demand> = demands
                .iter()
                .enumerate()
                .map(|(i, &x)| d(i, x))
                .collect();
            let a = max_min_allocate(&ds, capacity);
            let total: f64 = a.iter().map(|x| x.allocated).sum();
            prop_assert!(total <= capacity + 1e-6);
            for x in &a {
                prop_assert!(x.allocated <= x.demand + 1e-6);
                prop_assert!(x.allocated >= -1e-12);
            }
            // work conservation: either all demand met or capacity used up
            let demand_total: f64 = demands.iter().sum();
            if demand_total >= capacity {
                prop_assert!((total - capacity).abs() < 1e-6 * capacity.max(1.0));
            } else {
                prop_assert!((total - demand_total).abs() < 1e-6 * demand_total.max(1.0));
            }
        }

        #[test]
        fn unsatisfied_demands_get_equal_shares(
            demands in proptest::collection::vec(1.0f64..1000.0, 2..20),
            capacity in 1.0f64..2000.0,
        ) {
            let ds: Vec<Demand> = demands
                .iter()
                .enumerate()
                .map(|(i, &x)| d(i, x))
                .collect();
            let a = max_min_allocate(&ds, capacity);
            let unsat: Vec<f64> = a
                .iter()
                .filter(|x| x.allocated < x.demand - 1e-6)
                .map(|x| x.allocated)
                .collect();
            for w in unsat.windows(2) {
                prop_assert!((w[0] - w[1]).abs() < 1e-6, "unequal: {:?}", unsat);
            }
        }
    }
}
