//! TCP Cubic (RFC 8312), the loss-based baseline the paper evaluates alone,
//! with CoDel/PIE, and inside ABC's non-ABC window (§5.1.1).

use netsim::flow::{AckEvent, CongestionControl};
use netsim::packet::Ecn;
use netsim::time::{SimDuration, SimTime};

/// Multiplicative decrease factor (RFC 8312 §4.5).
pub const BETA: f64 = 0.7;
/// Cubic scaling constant (RFC 8312 §5.1), in packets/s³.
pub const C: f64 = 0.4;

/// The pure Cubic window state machine, reusable outside the
/// [`CongestionControl`] glue: ABC's `w_nonabc` window embeds one.
#[derive(Debug, Clone)]
pub struct CubicWindow {
    cwnd: f64,
    ssthresh: f64,
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// TCP-friendly (AIMD) window estimate for the Reno region.
    w_est: f64,
    k: f64,
    /// Reductions are applied at most once per RTT.
    refractory_until: SimTime,
}

impl Default for CubicWindow {
    fn default() -> Self {
        Self::new(10.0)
    }
}

impl CubicWindow {
    /// A window starting at `init_cwnd` packets in slow start.
    pub fn new(init_cwnd: f64) -> Self {
        CubicWindow {
            cwnd: init_cwnd,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            w_est: 0.0,
            k: 0.0,
            refractory_until: SimTime::ZERO,
        }
    }

    /// Current congestion window (packets).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Override the window (ABC caps `w_nonabc` at 2× in-flight, §5.1.1).
    pub fn clamp_cwnd(&mut self, max: f64) {
        self.cwnd = self.cwnd.min(max).max(1.0);
    }

    /// True while below ssthresh.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Process one new ACK. `rtt` is the smoothed RTT estimate.
    pub fn on_ack(&mut self, now: SimTime, rtt: SimDuration) {
        if self.in_slow_start() {
            self.cwnd += 1.0;
            return;
        }
        let epoch = *self.epoch_start.get_or_insert_with(|| {
            // new CA epoch: position the cubic so W_cubic(K) = w_max
            self.w_max = self.w_max.max(self.cwnd);
            self.k = ((self.w_max * (1.0 - BETA)) / C).cbrt();
            self.w_est = self.cwnd;
            now
        });
        let t = now.since(epoch).as_secs_f64();
        let rtt_s = rtt.as_secs_f64().max(1e-4);
        // where the cubic wants to be one RTT from now
        let target = C * (t + rtt_s - self.k).powi(3) + self.w_max;
        if target > self.cwnd {
            // spread the increase over the current window's ACKs
            self.cwnd += (target - self.cwnd) / self.cwnd;
        } else {
            // concave plateau: crawl (RFC: 1% of cwnd per cwnd ACKs)
            self.cwnd += 0.01 / self.cwnd;
        }
        // TCP-friendly region (RFC 8312 §4.2)
        self.w_est += (3.0 * (1.0 - BETA) / (1.0 + BETA)) / self.cwnd;
        if self.w_est > self.cwnd {
            self.cwnd = self.w_est;
        }
    }

    /// Multiplicative decrease (packet loss or CE mark). Ignored when a
    /// reduction already happened within the last RTT.
    pub fn on_congestion(&mut self, now: SimTime, rtt: SimDuration) {
        if now < self.refractory_until {
            return;
        }
        self.refractory_until = now + rtt;
        // fast convergence (RFC 8312 §4.6)
        if self.cwnd < self.w_max {
            self.w_max = self.cwnd * (1.0 + BETA) / 2.0;
        } else {
            self.w_max = self.cwnd;
        }
        self.cwnd = (self.cwnd * BETA).max(1.0);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
    }

    /// RTO: collapse to one segment and re-enter slow start.
    pub fn on_rto(&mut self) {
        self.ssthresh = (self.cwnd * BETA).max(2.0);
        self.cwnd = 1.0;
        self.w_max = 0.0;
        self.epoch_start = None;
    }
}

/// Cubic as a pluggable congestion controller.
pub struct Cubic {
    win: CubicWindow,
    srtt: SimDuration,
    /// React to CE marks (ECN mode); always reacts to losses.
    ecn_enabled: bool,
}

impl Cubic {
    /// A loss-only CUBIC flow at the default initial window.
    pub fn new() -> Self {
        Cubic {
            win: CubicWindow::default(),
            srtt: SimDuration::from_millis(100),
            ecn_enabled: false,
        }
    }

    /// Enable reaction to CE marks (for AQMs running in marking mode).
    pub fn with_ecn(mut self) -> Self {
        self.ecn_enabled = true;
        self
    }

    /// The underlying cubic window state.
    pub fn window(&self) -> &CubicWindow {
        &self.win
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if !ev.srtt.is_zero() {
            self.srtt = ev.srtt;
        }
        if self.ecn_enabled && ev.ecn_echo == Ecn::Ce {
            self.win.on_congestion(ev.now, self.srtt);
            return;
        }
        self.win.on_ack(ev.now, self.srtt);
    }

    fn on_loss(&mut self, now: SimTime) {
        self.win.on_congestion(now, self.srtt);
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.win.on_rto();
    }

    fn cwnd_pkts(&self) -> f64 {
        self.win.cwnd()
    }

    fn outgoing_ecn(&self) -> Ecn {
        if self.ecn_enabled {
            Ecn::Brake // ECT(0) under ABC's reinterpretation
        } else {
            Ecn::NotEct
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }
    const RTT: SimDuration = SimDuration::from_millis(100);

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut w = CubicWindow::new(2.0);
        // 2 ACKs (one window's worth) → cwnd 4; next 4 ACKs → 8 …
        for _ in 0..2 {
            w.on_ack(at(100), RTT);
        }
        assert_eq!(w.cwnd(), 4.0);
        for _ in 0..4 {
            w.on_ack(at(200), RTT);
        }
        assert_eq!(w.cwnd(), 8.0);
    }

    #[test]
    fn loss_applies_beta() {
        let mut w = CubicWindow::new(100.0);
        w.ssthresh = 50.0; // force CA
        w.on_congestion(at(0), RTT);
        assert!((w.cwnd() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn second_loss_within_rtt_ignored() {
        let mut w = CubicWindow::new(100.0);
        w.ssthresh = 50.0;
        w.on_congestion(at(0), RTT);
        w.on_congestion(at(50), RTT); // within refractory period
        assert!((w.cwnd() - 70.0).abs() < 1e-9);
        w.on_congestion(at(150), RTT); // past it
        assert!((w.cwnd() - 49.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_growth_recovers_toward_w_max() {
        let mut w = CubicWindow::new(100.0);
        w.ssthresh = 50.0;
        w.on_congestion(at(0), RTT);
        let after_drop = w.cwnd();
        // feed ACKs for 10 simulated seconds
        let mut now = at(100);
        for _ in 0..100 {
            for _ in 0..(w.cwnd() as usize) {
                w.on_ack(now, RTT);
            }
            now += RTT;
        }
        assert!(w.cwnd() > after_drop, "window failed to grow");
        // K = (100·0.3/0.4)^(1/3) ≈ 4.2 s, so by 10 s it should pass w_max
        assert!(w.cwnd() >= 100.0, "cwnd {} below w_max", w.cwnd());
    }

    #[test]
    fn rto_resets_to_one() {
        let mut w = CubicWindow::new(64.0);
        w.on_rto();
        assert_eq!(w.cwnd(), 1.0);
        assert!(w.in_slow_start());
    }

    #[test]
    fn fast_convergence_shrinks_w_max() {
        let mut w = CubicWindow::new(100.0);
        w.ssthresh = 50.0;
        w.on_congestion(at(0), RTT); // w_max=100, cwnd=70
        w.on_congestion(at(200), RTT); // cwnd(70) < w_max(100) → fast conv
        assert!((w.w_max - 70.0 * (1.0 + BETA) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn cc_trait_reacts_to_ce_only_in_ecn_mode() {
        use netsim::rate::Rate;
        let ev = |ecn| AckEvent {
            now: at(1000),
            rtt: Some(RTT),
            min_rtt: RTT,
            srtt: RTT,
            acked_bytes: 1500,
            ecn_echo: ecn,
            feedback: netsim::packet::Feedback::None,
            inflight_pkts: 10,
            delivery_rate: Rate::ZERO,
            one_way_delay: SimDuration::from_millis(50),
        };
        let mut plain = Cubic::new();
        plain.win.ssthresh = 5.0;
        let w0 = plain.cwnd_pkts();
        plain.on_ack(&ev(Ecn::Ce));
        assert!(plain.cwnd_pkts() >= w0, "non-ECN Cubic must ignore CE");

        let mut ecn = Cubic::new().with_ecn();
        ecn.win.ssthresh = 5.0;
        let w0 = ecn.cwnd_pkts();
        ecn.on_ack(&ev(Ecn::Ce));
        assert!(ecn.cwnd_pkts() < w0, "ECN Cubic must reduce on CE");
    }
}
