//! XCP [Katabi, Handley, Rohrs, SIGCOMM 2002] and the paper's improved
//! variant XCPw (§6.3), which recomputes aggregate feedback on every
//! packet from sliding-window measurements instead of once per control
//! interval.
//!
//! Router control law, per control interval `d` (the mean RTT):
//!
//! ```text
//! φ  = α·d·S − β·Q                      (bytes of window to hand out)
//! p_i = ξp · rtt_i²·s_i / cwnd_i        ξp = φ⁺ / (d·Σ rtt_i·s_i/cwnd_i)
//! n_i = ξn · rtt_i·s_i                  ξn = φ⁻ / (d·Σ s_i)
//! ```
//!
//! The sender adds `H_feedback` (bytes) to its window per ACK. The ABC
//! paper runs XCP with α = 0.55, β = 0.4 (the highest stable settings).

use netsim::flow::{AckEvent, CongestionControl};
use netsim::packet::{Feedback, Packet};
use netsim::queue::{Qdisc, QdiscStats};
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
pub struct XcpConfig {
    pub alpha: f64,
    pub beta: f64,
    pub buffer_pkts: usize,
    /// Per-packet recomputation over a sliding window (XCPw) instead of
    /// per-interval batch updates (classic XCP).
    pub per_packet: bool,
}

impl Default for XcpConfig {
    fn default() -> Self {
        XcpConfig {
            alpha: 0.55,
            beta: 0.4,
            buffer_pkts: 250,
            per_packet: false,
        }
    }
}

impl XcpConfig {
    /// The paper's XCPw: identical constants, per-packet feedback.
    pub fn wireless() -> Self {
        XcpConfig {
            per_packet: true,
            ..Default::default()
        }
    }
}

/// Per-interval accumulators for the ξ scale factors.
#[derive(Debug, Default, Clone, Copy)]
struct IntervalSums {
    input_bytes: f64,
    sum_s: f64,               // Σ s_i
    sum_rtt_s_over_cwnd: f64, // Σ rtt_i·s_i / cwnd_i
    sum_rtt_weighted: f64,    // Σ rtt_i·s_i (for mean RTT)
    min_queue_bytes: f64,
}

pub struct XcpQdisc {
    cfg: XcpConfig,
    queue: VecDeque<Box<Packet>>,
    bytes: u64,
    capacity: Rate,
    /// Control interval = mean RTT of traffic (seeded at 100 ms).
    d: SimDuration,
    interval_start: Option<SimTime>,
    cur: IntervalSums,
    /// Scale factors computed from the previous interval.
    xi_pos: f64,
    xi_neg: f64,
    /// Sliding-window state for the XCPw variant.
    window_pkts: VecDeque<(SimTime, f64, f64, f64)>, // (t, s, rtt·s/cwnd, rtt·s)
    stats: QdiscStats,
}

impl XcpQdisc {
    pub fn new(cfg: XcpConfig) -> Self {
        XcpQdisc {
            cfg,
            queue: VecDeque::new(),
            bytes: 0,
            capacity: Rate::ZERO,
            d: SimDuration::from_millis(100),
            interval_start: None,
            cur: IntervalSums {
                min_queue_bytes: f64::MAX,
                ..Default::default()
            },
            xi_pos: 0.0,
            xi_neg: 0.0,
            window_pkts: VecDeque::new(),
            stats: QdiscStats::default(),
        }
    }

    /// Aggregate feedback φ (bytes) for measured input rate and queue.
    fn phi(&self, input_rate_bps: f64, queue_bytes: f64) -> f64 {
        let d = self.d.as_secs_f64();
        let spare_bytes_per_s = (self.capacity.bps() - input_rate_bps) / 8.0;
        self.cfg.alpha * d * spare_bytes_per_s - self.cfg.beta * queue_bytes
    }

    fn end_interval(&mut self, now: SimTime) {
        let d = self.d.as_secs_f64();
        let input_rate = self.cur.input_bytes * 8.0 / d;
        let q = if self.cur.min_queue_bytes == f64::MAX {
            self.bytes as f64
        } else {
            self.cur.min_queue_bytes
        };
        let phi = self.phi(input_rate, q);
        self.xi_pos = if self.cur.sum_rtt_s_over_cwnd > 0.0 {
            phi.max(0.0) / (d * self.cur.sum_rtt_s_over_cwnd)
        } else {
            0.0
        };
        self.xi_neg = if self.cur.sum_s > 0.0 {
            (-phi).max(0.0) / (d * self.cur.sum_s)
        } else {
            0.0
        };
        // mean RTT of the traffic drives the next control interval
        if self.cur.sum_s > 0.0 && self.cur.sum_rtt_weighted > 0.0 {
            let mean_rtt = self.cur.sum_rtt_weighted / self.cur.sum_s;
            if mean_rtt > 1e-4 {
                self.d = SimDuration::from_secs_f64(mean_rtt.clamp(0.01, 1.0));
            }
        }
        self.cur = IntervalSums {
            min_queue_bytes: f64::MAX,
            ..Default::default()
        };
        self.interval_start = Some(now);
    }

    /// XCPw: ξ factors recomputed from the last-`d` sliding window.
    fn sliding_xi(&mut self, now: SimTime) -> (f64, f64) {
        let cutoff = now.saturating_sub(self.d);
        while self.window_pkts.front().is_some_and(|&(t, ..)| t < cutoff) {
            self.window_pkts.pop_front();
        }
        let d = self.d.as_secs_f64();
        let sum_s: f64 = self.window_pkts.iter().map(|x| x.1).sum();
        let sum_rsc: f64 = self.window_pkts.iter().map(|x| x.2).sum();
        let input_rate = sum_s * 8.0 / d;
        let phi = self.phi(input_rate, self.bytes as f64);
        let xp = if sum_rsc > 0.0 {
            phi.max(0.0) / (d * sum_rsc)
        } else {
            0.0
        };
        let xn = if sum_s > 0.0 {
            (-phi).max(0.0) / (d * sum_s)
        } else {
            0.0
        };
        (xp, xn)
    }
}

impl Qdisc for XcpQdisc {
    netsim::impl_qdisc_downcast!();

    fn enqueue(&mut self, mut pkt: Box<Packet>, now: SimTime) -> bool {
        if self.queue.len() >= self.cfg.buffer_pkts {
            self.stats.dropped_pkts += 1;
            return false;
        }
        pkt.enqueued_at = now;
        self.bytes += pkt.size as u64;
        self.queue.push_back(pkt);
        self.stats.enqueued_pkts += 1;
        true
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Box<Packet>> {
        let mut pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size as u64;
        self.cur.min_queue_bytes = self.cur.min_queue_bytes.min(self.bytes as f64);

        if let Feedback::Xcp {
            cwnd_bytes,
            rtt_s,
            delta_bytes,
        } = pkt.feedback
        {
            let s = pkt.size as f64;
            let cwnd = cwnd_bytes.max(s);
            let rtt = rtt_s.max(1e-3);
            // interval bookkeeping
            self.cur.input_bytes += s;
            self.cur.sum_s += s;
            self.cur.sum_rtt_s_over_cwnd += rtt * s / cwnd;
            self.cur.sum_rtt_weighted += rtt * s;

            let (xp, xn) = if self.cfg.per_packet {
                self.window_pkts
                    .push_back((now, s, rtt * s / cwnd, rtt * s));
                self.sliding_xi(now)
            } else {
                let start = *self.interval_start.get_or_insert(now);
                if now.since(start) >= self.d {
                    self.end_interval(now);
                }
                (self.xi_pos, self.xi_neg)
            };

            let p = xp * rtt * rtt * s / cwnd;
            let n = xn * rtt * s;
            let my_delta = p - n;
            // a router may only lower the feedback (multi-bottleneck min)
            let new_delta = my_delta.min(delta_bytes);
            pkt.feedback = Feedback::Xcp {
                cwnd_bytes,
                rtt_s,
                delta_bytes: new_delta,
            };
        }

        self.stats.dequeued_pkts += 1;
        self.stats.dequeued_bytes += pkt.size as u64;
        Some(pkt)
    }

    fn peek_size(&self) -> Option<u32> {
        self.queue.front().map(|p| p.size)
    }

    fn len_pkts(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn on_capacity(&mut self, rate: Rate, _now: SimTime) {
        self.capacity = rate;
    }

    fn head_sojourn(&self, now: SimTime) -> Option<SimDuration> {
        self.queue.front().map(|p| now.since(p.enqueued_at))
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

/// The XCP endpoint: stamps `H_cwnd`/`H_rtt` on departure and applies the
/// returned byte delta to its window.
pub struct XcpSender {
    cwnd_bytes: f64,
    srtt: SimDuration,
    pkt_size: f64,
}

impl XcpSender {
    pub fn new() -> Self {
        XcpSender {
            cwnd_bytes: 2.0 * 1500.0,
            srtt: SimDuration::from_millis(100),
            pkt_size: 1500.0,
        }
    }
}

impl Default for XcpSender {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for XcpSender {
    fn name(&self) -> &'static str {
        "xcp"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if !ev.srtt.is_zero() {
            self.srtt = ev.srtt;
        }
        if let Feedback::Xcp { delta_bytes, .. } = ev.feedback {
            if delta_bytes.is_finite() {
                self.cwnd_bytes = (self.cwnd_bytes + delta_bytes).max(self.pkt_size);
            }
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        // XCP relies on explicit feedback; fall back to a halving on loss
        self.cwnd_bytes = (self.cwnd_bytes / 2.0).max(self.pkt_size);
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.cwnd_bytes = self.pkt_size;
    }

    fn cwnd_pkts(&self) -> f64 {
        self.cwnd_bytes / self.pkt_size
    }

    fn outgoing_feedback(&mut self, _now: SimTime) -> Feedback {
        Feedback::Xcp {
            cwnd_bytes: self.cwnd_bytes,
            rtt_s: self.srtt.as_secs_f64(),
            // the sender's "request": effectively unbounded, routers clamp
            delta_bytes: f64::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Ecn, FlowId, NodeId, Route};

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn xcp_pkt(seq: u64, cwnd_bytes: f64, rtt_s: f64) -> Box<Packet> {
        Box::new(Packet {
            flow: FlowId(0),
            seq,
            size: 1500,
            ecn: Ecn::NotEct,
            feedback: Feedback::Xcp {
                cwnd_bytes,
                rtt_s,
                delta_bytes: f64::MAX,
            },
            abc_capable: false,
            sent_at: SimTime::ZERO,
            retransmit: false,
            ack: None,
            route: Route::new(vec![(NodeId(0), SimDuration::ZERO)]),
            hop: 0,
            enqueued_at: SimTime::ZERO,
        })
    }

    fn delta_of(p: &Packet) -> f64 {
        match p.feedback {
            Feedback::Xcp { delta_bytes, .. } => delta_bytes,
            _ => panic!("not an XCP packet"),
        }
    }

    /// Run one second of under-utilized traffic and return the stamped
    /// feedback after the control loop warms up.
    fn warmed_feedback(cfg: XcpConfig, pkts_per_ms: u64) -> f64 {
        let mut q = XcpQdisc::new(cfg);
        q.on_capacity(Rate::from_mbps(24.0), at(0));
        let mut last = 0.0;
        let mut seq = 0;
        for t in 0..1000u64 {
            for _ in 0..pkts_per_ms {
                q.enqueue(xcp_pkt(seq, 30_000.0, 0.1), at(t));
                seq += 1;
            }
            while let Some(p) = q.dequeue(at(t)) {
                last = delta_of(&p);
            }
        }
        last
    }

    #[test]
    fn underutilized_link_gives_positive_feedback() {
        // 12 Mbit/s input on a 24 Mbit/s link → spare capacity → grow
        let d = warmed_feedback(XcpConfig::default(), 1);
        assert!(d > 0.0, "feedback {d}");
    }

    #[test]
    fn overloaded_link_gives_negative_feedback() {
        // 36 Mbit/s offered on 24 Mbit/s: queue builds, feedback < 0.
        let mut q = XcpQdisc::new(XcpConfig::default());
        q.on_capacity(Rate::from_mbps(24.0), at(0));
        let mut seq = 0u64;
        let mut last = 0.0;
        for t in 0..1000u64 {
            for _ in 0..3 {
                q.enqueue(xcp_pkt(seq, 30_000.0, 0.1), at(t));
                seq += 1;
            }
            // drain at 2 per ms = 24 Mbit/s
            for _ in 0..2 {
                if let Some(p) = q.dequeue(at(t)) {
                    last = delta_of(&p);
                }
            }
        }
        assert!(last < 0.0, "feedback {last}");
    }

    #[test]
    fn xcpw_variant_reacts_without_interval_lag() {
        let d = warmed_feedback(XcpConfig::wireless(), 1);
        assert!(d > 0.0, "feedback {d}");
    }

    #[test]
    fn router_only_lowers_feedback() {
        let mut q = XcpQdisc::new(XcpConfig::default());
        q.on_capacity(Rate::from_mbps(24.0), at(0));
        // a downstream-stamped small delta must survive an eager router
        let mut p = xcp_pkt(0, 30_000.0, 0.1);
        p.feedback = Feedback::Xcp {
            cwnd_bytes: 30_000.0,
            rtt_s: 0.1,
            delta_bytes: 10.0,
        };
        q.enqueue(p, at(0));
        let out = q.dequeue(at(0)).unwrap();
        assert!(delta_of(&out) <= 10.0);
    }

    #[test]
    fn sender_applies_byte_delta() {
        let mut s = XcpSender::new();
        let w0 = s.cwnd_pkts();
        let ev = AckEvent {
            now: at(100),
            rtt: Some(SimDuration::from_millis(100)),
            min_rtt: SimDuration::from_millis(100),
            srtt: SimDuration::from_millis(100),
            acked_bytes: 1500,
            ecn_echo: Ecn::NotEct,
            feedback: Feedback::Xcp {
                cwnd_bytes: 3000.0,
                rtt_s: 0.1,
                delta_bytes: 1500.0,
            },
            inflight_pkts: 2,
            delivery_rate: Rate::ZERO,
            one_way_delay: SimDuration::from_millis(50),
        };
        s.on_ack(&ev);
        assert!((s.cwnd_pkts() - (w0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn sender_stamps_header() {
        let mut s = XcpSender::new();
        match s.outgoing_feedback(at(0)) {
            Feedback::Xcp {
                cwnd_bytes, rtt_s, ..
            } => {
                assert!(cwnd_bytes >= 1500.0);
                assert!(rtt_s > 0.0);
            }
            _ => panic!("XCP sender must stamp XCP headers"),
        }
    }
}
