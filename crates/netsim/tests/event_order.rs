//! Pop-order pins for the timer-wheel event queue.
//!
//! Two layers of protection for the `(time, seq)` ordering contract:
//!
//! * a **golden scenario test** that runs a mixed pacing/RTO/trace-link
//!   workload on both the wheel and the pre-wheel reference heap
//!   ([`Simulator::new_with_reference_queue`]) and requires the exact
//!   `(time, node, seq)` event sequences to match — plus a pinned
//!   fingerprint constant so *any* future reordering (even one that is
//!   wheel-vs-reference consistent) fails loudly;
//! * a **property test** driving the wheel and the reference heap through
//!   arbitrary push/cancel/pop interleavings.

// The golden test exercises the deprecated `enable_event_trace` wrappers
// on purpose — they must keep returning the same trace envelope now that
// the telemetry layer's `events` signal backs them.
#![allow(deprecated)]

use netsim::event::{EventKind, EventQueue};
use netsim::flow::{AckEvent, CongestionControl, Pacing, Sender, Sink, TrafficSource};
use netsim::link::{SerialLink, SquareWave, TraceLink};
use netsim::linkqueue::LinkQueue;
use netsim::metrics::new_hub;
use netsim::packet::{FlowId, NodeId, Route};
use netsim::queue::DropTail;
use netsim::rate::Rate;
use netsim::sim::Simulator;
use netsim::telemetry::{new_hub as new_telemetry_hub, Shared, TelemetryConfig};
use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Rate-paced fixed window: exercises `TOK_PACE` ticks.
struct PacedWindow {
    w: f64,
    rate: Rate,
}

impl CongestionControl for PacedWindow {
    fn name(&self) -> &'static str {
        "paced"
    }
    fn on_ack(&mut self, _ev: &AckEvent) {}
    fn cwnd_pkts(&self) -> f64 {
        self.w
    }
    fn pacing(&self) -> Pacing {
        Pacing::Rate(self.rate)
    }
}

/// Oversized ACK-clocked window: floods the buffer, forcing losses,
/// retransmissions, and RTO traffic.
struct GreedyWindow {
    w: f64,
}

impl CongestionControl for GreedyWindow {
    fn name(&self) -> &'static str {
        "greedy"
    }
    fn on_ack(&mut self, _ev: &AckEvent) {}
    fn cwnd_pkts(&self) -> f64 {
        self.w
    }
}

/// A two-flow scenario over a trace link and a square-wave serial link in
/// series: pacing clocks, RTO arming/cancellation, delayed-ACK flush
/// timers, and Mahimahi-style delivery opportunities all interleave.
fn run_mixed_scenario(
    mut sim: Simulator,
    full_telemetry: bool,
) -> (Vec<(SimTime, NodeId, u64)>, u64) {
    if full_telemetry {
        // All default signals recording through a live hub: every probe
        // site fires, and the event order must not move by one event.
        sim.set_telemetry(Box::new(Shared(new_telemetry_hub(
            TelemetryConfig::default(),
        ))));
    } else {
        sim.enable_event_trace();
    }
    let hub = new_hub();

    let s1 = sim.reserve_node();
    let s2 = sim.reserve_node();
    let trace_hop = sim.reserve_node();
    let square_hop = sim.reserve_node();
    let k1 = sim.reserve_node();
    let k2 = sim.reserve_node();

    // trace link: one 1500 B opportunity every 3 ms, with a 60 ms outage
    let opps: Vec<SimDuration> = (0..80)
        .map(|i| SimDuration::from_millis(if i < 60 { i * 3 } else { 240 + (i - 60) * 3 }))
        .collect();
    let trace = TraceLink::new(opps, SimDuration::from_millis(300));
    sim.install_node(
        trace_hop,
        Box::new(
            LinkQueue::new(Box::new(DropTail::new(10)), Box::new(trace))
                .with_metrics("trace", hub.clone()),
        ),
    );
    let square = SerialLink::new(SquareWave::new(
        Rate::from_mbps(6.0),
        Rate::from_mbps(18.0),
        SimDuration::from_millis(120),
    ));
    sim.install_node(
        square_hop,
        Box::new(
            LinkQueue::new(Box::new(DropTail::new(8)), Box::new(square))
                .with_metrics("square", hub.clone()),
        ),
    );

    let fwd1 = Route::new(vec![
        (trace_hop, SimDuration::from_millis(5)),
        (square_hop, SimDuration::from_millis(5)),
        (k1, SimDuration::from_millis(10)),
    ]);
    let back1 = Route::new(vec![(s1, SimDuration::from_millis(20))]);
    let fwd2 = Route::new(vec![
        (square_hop, SimDuration::from_millis(2)),
        (k2, SimDuration::from_millis(8)),
    ]);
    let back2 = Route::new(vec![(s2, SimDuration::from_millis(10))]);

    sim.install_node(
        k1,
        Box::new(Sink::new(FlowId(1), back1).with_metrics(hub.clone())),
    );
    // batched ACKs: the sink's flush timer joins the mix
    sim.install_node(
        k2,
        Box::new(
            Sink::new(FlowId(2), back2)
                .with_metrics(hub.clone())
                .with_ack_batching(4, SimDuration::from_millis(15)),
        ),
    );
    sim.install_node(
        s1,
        Box::new(Sender::new(
            FlowId(1),
            Box::new(PacedWindow {
                w: 20.0,
                rate: Rate::from_mbps(5.0),
            }),
            fwd1,
            TrafficSource::Backlogged,
        )),
    );
    sim.install_node(
        s2,
        Box::new(Sender::new(
            FlowId(2),
            Box::new(GreedyWindow { w: 60.0 }),
            fwd2,
            TrafficSource::OnOff {
                on: SimDuration::from_millis(400),
                off: SimDuration::from_millis(200),
            },
        )),
    );

    sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
    let trace = sim.take_event_trace();
    (trace, sim.events_fingerprint())
}

/// The pinned fingerprint of the golden scenario's event sequence. If an
/// event-queue change alters pop order, this is the first test to fail;
/// regenerate the constant only for *intentional* semantic changes.
const GOLDEN_FINGERPRINT: u64 = 0x971a0f55ff24d3e8;

#[test]
fn golden_mixed_scenario_pop_order_pinned() {
    let (wheel_trace, wheel_fp) = run_mixed_scenario(Simulator::new(), false);
    let (ref_trace, ref_fp) = run_mixed_scenario(Simulator::new_with_reference_queue(), false);

    assert!(
        wheel_trace.len() > 2_000,
        "scenario too small to pin anything: {} events",
        wheel_trace.len()
    );
    assert_eq!(
        wheel_trace.len(),
        ref_trace.len(),
        "wheel and reference heap processed different event counts"
    );
    for (i, (a, b)) in wheel_trace.iter().zip(&ref_trace).enumerate() {
        assert_eq!(a, b, "event {i} diverged: wheel {a:?} vs reference {b:?}");
    }
    assert_eq!(wheel_fp, ref_fp);
    assert_eq!(
        wheel_fp, GOLDEN_FINGERPRINT,
        "event order changed (fingerprint {wheel_fp:#018x})"
    );
}

/// Telemetry's zero-perturbation contract: a live hub recording every
/// default signal must reproduce the pinned fingerprint exactly —
/// probes observe the simulation, they never reschedule it.
#[test]
fn full_telemetry_recording_reproduces_the_pinned_fingerprint() {
    let (_, fp) = run_mixed_scenario(Simulator::new(), true);
    assert_eq!(
        fp, GOLDEN_FINGERPRINT,
        "telemetry recording perturbed event order (fingerprint {fp:#018x})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary push/cancel/pop interleavings: the wheel must agree with
    /// the naive comparison heap event for event.
    #[test]
    fn wheel_matches_naive_heap_under_push_cancel_pop(
        ops in proptest::collection::vec((0u8..10, 0u64..20_000_000_000), 1..400),
    ) {
        let mut wheel = EventQueue::new();
        let mut naive = EventQueue::new_reference();
        let mut live: Vec<u64> = Vec::new();
        let mut tok = 0u64;
        for &(op, arg) in &ops {
            match op {
                // 60%: push (near, mid, and far-future times)
                0..=5 => {
                    tok += 1;
                    let t = SimTime::from_nanos(arg);
                    let a = wheel.push(t, NodeId(0), EventKind::Timer(tok));
                    let b = naive.push(t, NodeId(0), EventKind::Timer(tok));
                    prop_assert_eq!(a, b, "seq assignment diverged");
                    live.push(a);
                }
                // 20%: cancel a pending event
                6..=7 => {
                    if !live.is_empty() {
                        let victim = live.swap_remove(arg as usize % live.len());
                        wheel.cancel(victim);
                        naive.cancel(victim);
                    }
                }
                // 20%: pop
                _ => {
                    let a = wheel.pop();
                    let b = naive.pop();
                    match (&a, &b) {
                        (Some(x), Some(y)) => {
                            prop_assert_eq!(x.time, y.time);
                            prop_assert_eq!(x.seq(), y.seq());
                            live.retain(|&s| s != x.seq());
                        }
                        (None, None) => {}
                        _ => prop_assert!(false, "one queue drained early"),
                    }
                }
            }
            prop_assert_eq!(wheel.len(), naive.len());
        }
        // drain both fully
        loop {
            let (a, b) = (wheel.pop(), naive.pop());
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    prop_assert_eq!(x.time, y.time);
                    prop_assert_eq!(x.seq(), y.seq());
                }
                (None, None) => break,
                _ => prop_assert!(false, "queues drained at different lengths"),
            }
        }
    }
}
