//! The event queue: a time-ordered heap with deterministic tie-breaking.

use crate::packet::{NodeId, Packet};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What a node is asked to do when its event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A packet arrives at the node (propagation already elapsed).
    Deliver(Packet),
    /// A timer previously set by the node fires; the token is whatever the
    /// node passed to [`crate::node::Context::set_timer`].
    Timer(u64),
}

#[derive(Debug)]
pub struct Event {
    pub time: SimTime,
    pub node: NodeId,
    pub kind: EventKind,
    /// Global insertion order: equal-time events fire in the order they
    /// were scheduled, which makes runs bit-reproducible.
    seq: u64,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then first-scheduled)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, time: SimTime, node: NodeId, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            node,
            kind,
            seq,
        });
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), NodeId(0), EventKind::Timer(3));
        q.push(t(10), NodeId(0), EventKind::Timer(1));
        q.push(t(20), NodeId(0), EventKind::Timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer(x) => x,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.push(t(5), NodeId(0), EventKind::Timer(i));
        }
        for i in 0..100u64 {
            match q.pop().unwrap().kind {
                EventKind::Timer(x) => assert_eq!(x, i),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(42), NodeId(1), EventKind::Timer(0));
        q.push(t(7), NodeId(1), EventKind::Timer(0));
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 2);
    }
}
