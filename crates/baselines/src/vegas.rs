//! TCP Vegas [Brakmo & Peterson, SIGCOMM'94]: delay-based congestion
//! avoidance. The paper evaluates Vegas on both cellular and Wi-Fi paths;
//! it holds delays low but cannot track capacity increases quickly.

use netsim::flow::{AckEvent, CongestionControl};
use netsim::time::{SimDuration, SimTime};

/// Vegas α/β thresholds in packets of queue occupancy.
const ALPHA: f64 = 2.0;
const BETA: f64 = 4.0;
/// Slow-start exit threshold.
const GAMMA: f64 = 1.0;

/// TCP Vegas: delay-based additive-increase controller.
pub struct Vegas {
    cwnd: f64,
    base_rtt: SimDuration,
    /// Window adjustments happen once per RTT.
    next_update: SimTime,
    in_slow_start: bool,
    /// Slow start doubles every *other* RTT (Vegas's cautious probing).
    ss_toggle: bool,
}

impl Vegas {
    /// A Vegas flow at the initial window.
    pub fn new() -> Self {
        Vegas {
            cwnd: 2.0,
            base_rtt: SimDuration::MAX,
            next_update: SimTime::ZERO,
            in_slow_start: true,
            ss_toggle: false,
        }
    }

    /// Expected − actual throughput difference, in packets buffered.
    fn diff_pkts(&self, rtt: SimDuration) -> f64 {
        if self.base_rtt == SimDuration::MAX || rtt.is_zero() {
            return 0.0;
        }
        let base = self.base_rtt.as_secs_f64();
        let cur = rtt.as_secs_f64();
        self.cwnd * (1.0 - base / cur)
    }
}

impl Default for Vegas {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Vegas {
    fn name(&self) -> &'static str {
        "vegas"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        let Some(rtt) = ev.rtt else { return };
        self.base_rtt = self.base_rtt.min(rtt);
        if ev.now < self.next_update {
            return;
        }
        self.next_update = ev.now + rtt;
        let diff = self.diff_pkts(rtt);
        if self.in_slow_start {
            if diff > GAMMA {
                self.in_slow_start = false;
                self.cwnd = (self.cwnd - 1.0).max(2.0);
            } else {
                self.ss_toggle = !self.ss_toggle;
                if self.ss_toggle {
                    self.cwnd *= 2.0;
                }
            }
            return;
        }
        if diff < ALPHA {
            self.cwnd += 1.0;
        } else if diff > BETA {
            self.cwnd = (self.cwnd - 1.0).max(2.0);
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.cwnd = (self.cwnd * 0.75).max(2.0);
        self.in_slow_start = false;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.cwnd = 2.0;
        self.in_slow_start = true;
    }

    fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Ecn, Feedback};
    use netsim::rate::Rate;

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + SimDuration::from_millis(now_ms),
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            min_rtt: SimDuration::from_millis(100),
            srtt: SimDuration::from_millis(rtt_ms),
            acked_bytes: 1500,
            ecn_echo: Ecn::NotEct,
            feedback: Feedback::None,
            inflight_pkts: 5,
            delivery_rate: Rate::ZERO,
            one_way_delay: SimDuration::from_millis(50),
        }
    }

    #[test]
    fn grows_when_queue_empty() {
        let mut v = Vegas::new();
        v.in_slow_start = false;
        v.cwnd = 10.0;
        v.base_rtt = SimDuration::from_millis(100);
        // rtt == base → diff 0 < α → +1 (once per RTT)
        v.on_ack(&ack(1000, 100));
        assert_eq!(v.cwnd_pkts(), 11.0);
        // second ack within the same RTT: no change
        v.on_ack(&ack(1050, 100));
        assert_eq!(v.cwnd_pkts(), 11.0);
    }

    #[test]
    fn shrinks_when_queue_builds() {
        let mut v = Vegas::new();
        v.in_slow_start = false;
        v.cwnd = 20.0;
        v.base_rtt = SimDuration::from_millis(100);
        // rtt 150ms → diff = 20·(1−100/150) ≈ 6.7 > β → −1
        v.on_ack(&ack(1000, 150));
        assert_eq!(v.cwnd_pkts(), 19.0);
    }

    #[test]
    fn holds_inside_band() {
        let mut v = Vegas::new();
        v.in_slow_start = false;
        v.cwnd = 10.0;
        v.base_rtt = SimDuration::from_millis(100);
        // diff = 10·(1−100/135) ≈ 2.6 ∈ (α, β) → hold
        v.on_ack(&ack(1000, 135));
        assert_eq!(v.cwnd_pkts(), 10.0);
    }

    #[test]
    fn slow_start_exits_on_queue_signal() {
        let mut v = Vegas::new();
        v.base_rtt = SimDuration::from_millis(100);
        v.cwnd = 8.0;
        // big queue: diff = 8·(1−100/200)=4 > γ → exit ss
        v.on_ack(&ack(1000, 200));
        assert!(!v.in_slow_start);
    }
}
