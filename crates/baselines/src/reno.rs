//! TCP NewReno (RFC 5681/6582-style AIMD), the classical loss-based
//! baseline the paper's motivation section contrasts against.

use netsim::flow::{AckEvent, CongestionControl};
use netsim::packet::Ecn;
use netsim::time::{SimDuration, SimTime};

/// TCP NewReno: AIMD with slow start and fast recovery.
pub struct NewReno {
    cwnd: f64,
    ssthresh: f64,
    refractory_until: SimTime,
    srtt: SimDuration,
    ecn_enabled: bool,
}

impl NewReno {
    /// A loss-only NewReno flow at the default initial window.
    pub fn new() -> Self {
        NewReno {
            cwnd: 10.0,
            ssthresh: f64::INFINITY,
            refractory_until: SimTime::ZERO,
            srtt: SimDuration::from_millis(100),
            ecn_enabled: false,
        }
    }

    /// Also react to CE marks (classic ECN).
    pub fn with_ecn(mut self) -> Self {
        self.ecn_enabled = true;
        self
    }

    fn reduce(&mut self, now: SimTime) {
        if now < self.refractory_until {
            return;
        }
        self.refractory_until = now + self.srtt;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
    }
}

impl Default for NewReno {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for NewReno {
    fn name(&self) -> &'static str {
        "newreno"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if !ev.srtt.is_zero() {
            self.srtt = ev.srtt;
        }
        if self.ecn_enabled && ev.ecn_echo == Ecn::Ce {
            self.reduce(ev.now);
            return;
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd;
        }
    }

    fn on_loss(&mut self, now: SimTime) {
        self.reduce(now);
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
    }

    fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }

    fn outgoing_ecn(&self) -> Ecn {
        if self.ecn_enabled {
            Ecn::Brake
        } else {
            Ecn::NotEct
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rate::Rate;

    fn ack(now_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + SimDuration::from_millis(now_ms),
            rtt: Some(SimDuration::from_millis(100)),
            min_rtt: SimDuration::from_millis(100),
            srtt: SimDuration::from_millis(100),
            acked_bytes: 1500,
            ecn_echo: Ecn::NotEct,
            feedback: netsim::packet::Feedback::None,
            inflight_pkts: 5,
            delivery_rate: Rate::ZERO,
            one_way_delay: SimDuration::from_millis(50),
        }
    }

    #[test]
    fn slow_start_then_congestion_avoidance() {
        let mut r = NewReno::new();
        r.ssthresh = 12.0;
        r.on_ack(&ack(0)); // 11 (ss)
        r.on_ack(&ack(1)); // 12 — reaches ssthresh
        assert_eq!(r.cwnd_pkts(), 12.0);
        r.on_ack(&ack(2)); // CA: +1/12
        assert!((r.cwnd_pkts() - (12.0 + 1.0 / 12.0)).abs() < 1e-9);
    }

    #[test]
    fn loss_halves() {
        let mut r = NewReno::new();
        r.cwnd = 40.0;
        r.ssthresh = 10.0;
        r.on_loss(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(r.cwnd_pkts(), 20.0);
    }

    #[test]
    fn rto_restarts_slow_start() {
        let mut r = NewReno::new();
        r.cwnd = 40.0;
        r.on_rto(SimTime::ZERO);
        assert_eq!(r.cwnd_pkts(), 1.0);
        assert_eq!(r.ssthresh, 20.0);
    }
}
