//! The run ledger's three cross-cutting contracts:
//!
//! * **quarantine** — emitting a ledger (with `--profile` on) leaves the
//!   results store byte-identical: wall-clock data never reaches the
//!   science artifact;
//! * **structural determinism** — after [`normalize_jsonl`] zeroes the
//!   wall fields, the remaining ledger bytes (ordinal set, coords,
//!   attempt counts, event counts, wave composition) are bit-identical
//!   across reruns and 1/2/4/8-worker pools;
//! * **fault coverage** — an injected panic appears as exactly one
//!   annotated span per retry attempt, a watchdog abort as exactly one
//!   span, and both survive into the Perfetto trace and run report.

use campaign::runlog::{normalize_jsonl, RunLedger, SpanOutcome};
use campaign::runner::run_campaign;
use campaign::{presets, run_campaign_outcomes, Axis, AxisValue, Campaign, RunOptions};
use experiments::engine::{InjectedFault, ScenarioSpec};
use experiments::figures::Scale;
use experiments::scenario::LinkSpec;
use experiments::Scheme;
use netsim::rate::Rate;
use netsim::time::SimDuration;
use std::path::PathBuf;

/// A scratch path under the system temp dir, unique per test name.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("abc-runlog-test-{}-{name}", std::process::id()))
}

/// Run `campaign` with a ledger attached and return the ledger text.
/// Uses the outcome-returning entry point so injected faults surface as
/// ledger spans, not test aborts.
fn ledger_text(campaign: &Campaign, opts: RunOptions, name: &str) -> String {
    let path = scratch(name);
    let opts = opts.with_runlog(Some(campaign::RunLogConfig::new(path.clone())));
    run_campaign_outcomes(campaign, &opts);
    let text = std::fs::read_to_string(&path).expect("ledger file was written");
    let _ = std::fs::remove_file(&path);
    text
}

/// The 2×2 fault campaign from the robustness suite: ordinals 2 and 3
/// (the `boom` half of the `fault` axis) carry the injected fault.
fn fault_campaign(fault: Option<InjectedFault>) -> Campaign {
    let base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
        .duration(SimDuration::from_millis(300))
        .warmup_secs(0);
    Campaign::new("faulty", base)
        .axis(Axis::new(
            "fault",
            vec![
                ("clean".to_string(), AxisValue::Fault(None)),
                ("boom".to_string(), AxisValue::Fault(fault)),
            ],
        ))
        .axis(Axis::seeds(&[1, 2]))
}

/// Normalized ledger bytes are a pure function of the campaign: the
/// same campaign at 1/2/4/8 workers — and again on a rerun — produces
/// bit-identical normalized ledgers. Chunk 2 forces multiple waves so
/// wave composition is exercised, not just a single batch.
#[test]
fn normalized_ledger_is_bit_identical_across_pools_and_reruns() {
    let campaign = presets::tiny(Scale::Tiny);
    let run = |jobs: usize, tag: &str| -> String {
        let opts = RunOptions {
            chunk: 2,
            ..RunOptions::quiet().with_jobs(Some(jobs))
        };
        let text = ledger_text(&campaign, opts, &format!("pools-{jobs}-{tag}"));
        normalize_jsonl(&text).expect("ledger normalizes")
    };
    let want = run(1, "a");
    assert!(want.contains("\"span\":\"wave\""), "no wave spans: {want}");
    for jobs in [1usize, 2, 4, 8] {
        assert_eq!(
            run(jobs, "b"),
            want,
            "normalized ledger diverged at jobs={jobs}"
        );
    }

    // and the raw (un-normalized) ledger round-trips through the parser
    let raw = ledger_text(
        &campaign,
        RunOptions {
            chunk: 2,
            ..RunOptions::quiet().with_jobs(Some(2))
        },
        "roundtrip",
    );
    let ledger = RunLedger::from_jsonl(&raw).expect("ledger parses");
    assert_eq!(ledger.to_jsonl(), raw, "parse → serialize is not identity");
}

/// The quarantine invariant: a run with the ledger *and* the profiler on
/// stores exactly the bytes a bare run stores. Wall-clock observability
/// must be a separate artifact stream, never a store perturbation.
#[test]
fn runlog_and_profile_leave_the_results_store_byte_identical() {
    let campaign = presets::tiny(Scale::Tiny);
    let bare =
        campaign::ResultsStore::new(&campaign, run_campaign(&campaign, &RunOptions::quiet()))
            .to_jsonl();

    let path = scratch("quarantine");
    let opts = RunOptions::quiet()
        .with_runlog(Some(campaign::RunLogConfig::new(path.clone())))
        .with_profile(true);
    let instrumented =
        campaign::ResultsStore::new(&campaign, run_campaign(&campaign, &opts)).to_jsonl();
    let ledger = std::fs::read_to_string(&path).expect("ledger written");
    let _ = std::fs::remove_file(&path);

    assert_eq!(
        instrumented, bare,
        "runlog/profile leaked into the results store"
    );
    // ... while the wall data landed in the ledger, profile included
    assert!(ledger.contains("\"profile\":{"), "no profile objects");
    assert!(ledger.contains("deliver_frac"), "no phase fractions");
}

/// Every panic retry is one annotated span: with `retries = 2` a
/// persistently panicking point produces exactly three spans (attempts
/// 0, 1, 2), each carrying `outcome: panic` and the payload message,
/// while clean points produce exactly one `ok` span.
#[test]
fn panic_retries_appear_as_one_annotated_span_per_attempt() {
    let campaign = fault_campaign(Some(InjectedFault::Panic));
    let opts = RunOptions::quiet().with_keep_going(true).with_retries(2);
    let text = ledger_text(&campaign, opts, "panics");
    let ledger = RunLedger::from_jsonl(&text).expect("ledger parses");

    for ordinal in [0usize, 1] {
        let spans: Vec<_> = ledger
            .points
            .iter()
            .filter(|p| p.ordinal == ordinal)
            .collect();
        assert_eq!(spans.len(), 1, "clean ordinal {ordinal}");
        assert!(spans[0].outcome.is_ok());
    }
    for ordinal in [2usize, 3] {
        let spans: Vec<_> = ledger
            .points
            .iter()
            .filter(|p| p.ordinal == ordinal)
            .collect();
        assert_eq!(spans.len(), 3, "retries=2 must yield 3 attempts");
        for (i, span) in spans.iter().enumerate() {
            assert_eq!(span.attempt as usize, i, "attempt numbering");
            match &span.outcome {
                SpanOutcome::Panic(msg) => {
                    assert!(msg.contains("injected fault"), "unannotated panic: {msg}")
                }
                other => panic!("ordinal {ordinal} attempt {i}: expected panic, got {other:?}"),
            }
        }
    }
}

/// A watchdog abort is never retried, so it appears as exactly one span
/// with the deterministic abort description.
#[test]
fn watchdog_abort_is_exactly_one_annotated_span() {
    let campaign = fault_campaign(Some(InjectedFault::Stall));
    let opts = RunOptions::quiet()
        .with_keep_going(true)
        .with_retries(2)
        .with_watchdog(Some(std::time::Duration::from_millis(100)));
    let text = ledger_text(&campaign, opts, "watchdog");
    let ledger = RunLedger::from_jsonl(&text).expect("ledger parses");

    for ordinal in [2usize, 3] {
        let spans: Vec<_> = ledger
            .points
            .iter()
            .filter(|p| p.ordinal == ordinal)
            .collect();
        assert_eq!(spans.len(), 1, "watchdog aborts must not retry");
        match &spans[0].outcome {
            SpanOutcome::Watchdog(msg) => {
                assert!(msg.contains("wall-clock"), "unannotated abort: {msg}")
            }
            other => panic!("ordinal {ordinal}: expected watchdog, got {other:?}"),
        }
    }
}

/// The Perfetto export stays balanced and complete even over a ledger
/// with faults and retries: begin/end counts match, and every executed
/// span — retries included — appears as a named point event.
#[test]
fn trace_export_covers_every_executed_span() {
    let campaign = fault_campaign(Some(InjectedFault::Panic));
    let opts = RunOptions::quiet().with_keep_going(true).with_retries(1);
    let text = ledger_text(&campaign, opts, "trace");
    let ledger = RunLedger::from_jsonl(&text).expect("ledger parses");

    let trace = campaign::trace::chrome_trace(&ledger);
    let parsed = campaign::json::parse(&trace).expect("trace parses as JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(campaign::json::Value::as_arr)
        .expect("traceEvents array");
    let count = |ph: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(campaign::json::Value::as_str) == Some(ph))
            .count()
    };
    assert_eq!(count("B"), count("E"), "unbalanced begin/end pairs");
    // 2 ok + 2×2 panic attempts = 6 point spans, plus wave + flush spans
    let spans = ledger.points.len() + ledger.waves.len() + ledger.flushes.len();
    assert_eq!(count("B"), spans, "trace must cover every span");
    for p in &ledger.points {
        let name = format!("#{} {}", p.ordinal, p.coords.key());
        assert!(trace.contains(&name), "span {name} missing from trace");
    }
}

/// `--telemetry-dir` alone defaults the ledger to `<dir>/runlog.jsonl`,
/// and the run report renders against that directory's sidecars with a
/// per-axis telemetry aggregation.
#[test]
fn report_aggregates_sidecars_from_the_default_ledger_path() {
    let dir = scratch("report");
    let _ = std::fs::remove_dir_all(&dir);
    let campaign = presets::tiny(Scale::Tiny);
    let opts = RunOptions::quiet().with_telemetry_dir(Some(dir.clone()));
    run_campaign(&campaign, &opts);

    let ledger = RunLedger::load(&dir.join("runlog.jsonl")).expect("default ledger path");
    let report = campaign::report::render_report(&ledger, Some(&dir)).expect("report renders");
    assert!(report.contains("# run report: tiny"));
    assert!(report.contains("## stragglers"));
    assert!(report.contains("## telemetry aggregation"));
    for axis in ["scheme", "link", "seed"] {
        assert!(
            report.contains(&format!("### axis {axis}")),
            "axis {axis} missing from aggregation:\n{report}"
        );
    }
    assert!(report.contains("hist qdelay_ns"), "no merged histograms");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
