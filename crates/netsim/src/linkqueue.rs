//! The link node: a [`Qdisc`] in front of a [`Transmitter`].
//!
//! Arriving packets are offered to the qdisc; whenever the link is free and
//! the queue non-empty, the node asks the transmitter when the head packet
//! completes, dequeues at that instant (so dequeue-time marking — ABC,
//! CoDel — happens at true departure time), and forwards the packet along
//! its route.

use crate::event::EventKind;
use crate::link::Transmitter;
use crate::metrics::Metrics;
use crate::node::{Context, Node};
use crate::queue::Qdisc;
use crate::time::{SimDuration, SimTime};

const TX_DONE: u64 = 1;

/// A link node: a queueing discipline feeding a transmitter (see the
/// module docs for the drive cycle).
pub struct LinkQueue {
    qdisc: Box<dyn Qdisc>,
    tx: Box<dyn Transmitter>,
    /// Tag under which this link reports metrics (e.g. `"bottleneck"`).
    tag: &'static str,
    metrics: Option<Metrics>,
    /// Set while a TX_DONE timer is outstanding.
    tx_scheduled: bool,
    /// Capacity oracle offset: ABC's PK variant feeds `µ(now + lookahead)`
    /// to the control law instead of `µ(now)` (§6.6).
    oracle_lookahead: SimDuration,
    /// Opportunity accounting starts here (set by `start`, adjusted by
    /// the epoch configured on the hub).
    started_at: SimTime,
    finished_at: SimTime,
}

impl LinkQueue {
    /// A link serving `qdisc` through `tx`, reporting no metrics.
    pub fn new(qdisc: Box<dyn Qdisc>, tx: Box<dyn Transmitter>) -> Self {
        LinkQueue {
            qdisc,
            tx,
            tag: "link",
            metrics: None,
            tx_scheduled: false,
            oracle_lookahead: SimDuration::ZERO,
            started_at: SimTime::ZERO,
            finished_at: SimTime::ZERO,
        }
    }

    /// Report per-link metrics to `metrics` under `tag`.
    pub fn with_metrics(mut self, tag: &'static str, metrics: Metrics) -> Self {
        self.tag = tag;
        self.metrics = Some(metrics);
        self
    }

    /// Enable the perfect-knowledge oracle: control laws see µ(t + d).
    pub fn with_oracle_lookahead(mut self, d: SimDuration) -> Self {
        self.oracle_lookahead = d;
        self
    }

    /// The qdisc at this link.
    pub fn qdisc(&self) -> &dyn Qdisc {
        &*self.qdisc
    }

    /// Mutable access to the qdisc at this link.
    pub fn qdisc_mut(&mut self) -> &mut dyn Qdisc {
        &mut *self.qdisc
    }

    /// Replace the qdisc wholesale (parameter-sweep harnesses).
    pub fn qdisc_boxed_mut(&mut self) -> &mut Box<dyn Qdisc> {
        &mut self.qdisc
    }

    /// The transmitter (capacity model) behind the queue.
    pub fn transmitter(&self) -> &dyn Transmitter {
        &*self.tx
    }

    /// Report the total opportunity bits between the metrics epoch and the
    /// last observed time to the hub. Harnesses call this after the run by
    /// downcasting the node.
    pub fn finalize_opportunity(&self, end: SimTime) {
        if let Some(m) = &self.metrics {
            let epoch = m.borrow().epoch();
            let from = epoch.max(self.started_at);
            let bits = self.tx.opportunity_bits(from, end);
            m.borrow_mut().set_link_opportunity(self.tag, bits);
        }
    }

    fn feed_capacity(&mut self, now: SimTime) {
        let r = self.tx.rate_at(now + self.oracle_lookahead);
        self.qdisc.on_capacity(r, now);
    }

    fn schedule_next(&mut self, ctx: &mut Context) {
        if self.tx_scheduled {
            return;
        }
        if let Some(size) = self.qdisc.peek_size() {
            let done = self.tx.schedule_tx(ctx.now(), size);
            if done == SimTime::MAX {
                // Link stalled (zero-rate outage with no future opportunity).
                // Leave unscheduled; the next enqueue retries.
                return;
            }
            ctx.set_timer_at(done, TX_DONE);
            self.tx_scheduled = true;
        }
    }
}

impl Node for LinkQueue {
    crate::impl_node_downcast!();

    fn start(&mut self, ctx: &mut Context) {
        self.started_at = ctx.now();
    }

    fn handle(&mut self, ctx: &mut Context, event: EventKind) {
        let now = ctx.now();
        self.finished_at = now;
        match event {
            EventKind::Deliver(pkt) => {
                if let Some(m) = &self.metrics {
                    m.borrow_mut().on_link_offered(self.tag, now, pkt.size);
                }
                let accepted = self.qdisc.enqueue(pkt, now);
                if !accepted {
                    if let Some(m) = &self.metrics {
                        m.borrow_mut().on_link_drop(self.tag, now);
                    }
                }
                self.schedule_next(ctx);
            }
            EventKind::Timer(TX_DONE) => {
                self.tx_scheduled = false;
                self.feed_capacity(now);
                let before = self.qdisc.len_pkts();
                match self.qdisc.dequeue(now) {
                    Some(pkt) => {
                        // dequeue-time drops (AQM head drops) show up as a
                        // shrink larger than one
                        let dropped = before.saturating_sub(self.qdisc.len_pkts() + 1);
                        if let Some(m) = &self.metrics {
                            let mut m = m.borrow_mut();
                            for _ in 0..dropped {
                                m.on_link_drop(self.tag, now);
                            }
                            m.on_link_dequeue(self.tag, now, now.since(pkt.enqueued_at), pkt.size);
                        }
                        if ctx.telemetry_on() {
                            use crate::telemetry::{Scope, Signal};
                            let scope = Scope::Link(self.tag);
                            ctx.sample(
                                Signal::QdelayMs,
                                scope,
                                now.since(pkt.enqueued_at).as_millis_f64(),
                            );
                            ctx.sample(Signal::QdiscDepthPkts, scope, self.qdisc.len_pkts() as f64);
                            if let Some(cs) = self.qdisc.control_signals() {
                                ctx.sample(Signal::AbcToken, scope, cs.token);
                                ctx.sample(Signal::MarkFrac, scope, cs.mark_frac);
                                ctx.sample(Signal::TargetRateMbps, scope, cs.target_rate_mbps);
                            }
                        }
                        if pkt.next_hop().is_some() {
                            ctx.forward_boxed(pkt);
                        } else {
                            ctx.recycle(pkt);
                        }
                    }
                    None => {
                        // AQM dropped everything that was queued
                        let dropped = before.saturating_sub(self.qdisc.len_pkts());
                        if let Some(m) = &self.metrics {
                            let mut m = m.borrow_mut();
                            for _ in 0..dropped {
                                m.on_link_drop(self.tag, now);
                            }
                        }
                    }
                }
                self.schedule_next(ctx);
            }
            EventKind::Timer(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{ConstantRate, SerialLink, TraceLink};
    use crate::metrics::new_hub;
    use crate::packet::{Ecn, Feedback, FlowId, NodeId, Packet, Route};
    use crate::queue::DropTail;
    use crate::rate::Rate;
    use crate::sim::Simulator;
    use crate::time::SimDuration;

    /// Terminal node that remembers arrival times.
    struct Recorder {
        arrivals: Vec<(SimTime, u64)>,
    }

    impl Node for Recorder {
        crate::impl_node_downcast!();
        fn handle(&mut self, ctx: &mut Context, ev: EventKind) {
            if let EventKind::Deliver(p) = ev {
                self.arrivals.push((ctx.now(), p.seq));
            }
        }
    }

    /// Fires n packets into the link at t=0.
    struct Blaster {
        n: u64,
        route_to: (NodeId, NodeId), // (link, recorder)
    }

    impl Node for Blaster {
        crate::impl_node_downcast!();
        fn start(&mut self, ctx: &mut Context) {
            for seq in 0..self.n {
                let route = Route::new(vec![
                    (self.route_to.0, SimDuration::ZERO),
                    (self.route_to.1, SimDuration::from_millis(1)),
                ]);
                ctx.forward(Packet {
                    flow: FlowId(7),
                    seq,
                    size: 1500,
                    ecn: Ecn::NotEct,
                    feedback: Feedback::None,
                    abc_capable: false,
                    sent_at: ctx.now(),
                    retransmit: false,
                    ack: None,
                    route,
                    hop: 0,
                    enqueued_at: ctx.now(),
                });
            }
        }
        fn handle(&mut self, _: &mut Context, _: EventKind) {}
    }

    #[test]
    fn serial_link_drains_at_line_rate() {
        let mut sim = Simulator::new();
        let hub = new_hub();
        let link_id = sim.reserve_node();
        let rec_id = sim.reserve_node();
        sim.install_node(
            link_id,
            Box::new(
                LinkQueue::new(
                    Box::new(DropTail::new(250)),
                    Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(12.0)))),
                )
                .with_metrics("l", hub.clone()),
            ),
        );
        sim.install_node(rec_id, Box::new(Recorder { arrivals: vec![] }));
        sim.add_node(Box::new(Blaster {
            n: 5,
            route_to: (link_id, rec_id),
        }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));

        let rec: &Recorder = sim
            .node(rec_id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        // 1500B @ 12 Mbit/s = 1 ms each, plus 1 ms propagation
        let expect: Vec<u64> = (1..=5).map(|i| i + 1).collect();
        let got: Vec<u64> = rec
            .arrivals
            .iter()
            .map(|(t, _)| t.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(got, expect);
        // metrics saw all 5 dequeues
        assert_eq!(hub.borrow().links["l"].delivered_pkts, 5);
    }

    #[test]
    fn droptail_limits_burst() {
        let mut sim = Simulator::new();
        let hub = new_hub();
        let link_id = sim.reserve_node();
        let rec_id = sim.reserve_node();
        sim.install_node(
            link_id,
            Box::new(
                LinkQueue::new(
                    Box::new(DropTail::new(3)),
                    Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(12.0)))),
                )
                .with_metrics("l", hub.clone()),
            ),
        );
        sim.install_node(rec_id, Box::new(Recorder { arrivals: vec![] }));
        sim.add_node(Box::new(Blaster {
            n: 10,
            route_to: (link_id, rec_id),
        }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        let rec: &Recorder = sim
            .node(rec_id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        // Burst of 10 into a 3-packet buffer: all arrive at t=0. The first
        // starts transmitting only at its completion event, so the queue
        // holds 3 and drops 7.
        assert_eq!(rec.arrivals.len(), 3);
        assert_eq!(hub.borrow().links["l"].dropped_pkts, 7);
    }

    #[test]
    fn trace_link_queue_delivers_on_opportunities() {
        let mut sim = Simulator::new();
        let hub = new_hub();
        let link_id = sim.reserve_node();
        let rec_id = sim.reserve_node();
        // opportunities every 10ms
        let opps = (0..100).map(|i| SimDuration::from_millis(i * 10)).collect();
        sim.install_node(
            link_id,
            Box::new(
                LinkQueue::new(
                    Box::new(DropTail::new(250)),
                    Box::new(TraceLink::new(opps, SimDuration::from_secs(1))),
                )
                .with_metrics("l", hub.clone()),
            ),
        );
        sim.install_node(rec_id, Box::new(Recorder { arrivals: vec![] }));
        sim.add_node(Box::new(Blaster {
            n: 3,
            route_to: (link_id, rec_id),
        }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        let rec: &Recorder = sim
            .node(rec_id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        // deliveries at opportunities 0,10,20ms + 1ms propagation
        let got: Vec<u64> = rec
            .arrivals
            .iter()
            .map(|(t, _)| t.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(got, vec![1, 11, 21]);
    }

    #[test]
    fn finalize_opportunity_reports_capacity() {
        let hub = new_hub();
        let lq = LinkQueue::new(
            Box::new(DropTail::new(10)),
            Box::new(SerialLink::new(ConstantRate(Rate::from_mbps(8.0)))),
        )
        .with_metrics("l", hub.clone());
        lq.finalize_opportunity(SimTime::ZERO + SimDuration::from_secs(2));
        let bits = hub.borrow().links["l"].opportunity_bits;
        assert!((bits - 16e6).abs() < 1.0);
    }
}
