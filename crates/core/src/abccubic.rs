//! ABC-Cubic: the incremental-deployment endpoint (§4.1, `tcp_abccubic.c`).
//!
//! The paper's answer to "what does an ABC sender do on a path with no ABC
//! router?" is a per-path mode switch. The endpoint keeps two controllers:
//!
//! * a full [`AbcSender`] (accel/brake reaction plus its own §5.1.1
//!   companion window), used while the path demonstrably contains an ABC
//!   hop;
//! * a legacy Cubic window identical to the stand-alone `Cubic` baseline,
//!   used on paths with no ABC hop.
//!
//! Every data packet still leaves stamped accelerate (ECT(1)). ABC routers
//! demote that to brake (ECT(0)) and never promote, while droptail/CoDel
//! hops pass the codepoint through untouched — so a *brake echo is proof*
//! of an ABC router on the path, whereas an accelerate echo proves nothing
//! (an all-droptail path echoes accelerate forever). The mode machine keys
//! off exactly that asymmetry:
//!
//! * start in legacy (Cubic) mode;
//! * the first brake echo switches to ABC mode;
//! * a streak of [`FALLBACK_BRAKELESS_ACKS`] ACKs without a single brake
//!   falls back to legacy mode (an ABC router under load brakes ≈50% of
//!   packets, so the streak never trips while ABC is actually governing);
//! * the next brake switches straight back.
//!
//! Both controllers consume the full ACK stream in both modes, so a mode
//! switch resumes from live state rather than a cold window.

use crate::sender::AbcSender;
use baselines::cubic::CubicWindow;
use netsim::flow::{AckEvent, CongestionControl};
use netsim::packet::Ecn;
use netsim::time::{SimDuration, SimTime};

/// Consecutive brake-free ACKs after which the endpoint concludes the path
/// has no ABC router and falls back to the legacy Cubic window. Roughly
/// two large windows' worth: long enough that ACK batching or a brief
/// underload can't trip it, short enough to fall back within a few RTTs.
pub const FALLBACK_BRAKELESS_ACKS: u32 = 256;

/// Which controller currently governs the congestion window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathMode {
    /// No ABC router observed (yet, or recently): plain Cubic dynamics.
    Legacy,
    /// At least one recent brake echo: ABC accel/brake dynamics.
    Abc,
}

/// The ABC-Cubic endpoint: ABC where the path marks, Cubic where it
/// doesn't, selected per-path at ACK granularity.
pub struct AbcCubic {
    abc: AbcSender,
    legacy: CubicWindow,
    srtt: SimDuration,
    mode: PathMode,
    /// Consecutive ACKs since the last brake echo.
    brakeless_acks: u32,
}

impl AbcCubic {
    /// An ABC-Cubic endpoint in legacy mode, both controllers at their
    /// defaults (the legacy window matches the stand-alone Cubic baseline
    /// exactly, so an all-droptail path reproduces Cubic bit for bit).
    pub fn new() -> Self {
        AbcCubic {
            abc: AbcSender::new(),
            legacy: CubicWindow::default(),
            srtt: SimDuration::from_millis(100),
            mode: PathMode::Legacy,
            brakeless_acks: 0,
        }
    }

    /// The currently governing controller.
    pub fn mode(&self) -> PathMode {
        self.mode
    }

    /// Current ABC window of the embedded ABC sender (packets).
    pub fn w_abc(&self) -> f64 {
        self.abc.w_abc()
    }

    /// Current legacy (Cubic) window (packets).
    pub fn legacy_cwnd(&self) -> f64 {
        self.legacy.cwnd()
    }

    /// Consecutive ACKs seen without a brake echo.
    pub fn brakeless_acks(&self) -> u32 {
        self.brakeless_acks
    }
}

impl Default for AbcCubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for AbcCubic {
    fn name(&self) -> &'static str {
        "abc-cubic"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if !ev.srtt.is_zero() {
            self.srtt = ev.srtt;
        }
        // Mode machine: only a brake proves an ABC hop (§4.1; see the
        // module docs for why accelerate echoes prove nothing).
        if ev.ecn_echo == Ecn::Brake {
            self.brakeless_acks = 0;
            self.mode = PathMode::Abc;
        } else {
            self.brakeless_acks = self.brakeless_acks.saturating_add(1);
            if self.brakeless_acks >= FALLBACK_BRAKELESS_ACKS {
                self.mode = PathMode::Legacy;
            }
        }
        // Both controllers track the path in both modes. The legacy window
        // mirrors the loss-only Cubic baseline: every ACK is growth, CE is
        // ignored (losses arrive via on_loss), and it is never clamped.
        self.abc.on_ack(ev);
        self.legacy.on_ack(ev.now, self.srtt);
    }

    fn on_loss(&mut self, now: SimTime) {
        self.abc.on_loss(now);
        self.legacy.on_congestion(now, self.srtt);
    }

    fn on_rto(&mut self, now: SimTime) {
        self.abc.on_rto(now);
        self.legacy.on_rto();
    }

    fn cwnd_pkts(&self) -> f64 {
        match self.mode {
            PathMode::Abc => self.abc.cwnd_pkts(),
            PathMode::Legacy => self.legacy.cwnd().max(1.0),
        }
    }

    fn outgoing_ecn(&self) -> Ecn {
        // still accelerate-stamped in legacy mode: inert at droptail hops,
        // and it keeps the probe alive so a newly deployed ABC router is
        // noticed on its first brake
        Ecn::Accelerate
    }

    fn is_abc(&self) -> bool {
        true
    }

    fn as_abc_windows(&self) -> Option<(f64, f64)> {
        // the deployment-relevant pair: the ABC window vs the legacy window
        Some((self.abc.w_abc(), self.legacy.cwnd()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::cubic::Cubic;
    use netsim::packet::Feedback;
    use netsim::rate::Rate;

    fn ack_at(ms: u64, ecn: Ecn, inflight: usize) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + SimDuration::from_millis(ms),
            rtt: Some(SimDuration::from_millis(100)),
            min_rtt: SimDuration::from_millis(100),
            srtt: SimDuration::from_millis(100),
            acked_bytes: 1500,
            ecn_echo: ecn,
            feedback: Feedback::None,
            inflight_pkts: inflight,
            delivery_rate: Rate::ZERO,
            one_way_delay: SimDuration::from_millis(50),
        }
    }

    fn ack(ecn: Ecn, inflight: usize) -> AckEvent {
        ack_at(1000, ecn, inflight)
    }

    #[test]
    fn starts_in_legacy_mode_at_cubic_initial_window() {
        let s = AbcCubic::new();
        assert_eq!(s.mode(), PathMode::Legacy);
        assert_eq!(s.cwnd_pkts(), 10.0);
    }

    #[test]
    fn first_brake_switches_to_abc_mode() {
        let mut s = AbcCubic::new();
        s.on_ack(&ack(Ecn::Accelerate, 100));
        assert_eq!(s.mode(), PathMode::Legacy, "accelerate proves nothing");
        s.on_ack(&ack(Ecn::Brake, 100));
        assert_eq!(s.mode(), PathMode::Abc);
    }

    #[test]
    fn brakeless_streak_falls_back_to_legacy() {
        let mut s = AbcCubic::new();
        s.on_ack(&ack(Ecn::Brake, 100));
        assert_eq!(s.mode(), PathMode::Abc);
        for _ in 0..FALLBACK_BRAKELESS_ACKS {
            s.on_ack(&ack(Ecn::Accelerate, 100));
        }
        assert_eq!(s.mode(), PathMode::Legacy);
        // …and the very next brake re-enters ABC mode
        s.on_ack(&ack(Ecn::Brake, 100));
        assert_eq!(s.mode(), PathMode::Abc);
    }

    #[test]
    fn abc_load_never_trips_the_fallback() {
        // an ABC router governing the flow brakes ≈ half the ACKs; the
        // brakeless streak must stay far from the threshold
        let mut s = AbcCubic::new();
        for i in 0..2000u64 {
            let e = if i % 2 == 0 {
                Ecn::Accelerate
            } else {
                Ecn::Brake
            };
            s.on_ack(&ack(e, 100));
            if i >= 1 {
                assert_eq!(s.mode(), PathMode::Abc, "fell back at ack {i}");
            }
        }
    }

    #[test]
    fn abc_mode_uses_the_abc_window() {
        let mut s = AbcCubic::new();
        s.on_ack(&ack(Ecn::Brake, 100));
        let mut abc = AbcSender::new();
        abc.on_ack(&ack(Ecn::Brake, 100));
        assert_eq!(s.cwnd_pkts(), abc.cwnd_pkts());
    }

    #[test]
    fn legacy_mode_tracks_cubic_bit_for_bit() {
        // an all-droptail path echoes accelerate on every ACK; the
        // governing window must equal stand-alone loss-only Cubic exactly,
        // including across losses and RTOs
        let mut s = AbcCubic::new();
        let mut c = Cubic::new();
        let mut ms = 0u64;
        for round in 0..50 {
            for i in 0..20 {
                let ev = ack_at(ms + i, Ecn::Accelerate, 40);
                s.on_ack(&ev);
                c.on_ack(&ev);
            }
            ms += 100;
            if round % 7 == 3 {
                let now = SimTime::ZERO + SimDuration::from_millis(ms);
                s.on_loss(now);
                c.on_loss(now);
            }
            if round == 30 {
                let now = SimTime::ZERO + SimDuration::from_millis(ms);
                s.on_rto(now);
                c.on_rto(now);
            }
            assert_eq!(s.cwnd_pkts(), c.cwnd_pkts(), "diverged at round {round}");
        }
        assert_eq!(s.mode(), PathMode::Legacy);
    }

    #[test]
    fn loss_shrinks_the_legacy_window() {
        let mut s = AbcCubic::new();
        let w0 = s.legacy_cwnd();
        s.on_loss(SimTime::ZERO + SimDuration::from_secs(2));
        assert!(s.legacy_cwnd() < w0);
    }

    #[test]
    fn outgoing_packets_stay_accelerate_marked_in_legacy_mode() {
        let s = AbcCubic::new();
        assert_eq!(s.mode(), PathMode::Legacy);
        assert_eq!(s.outgoing_ecn(), Ecn::Accelerate);
        assert!(s.is_abc());
        assert_eq!(s.as_abc_windows(), Some((s.w_abc(), s.legacy_cwnd())));
    }
}
