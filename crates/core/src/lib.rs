#![warn(missing_docs)]

//! # abc-core — Accel-Brake Control
//!
//! The primary contribution of *ABC: A Simple Explicit Congestion
//! Controller for Wireless Networks* (NSDI 2020), reproduced in full:
//!
//! * [`sender`] — the ABC congestion controller (Eq. 3 window updates,
//!   additive increase for fairness, the dual `w_abc`/`w_nonabc` windows of
//!   §5.1.1 with Cubic fallback, and the 2×-in-flight caps);
//! * [`router`] — the ABC queueing discipline (target rate Eq. 1, marking
//!   fraction Eq. 2, deterministic token-bucket marking Algorithm 1,
//!   per-packet feedback recomputation, dequeue- vs enqueue-rate ablation);
//! * [`abccubic`] — the incremental-deployment endpoint (§4.1,
//!   `tcp_abccubic.c`): ABC dynamics on paths that brake, a per-path
//!   fallback to plain Cubic across paths with no ABC hop;
//! * [`coexist`] — the dual-queue router isolating ABC from legacy flows,
//!   with the max-min weight policy (§5.2) and the RCP Zombie-List
//!   baseline it is compared against;
//! * [`topk`] — Space-Saving top-K flow measurement;
//! * [`maxmin`] — water-filling max-min fair allocation;
//! * [`stability`] — Theorem 3.1: the `δ > ⅔·τ` criterion, fluid-model
//!   fixed points, and a delay-differential integrator for the stability
//!   sweep bench.
//!
//! ECN-bit reinterpretation (§5.1.2) lives in [`netsim::packet::Ecn`]: the
//! sender stamps every data packet ECT(1) (= accelerate), routers demote to
//! ECT(0) (= brake) and never promote, and legacy CE (11) still means
//! congestion — which is what lets ABC ride existing ECN plumbing.

pub mod abccubic;
pub mod coexist;
pub mod maxmin;
pub mod router;
pub mod sender;
pub mod stability;
pub mod topk;

pub use abccubic::{AbcCubic, PathMode};
pub use coexist::{DualQueue, DualQueueConfig, WeightPolicy};
pub use maxmin::{max_min_allocate, Allocation, Demand};
pub use router::{AbcQdisc, AbcRouterConfig, EcnDialect, FeedbackBasis, MarkingMode};
pub use sender::{AbcSender, AbcSenderConfig};
pub use topk::SpaceSaving;
