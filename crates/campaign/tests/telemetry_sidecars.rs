//! The telemetry pipeline's two store-level contracts:
//!
//! * **inertness** — attaching a telemetry config to a campaign changes
//!   results-store bytes by nothing at all (sidecars are a separate
//!   artifact stream);
//! * **pool invariance** — a point's sidecar is bit-identical across
//!   1/2/4/8-worker engine pools, like every other campaign artifact.

use campaign::presets;
use campaign::runner::{run_campaign, RunOptions};
use campaign::store::ResultsStore;
use experiments::engine::ScenarioEngine;
use experiments::figures::Scale;
use netsim::telemetry::{TelemetryConfig, SIDECAR_SCHEMA};

#[test]
fn telemetry_never_touches_the_results_store() {
    let plain = presets::tiny(Scale::Tiny);
    let want = ResultsStore::new(&plain, run_campaign(&plain, &RunOptions::quiet())).to_jsonl();

    let instrumented = presets::tiny(Scale::Tiny).telemetry(TelemetryConfig::default());
    let got = ResultsStore::new(
        &instrumented,
        run_campaign(&instrumented, &RunOptions::quiet()),
    )
    .to_jsonl();

    assert_eq!(got, want, "telemetry config leaked into the results store");
}

#[test]
fn sidecars_are_bit_identical_across_worker_pool_sizes() {
    let campaign = presets::tiny(Scale::Tiny).telemetry(TelemetryConfig::default());
    let specs: Vec<_> = campaign.expand().into_iter().map(|p| p.spec).collect();
    assert!(
        specs.len() >= 4,
        "tiny preset shrank: {} points",
        specs.len()
    );

    let sidecars_at = |threads: usize| -> Vec<String> {
        let engine = ScenarioEngine::with_threads(threads);
        engine
            .run_batch_map(&specs, |e, s| e.run_instrumented(s))
            .into_iter()
            .map(|(_, _, sidecar)| sidecar.expect("telemetry was attached to every spec"))
            .collect()
    };

    let golden = sidecars_at(1);
    for sidecar in &golden {
        let header = sidecar.lines().next().expect("nonempty sidecar");
        assert!(
            header.contains(SIDECAR_SCHEMA),
            "first line is not a schema header: {header}"
        );
    }
    for threads in [2, 4, 8] {
        assert_eq!(
            sidecars_at(threads),
            golden,
            "sidecar bytes diverged at {threads} workers"
        );
    }
}

#[test]
fn runner_writes_one_sidecar_per_point_into_the_telemetry_dir() {
    let dir = std::env::temp_dir().join(format!("abc-telemetry-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // No per-campaign config: --telemetry-dir alone must fall back to the
    // default signal set for every point.
    let campaign = presets::tiny(Scale::Tiny);
    let points = campaign.expand();
    let opts = RunOptions::quiet().with_telemetry_dir(Some(dir.clone()));
    let records = run_campaign(&campaign, &opts);
    assert_eq!(records.len(), points.len());

    for p in &points {
        let path = dir.join(format!("{}.jsonl", p.ordinal));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing sidecar {}: {e}", path.display()));
        assert!(
            text.lines()
                .next()
                .is_some_and(|l| l.contains(SIDECAR_SCHEMA)),
            "{} lacks the schema header",
            path.display()
        );
        campaign::dynamics::render_dynamics(&text)
            .unwrap_or_else(|e| panic!("{} does not render: {e}", path.display()));
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
