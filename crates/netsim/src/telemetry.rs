//! Deterministic, schema-versioned observability for the simulator.
//!
//! Three legs, per the design doc:
//!
//! 1. **Signal probes** — gauges sampled on sim-time events (cwnd,
//!    in-flight, qdisc depth, ABC token level, …), counters (RTO arms/
//!    cancels/fires), and log-bucketed histograms, all recorded through
//!    the [`TelemetrySink`] threaded into every [`Context`]. Probe sites
//!    are one-line `ctx.sample(..)` calls guarded by a cached boolean, so
//!    with the default [`Off`] sink they compile down to a dead branch:
//!    the event-order fingerprint and every results-store byte are
//!    identical with telemetry compiled in but disabled.
//! 2. **Host self-profiling** — an opt-in wall-clock [`Profiler`] for the
//!    event loop (time per dispatch phase, events/sec over wall time,
//!    wheel occupancy, packet-pool hit rate). Wall-clock numbers are
//!    machine-dependent by nature and are *never* written to a results
//!    store; they exist to explain bench trajectories.
//! 3. **The sidecar** — [`TelemetryHub::render_jsonl`] emits a
//!    self-describing JSONL document (schema header first, then sample /
//!    counter / histogram / event rows) that downstream tooling renders
//!    into paper-style dynamics timelines without re-running anything.
//!
//! Sim-time signals are bit-deterministic: identical scenario, identical
//! sidecar bytes, regardless of host, worker-pool width, or wall-clock
//! load.
//!
//! [`Context`]: crate::node::Context

use crate::packet::NodeId;
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Version tag written as the `schema` field of a sidecar's header line.
pub const SIDECAR_SCHEMA: &str = "abc-telemetry/v1";

/// A probe signal. The numeric value doubles as the bit index in the
/// hub's enabled-signal mask, so membership tests are one shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Signal {
    /// Congestion window, packets (per flow; fractional).
    Cwnd = 0,
    /// Packets in flight after each ACK (per flow).
    Inflight = 1,
    /// Pacing-clock rate in Mbit/s (per flow; rate-paced schemes only).
    PacingRateMbps = 2,
    /// Smoothed RTT in milliseconds (per flow).
    SrttMs = 3,
    /// Bottleneck qdisc depth in packets, sampled at each dequeue (per link).
    QdiscDepthPkts = 4,
    /// Per-packet queueing (sojourn) delay in milliseconds (per link).
    QdelayMs = 5,
    /// ABC token-bucket level, in tokens (per link; ABC qdiscs only).
    AbcToken = 6,
    /// ABC accelerate fraction `f(t)` from the last control-law update
    /// (per link; ABC qdiscs only).
    MarkFrac = 7,
    /// ABC target rate `tr(t)` in Mbit/s (per link; ABC qdiscs only).
    TargetRateMbps = 8,
    /// RTO timer armed / deadline pushed (counter, per flow).
    RtoArm = 9,
    /// RTO timer cancelled on quiesce or re-arm (counter, per flow).
    RtoCancel = 10,
    /// RTO timer actually fired (counter, per flow).
    RtoFire = 11,
    /// Raw `(time, node, seq)` event-order trace — the telemetry-layer
    /// form of the old ad-hoc `enable_event_trace`. Off by default:
    /// one row per processed event is bulky.
    Events = 12,
    /// Packets an impairment wire forwarded untouched (counter, per
    /// impairment kind — see [`crate::fault`]).
    ImpairPass = 13,
    /// Packets an impairment wire dropped, rewrote, or delayed (counter,
    /// per impairment kind).
    ImpairHit = 14,
    /// Packet-pool allocations served from the free list (counter,
    /// global). With [`Signal::PoolMiss`] this yields the pool hit rate
    /// without the bench profiler.
    PoolHit = 15,
    /// Packet-pool allocations that fell through to a fresh `Box`
    /// (counter, global).
    PoolMiss = 16,
    /// Timer-wheel near-ring occupancy, summed over checkpoints taken
    /// every 1024 processed events (counter, global). Divide by
    /// [`Signal::WheelSamples`] for the mean.
    WheelNear = 17,
    /// Timer-wheel occupied-slot count, summed over the same
    /// checkpoints (counter, global).
    WheelSlots = 18,
    /// Timer-wheel overflow-heap depth, summed over the same
    /// checkpoints (counter, global).
    WheelOverflow = 19,
    /// Number of wheel-occupancy checkpoints taken (counter, global) —
    /// the denominator for the three `wheel_*` sums.
    WheelSamples = 20,
}

impl Signal {
    /// Every signal, in mask-bit order.
    pub const ALL: [Signal; 21] = [
        Signal::Cwnd,
        Signal::Inflight,
        Signal::PacingRateMbps,
        Signal::SrttMs,
        Signal::QdiscDepthPkts,
        Signal::QdelayMs,
        Signal::AbcToken,
        Signal::MarkFrac,
        Signal::TargetRateMbps,
        Signal::RtoArm,
        Signal::RtoCancel,
        Signal::RtoFire,
        Signal::Events,
        Signal::ImpairPass,
        Signal::ImpairHit,
        Signal::PoolHit,
        Signal::PoolMiss,
        Signal::WheelNear,
        Signal::WheelSlots,
        Signal::WheelOverflow,
        Signal::WheelSamples,
    ];

    /// The default selection: everything except the bulky [`Signal::Events`].
    pub const DEFAULT: [Signal; 20] = [
        Signal::Cwnd,
        Signal::Inflight,
        Signal::PacingRateMbps,
        Signal::SrttMs,
        Signal::QdiscDepthPkts,
        Signal::QdelayMs,
        Signal::AbcToken,
        Signal::MarkFrac,
        Signal::TargetRateMbps,
        Signal::RtoArm,
        Signal::RtoCancel,
        Signal::RtoFire,
        Signal::ImpairPass,
        Signal::ImpairHit,
        Signal::PoolHit,
        Signal::PoolMiss,
        Signal::WheelNear,
        Signal::WheelSlots,
        Signal::WheelOverflow,
        Signal::WheelSamples,
    ];

    /// Stable wire name, used in sidecar rows and `[telemetry]` tables.
    pub fn name(self) -> &'static str {
        match self {
            Signal::Cwnd => "cwnd",
            Signal::Inflight => "inflight",
            Signal::PacingRateMbps => "pacing_rate_mbps",
            Signal::SrttMs => "srtt_ms",
            Signal::QdiscDepthPkts => "qdisc_depth_pkts",
            Signal::QdelayMs => "qdelay_ms",
            Signal::AbcToken => "abc_token",
            Signal::MarkFrac => "mark_frac",
            Signal::TargetRateMbps => "target_rate_mbps",
            Signal::RtoArm => "rto_arm",
            Signal::RtoCancel => "rto_cancel",
            Signal::RtoFire => "rto_fire",
            Signal::Events => "events",
            Signal::ImpairPass => "impair_pass",
            Signal::ImpairHit => "impair_hit",
            Signal::PoolHit => "pool_hit",
            Signal::PoolMiss => "pool_miss",
            Signal::WheelNear => "wheel_near",
            Signal::WheelSlots => "wheel_slots",
            Signal::WheelOverflow => "wheel_overflow",
            Signal::WheelSamples => "wheel_samples",
        }
    }

    /// Inverse of [`Signal::name`]; `None` for unknown names (the TOML
    /// layer turns that into a schema error listing the catalog).
    pub fn from_name(name: &str) -> Option<Signal> {
        Signal::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// Counters accumulate and emit once at end-of-run; gauges are
    /// sampled (and cadence-decimated) along the way.
    pub fn is_counter(self) -> bool {
        matches!(
            self,
            Signal::RtoArm
                | Signal::RtoCancel
                | Signal::RtoFire
                | Signal::ImpairPass
                | Signal::ImpairHit
                | Signal::PoolHit
                | Signal::PoolMiss
                | Signal::WheelNear
                | Signal::WheelSlots
                | Signal::WheelOverflow
                | Signal::WheelSamples
        )
    }

    /// Gauges whose every observation additionally feeds a
    /// [`LogHistogram`] (distribution shape survives decimation).
    pub fn is_histogrammed(self) -> bool {
        matches!(self, Signal::QdelayMs)
    }

    fn bit(self) -> u32 {
        1 << (self as u8)
    }
}

/// What a sample or counter is *about*. Ordered so end-of-run emission
/// (counters, histograms) is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// Simulation-wide, no particular entity.
    Global,
    /// A transport flow, by flow id.
    Flow(u32),
    /// A link queue, by its metrics tag.
    Link(&'static str),
}

impl Scope {
    /// Stable wire form: `global`, `flow:3`, `link:bottleneck`.
    pub fn render(self) -> String {
        match self {
            Scope::Global => "global".to_string(),
            Scope::Flow(id) => format!("flow:{id}"),
            Scope::Link(tag) => format!("link:{tag}"),
        }
    }
}

/// ABC control-law internals surfaced through the qdisc trait for the
/// per-link probe site (netsim cannot name `abc-core` types directly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlSignals {
    /// Token-bucket level, tokens.
    pub token: f64,
    /// Accelerate fraction `f(t)` from the last dequeue.
    pub mark_frac: f64,
    /// Target rate `tr(t)`, Mbit/s.
    pub target_rate_mbps: f64,
}

/// Which signals to record and how densely to sample gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Enabled signals (see [`Signal::DEFAULT`]).
    pub signals: Vec<Signal>,
    /// Minimum sim-time gap between consecutive samples of one
    /// `(signal, scope)` gauge series; `ZERO` keeps every observation.
    pub sample_every: SimDuration,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            signals: Signal::DEFAULT.to_vec(),
            sample_every: SimDuration::from_millis(10),
        }
    }
}

impl TelemetryConfig {
    /// A config selecting `names`, or the unknown name that failed to
    /// resolve (callers render the catalog in their error message).
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Result<Self, String> {
        let mut signals = Vec::with_capacity(names.len());
        for n in names {
            match Signal::from_name(n.as_ref()) {
                Some(s) => signals.push(s),
                None => return Err(n.as_ref().to_string()),
            }
        }
        Ok(TelemetryConfig {
            signals,
            ..TelemetryConfig::default()
        })
    }

    /// Builder: set the gauge sample cadence.
    pub fn with_sample_every(mut self, d: SimDuration) -> Self {
        self.sample_every = d;
        self
    }

    fn mask(&self) -> u32 {
        self.signals.iter().fold(0, |m, s| m | s.bit())
    }
}

/// A power-of-two log-bucketed histogram over `u64` values.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values whose highest
/// set bit is `i − 1`, i.e. `[2^(i−1), 2^i)`. Recording and merging are
/// integer-only, so a histogram is bit-deterministic and merging is
/// associative and commutative — shard-local histograms fold into the
/// same result in any grouping (property-tested in this crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; 65],
            count: 0,
        }
    }

    /// The bucket index `v` falls into.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `i` (used when reporting quantiles).
    pub fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
    }

    /// Add `n` observations directly into bucket `i` (clamped to the
    /// last bucket). This is the sidecar-side inverse of
    /// [`LogHistogram::nonzero_buckets`]: a reader reconstructs the
    /// exact histogram from serialized `[bucket, count]` pairs, then
    /// merges across points.
    pub fn add_bucket(&mut self, i: usize, n: u64) {
        self.buckets[i.min(64)] += n;
        self.count += n;
    }

    /// Fold another histogram in (element-wise bucket addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`), or `None` when empty.
    pub fn quantile_upper(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_upper(i));
            }
        }
        Some(u64::MAX)
    }

    /// Sparse `(bucket, count)` pairs for nonempty buckets, low to high.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect()
    }
}

/// One emitted gauge sample.
#[derive(Debug, Clone, PartialEq)]
struct SampleRow {
    t_ns: u64,
    signal: Signal,
    scope: Scope,
    value: f64,
}

/// The recording half of the telemetry layer: receives probe calls
/// (usually via the [`Shared`] sink), applies signal selection and
/// cadence decimation, and renders the JSONL sidecar at end-of-run.
#[derive(Debug)]
pub struct TelemetryHub {
    cfg: TelemetryConfig,
    mask: u32,
    sample_every_ns: u64,
    samples: Vec<SampleRow>,
    /// Last-emitted sim time per gauge series, for decimation.
    last_emit: BTreeMap<(Signal, Scope), u64>,
    counters: BTreeMap<(Signal, Scope), u64>,
    hists: BTreeMap<(Signal, Scope), LogHistogram>,
    events: Vec<(SimTime, NodeId, u64)>,
}

impl TelemetryHub {
    /// A hub recording the signals `cfg` selects.
    pub fn new(cfg: TelemetryConfig) -> Self {
        let mask = cfg.mask();
        let sample_every_ns = cfg.sample_every.as_nanos();
        TelemetryHub {
            cfg,
            mask,
            sample_every_ns,
            samples: Vec::new(),
            last_emit: BTreeMap::new(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// The config this hub was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    fn wants(&self, signal: Signal) -> bool {
        self.mask & signal.bit() != 0
    }

    /// Record a gauge observation at sim time `now`. Observations inside
    /// the cadence window are dropped (histogrammed signals still feed
    /// their histogram, so distributions stay exact).
    pub fn sample(&mut self, now: SimTime, signal: Signal, scope: Scope, value: f64) {
        if !self.wants(signal) {
            return;
        }
        let t_ns = now.as_nanos();
        if signal.is_histogrammed() && value.is_finite() && value >= 0.0 {
            // nanosecond resolution for time-valued signals
            let v = if signal == Signal::QdelayMs {
                (value * 1e6) as u64
            } else {
                value as u64
            };
            self.hists.entry((signal, scope)).or_default().record(v);
        }
        let key = (signal, scope);
        if let Some(&last) = self.last_emit.get(&key) {
            if t_ns < last.saturating_add(self.sample_every_ns) {
                return;
            }
        }
        self.last_emit.insert(key, t_ns);
        self.samples.push(SampleRow {
            t_ns,
            signal,
            scope,
            value,
        });
    }

    /// Bump a counter signal.
    pub fn count(&mut self, signal: Signal, scope: Scope, delta: u64) {
        if !self.wants(signal) {
            return;
        }
        *self.counters.entry((signal, scope)).or_insert(0) += delta;
    }

    /// Record one processed event for the `events` signal.
    pub fn event(&mut self, time: SimTime, node: NodeId, seq: u64) {
        if self.wants(Signal::Events) {
            self.events.push((time, node, seq));
        }
    }

    /// Drain the recorded `events` rows (the legacy
    /// `take_event_trace` envelope).
    pub fn take_events(&mut self) -> Vec<(SimTime, NodeId, u64)> {
        std::mem::take(&mut self.events)
    }

    /// Number of gauge samples emitted so far.
    pub fn samples_len(&self) -> usize {
        self.samples.len()
    }

    /// Render the self-describing JSONL sidecar: one header object, then
    /// one object per gauge sample (sim-time order), per counter, per
    /// histogram (key order), per raw event. Bit-deterministic for a
    /// given scenario.
    pub fn render_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("{\"schema\":\"");
        out.push_str(SIDECAR_SCHEMA);
        out.push_str("\",\"signals\":[");
        for (i, s) in self.cfg.signals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\"{}\"", s.name()).unwrap();
        }
        writeln!(out, "],\"sample_every_ns\":{}}}", self.sample_every_ns).unwrap();
        for r in &self.samples {
            writeln!(
                out,
                "{{\"t_ns\":{},\"signal\":\"{}\",\"scope\":\"{}\",\"v\":{}}}",
                r.t_ns,
                r.signal.name(),
                r.scope.render(),
                fmt_json_num(r.value)
            )
            .unwrap();
        }
        for (&(signal, scope), &n) in &self.counters {
            writeln!(
                out,
                "{{\"counter\":\"{}\",\"scope\":\"{}\",\"n\":{}}}",
                signal.name(),
                scope.render(),
                n
            )
            .unwrap();
        }
        for (&(signal, scope), h) in &self.hists {
            write!(
                out,
                "{{\"hist\":\"{}_ns\",\"scope\":\"{}\",\"count\":{},\"buckets\":[",
                signal.name().trim_end_matches("_ms"),
                scope.render(),
                h.count()
            )
            .unwrap();
            for (i, (b, n)) in h.nonzero_buckets().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "[{b},{n}]").unwrap();
            }
            out.push_str("]}\n");
        }
        for &(time, node, seq) in &self.events {
            writeln!(
                out,
                "{{\"t_ns\":{},\"signal\":\"events\",\"node\":{},\"seq\":{}}}",
                time.as_nanos(),
                node.0,
                seq
            )
            .unwrap();
        }
        out
    }
}

/// JSON number formatting: Rust's shortest-round-trip `Display`, with
/// non-finite values mapped to `null` (they never arise from well-formed
/// probes, but a sidecar must stay parseable regardless).
fn fmt_json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The sink every [`Context`](crate::node::Context) carries. All methods
/// default to no-ops so [`Off`] is a zero-cost implementation; probe
/// sites additionally guard on a cached [`TelemetrySink::is_enabled`]
/// so a disabled sink costs one predictable branch per probe.
pub trait TelemetrySink {
    /// Whether probes should bother calling in. Cached per dispatch.
    fn is_enabled(&self) -> bool {
        false
    }

    /// A gauge observation at sim time `now`.
    fn sample(&mut self, _now: SimTime, _signal: Signal, _scope: Scope, _value: f64) {}

    /// A counter increment.
    fn count(&mut self, _signal: Signal, _scope: Scope, _delta: u64) {}

    /// One processed event, for the `events` signal.
    fn event(&mut self, _time: SimTime, _node: NodeId, _seq: u64) {}
}

/// The default sink: telemetry disabled, every probe a dead branch.
#[derive(Debug, Default, Clone, Copy)]
pub struct Off;

impl TelemetrySink for Off {}

/// A sink recording into a shared [`TelemetryHub`] — the handle half
/// stays with the harness for end-of-run extraction, mirroring the
/// `Metrics = Rc<RefCell<MetricsHub>>` idiom.
#[derive(Debug, Clone)]
pub struct Shared(pub Rc<RefCell<TelemetryHub>>);

impl TelemetrySink for Shared {
    fn is_enabled(&self) -> bool {
        true
    }

    fn sample(&mut self, now: SimTime, signal: Signal, scope: Scope, value: f64) {
        self.0.borrow_mut().sample(now, signal, scope, value);
    }

    fn count(&mut self, signal: Signal, scope: Scope, delta: u64) {
        self.0.borrow_mut().count(signal, scope, delta);
    }

    fn event(&mut self, time: SimTime, node: NodeId, seq: u64) {
        self.0.borrow_mut().event(time, node, seq);
    }
}

/// A fresh shared hub for `cfg`; install the sink half with
/// [`Simulator::set_telemetry`](crate::sim::Simulator::set_telemetry):
///
/// ```
/// use netsim::sim::Simulator;
/// use netsim::telemetry::{new_hub, Shared, TelemetryConfig};
///
/// let hub = new_hub(TelemetryConfig::default());
/// let mut sim = Simulator::new();
/// sim.set_telemetry(Box::new(Shared(hub.clone())));
/// // … run …
/// let sidecar = hub.borrow().render_jsonl();
/// assert!(sidecar.starts_with("{\"schema\":\"abc-telemetry/v1\""));
/// ```
pub fn new_hub(cfg: TelemetryConfig) -> Rc<RefCell<TelemetryHub>> {
    Rc::new(RefCell::new(TelemetryHub::new(cfg)))
}

/// Packet-pool traffic counters, kept unconditionally by the simulator
/// (two integer increments per packet — no observable output unless the
/// profiler reads them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `Context::boxed` served from the recycled-box pool.
    pub hits: u64,
    /// `Context::boxed` had to heap-allocate.
    pub misses: u64,
}

impl PoolStats {
    /// Pool hit rate in `[0, 1]`; `1.0` when no allocations happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Event-loop dispatch phases the profiler attributes wall time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Singleton `Deliver` dispatch.
    Deliver,
    /// Singleton `Timer` dispatch.
    Timer,
    /// Batched same-instant `Deliver` dispatch (`handle_batch`).
    Batch,
}

/// Opt-in wall-clock profiler for [`Simulator::run_until`]
/// (see [`Simulator::enable_profiler`]).
///
/// Everything here is host wall time — useful for explaining a bench
/// number, excluded by contract from any deterministic artifact.
///
/// [`Simulator::run_until`]: crate::sim::Simulator::run_until
/// [`Simulator::enable_profiler`]: crate::sim::Simulator::enable_profiler
#[derive(Debug)]
pub struct Profiler {
    started: std::time::Instant,
    deliver_ns: u64,
    deliver_events: u64,
    timer_ns: u64,
    timer_events: u64,
    batch_ns: u64,
    batch_events: u64,
    batches: u64,
    occ_samples: u64,
    occ_near: u64,
    occ_slots: u64,
    occ_overflow: u64,
    dispatch_ns_hist: LogHistogram,
}

impl Profiler {
    /// A profiler whose wall clock starts now.
    pub fn new() -> Self {
        Profiler {
            started: std::time::Instant::now(),
            deliver_ns: 0,
            deliver_events: 0,
            timer_ns: 0,
            timer_events: 0,
            batch_ns: 0,
            batch_events: 0,
            batches: 0,
            occ_samples: 0,
            occ_near: 0,
            occ_slots: 0,
            occ_overflow: 0,
            dispatch_ns_hist: LogHistogram::new(),
        }
    }

    /// Attribute `ns` of wall time covering `events` events to `phase`.
    pub fn note_dispatch(&mut self, phase: Phase, events: u64, ns: u64) {
        match phase {
            Phase::Deliver => {
                self.deliver_ns += ns;
                self.deliver_events += events;
            }
            Phase::Timer => {
                self.timer_ns += ns;
                self.timer_events += events;
            }
            Phase::Batch => {
                self.batch_ns += ns;
                self.batch_events += events;
                self.batches += 1;
            }
        }
        self.dispatch_ns_hist.record(ns);
    }

    /// Record an event-queue occupancy observation
    /// (near heap / wheel slots / overflow heap).
    pub fn note_occupancy(&mut self, near: usize, slots: usize, overflow: usize) {
        self.occ_samples += 1;
        self.occ_near += near as u64;
        self.occ_slots += slots as u64;
        self.occ_overflow += overflow as u64;
    }

    /// Snapshot a report; `pool` comes from the simulator's counters.
    pub fn report(&self, pool: PoolStats) -> ProfileReport {
        let wall_secs = self.started.elapsed().as_secs_f64();
        let events = self.deliver_events + self.timer_events + self.batch_events;
        let occ = |sum: u64| {
            if self.occ_samples == 0 {
                0.0
            } else {
                sum as f64 / self.occ_samples as f64
            }
        };
        ProfileReport {
            wall_secs,
            events,
            events_per_wall_sec: if wall_secs > 0.0 {
                events as f64 / wall_secs
            } else {
                0.0
            },
            deliver_ns: self.deliver_ns,
            deliver_events: self.deliver_events,
            timer_ns: self.timer_ns,
            timer_events: self.timer_events,
            batch_ns: self.batch_ns,
            batch_events: self.batch_events,
            batches: self.batches,
            avg_near: occ(self.occ_near),
            avg_slots: occ(self.occ_slots),
            avg_overflow: occ(self.occ_overflow),
            pool,
            dispatch_ns_hist: self.dispatch_ns_hist.clone(),
        }
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

/// End-of-run event-loop profile (see [`Profiler`]). Wall-clock only;
/// by contract never part of a results store or sidecar.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Wall seconds from profiler creation to the report snapshot.
    pub wall_secs: f64,
    /// Events dispatched while profiled.
    pub events: u64,
    /// Events per wall second.
    pub events_per_wall_sec: f64,
    /// Wall ns in singleton `Deliver` dispatch.
    pub deliver_ns: u64,
    /// Events dispatched as singleton `Deliver`s.
    pub deliver_events: u64,
    /// Wall ns in singleton `Timer` dispatch.
    pub timer_ns: u64,
    /// Events dispatched as singleton `Timer`s.
    pub timer_events: u64,
    /// Wall ns in batched dispatch.
    pub batch_ns: u64,
    /// Events dispatched inside batches.
    pub batch_events: u64,
    /// Number of batched dispatches.
    pub batches: u64,
    /// Mean near-heap occupancy over the sampled checkpoints.
    pub avg_near: f64,
    /// Mean wheel-slot occupancy over the sampled checkpoints.
    pub avg_slots: f64,
    /// Mean overflow-heap occupancy over the sampled checkpoints.
    pub avg_overflow: f64,
    /// Packet-pool traffic counters.
    pub pool: PoolStats,
    /// Wall-ns-per-dispatch distribution.
    pub dispatch_ns_hist: LogHistogram,
}

impl ProfileReport {
    /// Fraction of attributed dispatch time spent in `phase`.
    pub fn phase_frac(&self, phase: Phase) -> f64 {
        let total = (self.deliver_ns + self.timer_ns + self.batch_ns) as f64;
        if total == 0.0 {
            return 0.0;
        }
        let ns = match phase {
            Phase::Deliver => self.deliver_ns,
            Phase::Timer => self.timer_ns,
            Phase::Batch => self.batch_ns,
        };
        ns as f64 / total
    }

    /// Structured, human-readable end-of-run report.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "# event-loop profile (wall clock — not a store artifact)"
        )
        .unwrap();
        writeln!(
            out,
            "events: {} in {:.3}s wall = {:.2} Mev/s",
            self.events,
            self.wall_secs,
            self.events_per_wall_sec / 1e6
        )
        .unwrap();
        let phase = |name: &str, ns: u64, ev: u64, frac: f64| {
            format!(
                "  {name:<8} {:>8.1} ms ({:>5.1}%) over {ev} events",
                ns as f64 / 1e6,
                frac * 100.0
            )
        };
        writeln!(
            out,
            "{}",
            phase(
                "deliver",
                self.deliver_ns,
                self.deliver_events,
                self.phase_frac(Phase::Deliver)
            )
        )
        .unwrap();
        writeln!(
            out,
            "{}",
            phase(
                "timer",
                self.timer_ns,
                self.timer_events,
                self.phase_frac(Phase::Timer)
            )
        )
        .unwrap();
        writeln!(
            out,
            "{} in {} batches",
            phase(
                "batch",
                self.batch_ns,
                self.batch_events,
                self.phase_frac(Phase::Batch)
            ),
            self.batches
        )
        .unwrap();
        writeln!(
            out,
            "wheel occupancy (mean): near {:.1} / slots {:.1} / overflow {:.1}",
            self.avg_near, self.avg_slots, self.avg_overflow
        )
        .unwrap();
        writeln!(
            out,
            "packet pool: {} hits / {} misses ({:.1}% hit rate)",
            self.pool.hits,
            self.pool.misses,
            self.pool.hit_rate() * 100.0
        )
        .unwrap();
        if let Some(p50) = self.dispatch_ns_hist.quantile_upper(0.5) {
            writeln!(
                out,
                "dispatch wall ns: p50 ≤ {} / p99 ≤ {}",
                p50,
                self.dispatch_ns_hist.quantile_upper(0.99).unwrap_or(0)
            )
            .unwrap();
        }
        out
    }

    /// Context key/values for embedding next to bench metrics. None of
    /// these keys end in `_per_sec` or `_ns_per_op`, so `bench-diff`
    /// treats them as context, never as gated metrics.
    pub fn context_kv(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("profile_deliver_frac", self.phase_frac(Phase::Deliver)),
            ("profile_timer_frac", self.phase_frac(Phase::Timer)),
            ("profile_batch_frac", self.phase_frac(Phase::Batch)),
            ("profile_pool_hit_rate", self.pool.hit_rate()),
            ("profile_wheel_near_avg", self.avg_near),
            ("profile_wheel_overflow_avg", self.avg_overflow),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn off_sink_reports_disabled() {
        let sink = Off;
        assert!(!sink.is_enabled());
    }

    #[test]
    fn hub_filters_unselected_signals() {
        let cfg = TelemetryConfig::from_names(&["cwnd"]).unwrap();
        let mut hub = TelemetryHub::new(cfg);
        hub.sample(t(0), Signal::Cwnd, Scope::Flow(1), 10.0);
        hub.sample(t(0), Signal::QdelayMs, Scope::Link("x"), 3.0);
        hub.count(Signal::RtoArm, Scope::Flow(1), 1);
        assert_eq!(hub.samples_len(), 1);
        assert!(hub.counters.is_empty());
    }

    #[test]
    fn cadence_decimates_gauges_per_series() {
        let cfg = TelemetryConfig::default().with_sample_every(SimDuration::from_millis(10));
        let mut hub = TelemetryHub::new(cfg);
        for ms in 0..30 {
            hub.sample(t(ms), Signal::Cwnd, Scope::Flow(1), ms as f64);
            hub.sample(t(ms), Signal::Cwnd, Scope::Flow(2), ms as f64);
        }
        // each series keeps t=0,10,20
        assert_eq!(hub.samples_len(), 6);
    }

    #[test]
    fn histogrammed_signals_survive_decimation() {
        let cfg = TelemetryConfig::default().with_sample_every(SimDuration::from_secs(1));
        let mut hub = TelemetryHub::new(cfg);
        for ms in 0..100 {
            hub.sample(t(ms), Signal::QdelayMs, Scope::Link("b"), 1.0);
        }
        assert_eq!(hub.samples_len(), 1); // decimated to one row
        let h = &hub.hists[&(Signal::QdelayMs, Scope::Link("b"))];
        assert_eq!(h.count(), 100); // histogram saw everything
    }

    #[test]
    fn sidecar_header_is_first_and_schema_versioned() {
        let mut hub = TelemetryHub::new(TelemetryConfig::default());
        hub.sample(t(1), Signal::Cwnd, Scope::Flow(0), 4.0);
        hub.count(Signal::RtoFire, Scope::Flow(0), 2);
        let jsonl = hub.render_jsonl();
        let first = jsonl.lines().next().unwrap();
        assert!(first.contains("\"schema\":\"abc-telemetry/v1\""));
        assert!(first.contains("\"signals\":["));
        assert!(jsonl.contains("\"signal\":\"cwnd\""));
        assert!(jsonl.contains("\"counter\":\"rto_fire\""));
    }

    #[test]
    fn sidecar_is_reproducible() {
        let build = || {
            let mut hub = TelemetryHub::new(TelemetryConfig::default());
            for ms in 0..50 {
                hub.sample(t(ms), Signal::Cwnd, Scope::Flow(0), (ms as f64).sqrt());
                hub.sample(t(ms), Signal::QdelayMs, Scope::Link("b"), ms as f64 * 0.3);
            }
            hub.count(Signal::RtoArm, Scope::Flow(0), 7);
            hub.render_jsonl()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn signal_names_round_trip() {
        for s in Signal::ALL {
            assert_eq!(Signal::from_name(s.name()), Some(s));
        }
        assert_eq!(Signal::from_name("bogus"), None);
    }

    #[test]
    fn log_histogram_buckets_powers_of_two() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(3);
        h.record(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile_upper(0.0), Some(0));
        assert_eq!(h.quantile_upper(1.0), Some(LogHistogram::bucket_upper(10)));
    }

    #[test]
    fn profile_report_phase_fracs_sum_to_one() {
        let mut p = Profiler::new();
        p.note_dispatch(Phase::Deliver, 1, 100);
        p.note_dispatch(Phase::Timer, 1, 200);
        p.note_dispatch(Phase::Batch, 4, 700);
        p.note_occupancy(3, 10, 1);
        let r = p.report(PoolStats { hits: 9, misses: 1 });
        let sum =
            r.phase_frac(Phase::Deliver) + r.phase_frac(Phase::Timer) + r.phase_frac(Phase::Batch);
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(r.events, 6);
        assert!((r.pool.hit_rate() - 0.9).abs() < 1e-12);
        assert!(r.render().contains("event-loop profile"));
        for (k, _) in r.context_kv() {
            assert!(!k.ends_with("_per_sec") && !k.ends_with("_ns_per_op"));
        }
    }
}
