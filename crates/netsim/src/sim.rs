//! The simulator: node registry, virtual clock, and the run loop.

use crate::event::{EventKind, EventQueue};
use crate::node::{Context, Effect, PACKET_POOL_CAP};
use crate::packet::{NodeId, Packet};
use crate::telemetry::{
    new_hub, Off, Phase, PoolStats, ProfileReport, Profiler, Scope, Shared, Signal,
    TelemetryConfig, TelemetryHub, TelemetrySink,
};
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// A deterministic discrete-event simulator.
///
/// ```
/// use netsim::sim::Simulator;
/// use netsim::node::{Context, Node};
/// use netsim::event::EventKind;
/// use netsim::time::{SimDuration, SimTime};
///
/// struct Ticker { fired: u32 }
/// impl Node for Ticker {
///     netsim::impl_node_downcast!();
///     fn start(&mut self, ctx: &mut Context) {
///         ctx.set_timer(SimDuration::from_millis(10), 0);
///     }
///     fn handle(&mut self, ctx: &mut Context, ev: EventKind) {
///         if let EventKind::Timer(_) = ev {
///             self.fired += 1;
///             if self.fired < 5 {
///                 ctx.set_timer(SimDuration::from_millis(10), 0);
///             }
///         }
///     }
/// }
///
/// let mut sim = Simulator::new();
/// sim.add_node(Box::new(Ticker { fired: 0 }));
/// sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
/// // five ticks processed, then the clock idles forward to the deadline
/// assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(1));
/// assert_eq!(sim.events_processed(), 5);
/// ```
pub struct Simulator {
    clock: SimTime,
    queue: EventQueue,
    nodes: Vec<Option<Box<dyn Node>>>,
    started: bool,
    scratch: Vec<Effect>,
    next_seq: u64,
    // Boxes are the pooled resource itself (reused Deliver allocations),
    // not an indirection — hence the suppressed lint.
    #[allow(clippy::vec_box)]
    pool: Vec<Box<Packet>>,
    events_processed: u64,
    /// FNV-1a over the `(time, node, kind)` sequence of processed events —
    /// a cheap always-on order witness for determinism tests.
    fingerprint: u64,
    /// Packet-pool hit/miss counters (always on; read by the profiler).
    pool_stats: PoolStats,
    /// Snapshot of `pool_stats` at the last telemetry counter flush, so
    /// repeated `run_until` calls emit deltas, not running totals.
    pool_flushed: PoolStats,
    /// The telemetry sink probes record through; [`Off`] by default.
    telemetry: Box<dyn TelemetrySink>,
    /// `telemetry.is_enabled()`, cached at install time so per-event
    /// accounting pays one predictable branch, not a virtual call.
    telemetry_on: bool,
    /// Hub backing the deprecated `enable_event_trace` wrapper.
    legacy_trace: Option<Rc<RefCell<TelemetryHub>>>,
    /// Opt-in wall-clock event-loop profiler.
    profiler: Option<Profiler>,
    /// Cooperative run budgets; all `None` by default (no overhead
    /// beyond one predictable branch per event).
    guards: RunGuards,
    /// Set when a guard trips; sticky until [`Simulator::set_guards`].
    aborted: Option<AbortReason>,
}

/// Cooperative budgets for [`Simulator::run_until`]: the event loop
/// checks them between events (its only cancellation point) and stops
/// early when one trips, recording an [`AbortReason`]. This is how the
/// campaign runner's watchdog cancels a runaway or livelocked scenario
/// without killing the process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunGuards {
    /// Stop once this many events have been processed (lifetime total).
    pub max_events: Option<u64>,
    /// Stop once this much wall-clock time has elapsed since the current
    /// `run_until` call began. Polled every 4096 events, so enforcement
    /// lags by at most one poll interval.
    pub max_wall_time: Option<std::time::Duration>,
}

impl RunGuards {
    /// True when at least one budget is set.
    pub fn active(&self) -> bool {
        self.max_events.is_some() || self.max_wall_time.is_some()
    }
}

/// Why a guarded run stopped early. [`AbortReason::describe`] names the
/// *budget*, never the elapsed amount, so the message is deterministic
/// and safe to write into a results store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The [`RunGuards::max_events`] budget was exhausted.
    MaxEvents(u64),
    /// The [`RunGuards::max_wall_time`] budget was exhausted.
    WallClock(std::time::Duration),
}

impl AbortReason {
    /// Deterministic human-readable form (budget, not elapsed time).
    pub fn describe(&self) -> String {
        match self {
            AbortReason::MaxEvents(n) => {
                format!("exceeded event budget of {n} events")
            }
            AbortReason::WallClock(d) => {
                format!("exceeded wall-clock budget of {}s", d.as_secs_f64())
            }
        }
    }
}

use crate::node::Node;

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// One-multiply word mix (xorshift-multiply): fast enough to run on every
/// event, strong enough that any reordering flips the final fingerprint.
#[inline]
fn fnv_mix(h: u64, x: u64) -> u64 {
    let mut v = h ^ x;
    v = v.wrapping_mul(0x9E3779B97F4A7C15);
    v ^ (v >> 29)
}

impl Simulator {
    /// A simulator at time zero with an empty default event queue.
    pub fn new() -> Self {
        Self::with_queue(EventQueue::new())
    }

    /// A simulator driven by the pre-wheel reference heap — for golden
    /// pop-order tests that pin the wheel against the original ordering.
    pub fn new_with_reference_queue() -> Self {
        Self::with_queue(EventQueue::new_reference())
    }

    /// A simulator whose timer wheel uses `2^shift` ns slots (see
    /// [`EventQueue::with_slot_shift`]). Pop order — and therefore every
    /// simulation output — is identical at any width; wider slots
    /// amortize cursor advances under µs-dense event storms.
    pub fn with_slot_shift(shift: u32) -> Self {
        Self::with_queue(EventQueue::with_slot_shift(shift))
    }

    fn with_queue(queue: EventQueue) -> Self {
        Simulator {
            clock: SimTime::ZERO,
            queue,
            nodes: Vec::new(),
            started: false,
            scratch: Vec::new(),
            next_seq: 0,
            pool: Vec::new(),
            events_processed: 0,
            fingerprint: FNV_OFFSET,
            pool_stats: PoolStats::default(),
            pool_flushed: PoolStats::default(),
            telemetry: Box::new(Off),
            telemetry_on: false,
            legacy_trace: None,
            profiler: None,
            guards: RunGuards::default(),
            aborted: None,
        }
    }

    /// Register a node; the returned id is how packets route to it.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        id
    }

    /// Reserve an id before the node exists — lets topologies with cycles
    /// (sender → … → sender) build routes first and install nodes after.
    pub fn reserve_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(None);
        id
    }

    /// Install a node into a reserved slot.
    ///
    /// # Panics
    /// If the slot is already occupied.
    pub fn install_node(&mut self, id: NodeId, node: Box<dyn Node>) {
        let slot = &mut self.nodes[id.0 as usize];
        assert!(slot.is_none(), "node slot {id:?} already installed");
        *slot = Some(node);
    }

    /// The current simulation clock.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Total events handled since construction.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Order witness: FNV-1a over every processed `(time, node, kind)`.
    /// Two runs that processed the same events in the same order agree.
    pub fn events_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Install a telemetry sink; probes in every node's `Context` and the
    /// per-event accounting record through it from now on. Installing
    /// [`Off`] (the default) disables telemetry again.
    pub fn set_telemetry(&mut self, sink: Box<dyn TelemetrySink>) {
        self.telemetry_on = sink.is_enabled();
        self.telemetry = sink;
    }

    /// Start the wall-clock event-loop profiler (see
    /// [`Simulator::profile_report`]). Wall time is host-dependent by
    /// nature: profiles explain bench numbers and are never part of a
    /// deterministic artifact.
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(Profiler::new());
    }

    /// Snapshot the profiler's report, or `None` when
    /// [`Simulator::enable_profiler`] was never called.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.profiler.as_ref().map(|p| p.report(self.pool_stats))
    }

    /// Packet-pool hit/miss counters (always maintained).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool_stats
    }

    /// Start recording `(time, node, seq)` for every processed event.
    #[deprecated(note = "use `set_telemetry` with a hub selecting the `events` signal")]
    pub fn enable_event_trace(&mut self) {
        let cfg = TelemetryConfig {
            signals: vec![Signal::Events],
            sample_every: SimDuration::ZERO,
        };
        let hub = new_hub(cfg);
        self.set_telemetry(Box::new(Shared(hub.clone())));
        self.legacy_trace = Some(hub);
    }

    /// Take the recorded event trace (empty unless
    /// [`Simulator::enable_event_trace`] was called before running).
    #[deprecated(note = "use `set_telemetry` and read the hub's `events` rows instead")]
    pub fn take_event_trace(&mut self) -> Vec<(SimTime, NodeId, u64)> {
        match self.legacy_trace.take() {
            Some(hub) => {
                self.set_telemetry(Box::new(Off));
                hub.borrow_mut().take_events()
            }
            None => Vec::new(),
        }
    }

    fn start_all(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            if let Some(mut node) = self.nodes[i].take() {
                {
                    let mut ctx = Context::new(
                        self.clock,
                        id,
                        &mut self.scratch,
                        &mut self.next_seq,
                        &mut self.pool,
                        &mut self.pool_stats,
                        &mut *self.telemetry,
                    );
                    node.start(&mut ctx);
                }
                self.nodes[i] = Some(node);
                self.flush_scratch();
            }
        }
    }

    fn flush_scratch(&mut self) {
        for effect in self.scratch.drain(..) {
            match effect {
                Effect::Schedule {
                    time,
                    node,
                    kind,
                    seq,
                } => self.queue.push_with_seq(time, node, kind, seq),
                Effect::Cancel(seq) => self.queue.cancel(seq),
            }
        }
    }

    /// Per-event accounting: the processed-event counter, the order
    /// fingerprint, and the optional trace. Runs for every event exactly
    /// when it is popped, so batched dispatch is indistinguishable from
    /// one-at-a-time dispatch to every order witness.
    fn account(&mut self, time: SimTime, node: NodeId, kind: &EventKind, seq: u64) {
        self.events_processed += 1;
        let mut h = fnv_mix(self.fingerprint, time.as_nanos());
        h = fnv_mix(h, node.0 as u64);
        h = match kind {
            EventKind::Timer(tok) => fnv_mix(fnv_mix(h, 1), *tok),
            EventKind::Deliver(p) => fnv_mix(fnv_mix(fnv_mix(h, 2), p.flow.0 as u64), p.seq),
        };
        self.fingerprint = h;
        if self.telemetry_on {
            self.telemetry.event(time, node, seq);
        }
    }

    /// Run until the clock reaches `deadline` (events at exactly `deadline`
    /// are processed) or the event queue drains, whichever is first.
    ///
    /// Adjacent same-instant `Deliver` events to one node are dispatched
    /// as a single [`Node::handle_batch`] call. This is order-equivalent
    /// to one-at-a-time dispatch: batch members were already queued ahead
    /// of anything a batch handler can schedule (new effects always get
    /// higher sequence numbers at times ≥ now), and `Deliver` events can
    /// never be cancelled, so nothing a handler does can invalidate or
    /// reorder the collected batch.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_all();
        let guards_active = self.guards.active() || self.aborted.is_some();
        let run_start = std::time::Instant::now();
        let mut batch: Vec<EventKind> = Vec::new();
        while let Some(ev) = self.queue.pop_before(deadline) {
            if guards_active && self.guard_tripped(run_start) {
                // The popped event is discarded: an aborted run's results
                // are never reported, only the abort reason.
                if let EventKind::Deliver(b) = ev.kind {
                    if self.pool.len() < PACKET_POOL_CAP {
                        self.pool.push(b);
                    }
                }
                return;
            }
            debug_assert!(ev.time >= self.clock, "event queue time went backwards");
            self.clock = ev.time;
            let (time, node_id) = (ev.time, ev.node);
            self.account(time, node_id, &ev.kind, ev.seq());
            let idx = node_id.0 as usize;
            // Take the node out so the handler can't alias the registry.
            // A missing node (reserved but never installed) drops the event.
            if let Some(mut node) = self.nodes.get_mut(idx).and_then(Option::take) {
                // Wall-clock instrumentation only when the profiler is on:
                // the disabled path pays one branch per dispatch.
                let prof_t0 = self.profiler.as_ref().map(|_| std::time::Instant::now());
                let mut phase = match ev.kind {
                    EventKind::Timer(_) => Phase::Timer,
                    EventKind::Deliver(_) => Phase::Deliver,
                };
                let mut dispatched: u64 = 1;
                // One peek decides singleton vs batch; the common
                // singleton case dispatches directly, no Vec traffic.
                match self.queue.pop_if_deliver_matching(time, node_id) {
                    None => {
                        let mut ctx = Context::new(
                            self.clock,
                            node_id,
                            &mut self.scratch,
                            &mut self.next_seq,
                            &mut self.pool,
                            &mut self.pool_stats,
                            &mut *self.telemetry,
                        );
                        node.handle(&mut ctx, ev.kind);
                    }
                    Some(second) => {
                        phase = Phase::Batch;
                        dispatched = 2;
                        self.account(time, node_id, &second.kind, second.seq());
                        batch.clear();
                        batch.push(ev.kind);
                        batch.push(second.kind);
                        while let Some(next) = self.queue.pop_if_deliver_matching(time, node_id) {
                            self.account(time, node_id, &next.kind, next.seq());
                            batch.push(next.kind);
                            dispatched += 1;
                        }
                        let mut ctx = Context::new(
                            self.clock,
                            node_id,
                            &mut self.scratch,
                            &mut self.next_seq,
                            &mut self.pool,
                            &mut self.pool_stats,
                            &mut *self.telemetry,
                        );
                        node.handle_batch(&mut ctx, &mut batch);
                        debug_assert!(batch.is_empty(), "handle_batch must drain the batch");
                    }
                }
                self.nodes[idx] = Some(node);
                self.flush_scratch();
                if let (Some(p), Some(t0)) = (&mut self.profiler, prof_t0) {
                    p.note_dispatch(phase, dispatched, t0.elapsed().as_nanos() as u64);
                }
                // Occupancy checkpoint every 1024 processed events. The
                // checkpoint schedule is a pure function of the event
                // count, so the `wheel_*` counters are deterministic.
                if (self.profiler.is_some() || self.telemetry_on)
                    && self.events_processed & 0x3ff == 0
                {
                    let (near, slots, overflow) = self.queue.occupancy();
                    if let Some(p) = &mut self.profiler {
                        p.note_occupancy(near, slots, overflow);
                    }
                    if self.telemetry_on {
                        self.telemetry
                            .count(Signal::WheelNear, Scope::Global, near as u64);
                        self.telemetry
                            .count(Signal::WheelSlots, Scope::Global, slots as u64);
                        self.telemetry
                            .count(Signal::WheelOverflow, Scope::Global, overflow as u64);
                        self.telemetry.count(Signal::WheelSamples, Scope::Global, 1);
                    }
                }
            } else if let EventKind::Deliver(b) = ev.kind {
                if self.pool.len() < PACKET_POOL_CAP {
                    self.pool.push(b);
                }
            }
        }
        // Flush packet-pool deltas into the pool_hit/pool_miss counters.
        // Not reached on the guard-abort path above: an aborted run
        // reports nothing but its abort reason.
        if self.telemetry_on {
            let hits = self.pool_stats.hits - self.pool_flushed.hits;
            let misses = self.pool_stats.misses - self.pool_flushed.misses;
            if hits > 0 {
                self.telemetry.count(Signal::PoolHit, Scope::Global, hits);
            }
            if misses > 0 {
                self.telemetry
                    .count(Signal::PoolMiss, Scope::Global, misses);
            }
            self.pool_flushed = self.pool_stats;
        }
        // Advance the clock to the deadline even if we idled out early.
        if self.clock < deadline {
            self.clock = deadline;
        }
    }

    /// Install cooperative run budgets (see [`RunGuards`]) and clear any
    /// previous abort.
    pub fn set_guards(&mut self, guards: RunGuards) {
        self.guards = guards;
        self.aborted = None;
    }

    /// Why the last guarded run stopped early, if it did. Sticky across
    /// `run_until` calls until guards are (re)installed.
    pub fn aborted(&self) -> Option<AbortReason> {
        self.aborted
    }

    /// Check budgets between events; sets [`Simulator::aborted`] and
    /// returns true when one trips. Wall clock is polled every 4096
    /// events so the common path stays syscall-free.
    fn guard_tripped(&mut self, run_start: std::time::Instant) -> bool {
        if self.aborted.is_some() {
            return true;
        }
        if let Some(max) = self.guards.max_events {
            if self.events_processed >= max {
                self.aborted = Some(AbortReason::MaxEvents(max));
                return true;
            }
        }
        if let Some(budget) = self.guards.max_wall_time {
            if self.events_processed & 0xfff == 0 && run_start.elapsed() >= budget {
                self.aborted = Some(AbortReason::WallClock(budget));
                return true;
            }
        }
        false
    }

    /// Run for `dur` of simulated time from the current clock.
    pub fn run_for(&mut self, dur: crate::time::SimDuration) {
        let deadline = self.clock + dur;
        self.run_until(deadline);
    }

    /// Access a node for post-run inspection (e.g. reading counters).
    /// Returns `None` for reserved-but-empty slots.
    pub fn node(&self, id: NodeId) -> Option<&dyn Node> {
        self.nodes.get(id.0 as usize).and_then(|n| n.as_deref())
    }

    /// Mutable access, for test scaffolding.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Box<dyn Node>> {
        self.nodes.get_mut(id.0 as usize).and_then(|n| n.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Ecn, Feedback, FlowId, Packet, Route};
    use crate::time::SimDuration;

    /// Bounces a counter packet back and forth with a peer.
    struct PingPong {
        peer: Option<NodeId>,
        received: u32,
        limit: u32,
    }

    impl Node for PingPong {
        crate::impl_node_downcast!();

        fn start(&mut self, ctx: &mut Context) {
            if let Some(peer) = self.peer {
                let route = Route::new(vec![(peer, SimDuration::from_millis(5))]);
                let pkt = Packet {
                    flow: FlowId(0),
                    seq: 0,
                    size: 100,
                    ecn: Ecn::NotEct,
                    feedback: Feedback::None,
                    abc_capable: false,
                    sent_at: ctx.now(),
                    retransmit: false,
                    ack: None,
                    route,
                    hop: 0,
                    enqueued_at: ctx.now(),
                };
                ctx.forward(pkt);
            }
        }

        fn handle(&mut self, ctx: &mut Context, ev: EventKind) {
            if let EventKind::Deliver(pkt) = ev {
                self.received += 1;
                if self.received < self.limit {
                    // send it back to whoever it came from via a fresh route
                    let from = if let Some(peer) = self.peer {
                        peer
                    } else {
                        // responder learns the peer from the packet's route origin:
                        // route carried us as the only hop; reply to flow origin
                        // is modeled by tests wiring both sides with peers.
                        return;
                    };
                    let mut reply = pkt;
                    reply.route = Route::new(vec![(from, SimDuration::from_millis(5))]);
                    reply.hop = 0;
                    ctx.forward_boxed(reply);
                }
            }
        }
    }

    #[test]
    fn ping_pong_advances_clock_by_propagation() {
        let mut sim = Simulator::new();
        let a = sim.reserve_node();
        let b = sim.reserve_node();
        sim.install_node(
            a,
            Box::new(PingPong {
                peer: Some(b),
                received: 0,
                limit: 3,
            }),
        );
        sim.install_node(
            b,
            Box::new(PingPong {
                peer: Some(a),
                received: 0,
                limit: 3,
            }),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        // a starts -> b (5ms). b replies -> a (10ms). a replies -> b (15ms)...
        // each side also fires its own start packet; just sanity-check time
        // advanced in 5ms multiples and the sim terminated.
        assert!(sim.now() == SimTime::ZERO + SimDuration::from_secs(1));
        assert!(sim.events_processed() >= 4);
    }

    #[test]
    fn run_until_is_resumable() {
        struct T {
            count: u32,
        }
        impl Node for T {
            crate::impl_node_downcast!();

            fn start(&mut self, ctx: &mut Context) {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
            fn handle(&mut self, ctx: &mut Context, _: EventKind) {
                self.count += 1;
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
        let mut sim = Simulator::new();
        let id = sim.add_node(Box::new(T { count: 0 }));
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(35));
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(100));
        // timers at 10,20,...,100 → 10 firings
        let t: &T = sim
            .node(id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        assert_eq!(t.count, 10);
    }

    #[test]
    fn deadline_without_events_advances_clock() {
        let mut sim = Simulator::new();
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(5));
    }

    #[test]
    fn cancelled_timer_never_fires() {
        struct T {
            fired: u32,
        }
        impl Node for T {
            crate::impl_node_downcast!();
            fn start(&mut self, ctx: &mut Context) {
                let id = ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.cancel_timer(id);
            }
            fn handle(&mut self, _ctx: &mut Context, ev: EventKind) {
                if let EventKind::Timer(tok) = ev {
                    assert_eq!(tok, 2, "cancelled timer fired");
                    self.fired += 1;
                }
            }
        }
        let mut sim = Simulator::new();
        let id = sim.add_node(Box::new(T { fired: 0 }));
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        let t: &T = sim
            .node(id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        assert_eq!(t.fired, 1);
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn fingerprint_is_stable_across_runs() {
        let run = || {
            let mut sim = Simulator::new();
            let a = sim.reserve_node();
            let b = sim.reserve_node();
            sim.install_node(
                a,
                Box::new(PingPong {
                    peer: Some(b),
                    received: 0,
                    limit: 5,
                }),
            );
            sim.install_node(
                b,
                Box::new(PingPong {
                    peer: Some(a),
                    received: 0,
                    limit: 5,
                }),
            );
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
            sim.events_fingerprint()
        };
        assert_eq!(run(), run());
        assert_ne!(run(), FNV_OFFSET, "fingerprint never updated");
    }

    /// Re-arms a short timer forever: a livelocked node only a guard
    /// can stop.
    struct Spinner;

    impl Node for Spinner {
        crate::impl_node_downcast!();
        fn start(&mut self, ctx: &mut Context) {
            ctx.set_timer(SimDuration::from_nanos(1), 0);
        }
        fn handle(&mut self, ctx: &mut Context, _: EventKind) {
            ctx.set_timer(SimDuration::from_nanos(1), 0);
        }
    }

    #[test]
    fn max_events_guard_aborts_a_runaway_run() {
        let mut sim = Simulator::new();
        sim.add_node(Box::new(Spinner));
        sim.set_guards(RunGuards {
            max_events: Some(1000),
            max_wall_time: None,
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(3600));
        assert_eq!(sim.aborted(), Some(AbortReason::MaxEvents(1000)));
        assert_eq!(sim.events_processed(), 1000);
        assert_eq!(
            AbortReason::MaxEvents(1000).describe(),
            "exceeded event budget of 1000 events"
        );
    }

    #[test]
    fn wall_clock_guard_cancels_a_livelock() {
        let mut sim = Simulator::new();
        sim.add_node(Box::new(Spinner));
        sim.set_guards(RunGuards {
            max_events: None,
            max_wall_time: Some(std::time::Duration::from_millis(20)),
        });
        // One simulated hour of 1 ns self-timers would take minutes of
        // wall time; the guard must cut it off promptly.
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(3600));
        assert!(matches!(sim.aborted(), Some(AbortReason::WallClock(_))));
    }

    #[test]
    fn inactive_guards_change_nothing() {
        let run = |guarded: bool| {
            let mut sim = Simulator::new();
            let a = sim.reserve_node();
            let b = sim.reserve_node();
            sim.install_node(
                a,
                Box::new(PingPong {
                    peer: Some(b),
                    received: 0,
                    limit: 5,
                }),
            );
            sim.install_node(
                b,
                Box::new(PingPong {
                    peer: Some(a),
                    received: 0,
                    limit: 5,
                }),
            );
            if guarded {
                sim.set_guards(RunGuards::default());
            }
            sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
            assert_eq!(sim.aborted(), None);
            sim.events_fingerprint()
        };
        assert_eq!(run(false), run(true));
    }
}
