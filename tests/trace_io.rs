//! Mahimahi trace file round trips: the synthetic traces can be written to
//! disk in Mahimahi's format and parsed back without loss of information
//! (so the substitution for the paper's captures is file-compatible).

use abc_repro::cellular::{self, CellTrace};
use proptest::prelude::*;
use std::io::Cursor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// parse → write → parse is the identity on any well-formed Mahimahi
    /// trace: delivery opportunities and the repeat period are preserved.
    #[test]
    fn arbitrary_trace_round_trips_losslessly(
        first in 0u64..50,
        gaps in proptest::collection::vec(0u64..40, 1..120),
    ) {
        // cumulative-sum the gaps into a sorted timestamp list; zero gaps
        // produce the repeated timestamps the format allows (several
        // delivery opportunities in one millisecond)
        let mut t = first;
        let mut body = format!("{t}\n");
        for g in &gaps {
            t += g;
            body.push_str(&format!("{t}\n"));
        }
        let original = CellTrace::parse_mahimahi("prop", body.as_bytes()).unwrap();
        prop_assert_eq!(original.opportunities.len(), gaps.len() + 1);

        let mut written = Vec::new();
        original.write_mahimahi(&mut written).unwrap();
        let reparsed = CellTrace::parse_mahimahi("prop", Cursor::new(&written)).unwrap();

        prop_assert_eq!(&reparsed.opportunities, &original.opportunities);
        prop_assert_eq!(reparsed.period, original.period);
        prop_assert_eq!(&reparsed.name, &original.name);
        // a second write must reproduce the file byte-for-byte
        let mut rewritten = Vec::new();
        reparsed.write_mahimahi(&mut rewritten).unwrap();
        prop_assert_eq!(rewritten, written);
    }
}

#[test]
fn every_builtin_trace_round_trips_through_mahimahi_format() {
    for trace in cellular::all_builtin() {
        let mut buf = Vec::new();
        trace.write_mahimahi(&mut buf).unwrap();
        let parsed = CellTrace::parse_mahimahi(&trace.name, Cursor::new(&buf)).unwrap();
        // timestamps are quantized to ms by the format; counts must match
        // and every timestamp must agree at ms precision
        assert_eq!(
            parsed.opportunities.len(),
            trace.opportunities.len(),
            "{}: opportunity count changed",
            trace.name
        );
        for (a, b) in trace.opportunities.iter().zip(parsed.opportunities.iter()) {
            assert_eq!(
                a.as_nanos() / 1_000_000,
                b.as_nanos() / 1_000_000,
                "{}: timestamp mismatch",
                trace.name
            );
        }
        // the parsed trace must drive a link (mean rate within the ms
        // quantization tolerance)
        let rel =
            (parsed.mean_rate().mbps() - trace.mean_rate().mbps()).abs() / trace.mean_rate().mbps();
        assert!(rel < 0.02, "{}: mean rate drifted {rel:.4}", trace.name);
    }
}

#[test]
fn trace_file_on_disk_round_trips() {
    let dir = std::env::temp_dir().join("abc_repro_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("verizon1.pps");
    let trace = cellular::builtin("Verizon1").unwrap();
    {
        let f = std::fs::File::create(&path).unwrap();
        trace.write_mahimahi(std::io::BufWriter::new(f)).unwrap();
    }
    let f = std::fs::File::open(&path).unwrap();
    let parsed = CellTrace::parse_mahimahi("Verizon1", std::io::BufReader::new(f)).unwrap();
    assert_eq!(parsed.opportunities.len(), trace.opportunities.len());
    std::fs::remove_file(&path).ok();
}

#[test]
fn parsed_trace_runs_in_simulator() {
    use abc_repro::experiments::{CellScenario, LinkSpec, Scheme};
    use abc_repro::netsim::time::SimDuration;

    let trace = cellular::builtin("ATT2").unwrap();
    let mut buf = Vec::new();
    trace.write_mahimahi(&mut buf).unwrap();
    let parsed = CellTrace::parse_mahimahi("ATT2", Cursor::new(&buf)).unwrap();
    let mut sc = CellScenario::new(Scheme::Abc, LinkSpec::Trace(parsed));
    sc.duration = SimDuration::from_secs(20);
    let r = sc.run();
    assert!(r.utilization > 0.3, "{}", r.row());
}
