//! Queueing disciplines.
//!
//! A [`Qdisc`] owns the buffered packets at a link and decides what to drop
//! (on enqueue or dequeue), what to mark (ECN / accel-brake / explicit
//! feedback headers), and — for multi-queue disciplines — what to serve
//! next. The link node drives it: `enqueue` on packet arrival, `dequeue`
//! when the link can transmit.

use crate::packet::Packet;
use crate::rate::Rate;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Counters every qdisc maintains for the metrics pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct QdiscStats {
    /// Packets accepted into the queue.
    pub enqueued_pkts: u64,
    /// Packets handed to the link for transmission.
    pub dequeued_pkts: u64,
    /// Packets rejected or discarded (tail drop / AQM drop).
    pub dropped_pkts: u64,
    /// Wire bytes handed to the link for transmission.
    pub dequeued_bytes: u64,
    /// Packets marked CE (legacy AQM in ECN mode).
    pub ce_marked: u64,
    /// Packets demoted Accelerate→Brake (ABC routers).
    pub braked: u64,
}

/// A queueing discipline at a link: buffers packets, decides drops and
/// marks, and picks the next departure. See the module docs for the
/// enqueue/dequeue driving contract.
pub trait Qdisc: std::any::Any {
    /// Downcast support (harnesses inspect concrete qdisc state mid-run).
    fn as_any_qdisc(&self) -> &dyn std::any::Any;

    /// Offer a packet to the queue at `now`. Returns `true` if the packet
    /// was accepted, `false` if it was dropped (tail drop / AQM drop).
    /// Implementations must stamp `pkt.enqueued_at = now` on accept.
    /// Packets stay boxed end to end, so queue churn moves pointers.
    fn enqueue(&mut self, pkt: Box<Packet>, now: SimTime) -> bool;

    /// Remove the next packet to transmit. AQMs may drop packets here
    /// (head drop) before returning one; marking (CE, accel→brake,
    /// explicit-feedback stamping) also happens here, at departure time.
    fn dequeue(&mut self, now: SimTime) -> Option<Box<Packet>>;

    /// Wire size of the packet `dequeue` would return, without effects.
    fn peek_size(&self) -> Option<u32>;

    /// Packets currently buffered.
    fn len_pkts(&self) -> usize;
    /// Wire bytes currently buffered.
    fn len_bytes(&self) -> u64;

    /// True when nothing is buffered.
    fn is_empty(&self) -> bool {
        self.len_pkts() == 0
    }

    /// Feed the current link capacity µ(t). Link nodes call this before
    /// each dequeue; control-law qdiscs (ABC, XCP, RCP, VCP) use it,
    /// passive ones ignore it.
    fn on_capacity(&mut self, _rate: Rate, _now: SimTime) {}

    /// Queuing delay of the head-of-line packet (the delay the *next*
    /// departing packet has experienced).
    fn head_sojourn(&self, now: SimTime) -> Option<SimDuration>;

    /// Lifetime counters for the metrics pipeline.
    fn stats(&self) -> QdiscStats;

    /// Control-law internals for the telemetry layer (token level, mark
    /// fraction, target rate). Passive qdiscs have none; ABC overrides
    /// this so the per-link probe site stays scheme-agnostic.
    fn control_signals(&self) -> Option<crate::telemetry::ControlSignals> {
        None
    }
}

/// Plain FIFO tail-drop queue with a byte or packet capacity limit.
///
/// The paper's cellular experiments use a 250-packet droptail buffer for
/// every end-to-end scheme.
pub struct DropTail {
    queue: VecDeque<Box<Packet>>,
    limit_pkts: usize,
    bytes: u64,
    stats: QdiscStats,
}

impl DropTail {
    /// A FIFO accepting at most `limit_pkts` buffered packets.
    pub fn new(limit_pkts: usize) -> Self {
        assert!(limit_pkts > 0, "zero-capacity queue");
        DropTail {
            queue: VecDeque::new(),
            limit_pkts,
            bytes: 0,
            stats: QdiscStats::default(),
        }
    }
}

impl Qdisc for DropTail {
    crate::impl_qdisc_downcast!();

    fn enqueue(&mut self, mut pkt: Box<Packet>, now: SimTime) -> bool {
        if self.queue.len() >= self.limit_pkts {
            self.stats.dropped_pkts += 1;
            return false;
        }
        pkt.enqueued_at = now;
        self.bytes += pkt.size as u64;
        self.queue.push_back(pkt);
        self.stats.enqueued_pkts += 1;
        true
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Box<Packet>> {
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size as u64;
        self.stats.dequeued_pkts += 1;
        self.stats.dequeued_bytes += pkt.size as u64;
        Some(pkt)
    }

    fn peek_size(&self) -> Option<u32> {
        self.queue.front().map(|p| p.size)
    }

    fn len_pkts(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn head_sojourn(&self, now: SimTime) -> Option<SimDuration> {
        self.queue.front().map(|p| now.since(p.enqueued_at))
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

#[cfg(test)]
pub(crate) fn test_packet(seq: u64, size: u32) -> Box<Packet> {
    use crate::packet::{Ecn, Feedback, FlowId, NodeId, Route};
    Box::new(Packet {
        flow: FlowId(0),
        seq,
        size,
        ecn: Ecn::NotEct,
        feedback: Feedback::None,
        abc_capable: false,
        sent_at: SimTime::ZERO,
        retransmit: false,
        ack: None,
        route: Route::new(vec![(NodeId(0), SimDuration::ZERO)]),
        hop: 0,
        enqueued_at: SimTime::ZERO,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTail::new(10);
        for i in 0..5 {
            assert!(q.enqueue(test_packet(i, 1500), at(i)));
        }
        for i in 0..5 {
            assert_eq!(q.dequeue(at(10)).unwrap().seq, i);
        }
        assert!(q.dequeue(at(10)).is_none());
    }

    #[test]
    fn tail_drop_at_limit() {
        let mut q = DropTail::new(2);
        assert!(q.enqueue(test_packet(0, 1500), at(0)));
        assert!(q.enqueue(test_packet(1, 1500), at(0)));
        assert!(!q.enqueue(test_packet(2, 1500), at(0)));
        assert_eq!(q.stats().dropped_pkts, 1);
        assert_eq!(q.len_pkts(), 2);
    }

    #[test]
    fn byte_accounting() {
        let mut q = DropTail::new(10);
        q.enqueue(test_packet(0, 1500), at(0));
        q.enqueue(test_packet(1, 40), at(0));
        assert_eq!(q.len_bytes(), 1540);
        q.dequeue(at(1));
        assert_eq!(q.len_bytes(), 40);
    }

    #[test]
    fn head_sojourn_measures_wait() {
        let mut q = DropTail::new(10);
        q.enqueue(test_packet(0, 1500), at(0));
        assert_eq!(q.head_sojourn(at(30)), Some(SimDuration::from_millis(30)));
        q.dequeue(at(30));
        assert_eq!(q.head_sojourn(at(30)), None);
    }

    #[test]
    fn enqueue_stamps_time() {
        let mut q = DropTail::new(10);
        let mut p = test_packet(0, 100);
        p.enqueued_at = at(999); // stale value must be overwritten
        q.enqueue(p, at(5));
        assert_eq!(q.dequeue(at(6)).unwrap().enqueued_at, at(5));
    }
}
