//! RED — Random Early Detection [Floyd & Jacobson, ToN 1993]. Included for
//! completeness as the classical AQM (§2 cites it among the schemes that
//! "can be used to signal congestion before the buffer fills up").

use netsim::packet::{Ecn, Packet};
use netsim::queue::{Qdisc, QdiscStats};
use netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
pub struct RedConfig {
    /// Average-queue thresholds, in packets.
    pub min_th: f64,
    pub max_th: f64,
    /// Drop probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue size.
    pub weight: f64,
    pub buffer_pkts: usize,
    pub ecn_marking: bool,
    pub seed: u64,
}

impl Default for RedConfig {
    fn default() -> Self {
        RedConfig {
            min_th: 20.0,
            max_th: 60.0,
            max_p: 0.1,
            weight: 0.002,
            buffer_pkts: 250,
            ecn_marking: false,
            seed: 0x12ed,
        }
    }
}

pub struct Red {
    cfg: RedConfig,
    queue: VecDeque<Box<Packet>>,
    bytes: u64,
    avg: f64,
    /// Packets since the last drop (for the uniform-spacing correction).
    count: i64,
    rng: StdRng,
    stats: QdiscStats,
}

impl Red {
    pub fn new(cfg: RedConfig) -> Self {
        assert!(cfg.min_th < cfg.max_th, "min_th must be below max_th");
        Red {
            cfg,
            queue: VecDeque::new(),
            bytes: 0,
            avg: 0.0,
            count: -1,
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: QdiscStats::default(),
        }
    }

    pub fn avg_queue(&self) -> f64 {
        self.avg
    }

    /// Early-drop decision for the arriving packet.
    fn should_drop(&mut self) -> bool {
        self.avg = (1.0 - self.cfg.weight) * self.avg + self.cfg.weight * self.queue.len() as f64;
        if self.avg < self.cfg.min_th {
            self.count = -1;
            return false;
        }
        if self.avg >= self.cfg.max_th {
            self.count = 0;
            return true;
        }
        self.count += 1;
        let pb =
            self.cfg.max_p * (self.avg - self.cfg.min_th) / (self.cfg.max_th - self.cfg.min_th);
        let pa = pb / (1.0 - (self.count as f64 * pb).min(0.9999));
        if self.rng.gen::<f64>() < pa {
            self.count = 0;
            true
        } else {
            false
        }
    }
}

impl Qdisc for Red {
    netsim::impl_qdisc_downcast!();

    fn enqueue(&mut self, mut pkt: Box<Packet>, now: SimTime) -> bool {
        if self.queue.len() >= self.cfg.buffer_pkts {
            self.stats.dropped_pkts += 1;
            return false;
        }
        if self.should_drop() {
            if self.cfg.ecn_marking && pkt.ecn.is_ect() {
                pkt.ecn = Ecn::Ce;
                self.stats.ce_marked += 1;
            } else {
                self.stats.dropped_pkts += 1;
                return false;
            }
        }
        pkt.enqueued_at = now;
        self.bytes += pkt.size as u64;
        self.queue.push_back(pkt);
        self.stats.enqueued_pkts += 1;
        true
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Box<Packet>> {
        let _ = now;
        let pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size as u64;
        self.stats.dequeued_pkts += 1;
        self.stats.dequeued_bytes += pkt.size as u64;
        Some(pkt)
    }

    fn peek_size(&self) -> Option<u32> {
        self.queue.front().map(|p| p.size)
    }

    fn len_pkts(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn head_sojourn(&self, now: SimTime) -> Option<SimDuration> {
        self.queue.front().map(|p| now.since(p.enqueued_at))
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Feedback, FlowId, NodeId, Route};

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn pkt(seq: u64) -> Box<Packet> {
        Box::new(Packet {
            flow: FlowId(0),
            seq,
            size: 1500,
            ecn: Ecn::NotEct,
            feedback: Feedback::None,
            abc_capable: false,
            sent_at: SimTime::ZERO,
            retransmit: false,
            ack: None,
            route: Route::new(vec![(NodeId(0), SimDuration::ZERO)]),
            hop: 0,
            enqueued_at: SimTime::ZERO,
        })
    }

    #[test]
    fn small_queue_never_drops() {
        let mut q = Red::new(RedConfig::default());
        for i in 0..1000 {
            q.enqueue(pkt(i), at(i));
            if q.len_pkts() > 5 {
                q.dequeue(at(i));
            }
        }
        assert_eq!(q.stats().dropped_pkts, 0);
    }

    #[test]
    fn sustained_overload_pushes_avg_past_max_th() {
        let mut q = Red::new(RedConfig::default());
        // overload 2:1 — drops can't save the queue, avg must pass max_th
        let mut seq = 0u64;
        let mut drops = 0;
        for i in 0..8000u64 {
            for _ in 0..2 {
                let before = q.stats().dropped_pkts;
                q.enqueue(pkt(seq), at(i));
                drops += q.stats().dropped_pkts - before;
                seq += 1;
            }
            q.dequeue(at(i));
        }
        assert!(drops > 100, "drops = {drops}");
        assert!(q.avg_queue() > 60.0, "avg = {}", q.avg_queue());
    }

    #[test]
    fn average_decays_after_queue_drains() {
        // EWMA hysteresis: after a burst drains, the average follows the
        // instantaneous queue back down and early drops cease
        let mut q = Red::new(RedConfig {
            weight: 0.05,
            ..Default::default()
        });
        for i in 0..100 {
            q.enqueue(pkt(i), at(0));
        }
        // drive avg up
        for i in 100..300u64 {
            q.enqueue(pkt(i), at(i));
            q.dequeue(at(i));
        }
        let peak = q.avg_queue();
        assert!(peak > 20.0, "avg never rose: {peak}");
        // drain fully, then trickle: avg must fall back under min_th
        while q.dequeue(at(300)).is_some() {}
        let drops_after_drain = q.stats().dropped_pkts;
        for i in 300..500u64 {
            q.enqueue(pkt(i), at(i));
            q.dequeue(at(i));
        }
        assert!(q.avg_queue() < 20.0, "avg = {}", q.avg_queue());
        assert_eq!(
            q.stats().dropped_pkts,
            drops_after_drain,
            "no early drops once the average falls below min_th"
        );
    }

    #[test]
    fn probabilistic_band_drops_some() {
        let mut q = Red::new(RedConfig {
            weight: 0.5, // fast-moving average for the test
            ..Default::default()
        });
        // hold queue near 40 (between min 20 and max 60)
        for i in 0..40 {
            q.enqueue(pkt(i), at(0));
        }
        let mut drops = 0;
        for i in 40..2000u64 {
            let before = q.stats().dropped_pkts;
            q.enqueue(pkt(i), at(i));
            drops += q.stats().dropped_pkts - before;
            q.dequeue(at(i));
        }
        assert!(drops > 0, "no early drops in the probabilistic band");
        assert!(
            (drops as f64) < 1960.0 * 0.5,
            "dropping far too much: {drops}"
        );
    }
}
