//! The ABC sender (§3.1.1, §3.1.3, §5.1.1).
//!
//! * accelerate ACK → `w ← w + 1 + 1/w` (send two packets);
//! * brake ACK → `w ← w − 1 + 1/w` (send none);
//! * the `1/w` additive-increase term gives fairness (Eq. 3, Fig. 3);
//! * a second window `w_nonabc` runs Cubic against losses and CE marks so
//!   the flow is safe behind non-ABC bottlenecks (§5.1.1); the sender obeys
//!   `min(w_abc, w_nonabc)` and caps both at 2× the packets in flight.

use crate::router::EcnDialect;
use baselines::cubic::CubicWindow;
use netsim::flow::{AckEvent, CongestionControl};
use netsim::packet::Ecn;
use netsim::time::{SimDuration, SimTime};

/// Tuning knobs for the ABC sender. Defaults match the paper's evaluation.
#[derive(Debug, Clone, Copy)]
pub struct AbcSenderConfig {
    /// Apply the `+1/w` additive-increase term of Eq. 3. Disabling it
    /// reproduces the unfair MIMD variant of Fig. 3a.
    pub additive_increase: bool,
    /// Track a Cubic window against loss/CE and obey the minimum of the
    /// two windows (§5.1.1). Disabling leaves pure ABC (useful when the
    /// ABC router is known to be the only bottleneck).
    pub dual_window: bool,
    /// Cap both windows at this multiple of the in-flight packet count.
    pub inflight_cap_factor: f64,
    /// Initial congestion window (packets).
    pub init_cwnd: f64,
    /// ECN codepoint interpretation (§5.1.2): must match the routers'.
    pub dialect: EcnDialect,
}

impl Default for AbcSenderConfig {
    fn default() -> Self {
        AbcSenderConfig {
            additive_increase: true,
            dual_window: true,
            inflight_cap_factor: 2.0,
            init_cwnd: 2.0,
            dialect: EcnDialect::NsBit,
        }
    }
}

/// The ABC endpoint: the accelerate/brake window rule plus the
/// non-ABC (Cubic) companion window of §5.1.1.
pub struct AbcSender {
    cfg: AbcSenderConfig,
    w_abc: f64,
    w_nonabc: CubicWindow,
    srtt: SimDuration,
    accel_count: u64,
    brake_count: u64,
    /// Consecutive ACKs carrying neither accelerate nor brake. A long
    /// streak means the path strips/bleaches ECN (a known middlebox
    /// hazard): the sender then defers to its Cubic window alone instead
    /// of staying pinned at a w_abc that can never grow.
    signalless_streak: u32,
}

impl AbcSender {
    /// An ABC sender under the default configuration.
    pub fn new() -> Self {
        Self::with_config(AbcSenderConfig::default())
    }

    /// An ABC sender under `cfg`, both windows at their initial sizes.
    pub fn with_config(cfg: AbcSenderConfig) -> Self {
        AbcSender {
            cfg,
            w_abc: cfg.init_cwnd,
            w_nonabc: CubicWindow::new(cfg.init_cwnd * 2.0),
            srtt: SimDuration::from_millis(100),
            accel_count: 0,
            brake_count: 0,
            signalless_streak: 0,
        }
    }

    /// Convenience: ABC without the additive-increase term (Fig. 3a).
    pub fn without_additive_increase() -> Self {
        Self::with_config(AbcSenderConfig {
            additive_increase: false,
            ..Default::default()
        })
    }

    /// Current ABC window (packets).
    pub fn w_abc(&self) -> f64 {
        self.w_abc
    }

    /// Current non-ABC (Cubic) companion window (packets).
    pub fn w_nonabc(&self) -> f64 {
        self.w_nonabc.cwnd()
    }

    /// `(accelerate, brake)` ACK counts seen so far.
    pub fn accel_brake_counts(&self) -> (u64, u64) {
        (self.accel_count, self.brake_count)
    }

    fn ai_term(&self) -> f64 {
        if self.cfg.additive_increase {
            1.0 / self.w_abc.max(1.0)
        } else {
            0.0
        }
    }
}

impl Default for AbcSender {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for AbcSender {
    fn name(&self) -> &'static str {
        "abc"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if !ev.srtt.is_zero() {
            self.srtt = ev.srtt;
        }
        // Decode accel/brake per the configured dialect (§5.1.2).
        #[derive(PartialEq)]
        enum Signal {
            Accel,
            Brake,
            LegacyCe,
            None,
        }
        let signal = match (self.cfg.dialect, ev.ecn_echo) {
            (EcnDialect::NsBit, Ecn::Accelerate) => Signal::Accel,
            (EcnDialect::NsBit, Ecn::Brake) => Signal::Brake,
            (EcnDialect::NsBit, Ecn::Ce) => Signal::LegacyCe,
            // proxied mode: any ECT echo is an accelerate, CE is a brake
            (EcnDialect::ProxiedCe, e) if e.is_ect() => Signal::Accel,
            (EcnDialect::ProxiedCe, Ecn::Ce) => Signal::Brake,
            _ => Signal::None,
        };
        // §3.1.1: window updates count newly acknowledged *bytes*, so an
        // ACK that cumulatively covers k packets applies the signal k
        // times — robustness to delayed, lost, and partial ACKs.
        let units = (ev.acked_bytes as f64 / netsim::packet::MTU_BYTES as f64).max(1.0);
        match signal {
            Signal::Accel | Signal::Brake => self.signalless_streak = 0,
            Signal::LegacyCe | Signal::None => {
                self.signalless_streak = self.signalless_streak.saturating_add(1)
            }
        }
        match signal {
            Signal::Accel => {
                self.accel_count += 1;
                self.w_abc += units * (1.0 + self.ai_term());
                self.w_nonabc.on_ack(ev.now, self.srtt);
            }
            Signal::Brake => {
                self.brake_count += 1;
                self.w_abc += units * (self.ai_term() - 1.0);
                self.w_nonabc.on_ack(ev.now, self.srtt);
            }
            Signal::LegacyCe => {
                // a legacy ECN router on the path signaled congestion:
                // only the non-ABC window reacts (§5.1.2)
                self.w_nonabc.on_congestion(ev.now, self.srtt);
            }
            Signal::None => {
                // feedback stripped (shouldn't happen on ABC paths); treat
                // as a plain ACK for the non-ABC window
                self.w_nonabc.on_ack(ev.now, self.srtt);
            }
        }
        self.w_abc = self.w_abc.max(1.0);

        // Cap both windows to 2× in-flight so the idle window can't grow
        // unboundedly while the other is the bottleneck (§5.1.1). The
        // just-acked packet counts as in flight for this purpose —
        // otherwise a window of w could never grow past 2(w−1), which
        // pins the initial window of 2 forever.
        let inflight = (ev.inflight_pkts + 1).max(2) as f64;
        let cap = (self.cfg.inflight_cap_factor * inflight).max(4.0);
        self.w_abc = self.w_abc.min(cap);
        self.w_nonabc.clamp_cwnd(cap);
    }

    fn on_loss(&mut self, now: SimTime) {
        // losses come from non-ABC queues (droptail); the Cubic window
        // absorbs them, w_abc keeps tracking the ABC router's feedback
        self.w_nonabc.on_congestion(now, self.srtt);
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.w_nonabc.on_rto();
        // feedback stopped entirely (e.g. a link outage): restart cautiously
        self.w_abc = 1.0;
    }

    fn cwnd_pkts(&self) -> f64 {
        if !self.cfg.dual_window {
            return self.w_abc.max(1.0);
        }
        // ~1 window of ACKs with zero ABC feedback ⇒ the path is bleaching
        // ECN; run on the Cubic window alone until feedback reappears
        if self.signalless_streak > 64 {
            return self.w_nonabc.cwnd().max(1.0);
        }
        self.w_abc.min(self.w_nonabc.cwnd()).max(1.0)
    }

    fn outgoing_ecn(&self) -> Ecn {
        // every data packet leaves marked "accelerate" (= ECT(1)); routers
        // may demote to brake but never promote (§3.1.2, multi-bottleneck)
        Ecn::Accelerate
    }

    fn is_abc(&self) -> bool {
        true
    }

    fn as_abc_windows(&self) -> Option<(f64, f64)> {
        Some((self.w_abc, self.w_nonabc.cwnd()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::Feedback;
    use netsim::rate::Rate;

    fn ack(ecn: Ecn, inflight: usize) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + SimDuration::from_secs(1),
            rtt: Some(SimDuration::from_millis(100)),
            min_rtt: SimDuration::from_millis(100),
            srtt: SimDuration::from_millis(100),
            acked_bytes: 1500,
            ecn_echo: ecn,
            feedback: Feedback::None,
            inflight_pkts: inflight,
            delivery_rate: Rate::ZERO,
            one_way_delay: SimDuration::from_millis(50),
        }
    }

    #[test]
    fn accelerate_adds_one_plus_ai() {
        let mut s = AbcSender::new();
        let w0 = s.w_abc();
        s.on_ack(&ack(Ecn::Accelerate, 100));
        assert!((s.w_abc() - (w0 + 1.0 + 1.0 / w0)).abs() < 1e-9);
    }

    #[test]
    fn brake_subtracts_one_minus_ai() {
        let mut s = AbcSender::new();
        s.w_abc = 10.0;
        s.on_ack(&ack(Ecn::Brake, 100));
        assert!((s.w_abc() - (10.0 - 1.0 + 0.1)).abs() < 1e-9);
    }

    #[test]
    fn without_ai_is_pure_mimd() {
        let mut s = AbcSender::without_additive_increase();
        s.w_abc = 10.0;
        s.on_ack(&ack(Ecn::Accelerate, 100));
        assert!((s.w_abc() - 11.0).abs() < 1e-9);
        s.on_ack(&ack(Ecn::Brake, 100));
        assert!((s.w_abc() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_window_matches_fairness_argument() {
        // §3.1.3: in steady state 2f + 1/w = 1 ⇒ w = 1/(1−2f). With
        // f = 0.45 the fixed point is w = 10: feed alternating feedback
        // at that ratio and verify w converges near 10.
        let mut s = AbcSender::new();
        s.w_abc = 30.0;
        for i in 0..4000 {
            // 45% accelerates, 55% brakes, deterministically interleaved
            let e = if (i * 9) % 20 < 9 {
                Ecn::Accelerate
            } else {
                Ecn::Brake
            };
            s.on_ack(&ack(e, 1000));
        }
        assert!(
            (s.w_abc() - 10.0).abs() < 1.5,
            "steady-state w = {}",
            s.w_abc()
        );
    }

    #[test]
    fn ce_hits_only_nonabc_window() {
        let mut s = AbcSender::new();
        s.w_abc = 50.0;
        // grow cubic past slow start so a CE bite is visible
        for _ in 0..200 {
            s.on_ack(&ack(Ecn::Accelerate, 100));
        }
        let (wa0, wn0) = (s.w_abc(), s.w_nonabc());
        s.on_ack(&ack(Ecn::Ce, 100));
        assert_eq!(s.w_abc(), wa0, "CE must not touch w_abc");
        assert!(s.w_nonabc() < wn0, "CE must shrink w_nonabc");
    }

    #[test]
    fn inflight_cap_bounds_both_windows() {
        let mut s = AbcSender::new();
        for _ in 0..100 {
            s.on_ack(&ack(Ecn::Accelerate, 5));
        }
        // cap = 2×(5 in flight + the acked packet) = 12
        assert!(s.w_abc() <= 12.0 + 1e-9, "w_abc {} > 2×6", s.w_abc());
        assert!(s.w_nonabc() <= 12.0 + 1e-9);
    }

    #[test]
    fn small_initial_window_can_still_double() {
        // regression: with cap = 2×inflight (excluding the acked packet),
        // a 2-packet window could never grow
        let mut s = AbcSender::new();
        assert_eq!(s.w_abc(), 2.0);
        s.on_ack(&ack(Ecn::Accelerate, 1)); // one still in flight
        assert!(s.w_abc() > 3.0, "w_abc stuck at {}", s.w_abc());
    }

    #[test]
    fn sender_obeys_min_of_windows() {
        let mut s = AbcSender::new();
        s.w_abc = 20.0;
        // leave w_nonabc at its init (4.0): min rules
        assert!(s.cwnd_pkts() <= s.w_nonabc().min(s.w_abc()));
    }

    #[test]
    fn rto_resets_abc_window() {
        let mut s = AbcSender::new();
        s.w_abc = 40.0;
        s.on_rto(SimTime::ZERO);
        assert_eq!(s.w_abc(), 1.0);
    }

    #[test]
    fn outgoing_packets_are_accelerate_marked() {
        let s = AbcSender::new();
        assert_eq!(s.outgoing_ecn(), Ecn::Accelerate);
        assert!(s.is_abc());
    }
}
