//! PCC Vivace (latency flavor) [Dong et al., NSDI 2018]: online-learning,
//! rate-based control. The sender runs monitor intervals (MIs) at slightly
//! perturbed rates `r(1±ε)`, computes a utility for each, and moves the
//! rate along the empirical utility gradient.
//!
//! Utility (Vivace-latency):
//! `U(r) = r^t − b·r·(dRTT/dT)⁺ − c·r·loss`, with t = 0.9, b = 900, c = 11.35
//! (rates in Mbit/s inside the utility, as in the PCC reference code).

use netsim::flow::{AckEvent, CongestionControl, Pacing};
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};

const EXPONENT: f64 = 0.9;
const LATENCY_COEFF: f64 = 900.0;
const LOSS_COEFF: f64 = 11.35;
const EPSILON: f64 = 0.05;
/// Conversion step from utility gradient to rate delta (Mbit/s per unit
/// gradient), with the confidence-amplification ladder of the PCC code.
const STEP_MBPS: f64 = 0.35;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Exponential rate doubling until utility decreases.
    Starting,
    /// Trial MI at `rate·(1+ε)`.
    ProbeUp,
    /// Trial MI at `rate·(1−ε)`.
    ProbeDown,
}

#[derive(Debug, Default, Clone, Copy)]
struct MiStats {
    acked: u64,
    lost: u64,
    first_rtt: Option<SimDuration>,
    last_rtt: Option<SimDuration>,
    start: SimTime,
}

impl MiStats {
    fn utility(&self, rate_mbps: f64, duration: SimDuration) -> f64 {
        let total = (self.acked + self.lost).max(1);
        let loss_frac = self.lost as f64 / total as f64;
        let rtt_grad = match (self.first_rtt, self.last_rtt) {
            (Some(a), Some(b)) if !duration.is_zero() => {
                (b.as_secs_f64() - a.as_secs_f64()) / duration.as_secs_f64()
            }
            _ => 0.0,
        };
        rate_mbps.powf(EXPONENT)
            - LATENCY_COEFF * rate_mbps * rtt_grad.max(0.0)
            - LOSS_COEFF * rate_mbps * loss_frac
    }
}

/// PCC Vivace: online-learning rate controller.
pub struct PccVivace {
    rate: Rate,
    phase: Phase,
    mi: MiStats,
    mi_len: SimDuration,
    mi_deadline: SimTime,
    /// Utility of the completed probe-up MI, pending comparison.
    up_utility: Option<f64>,
    prev_utility: f64,
    /// Consecutive same-direction moves (confidence amplification).
    streak: i32,
    srtt: SimDuration,
}

impl PccVivace {
    /// A PCC flow at the initial probing rate.
    pub fn new() -> Self {
        PccVivace {
            rate: Rate::from_mbps(1.0),
            phase: Phase::Starting,
            mi: MiStats::default(),
            mi_len: SimDuration::from_millis(100),
            mi_deadline: SimTime::ZERO,
            up_utility: None,
            prev_utility: 0.0,
            streak: 0,
            srtt: SimDuration::from_millis(100),
        }
    }

    fn mi_rate(&self) -> Rate {
        match self.phase {
            Phase::Starting => self.rate,
            Phase::ProbeUp => self.rate * (1.0 + EPSILON),
            Phase::ProbeDown => self.rate * (1.0 - EPSILON),
        }
    }

    fn finish_mi(&mut self, now: SimTime) {
        let dur = now.since(self.mi.start);
        let u = self.mi.utility(self.mi_rate().mbps(), dur);
        match self.phase {
            Phase::Starting => {
                if u >= self.prev_utility {
                    self.prev_utility = u;
                    self.rate = self.rate * 2.0;
                } else {
                    // utility fell: stop doubling, back off and probe
                    self.rate = self.rate / 2.0;
                    self.phase = Phase::ProbeUp;
                }
            }
            Phase::ProbeUp => {
                self.up_utility = Some(u);
                self.phase = Phase::ProbeDown;
            }
            Phase::ProbeDown => {
                let up = self.up_utility.take().unwrap_or(u);
                let down = u;
                // empirical gradient over the 2ε rate spread
                let grad = (up - down) / (2.0 * EPSILON * self.rate.mbps().max(1e-3));
                let dir = grad.signum();
                if dir == self.streak.signum() as f64 && dir != 0.0 {
                    self.streak += dir as i32;
                } else {
                    self.streak = dir as i32;
                }
                let amplify = 1.0 + (self.streak.unsigned_abs() as f64 - 1.0).max(0.0) * 0.5;
                let delta = (STEP_MBPS * grad * amplify)
                    .clamp(-0.5 * self.rate.mbps(), 0.5 * self.rate.mbps().max(0.5));
                let new = (self.rate.mbps() + delta).max(0.05);
                self.rate = Rate::from_mbps(new);
                self.phase = Phase::ProbeUp;
            }
        }
        self.mi = MiStats {
            start: now,
            ..Default::default()
        };
        self.mi_deadline = now + self.mi_len;
    }
}

impl Default for PccVivace {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for PccVivace {
    fn name(&self) -> &'static str {
        "pcc-vivace"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if !ev.srtt.is_zero() {
            self.srtt = ev.srtt;
            self.mi_len = ev.srtt.max(SimDuration::from_millis(10));
        }
        self.mi.acked += 1;
        if let Some(rtt) = ev.rtt {
            if self.mi.first_rtt.is_none() {
                self.mi.first_rtt = Some(rtt);
            }
            self.mi.last_rtt = Some(rtt);
        }
        if self.mi_deadline == SimTime::ZERO {
            self.mi.start = ev.now;
            self.mi_deadline = ev.now + self.mi_len;
        } else if ev.now >= self.mi_deadline {
            self.finish_mi(ev.now);
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.mi.lost += 1;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.rate = Rate::from_mbps((self.rate.mbps() / 2.0).max(0.05));
        self.phase = Phase::ProbeUp;
        self.streak = 0;
    }

    fn cwnd_pkts(&self) -> f64 {
        // generous cap: rate × (srtt + 100ms of queue headroom)
        let horizon = self.srtt.as_secs_f64() + 0.1;
        (self.mi_rate().bps() * horizon / (8.0 * 1500.0)).max(4.0) * 2.0
    }

    fn pacing(&self) -> Pacing {
        Pacing::Rate(self.mi_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_penalizes_rtt_gradient() {
        let flat = MiStats {
            acked: 100,
            lost: 0,
            first_rtt: Some(SimDuration::from_millis(100)),
            last_rtt: Some(SimDuration::from_millis(100)),
            start: SimTime::ZERO,
        };
        let rising = MiStats {
            last_rtt: Some(SimDuration::from_millis(150)),
            ..flat
        };
        let d = SimDuration::from_millis(100);
        assert!(flat.utility(5.0, d) > rising.utility(5.0, d));
    }

    #[test]
    fn utility_penalizes_loss() {
        let clean = MiStats {
            acked: 100,
            lost: 0,
            first_rtt: Some(SimDuration::from_millis(100)),
            last_rtt: Some(SimDuration::from_millis(100)),
            start: SimTime::ZERO,
        };
        let lossy = MiStats {
            acked: 80,
            lost: 20,
            ..clean
        };
        let d = SimDuration::from_millis(100);
        assert!(clean.utility(5.0, d) > lossy.utility(5.0, d));
    }

    #[test]
    fn starting_phase_doubles_until_utility_drops() {
        let mut p = PccVivace::new();
        assert_eq!(p.phase, Phase::Starting);
        let r0 = p.rate.mbps();
        // clean MI → double
        p.mi = MiStats {
            acked: 50,
            start: SimTime::ZERO,
            first_rtt: Some(SimDuration::from_millis(100)),
            last_rtt: Some(SimDuration::from_millis(100)),
            ..Default::default()
        };
        p.finish_mi(SimTime::ZERO + SimDuration::from_millis(100));
        assert!((p.rate.mbps() - 2.0 * r0).abs() < 1e-9);
        // disastrous MI (huge RTT growth) → exit starting
        p.mi = MiStats {
            acked: 10,
            lost: 40,
            start: SimTime::ZERO + SimDuration::from_millis(100),
            first_rtt: Some(SimDuration::from_millis(100)),
            last_rtt: Some(SimDuration::from_millis(400)),
        };
        p.finish_mi(SimTime::ZERO + SimDuration::from_millis(200));
        assert_eq!(p.phase, Phase::ProbeUp);
    }

    #[test]
    fn paces_at_perturbed_rate() {
        let mut p = PccVivace::new();
        p.rate = Rate::from_mbps(10.0);
        p.phase = Phase::ProbeUp;
        match p.pacing() {
            Pacing::Rate(r) => assert!((r.mbps() - 10.5).abs() < 1e-9),
            _ => panic!("PCC is rate-based"),
        }
    }
}
