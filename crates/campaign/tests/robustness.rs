//! Robustness pins: adversarial impairments stay bit-deterministic, and
//! the runner's fault tolerance (panic isolation, watchdog budgets,
//! resume over error records) produces valid, resumable stores.
//!
//! Two families:
//!
//! * **determinism** — the `robustness` preset (every impairment kind)
//!   serializes to byte-identical stores across reruns and 1/2/4/8-worker
//!   pools, and each impairment's event-order fingerprint is a pure
//!   function of `(spec, seed)`;
//! * **fault tolerance** — a panicking point becomes a structured error
//!   record while the rest of the campaign completes; a stalled point is
//!   cancelled by the wall-clock watchdog instead of hanging; resuming
//!   with the fault removed re-attempts exactly the failed ordinals and
//!   converges to the byte-identical full store.

use campaign::runner::{resume_campaign, run_campaign_skipping};
use campaign::{
    presets, run_campaign, run_campaign_outcomes, split_outcomes, Axis, AxisValue, Campaign,
    ErrorKind, PointOutcome, ResultsStore, RunOptions,
};
use experiments::engine::{InjectedFault, ScenarioEngine, ScenarioSpec};
use experiments::figures::Scale;
use experiments::scenario::LinkSpec;
use experiments::Scheme;
use netsim::fault::{ImpairmentKind, ImpairmentSpec};
use netsim::rate::Rate;
use netsim::time::SimDuration;
use proptest::prelude::*;
use std::collections::HashSet;

fn store_bytes(campaign: &Campaign, opts: &RunOptions) -> String {
    let records = run_campaign(campaign, opts);
    ResultsStore::new(campaign, records).to_jsonl()
}

/// The whole impairment lineup (the `robustness` preset at Tiny) must
/// serialize to the exact same bytes no matter how the worker pool
/// splits the batch, and again on a rerun.
#[test]
fn impaired_stores_are_bit_identical_across_pools_and_reruns() {
    let campaign = presets::robustness(Scale::Tiny);
    let want = store_bytes(&campaign, &RunOptions::quiet().with_jobs(Some(1)));
    assert!(want.contains("\"impairments\""), "no impairment counters");
    for jobs in [1usize, 2, 4, 8] {
        let got = store_bytes(&campaign, &RunOptions::quiet().with_jobs(Some(jobs)));
        assert_eq!(got, want, "store bytes diverged at jobs={jobs}");
    }
}

/// Fingerprint of one short impaired scenario, straight off the
/// simulator (the campaign store only carries reports).
fn impaired_fingerprint(imp: ImpairmentSpec, seed: u64) -> (u64, u64) {
    let spec = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
        .duration(SimDuration::from_millis(500))
        .warmup_secs(0)
        .seed(seed)
        .impairment(imp);
    let engine = ScenarioEngine::new();
    let mut built = engine.build(&spec);
    built.run_to_end();
    let hit: u64 = built
        .hub
        .borrow()
        .impairments
        .iter()
        .map(|i| i.impaired)
        .sum();
    (built.sim.events_fingerprint(), hit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every impairment kind's event order is a pure function of
    /// `(spec, seed)`: rebuild and rerun → identical fingerprint.
    #[test]
    fn impairment_fingerprint_is_pure_function_of_spec_and_seed(
        kind_idx in 0usize..8,
        p in 0.01f64..0.5,
        seed in 0u64..1_000,
    ) {
        let kind = match kind_idx {
            0 => ImpairmentKind::Drop { p },
            1 => ImpairmentKind::BleachEcn { p },
            2 => ImpairmentKind::StripFeedback { p },
            3 => ImpairmentKind::GilbertElliott {
                p_good_bad: p / 2.0,
                p_bad_good: 0.3,
                loss_good: 0.0,
                loss_bad: p,
            },
            4 => ImpairmentKind::Reorder { p, hold: SimDuration::from_millis(5) },
            5 => ImpairmentKind::Jitter { max: SimDuration::from_millis(8) },
            6 => ImpairmentKind::Outage {
                start: SimDuration::from_millis(100),
                duration: SimDuration::from_millis(50),
                period: Some(SimDuration::from_millis(200)),
            },
            _ => ImpairmentKind::Decimate { keep_one_in: 3 },
        };
        let imp = if kind_idx == 2 || kind_idx == 7 {
            ImpairmentSpec::ack(kind)
        } else {
            ImpairmentSpec::data(kind)
        };
        let (fp1, hit1) = impaired_fingerprint(imp, seed);
        let (fp2, hit2) = impaired_fingerprint(imp, seed);
        prop_assert_eq!(fp1, fp2, "event order diverged on rerun");
        prop_assert_eq!(hit1, hit2, "impairment counters diverged on rerun");
    }
}

/// A heavy Bernoulli drop must actually impair packets, and its
/// fingerprint must differ from the unimpaired control — the wire is in
/// the event stream, not dead code.
#[test]
fn impairment_wire_changes_the_event_stream() {
    let drop = ImpairmentSpec::data(ImpairmentKind::Drop { p: 0.3 });
    let (impaired_fp, hit) = impaired_fingerprint(drop, 7);
    assert!(hit > 0, "30% drop over 500 ms never fired");

    let clean = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
        .duration(SimDuration::from_millis(500))
        .warmup_secs(0)
        .seed(7);
    let engine = ScenarioEngine::new();
    let mut built = engine.build(&clean);
    built.run_to_end();
    assert_ne!(built.sim.events_fingerprint(), impaired_fp);
}

/// A 2×2 campaign whose `fault` axis injects `fault` on the second
/// value — the fixed twin passes `None` with the *same labels*, so its
/// coordinates (and store bytes) line up point for point.
fn fault_campaign(fault: Option<InjectedFault>) -> Campaign {
    let base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
        .duration(SimDuration::from_millis(300))
        .warmup_secs(0);
    Campaign::new("faulty", base)
        .axis(Axis::new(
            "fault",
            vec![
                ("clean".to_string(), AxisValue::Fault(None)),
                ("boom".to_string(), AxisValue::Fault(fault)),
            ],
        ))
        .axis(Axis::seeds(&[1, 2]))
}

/// A panicking point must not take the campaign down: with
/// `--keep-going` semantics every other point completes, the failed
/// ordinals carry structured `panic` error records, and the store still
/// round-trips.
#[test]
fn panicking_points_become_error_records_in_a_valid_store() {
    let campaign = fault_campaign(Some(InjectedFault::Panic));
    let opts = RunOptions::quiet().with_keep_going(true).with_retries(0);
    let outcomes = run_campaign_outcomes(&campaign, &opts);
    assert_eq!(outcomes.len(), 4);
    let (records, errors) = split_outcomes(outcomes);
    assert_eq!(records.len(), 2, "clean points must complete");
    assert_eq!(errors.len(), 2, "both boom points must fail");
    let failed: HashSet<usize> = errors.iter().map(|e| e.ordinal).collect();
    assert_eq!(failed, [2usize, 3].into_iter().collect());
    for e in &errors {
        assert_eq!(e.error.kind, ErrorKind::Panic);
        assert!(
            e.error.message.contains("injected fault"),
            "{}",
            e.error.message
        );
        assert_eq!(e.coords.get("fault"), Some("boom"));
    }

    // the partial store is valid, parseable, and remembers the errors
    let jsonl = ResultsStore::with_errors(&campaign, records, errors).to_jsonl();
    let loaded = ResultsStore::from_jsonl(&jsonl).expect("store with errors loads");
    assert_eq!(loaded.records.len(), 2);
    assert_eq!(loaded.errors.len(), 2);
    assert_eq!(loaded.to_jsonl(), jsonl, "reserialization diverged");
}

/// Without `keep_going`, dispatch stops after the wave that failed —
/// later waves never run, but the failed wave's outcomes are kept.
#[test]
fn fail_fast_stops_dispatch_after_the_failed_wave() {
    let base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
        .duration(SimDuration::from_millis(300))
        .warmup_secs(0);
    let campaign = Campaign::new("fail-fast", base)
        .axis(Axis::new(
            "fault",
            vec![
                (
                    "boom".to_string(),
                    AxisValue::Fault(Some(InjectedFault::Panic)),
                ),
                ("clean".to_string(), AxisValue::Fault(None)),
            ],
        ))
        .axis(Axis::seeds(&[1, 2]));
    let opts = RunOptions {
        chunk: 1,
        retries: 0,
        ..RunOptions::quiet()
    };
    let outcomes = run_campaign_outcomes(&campaign, &opts);
    assert_eq!(outcomes.len(), 1, "dispatch must stop after the failure");
    assert!(matches!(outcomes[0], PointOutcome::Err(_)));
}

/// Resume after the fault is removed: only the failed ordinals are
/// re-attempted, and the merged store is byte-identical to a fresh full
/// run of the fixed campaign.
#[test]
fn resume_reattempts_only_failed_points_and_converges() {
    let opts = RunOptions::quiet().with_keep_going(true).with_retries(0);
    let (clean_records, errors) = split_outcomes(run_campaign_outcomes(
        &fault_campaign(Some(InjectedFault::Panic)),
        &opts,
    ));
    assert_eq!(errors.len(), 2);

    let fixed = fault_campaign(None);
    let want = {
        let full = run_campaign(&fixed, &RunOptions::quiet());
        ResultsStore::new(&fixed, full).to_jsonl()
    };

    // the skip set derived from clean records re-attempts exactly the
    // failed ordinals
    let skip: HashSet<usize> = clean_records.iter().map(|r| r.ordinal).collect();
    let rerun = run_campaign_skipping(&fixed, &RunOptions::quiet(), &skip);
    let rerun_ordinals: HashSet<usize> = rerun.iter().map(|r| r.ordinal).collect();
    assert_eq!(rerun_ordinals, [2usize, 3].into_iter().collect());

    let resumed = resume_campaign(&fixed, &RunOptions::quiet(), clean_records);
    assert_eq!(
        ResultsStore::new(&fixed, resumed).to_jsonl(),
        want,
        "resumed store diverged from a fresh full run"
    );
}

/// A stalled point (timer loop that never advances past its re-arm) is
/// cancelled by the wall-clock watchdog and recorded as a `watchdog`
/// error; the rest of the campaign completes.
#[test]
fn watchdog_cancels_a_stalled_point() {
    let campaign = fault_campaign(Some(InjectedFault::Stall));
    let opts = RunOptions::quiet()
        .with_keep_going(true)
        .with_watchdog(Some(std::time::Duration::from_millis(100)));
    let outcomes = run_campaign_outcomes(&campaign, &opts);
    let (records, errors) = split_outcomes(outcomes);
    assert_eq!(records.len(), 2);
    assert_eq!(errors.len(), 2);
    for e in &errors {
        assert_eq!(e.error.kind, ErrorKind::Watchdog, "{}", e.error.message);
        assert!(
            e.error.message.contains("wall-clock"),
            "watchdog message should name the budget: {}",
            e.error.message
        );
    }
}
