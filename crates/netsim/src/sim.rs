//! The simulator: node registry, virtual clock, and the run loop.

use crate::event::{EventKind, EventQueue};
use crate::node::{Context, Node};
use crate::packet::NodeId;
use crate::time::SimTime;

/// A deterministic discrete-event simulator.
///
/// ```
/// use netsim::sim::Simulator;
/// use netsim::node::{Context, Node};
/// use netsim::event::EventKind;
/// use netsim::time::{SimDuration, SimTime};
///
/// struct Ticker { fired: u32 }
/// impl Node for Ticker {
///     netsim::impl_node_downcast!();
///     fn start(&mut self, ctx: &mut Context) {
///         ctx.set_timer(SimDuration::from_millis(10), 0);
///     }
///     fn handle(&mut self, ctx: &mut Context, ev: EventKind) {
///         if let EventKind::Timer(_) = ev {
///             self.fired += 1;
///             if self.fired < 5 {
///                 ctx.set_timer(SimDuration::from_millis(10), 0);
///             }
///         }
///     }
/// }
///
/// let mut sim = Simulator::new();
/// sim.add_node(Box::new(Ticker { fired: 0 }));
/// sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
/// // five ticks processed, then the clock idles forward to the deadline
/// assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(1));
/// assert_eq!(sim.events_processed(), 5);
/// ```
pub struct Simulator {
    clock: SimTime,
    queue: EventQueue,
    nodes: Vec<Option<Box<dyn Node>>>,
    started: bool,
    scratch: Vec<(SimTime, NodeId, EventKind)>,
    events_processed: u64,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    pub fn new() -> Self {
        Simulator {
            clock: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            started: false,
            scratch: Vec::new(),
            events_processed: 0,
        }
    }

    /// Register a node; the returned id is how packets route to it.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        id
    }

    /// Reserve an id before the node exists — lets topologies with cycles
    /// (sender → … → sender) build routes first and install nodes after.
    pub fn reserve_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(None);
        id
    }

    /// Install a node into a reserved slot.
    ///
    /// # Panics
    /// If the slot is already occupied.
    pub fn install_node(&mut self, id: NodeId, node: Box<dyn Node>) {
        let slot = &mut self.nodes[id.0 as usize];
        assert!(slot.is_none(), "node slot {id:?} already installed");
        *slot = Some(node);
    }

    pub fn now(&self) -> SimTime {
        self.clock
    }

    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn start_all(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            if let Some(mut node) = self.nodes[i].take() {
                {
                    let mut ctx = Context::new(self.clock, id, &mut self.scratch);
                    node.start(&mut ctx);
                }
                self.nodes[i] = Some(node);
                self.flush_scratch();
            }
        }
    }

    fn flush_scratch(&mut self) {
        for (time, node, kind) in self.scratch.drain(..) {
            self.queue.push(time, node, kind);
        }
    }

    /// Run until the clock reaches `deadline` (events at exactly `deadline`
    /// are processed) or the event queue drains, whichever is first.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_all();
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            debug_assert!(ev.time >= self.clock, "event queue time went backwards");
            self.clock = ev.time;
            self.events_processed += 1;
            let idx = ev.node.0 as usize;
            // Take the node out so the handler can't alias the registry.
            // A missing node (reserved but never installed) drops the event.
            if let Some(mut node) = self.nodes.get_mut(idx).and_then(Option::take) {
                {
                    let mut ctx = Context::new(self.clock, ev.node, &mut self.scratch);
                    node.handle(&mut ctx, ev.kind);
                }
                self.nodes[idx] = Some(node);
                self.flush_scratch();
            }
        }
        // Advance the clock to the deadline even if we idled out early.
        if self.clock < deadline {
            self.clock = deadline;
        }
    }

    /// Run for `dur` of simulated time from the current clock.
    pub fn run_for(&mut self, dur: crate::time::SimDuration) {
        let deadline = self.clock + dur;
        self.run_until(deadline);
    }

    /// Access a node for post-run inspection (e.g. reading counters).
    /// Returns `None` for reserved-but-empty slots.
    pub fn node(&self, id: NodeId) -> Option<&dyn Node> {
        self.nodes.get(id.0 as usize).and_then(|n| n.as_deref())
    }

    /// Mutable access, for test scaffolding.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Box<dyn Node>> {
        self.nodes.get_mut(id.0 as usize).and_then(|n| n.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Ecn, Feedback, FlowId, Packet, Route};
    use crate::time::SimDuration;

    /// Bounces a counter packet back and forth with a peer.
    struct PingPong {
        peer: Option<NodeId>,
        received: u32,
        limit: u32,
    }

    impl Node for PingPong {
        crate::impl_node_downcast!();

        fn start(&mut self, ctx: &mut Context) {
            if let Some(peer) = self.peer {
                let route = Route::new(vec![(peer, SimDuration::from_millis(5))]);
                let pkt = Packet {
                    flow: FlowId(0),
                    seq: 0,
                    size: 100,
                    ecn: Ecn::NotEct,
                    feedback: Feedback::None,
                    abc_capable: false,
                    sent_at: ctx.now(),
                    retransmit: false,
                    ack: None,
                    route,
                    hop: 0,
                    enqueued_at: ctx.now(),
                };
                ctx.forward(pkt);
            }
        }

        fn handle(&mut self, ctx: &mut Context, ev: EventKind) {
            if let EventKind::Deliver(pkt) = ev {
                self.received += 1;
                if self.received < self.limit {
                    // send it back to whoever it came from via a fresh route
                    let from = if let Some(peer) = self.peer {
                        peer
                    } else {
                        // responder learns the peer from the packet's route origin:
                        // route carried us as the only hop; reply to flow origin
                        // is modeled by tests wiring both sides with peers.
                        return;
                    };
                    let mut reply = pkt;
                    reply.route = Route::new(vec![(from, SimDuration::from_millis(5))]);
                    reply.hop = 0;
                    ctx.forward(reply);
                }
            }
        }
    }

    #[test]
    fn ping_pong_advances_clock_by_propagation() {
        let mut sim = Simulator::new();
        let a = sim.reserve_node();
        let b = sim.reserve_node();
        sim.install_node(
            a,
            Box::new(PingPong {
                peer: Some(b),
                received: 0,
                limit: 3,
            }),
        );
        sim.install_node(
            b,
            Box::new(PingPong {
                peer: Some(a),
                received: 0,
                limit: 3,
            }),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        // a starts -> b (5ms). b replies -> a (10ms). a replies -> b (15ms)...
        // each side also fires its own start packet; just sanity-check time
        // advanced in 5ms multiples and the sim terminated.
        assert!(sim.now() == SimTime::ZERO + SimDuration::from_secs(1));
        assert!(sim.events_processed() >= 4);
    }

    #[test]
    fn run_until_is_resumable() {
        struct T {
            count: u32,
        }
        impl Node for T {
            crate::impl_node_downcast!();

            fn start(&mut self, ctx: &mut Context) {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
            fn handle(&mut self, ctx: &mut Context, _: EventKind) {
                self.count += 1;
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }
        let mut sim = Simulator::new();
        let id = sim.add_node(Box::new(T { count: 0 }));
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(35));
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(100));
        // timers at 10,20,...,100 → 10 firings
        let t: &T = sim
            .node(id)
            .and_then(|n| n.as_any().downcast_ref())
            .unwrap();
        assert_eq!(t.count, 10);
    }

    #[test]
    fn deadline_without_events_advances_clock() {
        let mut sim = Simulator::new();
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(5));
    }
}
