//! Synthetic cellular traces.
//!
//! The paper evaluates on eight proprietary Mahimahi traces (Verizon LTE
//! up/down, AT&T, T-Mobile). Those captures are not redistributable, so we
//! synthesize traces with the published qualitative properties (§2, §6.2):
//!
//! * large dynamic range — capacity can double *and* halve within a second;
//! * abrupt steps from carrier scheduling, modeled by a geometric
//!   random-walk rate re-drawn every `step`;
//! * multi-second outages ("include outages (highlighting ABC's ability to
//!   handle ACK losses)");
//! * uplink/downlink asymmetry (uplinks slower, less volatile).
//!
//! Every generator is seeded; the eight named profiles are deterministic.
//! Real Mahimahi captures drop in via [`crate::trace::CellTrace::parse_mahimahi`].

use crate::trace::CellTrace;
use netsim::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic rate process.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    pub name: &'static str,
    /// Rate bounds (Mbit/s) for the geometric random walk.
    pub min_mbps: f64,
    pub max_mbps: f64,
    /// Initial rate (Mbit/s).
    pub start_mbps: f64,
    /// Random-walk re-draw period.
    pub step: SimDuration,
    /// Std-dev of the per-step log-rate increment. 0.25 at a 100 ms step
    /// lets the rate double/halve within ~1 s (the §2 LTE behavior).
    pub sigma: f64,
    /// Probability per step of entering an outage.
    pub outage_prob: f64,
    /// Outage length range (ms).
    pub outage_ms: (u64, u64),
    /// Trace length.
    pub duration: SimDuration,
    pub seed: u64,
}

impl SynthSpec {
    /// Generate the delivery-opportunity sequence for this spec.
    pub fn generate(&self) -> CellTrace {
        assert!(self.min_mbps > 0.0 && self.max_mbps >= self.min_mbps);
        assert!(!self.step.is_zero() && !self.duration.is_zero());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rate_mbps = self.start_mbps.clamp(self.min_mbps, self.max_mbps);
        let mut opportunities = Vec::new();
        // credit accumulates in packets; one opportunity per whole packet
        let mut credit = 0.0f64;
        let pkt_bits = netsim::packet::MTU_BYTES as f64 * 8.0;
        let step_s = self.step.as_secs_f64();
        let total_steps = (self.duration.as_nanos() / self.step.as_nanos()).max(1);
        let mut outage_left: u64 = 0; // remaining outage steps

        for s in 0..total_steps {
            let t0 = self.step * s;
            if outage_left > 0 {
                outage_left -= 1;
            } else if rng.gen::<f64>() < self.outage_prob {
                let (lo, hi) = self.outage_ms;
                let len_ms = rng.gen_range(lo..=hi.max(lo + 1));
                outage_left = (len_ms * 1_000_000 / self.step.as_nanos()).max(1);
            } else {
                // geometric random walk with reflecting bounds
                let z: f64 = standard_normal(&mut rng);
                rate_mbps =
                    (rate_mbps * (self.sigma * z).exp()).clamp(self.min_mbps, self.max_mbps);
            }
            let effective = if outage_left > 0 { 0.0 } else { rate_mbps };
            credit += effective * 1e6 * step_s / pkt_bits;
            // spread this step's opportunities uniformly across the step
            let n = credit.floor() as u64;
            credit -= n as f64;
            for k in 0..n {
                let frac = (k as f64 + 0.5) / n as f64;
                opportunities.push(t0 + self.step.mul_f64(frac));
            }
        }
        assert!(
            !opportunities.is_empty(),
            "trace {:?} generated no opportunities",
            self.name
        );
        CellTrace {
            name: self.name.to_string(),
            opportunities,
            period: self.duration,
        }
    }
}

/// Box–Muller standard normal from a uniform RNG.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The eight built-in trace profiles standing in for the paper's captures.
/// Downlinks are faster and more volatile; uplinks slower; one profile per
/// carrier direction, distinct seeds.
pub fn builtin_specs() -> Vec<SynthSpec> {
    let base = |name, min, max, start, sigma, outage_prob, seed| SynthSpec {
        name,
        min_mbps: min,
        max_mbps: max,
        start_mbps: start,
        step: SimDuration::from_millis(100),
        sigma,
        outage_prob,
        outage_ms: (100, 800),
        duration: SimDuration::from_secs(120),
        seed,
    };
    // σ = 0.17 per 100 ms step → per-second log-σ ≈ 0.54, i.e. typical
    // rate swings of ~1.7× (tail 2–4×) within a second — the §2 LTE regime.
    vec![
        // "Verizon LTE" class: fast, volatile downlink; slower uplink
        base("Verizon1", 1.0, 24.0, 9.0, 0.17, 0.001, 101), // downlink
        base("Verizon2", 0.8, 12.0, 4.0, 0.14, 0.0015, 102), // uplink
        // "Verizon EV-DO"-ish: slower pair
        base("Verizon3", 0.8, 9.0, 3.0, 0.15, 0.002, 103),
        base("Verizon4", 0.6, 6.0, 2.0, 0.13, 0.002, 104),
        // "AT&T LTE": moderate rate, frequent short dips
        base("ATT1", 1.0, 18.0, 6.0, 0.19, 0.0025, 105),
        base("ATT2", 0.8, 8.0, 2.5, 0.15, 0.0025, 106),
        // "T-Mobile": bursty with more outages
        base("TMobile1", 1.0, 16.0, 5.0, 0.20, 0.003, 107),
        base("TMobile2", 0.8, 7.0, 2.0, 0.16, 0.003, 108),
    ]
}

/// Look up one of the built-in traces by name and synthesize it.
pub fn builtin(name: &str) -> Option<CellTrace> {
    builtin_specs()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .map(|s| s.generate())
}

/// All eight built-in traces.
pub fn all_builtin() -> Vec<CellTrace> {
    builtin_specs().into_iter().map(|s| s.generate()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimTime;

    #[test]
    fn generation_is_deterministic() {
        let a = builtin("Verizon1").unwrap();
        let b = builtin("Verizon1").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn traces_differ_across_profiles() {
        let a = builtin("Verizon1").unwrap();
        let b = builtin("ATT1").unwrap();
        assert_ne!(a.opportunities, b.opportunities);
    }

    #[test]
    fn mean_rate_lands_in_bounds() {
        for spec in builtin_specs() {
            let tr = spec.generate();
            let mean = tr.mean_rate().mbps();
            assert!(
                mean >= spec.min_mbps * 0.3 && mean <= spec.max_mbps,
                "{}: mean {mean} outside [{}, {}]",
                spec.name,
                spec.min_mbps,
                spec.max_mbps
            );
        }
    }

    #[test]
    fn rate_varies_by_large_factor() {
        // §2: within short spans the rate should both double and halve.
        let tr = builtin("Verizon1").unwrap();
        let w = SimDuration::from_millis(500);
        let mut rates = Vec::new();
        let mut t = SimTime::ZERO;
        while t + w < SimTime::ZERO + tr.period {
            rates.push(tr.rate_in_window(t, w).mbps());
            t += w;
        }
        let hi = rates.iter().cloned().fold(0.0, f64::max);
        let positive: Vec<f64> = rates.iter().cloned().filter(|&r| r > 0.1).collect();
        let lo = positive.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            hi / lo > 4.0,
            "dynamic range too small: {lo:.2}..{hi:.2} Mbit/s"
        );
    }

    #[test]
    fn outages_exist() {
        let tr = builtin("TMobile1").unwrap();
        // scan with a fine-grained window so short outages can't hide by
        // straddling window boundaries
        let w = SimDuration::from_millis(100);
        let step = SimDuration::from_millis(50);
        let mut t = SimTime::ZERO;
        let mut zero_windows = 0;
        while t + w < SimTime::ZERO + tr.period {
            if tr.rate_in_window(t, w).is_zero() {
                zero_windows += 1;
            }
            t += step;
        }
        assert!(zero_windows > 0, "no outage windows found");
    }

    #[test]
    fn opportunities_sorted_within_period() {
        let tr = builtin("Verizon1").unwrap();
        assert!(tr.opportunities.windows(2).all(|w| w[0] <= w[1]));
        assert!(*tr.opportunities.last().unwrap() < tr.period);
    }

    #[test]
    fn to_link_round_trip() {
        let tr = builtin("Verizon2").unwrap();
        let link = tr.to_link();
        assert_eq!(link.opportunities_per_period(), tr.opportunities.len());
    }
}
