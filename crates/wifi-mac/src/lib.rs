//! # wifi-mac — 802.11n MAC model and ABC's Wi-Fi link-rate estimator
//!
//! The substrate standing in for the paper's OpenWrt/NETGEAR testbed
//! (§4.1, §6.1; see DESIGN.md for the substitution argument):
//!
//! * [`mcs`] — the 802.11n MCS↔bitrate table and the index-variation
//!   schedules used in the evaluation (alternating 1↔7, Brownian \[3,7\]);
//! * [`estimator`] — Eqs. 5–8: extrapolating full-batch inter-ACK time
//!   from partial batches, sliding-window smoothing, 2×-rate cap;
//! * [`ap`] — the access-point node: A-MPDU batching, block-ACK timing,
//!   per-batch overhead h(t), with the estimator feeding the qdisc.

pub mod ap;
pub mod estimator;
pub mod mcs;

pub use ap::{OverheadModel, WifiAp, WifiApConfig};
pub use estimator::{BatchSample, EstimatorConfig, WifiRateEstimator};
pub use mcs::{mcs_rate, AlternatingMcs, BrownianMcs, FixedMcs, McsProcess, MCS_RATE_MBPS};
