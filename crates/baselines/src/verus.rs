//! Verus-like controller [Zaki et al., SIGCOMM 2015].
//!
//! Verus learns a *delay profile* — an empirical mapping from congestion
//! window to observed delay — and each epoch chooses the window whose
//! profiled delay matches a target that itself chases recent delay
//! conditions (shrinking sharply when delay spikes, probing upward
//! otherwise). The resulting behavior on variable links is aggressive
//! probing with large oscillations and elevated delay, which is exactly
//! the character Fig. 1b of the ABC paper shows. We reproduce the
//! profile-plus-target structure with the published constants
//! (R = 2, δ₁ = 1 pkt, δ₂ = 2 pkt, epoch = 5 ms).

use netsim::flow::{AckEvent, CongestionControl};
use netsim::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

const EPOCH: SimDuration = SimDuration::from_millis(20);
/// Delay-target ratio: D_target = D_max_observed / R.
const R: f64 = 2.0;
/// Window increment per epoch while under the delay budget (Verus probes
/// aggressively — this is what builds its characteristic queues).
const DELTA_1: f64 = 2.0;
/// Window decrement applied (per epoch) when delay is rising.
const DELTA_2: f64 = 2.0;
/// Multiplicative backoff on loss.
const LOSS_BACKOFF: f64 = 0.5;
/// Window bucketing for the delay profile.
const BUCKET: f64 = 2.0;

/// Verus: delay-profile controller for cellular links.
pub struct Verus {
    cwnd: f64,
    /// Empirical delay profile: window bucket → EWMA delay (s).
    profile: BTreeMap<u64, f64>,
    epoch_start: SimTime,
    epoch_delay_sum: f64,
    epoch_delay_n: u32,
    last_epoch_delay: f64,
    d_max: f64,
    d_min: f64,
    in_slow_start: bool,
}

impl Verus {
    /// A Verus flow with an empty delay profile.
    pub fn new() -> Self {
        Verus {
            cwnd: 2.0,
            profile: BTreeMap::new(),
            epoch_start: SimTime::ZERO,
            epoch_delay_sum: 0.0,
            epoch_delay_n: 0,
            last_epoch_delay: 0.0,
            d_max: 0.0,
            d_min: f64::MAX,
            in_slow_start: true,
        }
    }

    fn bucket(w: f64) -> u64 {
        (w / BUCKET).round() as u64
    }

    fn learn(&mut self, w: f64, delay: f64) {
        let e = self.profile.entry(Self::bucket(w)).or_insert(delay);
        *e += 0.25 * (delay - *e);
    }

    /// Largest window whose profiled delay is ≤ `target` (the profile
    /// inverse Verus uses to pick the next epoch's window).
    fn window_for_delay(&self, target: f64) -> Option<f64> {
        self.profile
            .iter()
            .filter(|&(_, &d)| d <= target)
            .map(|(&b, _)| b as f64 * BUCKET)
            .fold(None, |acc, w| Some(acc.map_or(w, |a: f64| a.max(w))))
    }

    fn end_epoch(&mut self) {
        if self.epoch_delay_n == 0 {
            return;
        }
        let delay = self.epoch_delay_sum / self.epoch_delay_n as f64;
        self.epoch_delay_sum = 0.0;
        self.epoch_delay_n = 0;
        self.d_max = self.d_max.max(delay);
        self.d_min = self.d_min.min(delay);
        self.learn(self.cwnd, delay);

        if self.in_slow_start {
            self.cwnd += 2.0;
            if delay > 2.0 * self.d_min && self.d_min < f64::MAX {
                self.in_slow_start = false;
            }
            self.last_epoch_delay = delay;
            return;
        }

        // Verus' target: chase D_max/R — a *relative* budget, so as its own
        // queues push D_max up, the budget follows; that built-in positive
        // feedback is the source of its large oscillations and high delays.
        let target = (self.d_max / R).max(self.d_min * 1.5);
        self.last_epoch_delay = delay;

        if delay > target {
            // over budget: jump to the profiled window for the target, or
            // decrement multiplicatively if the profile has no answer yet
            let fallback = (self.cwnd * 0.9).min(self.cwnd - DELTA_2);
            let w = self.window_for_delay(target).unwrap_or(fallback);
            self.cwnd = w.min(fallback).max(2.0);
        } else {
            // under budget: probe upward aggressively
            self.cwnd += DELTA_1;
        }
        // slow decay of the historical max so old spikes stop dominating
        self.d_max *= 0.998;
    }
}

impl Default for Verus {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Verus {
    fn name(&self) -> &'static str {
        "verus"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        let Some(rtt) = ev.rtt else { return };
        if self.epoch_start == SimTime::ZERO {
            self.epoch_start = ev.now;
        }
        self.epoch_delay_sum += rtt.as_secs_f64();
        self.epoch_delay_n += 1;
        while ev.now.since(self.epoch_start) >= EPOCH {
            self.epoch_start += EPOCH;
            self.end_epoch();
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.cwnd = (self.cwnd * LOSS_BACKOFF).max(2.0);
        self.in_slow_start = false;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.cwnd = 2.0;
    }

    fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Ecn, Feedback};
    use netsim::rate::Rate;

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + SimDuration::from_millis(now_ms),
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            min_rtt: SimDuration::from_millis(100),
            srtt: SimDuration::from_millis(rtt_ms),
            acked_bytes: 1500,
            ecn_echo: Ecn::NotEct,
            feedback: Feedback::None,
            inflight_pkts: 5,
            delivery_rate: Rate::ZERO,
            one_way_delay: SimDuration::from_millis(rtt_ms / 2),
        }
    }

    #[test]
    fn profile_learns_monotone_delay() {
        let mut v = Verus::new();
        v.learn(10.0, 0.05);
        v.learn(50.0, 0.20);
        assert_eq!(v.window_for_delay(0.10), Some(10.0));
        assert_eq!(v.window_for_delay(0.25), Some(50.0));
        assert_eq!(v.window_for_delay(0.01), None);
    }

    #[test]
    fn rising_delay_past_target_shrinks_window() {
        let mut v = Verus::new();
        v.in_slow_start = false;
        v.cwnd = 40.0;
        v.d_min = 0.05;
        v.d_max = 0.4;
        v.last_epoch_delay = 0.1;
        // feed several epochs of very high delay (300ms > target 200ms)
        for i in 0..60 {
            v.on_ack(&ack(1000 + i, 300));
        }
        assert!(v.cwnd_pkts() < 40.0, "cwnd {}", v.cwnd_pkts());
    }

    #[test]
    fn falling_delay_probes_up() {
        let mut v = Verus::new();
        v.in_slow_start = false;
        v.cwnd = 10.0;
        v.d_min = 0.1;
        v.d_max = 0.3;
        v.last_epoch_delay = 0.2;
        for i in 0..10 {
            v.on_ack(&ack(2000 + i, 110)); // 110ms < target 150ms, falling
        }
        assert!(v.cwnd_pkts() >= 10.0);
    }

    #[test]
    fn loss_backs_off_multiplicatively() {
        let mut v = Verus::new();
        v.cwnd = 64.0;
        v.on_loss(SimTime::ZERO);
        assert_eq!(v.cwnd_pkts(), 32.0);
    }
}
