//! Built-in campaigns: the sweeps behind the paper's matrix/pareto/RTT
//! figures, plus small presets for CI gating and seed-replication
//! studies. Every preset is a pure function of its [`Scale`], so two
//! invocations expand to identical point lists.

use crate::spec::{Axis, AxisValue, Campaign};
use cellular::CellTrace;
use experiments::engine::{
    AbcRouterConfig, FlowSchedule, FlowSpec, HopQdisc, ParkingHop, QdiscSpec, ScenarioSpec,
    Topology, WorkloadEntry,
};
use experiments::figures::Scale;
use experiments::scenario::LinkSpec;
use experiments::{Scheme, CELLULAR_LINEUP, EXPLICIT_LINEUP};
use netsim::fault::{ImpairmentKind, ImpairmentSpec};
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};
use workload::{AbrWorkload, RtcWorkload, WebWorkload, WorkloadSpec};

/// The cellular traces for a run: all eight, or a truncated subset.
pub fn traces(scale: Scale) -> Vec<CellTrace> {
    let mut all = cellular::all_builtin();
    all.truncate(scale.pick(usize::MAX, 2, 1));
    all
}

/// Simulated duration of each matrix cell.
pub fn sim_duration(scale: Scale) -> SimDuration {
    scale.secs(120, 20, 2)
}

/// The base spec the cellular sweeps share: single bottleneck (the trace
/// axis overwrites the link), 100 ms RTT, 250-pkt buffer, 5 s warmup.
fn cell_base(duration: SimDuration) -> ScenarioSpec {
    ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::ZERO)).duration(duration)
}

/// A scheme × trace matrix — the shape behind Table 1 and Figs. 9/15/16.
pub fn matrix_campaign(
    name: impl Into<String>,
    schemes: &[Scheme],
    traces: &[CellTrace],
    duration: SimDuration,
) -> Campaign {
    Campaign::new(name, cell_base(duration))
        .axis(Axis::schemes(schemes))
        .axis(Axis::traces(traces))
}

/// Fig. 9/15's sweep: the full cellular lineup over every trace.
pub fn cellular_matrix(scale: Scale) -> Campaign {
    matrix_campaign(
        "cellular-matrix",
        &CELLULAR_LINEUP,
        &traces(scale),
        sim_duration(scale),
    )
}

/// Fig. 16's sweep: ABC against the explicit-feedback schemes.
pub fn explicit_matrix(scale: Scale) -> Campaign {
    matrix_campaign(
        "explicit-matrix",
        &EXPLICIT_LINEUP,
        &traces(scale),
        sim_duration(scale),
    )
}

/// Fig. 8's sweep: the lineup over the downlink trace, the uplink trace,
/// and the two-hop uplink+downlink path.
pub fn pareto(scale: Scale) -> Campaign {
    let down = cellular::builtin("Verizon1").expect("builtin trace");
    let up = cellular::builtin("Verizon2").expect("builtin trace");
    let paths = vec![
        (
            "down".to_string(),
            Topology::SingleBottleneck(LinkSpec::Trace(down.clone())),
        ),
        (
            "up".to_string(),
            Topology::SingleBottleneck(LinkSpec::Trace(up.clone())),
        ),
        (
            "up+down".to_string(),
            Topology::TwoHop {
                up: LinkSpec::Trace(up),
                down: LinkSpec::Trace(down),
            },
        ),
    ];
    Campaign::new("pareto", cell_base(sim_duration(scale)))
        .axis(Axis::paths("path", paths))
        .axis(Axis::schemes(&CELLULAR_LINEUP))
}

/// Fig. 18's sweep: RTT sensitivity on one trace (full lineup at paper
/// scale, a 3-scheme core below it).
pub fn rtt_grid(scale: Scale) -> Campaign {
    let trace = cellular::builtin("Verizon1").expect("builtin trace");
    let schemes: &[Scheme] = if scale.reduced() {
        &[Scheme::Abc, Scheme::CubicCodel, Scheme::Cubic]
    } else {
        &CELLULAR_LINEUP
    };
    Campaign::new("rtt-grid", cell_base(sim_duration(scale)))
        .axis(Axis::schemes(schemes))
        .axis(Axis::rtts_ms(&[20, 50, 100, 200]))
        .axis(Axis::traces(std::slice::from_ref(&trace)))
}

/// Across-seed replication: ABC and Cubic on one trace, eight seeds —
/// the aggregation layer's mean/CI demo.
pub fn seed_spread(scale: Scale) -> Campaign {
    let trace = cellular::builtin("Verizon1").expect("builtin trace");
    let seeds: Vec<u64> = (1..=scale.pick(8, 4, 2)).collect();
    Campaign::new("seed-spread", cell_base(scale.secs(60, 10, 2)))
        .axis(Axis::schemes(&[Scheme::Abc, Scheme::Cubic]))
        .axis(Axis::traces(std::slice::from_ref(&trace)))
        .axis(Axis::seeds(&seeds))
}

/// The CI gate: 2 schemes × 2 synthetic links × 2 seeds at 2 s each —
/// small enough to rerun twice per build, rich enough to exercise every
/// store feature. Ignores [`Scale`].
pub fn tiny(_scale: Scale) -> Campaign {
    let links = vec![
        (
            "const12".to_string(),
            crate::spec::AxisValue::Link(LinkSpec::Constant(Rate::from_mbps(12.0))),
        ),
        (
            "square12-24".to_string(),
            crate::spec::AxisValue::Link(LinkSpec::Square {
                a: Rate::from_mbps(12.0),
                b: Rate::from_mbps(24.0),
                half_period: SimDuration::from_millis(500),
            }),
        ),
    ];
    let base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::ZERO))
        .duration_secs(2)
        .warmup_secs(1);
    Campaign::new("tiny", base)
        .axis(Axis::schemes(&[Scheme::Abc, Scheme::Cubic]))
        .axis(Axis::new("link", links))
        .axis(Axis::seeds(&[1, 2]))
}

/// The scheme lineup for workload presets: ABC against the schemes an
/// application-limited flow most plausibly meets on a cellular path.
const WORKLOAD_LINEUP: [Scheme; 4] = [Scheme::Abc, Scheme::CubicCodel, Scheme::Cubic, Scheme::Bbr];

/// Web FCT sweep: scheme × offered load on a constant 12 Mbit/s
/// bottleneck. The `load` axis sets a Poisson request fleet (built-in
/// empirical object sizes) at that fraction of the link.
pub fn web_load_grid(scale: Scale) -> Campaign {
    let link = Rate::from_mbps(12.0);
    let loads = vec![
        ("0.2".to_string(), 0.2f64),
        ("0.5".to_string(), 0.5),
        ("0.8".to_string(), 0.8),
    ];
    let values = loads
        .into_iter()
        .map(|(label, load)| {
            let entry =
                WorkloadEntry::new(WorkloadSpec::Web(WebWorkload::poisson_load(load, link)));
            (label, AxisValue::Workloads(vec![entry]))
        })
        .collect();
    let mut base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(link))
        .duration(scale.secs(60, 10, 2))
        .warmup(SimDuration::ZERO);
    // the web fleet *is* the traffic; no bulk backlog underneath
    base.flows = FlowSchedule::Explicit(Vec::new());
    Campaign::new("web-load-grid", base)
        .axis(Axis::schemes(&WORKLOAD_LINEUP))
        .axis(Axis::new("load", values))
}

/// ABR video QoE sweep: scheme × cellular trace, one HD video session
/// per cell (ladder 350 k–4 M, 2 s chunks).
pub fn video_over_cellular(scale: Scale) -> Campaign {
    let duration = sim_duration(scale);
    let video = WorkloadEntry::new(WorkloadSpec::AbrVideo(AbrWorkload::hd(duration)));
    let mut base = cell_base(duration).warmup(SimDuration::ZERO);
    base.flows = FlowSchedule::Explicit(Vec::new());
    base.workloads = vec![video];
    Campaign::new("video-over-cellular", base)
        .axis(Axis::schemes(&WORKLOAD_LINEUP))
        .axis(Axis::traces(&traces(scale)))
}

/// RTC coexistence: a 300 kbit/s interactive stream sharing the
/// bottleneck with one bulk flow of the same scheme, per scheme — the
/// deadline-miss analogue of the paper's coexistence story.
pub fn rtc_coexist(scale: Scale) -> Campaign {
    let rtc = WorkloadEntry::new(WorkloadSpec::Rtc(RtcWorkload::video_call(300)));
    let mut base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
        .duration(scale.secs(60, 10, 2))
        .warmup(SimDuration::ZERO);
    base.flows = FlowSchedule::backlogged(1);
    base.workloads = vec![rtc];
    Campaign::new("rtc-coexist", base).axis(Axis::schemes(&WORKLOAD_LINEUP))
}

/// Dense-fleet scaling — the regime the arena flow tables and batched
/// ACK paths exist for. Each axis value is a staggered backlogged fleet
/// of `n` "users" sharing one 96 Mbit/s ABC bottleneck (the fleet ramps
/// in over the first fifth of the run), with a 100-client web request
/// fleet and an HD video session riding along for app-level tail
/// metrics. Counts: 10/100/1k, plus 10k at full scale; tiny stops at
/// 100 so the CI gate stays fast.
pub fn many_users(scale: Scale) -> Campaign {
    let link = Rate::from_mbps(96.0);
    let duration = scale.secs(60, 10, 2);
    let counts: &[u32] = scale.pick(
        &[10, 100, 1_000, 10_000][..],
        &[10, 100, 1_000][..],
        &[10, 100][..],
    );
    let values = counts
        .iter()
        .map(|&n| {
            let stagger = SimDuration::from_nanos(duration.as_nanos() / 5 / n as u64);
            (
                n.to_string(),
                AxisValue::Flows(FlowSchedule::Uniform {
                    n,
                    app: netsim::flow::TrafficSource::Backlogged,
                    stagger,
                    stagger_departures: false,
                }),
            )
        })
        .collect();
    let mut base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(link))
        .duration(duration)
        .warmup(SimDuration::ZERO);
    base.workloads = vec![
        WorkloadEntry::new(WorkloadSpec::Web(WebWorkload::fleet(100, 0.2))),
        WorkloadEntry::new(WorkloadSpec::AbrVideo(AbrWorkload::hd(duration))),
    ];
    Campaign::new("many-users", base).axis(Axis::new("clients", values))
}

/// Adversarial-network robustness: ABC vs Cubic on a clean 12 Mbit/s
/// bottleneck, swept across an impairment axis — an unimpaired control,
/// Bernoulli loss, Gilbert–Elliott burst loss, reordering, delay
/// jitter, a periodic link outage, and ACK decimation. Like every
/// preset this is a pure function of `Scale`, and the control point
/// shares the impaired points' node graph, so its bytes match the
/// equivalent impairment-free run.
pub fn robustness(scale: Scale) -> Campaign {
    let duration = scale.secs(60, 10, 2);
    // Outage timing scales with the run so every scale sees the link
    // flap at least once after warmup.
    let start = SimDuration::from_nanos(duration.as_nanos() / 4);
    let period = SimDuration::from_nanos(duration.as_nanos() / 2);
    let values = vec![
        ("none".to_string(), Vec::new()),
        (
            "loss-2pct".to_string(),
            vec![ImpairmentSpec::data(ImpairmentKind::Drop { p: 0.02 })],
        ),
        (
            "burst-loss".to_string(),
            vec![ImpairmentSpec::data(ImpairmentKind::GilbertElliott {
                p_good_bad: 0.01,
                p_bad_good: 0.2,
                loss_good: 0.0,
                loss_bad: 0.5,
            })],
        ),
        (
            "reorder".to_string(),
            vec![ImpairmentSpec::data(ImpairmentKind::Reorder {
                p: 0.05,
                hold: SimDuration::from_millis(5),
            })],
        ),
        (
            "jitter".to_string(),
            vec![ImpairmentSpec::data(ImpairmentKind::Jitter {
                max: SimDuration::from_millis(10),
            })],
        ),
        (
            "outage".to_string(),
            vec![ImpairmentSpec::data(ImpairmentKind::Outage {
                start,
                duration: SimDuration::from_millis(200),
                period: Some(period),
            })],
        ),
        (
            "ack-decimate".to_string(),
            vec![ImpairmentSpec::ack(ImpairmentKind::Decimate {
                keep_one_in: 2,
            })],
        ),
    ];
    let base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
        .duration(duration)
        .warmup(SimDuration::ZERO);
    Campaign::new("robustness", base)
        .axis(Axis::schemes(&[Scheme::Abc, Scheme::Cubic]))
        .axis(Axis::impairments(values))
}

/// Incremental-deployment coexistence (§4.1): ABC-Cubic against plain
/// ABC and plain Cubic, each run over an ABC bottleneck and over a
/// droptail bottleneck. On the ABC path ABC-Cubic should track ABC; on
/// the droptail path it should track Cubic — the differential the
/// `coexistence_differential` test suite pins.
pub fn coexist(scale: Scale) -> Campaign {
    let qdiscs = vec![
        (
            "abc".to_string(),
            AxisValue::Qdisc(QdiscSpec::AbcWith(AbcRouterConfig::default())),
        ),
        (
            "droptail".to_string(),
            AxisValue::Qdisc(QdiscSpec::DropTail),
        ),
    ];
    let base = ScenarioSpec::single(Scheme::AbcCubic, LinkSpec::Constant(Rate::from_mbps(12.0)))
        .duration(scale.secs(60, 10, 2))
        .warmup(SimDuration::ZERO);
    Campaign::new("coexist", base)
        .axis(Axis::schemes(&[
            Scheme::AbcCubic,
            Scheme::Abc,
            Scheme::Cubic,
        ]))
        .axis(Axis::new("qdisc", qdiscs))
        .axis(Axis::seeds(&[1, 2]))
}

/// A `k`-of-4 parking lot: hops 0..k run ABC routers, the rest droptail.
fn lot_with_abc_hops(k: usize) -> Topology {
    let hops = (0..4)
        .map(|i| {
            let hop = ParkingHop::new(LinkSpec::Constant(Rate::from_mbps(12.0)));
            if i < k {
                hop.qdisc(HopQdisc::Abc(AbcRouterConfig::default()))
            } else {
                hop.qdisc(HopQdisc::DropTail)
            }
        })
        .collect();
    Topology::ParkingLot { hops }
}

/// Multi-bottleneck incremental deployment: an ABC-Cubic flow rides a
/// 4-hop parking lot whose leading `k ∈ {0,1,2,4}` hops are ABC-capable,
/// while a Cubic cross flow enters at hop 1 and leaves after hop 2 a
/// quarter of the way into the run. The `coexistence` figure reads the
/// throughput share and queueing delay off this sweep.
pub fn parking_lot(scale: Scale) -> Campaign {
    let duration = scale.secs(60, 10, 2);
    let cross_start = SimTime::ZERO + SimDuration::from_nanos(duration.as_nanos() / 4);
    let abc_hops = vec![0usize, 1, 2, 4]
        .into_iter()
        .map(|k| (k.to_string(), AxisValue::Topology(lot_with_abc_hops(k))))
        .collect();
    let mut base = ScenarioSpec::parking_lot(
        Scheme::AbcCubic,
        vec![ParkingHop::new(LinkSpec::Constant(Rate::from_mbps(12.0)))],
    )
    .duration(duration)
    .warmup(SimDuration::ZERO);
    base.flows = FlowSchedule::Explicit(vec![
        FlowSpec::new("abc-cubic"),
        FlowSpec::new("cross-cubic")
            .scheme(Scheme::Cubic)
            .entry_hop(1)
            .exit_hop(2)
            .start_at(cross_start),
    ]);
    Campaign::new("parking-lot", base)
        .axis(Axis::new("abc_hops", abc_hops))
        .axis(Axis::seeds(&[1, 2]))
}

/// A preset builder: a pure `Scale → Campaign` function.
pub type PresetFn = fn(Scale) -> Campaign;

/// Every built-in campaign: `(name, description, builder)`.
pub fn all() -> Vec<(&'static str, &'static str, PresetFn)> {
    vec![
        (
            "tiny",
            "CI gate: 2 schemes × 2 links × 2 seeds, 2 s each",
            tiny as PresetFn,
        ),
        (
            "cellular-matrix",
            "Fig 9/15: cellular lineup × traces",
            cellular_matrix,
        ),
        (
            "explicit-matrix",
            "Fig 16: ABC vs XCP/XCPw/VCP/RCP × traces",
            explicit_matrix,
        ),
        ("pareto", "Fig 8: lineup over down/up/two-hop paths", pareto),
        ("rtt-grid", "Fig 18: RTT ∈ {20,50,100,200} ms", rtt_grid),
        (
            "seed-spread",
            "across-seed mean/CI: 2 schemes × 8 seeds",
            seed_spread,
        ),
        (
            "web-load-grid",
            "web FCT: schemes × offered load (Poisson short flows)",
            web_load_grid,
        ),
        (
            "video-over-cellular",
            "ABR video QoE: schemes × cellular traces",
            video_over_cellular,
        ),
        (
            "rtc-coexist",
            "RTC deadline misses beside a bulk flow, per scheme",
            rtc_coexist,
        ),
        (
            "many-users",
            "dense-fleet scaling: 10→10k staggered users on one ABC bottleneck",
            many_users,
        ),
        (
            "robustness",
            "adversarial networks: schemes × {loss, burst, reorder, jitter, outage, ACK decimation}",
            robustness,
        ),
        (
            "coexist",
            "incremental deployment: ABC-Cubic/ABC/Cubic × {ABC, droptail} bottleneck",
            coexist,
        ),
        (
            "parking-lot",
            "4-hop parking lot: ABC-capable hop count 0→4 vs a Cubic cross flow",
            parking_lot,
        ),
    ]
}

/// Look a preset up by name and build it at `scale`.
pub fn by_name(name: &str, scale: Scale) -> Option<Campaign> {
    all()
        .into_iter()
        .find(|(n, ..)| *n == name)
        .map(|(_, _, f)| f(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_expands_deterministically() {
        for (name, _, build) in all() {
            let a = build(Scale::Tiny);
            let b = build(Scale::Tiny);
            let (pa, pb) = (a.expand(), b.expand());
            assert!(!pa.is_empty(), "{name} expands to nothing");
            assert_eq!(pa.len(), pb.len(), "{name} expansion size changed");
            for (x, y) in pa.iter().zip(&pb) {
                assert_eq!(x.ordinal, y.ordinal, "{name} ordinal changed");
                assert_eq!(x.coords, y.coords, "{name} coords changed");
            }
        }
    }

    #[test]
    fn tiny_is_exactly_eight_points() {
        let pts = tiny(Scale::Tiny).expand();
        assert_eq!(pts.len(), 8);
        assert_eq!(pts[0].coords.key(), "scheme=ABC,link=const12,seed=1");
    }

    #[test]
    fn by_name_resolves_and_rejects() {
        assert!(by_name("tiny", Scale::Tiny).is_some());
        assert!(by_name("rtt-grid", Scale::Tiny).is_some());
        assert!(by_name("nope", Scale::Tiny).is_none());
    }

    #[test]
    fn many_users_truncates_counts_by_scale() {
        assert_eq!(many_users(Scale::Tiny).expand().len(), 2);
        assert_eq!(many_users(Scale::Fast).expand().len(), 3);
        assert_eq!(many_users(Scale::Full).expand().len(), 4);
        // every fleet ramps in over the first fifth of the run
        for p in many_users(Scale::Tiny).expand() {
            match &p.spec.flows {
                FlowSchedule::Uniform { n, stagger, .. } => {
                    assert!(*n >= 10);
                    assert!(*stagger * *n as u64 <= p.spec.duration);
                }
                other => panic!("expected Uniform fleet, got {other:?}"),
            }
        }
    }

    #[test]
    fn coexist_and_parking_lot_shapes() {
        let pts = coexist(Scale::Tiny).expand();
        assert_eq!(pts.len(), 3 * 2 * 2);
        assert_eq!(pts[0].coords.key(), "scheme=ABC-Cubic,qdisc=abc,seed=1");

        let lot = parking_lot(Scale::Tiny).expand();
        assert_eq!(lot.len(), 4 * 2);
        for p in &lot {
            match &p.spec.topology {
                Topology::ParkingLot { hops } => assert_eq!(hops.len(), 4),
                other => panic!("expected a parking lot, got {other:?}"),
            }
            match &p.spec.flows {
                FlowSchedule::Explicit(flows) => {
                    assert_eq!(flows.len(), 2);
                    assert_eq!(flows[1].entry_hop, 1);
                    assert_eq!(flows[1].exit_hop, Some(2));
                }
                other => panic!("expected explicit flows, got {other:?}"),
            }
        }
    }

    #[test]
    fn rtt_grid_reduces_lineup_below_full_scale() {
        assert_eq!(rtt_grid(Scale::Tiny).expand().len(), 3 * 4);
        assert_eq!(
            rtt_grid(Scale::Full).size_unfiltered(),
            CELLULAR_LINEUP.len() * 4
        );
    }
}
