//! CoDel [Nichols & Jacobson, ACM Queue 2012], the controlled-delay AQM
//! the paper pairs with Cubic ("Cubic+Codel"). Standard parameters:
//! target sojourn 5 ms, interval 100 ms, square-root drop-rate law.

use netsim::packet::{Ecn, Packet};
use netsim::queue::{Qdisc, QdiscStats};
use netsim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
pub struct CodelConfig {
    /// Acceptable standing sojourn time.
    pub target: SimDuration,
    /// Window in which sojourn must dip below target at least once.
    pub interval: SimDuration,
    /// Buffer limit (packets).
    pub buffer_pkts: usize,
    /// Mark CE instead of dropping for ECN-capable packets.
    pub ecn_marking: bool,
}

impl Default for CodelConfig {
    fn default() -> Self {
        CodelConfig {
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
            buffer_pkts: 250,
            ecn_marking: false,
        }
    }
}

pub struct Codel {
    cfg: CodelConfig,
    queue: VecDeque<Box<Packet>>,
    bytes: u64,
    /// Time at which the sojourn first exceeded target continuously.
    first_above: Option<SimTime>,
    dropping: bool,
    drop_next: SimTime,
    drop_count: u32,
    last_drop_count: u32,
    stats: QdiscStats,
}

impl Codel {
    pub fn new(cfg: CodelConfig) -> Self {
        assert!(!cfg.interval.is_zero());
        Codel {
            cfg,
            queue: VecDeque::new(),
            bytes: 0,
            first_above: None,
            dropping: false,
            drop_next: SimTime::ZERO,
            drop_count: 0,
            last_drop_count: 0,
            stats: QdiscStats::default(),
        }
    }

    /// `interval / sqrt(count)` — the CoDel control law.
    fn control_law(&self, t: SimTime, count: u32) -> SimTime {
        t + SimDuration::from_secs_f64(
            self.cfg.interval.as_secs_f64() / (count.max(1) as f64).sqrt(),
        )
    }

    /// Should the head packet be dropped? Implements the "sojourn above
    /// target for a full interval" state machine.
    fn ok_to_drop(&mut self, sojourn: SimDuration, now: SimTime) -> bool {
        if sojourn < self.cfg.target {
            self.first_above = None;
            return false;
        }
        match self.first_above {
            None => {
                self.first_above = Some(now + self.cfg.interval);
                false
            }
            Some(t) => now >= t,
        }
    }

    fn pop(&mut self) -> Option<Box<Packet>> {
        let p = self.queue.pop_front()?;
        self.bytes -= p.size as u64;
        Some(p)
    }

    /// Drop or CE-mark one packet. Returns the packet if it was marked
    /// (and should still be transmitted), `None` if dropped.
    fn drop_or_mark(&mut self, mut pkt: Box<Packet>) -> Option<Box<Packet>> {
        if self.cfg.ecn_marking && pkt.ecn.is_ect() {
            pkt.ecn = Ecn::Ce;
            self.stats.ce_marked += 1;
            Some(pkt)
        } else {
            self.stats.dropped_pkts += 1;
            None
        }
    }
}

impl Qdisc for Codel {
    netsim::impl_qdisc_downcast!();

    fn enqueue(&mut self, mut pkt: Box<Packet>, now: SimTime) -> bool {
        if self.queue.len() >= self.cfg.buffer_pkts {
            self.stats.dropped_pkts += 1;
            return false;
        }
        pkt.enqueued_at = now;
        self.bytes += pkt.size as u64;
        self.queue.push_back(pkt);
        self.stats.enqueued_pkts += 1;
        true
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Box<Packet>> {
        loop {
            let pkt = self.pop()?;
            let sojourn = now.since(pkt.enqueued_at);
            let drop_ok = self.ok_to_drop(sojourn, now);

            if self.dropping {
                if !drop_ok {
                    self.dropping = false;
                } else if now >= self.drop_next {
                    // drop (or mark) and reschedule by the sqrt law
                    self.drop_count += 1;
                    match self.drop_or_mark(pkt) {
                        Some(marked) => {
                            // marking substitutes for dropping: deliver it
                            self.drop_next = self.control_law(self.drop_next, self.drop_count);
                            self.stats.dequeued_pkts += 1;
                            self.stats.dequeued_bytes += marked.size as u64;
                            return Some(marked);
                        }
                        None => {
                            self.drop_next = self.control_law(self.drop_next, self.drop_count);
                            continue; // dropped: try the next packet
                        }
                    }
                }
            } else if drop_ok {
                // enter dropping state
                self.dropping = true;
                // resume from the previous drop rate if we were dropping
                // recently (standard CoDel refinement)
                let delta = self.drop_count.saturating_sub(self.last_drop_count);
                self.drop_count = if delta > 1 && now < self.drop_next + self.cfg.interval * 16 {
                    delta
                } else {
                    1
                };
                self.last_drop_count = self.drop_count;
                match self.drop_or_mark(pkt) {
                    Some(marked) => {
                        self.drop_next = self.control_law(now, self.drop_count);
                        self.stats.dequeued_pkts += 1;
                        self.stats.dequeued_bytes += marked.size as u64;
                        return Some(marked);
                    }
                    None => {
                        self.drop_next = self.control_law(now, self.drop_count);
                        continue;
                    }
                }
            }

            self.stats.dequeued_pkts += 1;
            self.stats.dequeued_bytes += pkt.size as u64;
            return Some(pkt);
        }
    }

    fn peek_size(&self) -> Option<u32> {
        self.queue.front().map(|p| p.size)
    }

    fn len_pkts(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn head_sojourn(&self, now: SimTime) -> Option<SimDuration> {
        self.queue.front().map(|p| now.since(p.enqueued_at))
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Feedback, FlowId, NodeId, Route};

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn pkt(seq: u64) -> Box<Packet> {
        Box::new(Packet {
            flow: FlowId(0),
            seq,
            size: 1500,
            ecn: Ecn::NotEct,
            feedback: Feedback::None,
            abc_capable: false,
            sent_at: SimTime::ZERO,
            retransmit: false,
            ack: None,
            route: Route::new(vec![(NodeId(0), SimDuration::ZERO)]),
            hop: 0,
            enqueued_at: SimTime::ZERO,
        })
    }

    #[test]
    fn no_drops_below_target() {
        let mut q = Codel::new(CodelConfig::default());
        for i in 0..100 {
            q.enqueue(pkt(i), at(i));
            // dequeue 3ms later: below 5ms target
            assert!(q.dequeue(at(i + 3)).is_some());
        }
        assert_eq!(q.stats().dropped_pkts, 0);
    }

    #[test]
    fn sustained_high_sojourn_triggers_drops() {
        let mut q = Codel::new(CodelConfig::default());
        // keep ~50 packets of standing queue; dequeue one per ms with
        // 50ms sojourn for well over an interval
        for i in 0..50 {
            q.enqueue(pkt(i), at(i));
        }
        let mut dropped_any = false;
        // seq tracks t one-to-one
        for t in 50..500u64 {
            q.enqueue(pkt(t), at(t));
            let before = q.stats().dropped_pkts;
            q.dequeue(at(t));
            if q.stats().dropped_pkts > before {
                dropped_any = true;
            }
        }
        assert!(dropped_any, "CoDel never dropped under sustained load");
        assert!(q.stats().dropped_pkts > 2, "drop rate should escalate");
    }

    #[test]
    fn drop_rate_escalates_with_sqrt_law() {
        let mut q = Codel::new(CodelConfig::default());
        q.dropping = true;
        q.drop_count = 1;
        let t0 = at(1000);
        let next1 = q.control_law(t0, 1);
        let next4 = q.control_law(t0, 4);
        // interval/sqrt(4) = half of interval/sqrt(1)
        let d1 = next1.since(t0).as_millis_f64();
        let d4 = next4.since(t0).as_millis_f64();
        assert!((d1 - 100.0).abs() < 1e-6);
        assert!((d4 - 50.0).abs() < 1e-6);
    }

    #[test]
    fn ecn_mode_marks_instead_of_dropping() {
        let mut q = Codel::new(CodelConfig {
            ecn_marking: true,
            ..Default::default()
        });
        for i in 0..50 {
            let mut p = pkt(i);
            p.ecn = Ecn::Brake; // ECT(0): ECN-capable
            q.enqueue(p, at(i));
        }
        let mut marked = 0;
        // seq tracks t one-to-one
        for t in 50..500u64 {
            let mut p = pkt(t);
            p.ecn = Ecn::Brake;
            q.enqueue(p, at(t));
            if let Some(out) = q.dequeue(at(t)) {
                if out.ecn == Ecn::Ce {
                    marked += 1;
                }
            }
        }
        assert!(marked > 0, "ECN CoDel should CE-mark");
        assert_eq!(q.stats().dropped_pkts, 0, "ECN mode should not drop");
    }

    #[test]
    fn recovers_when_queue_drains() {
        let mut q = Codel::new(CodelConfig::default());
        // drive into dropping state
        for i in 0..50 {
            q.enqueue(pkt(i), at(i));
        }
        // seq tracks t one-to-one
        for t in 50..400u64 {
            q.enqueue(pkt(t), at(t));
            q.dequeue(at(t));
        }
        assert!(q.dropping);
        // now drain: low sojourn should exit dropping state
        while q.len_pkts() > 0 {
            q.dequeue(at(400));
        }
        q.enqueue(pkt(400), at(500));
        q.dequeue(at(500)); // zero sojourn
        assert!(!q.dropping, "should exit dropping after sojourn falls");
    }
}
