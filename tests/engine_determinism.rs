//! The engine's reproducibility contract: a scenario's result is a pure
//! function of its spec (including the seed) — independent of process,
//! repetition, batch placement, or worker-pool size.

use abc_repro::abc_core::coexist::WeightPolicy;
use abc_repro::experiments::{
    LinkSpec, PoissonShortFlows, QdiscSpec, Report, ScenarioEngine, ScenarioSpec, Scheme,
};
use abc_repro::netsim::rate::Rate;

/// A spec that exercises every stochastic code path the engine owns:
/// seeded Poisson short-flow arrivals on a dual-queue router.
fn churny_spec(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(48.0)))
        .flows(2)
        .duration_secs(4)
        .warmup_secs(1)
        .seed(seed)
        .qdisc(QdiscSpec::DualQueue(WeightPolicy::MaxMin {
            headroom: 0.10,
        }));
    spec.short_flows = Some(PoissonShortFlows {
        load: 0.25,
        bytes: 10_000,
        scheme: Scheme::Cubic,
    });
    spec
}

fn tiny(scheme: Scheme) -> ScenarioSpec {
    ScenarioSpec::single(scheme, LinkSpec::Constant(Rate::from_mbps(12.0)))
        .duration_secs(2)
        .warmup_secs(1)
}

#[test]
fn same_spec_same_seed_is_bit_identical() {
    let engine = ScenarioEngine::new();
    let a = engine.run(&churny_spec(7));
    let b = engine.run(&churny_spec(7));
    // Report compares every f64 metric and series by bit pattern: this is
    // bit-identity, not approximate equality.
    assert_eq!(a, b, "two runs of one spec diverged");
}

#[test]
fn wifi_reports_with_nan_utilization_compare_equal() {
    // Wi-Fi has no opportunity accounting, so utilization is NaN; the
    // bitwise Report comparison must still see identical runs as equal.
    let spec = ScenarioSpec::wifi(
        Scheme::AbcDt(60),
        1,
        abc_repro::experiments::McsSpec::Fixed(5),
    )
    .duration_secs(2)
    .warmup_secs(1);
    let engine = ScenarioEngine::new();
    let a = engine.run(&spec);
    assert!(a.utilization.is_nan(), "wifi utilization should be NaN");
    assert_eq!(a, engine.run(&spec), "identical wifi runs diverged");
}

#[test]
fn different_seed_changes_the_churn() {
    let engine = ScenarioEngine::new();
    let a = engine.run(&churny_spec(7));
    let b = engine.run(&churny_spec(8));
    assert_ne!(
        a, b,
        "reseeding the Poisson arrivals should perturb the run"
    );
}

#[test]
fn run_batch_is_bit_identical_to_serial() {
    let specs = vec![
        churny_spec(7),
        tiny(Scheme::Abc),
        tiny(Scheme::Cubic),
        tiny(Scheme::CubicCodel),
        tiny(Scheme::Xcp),
        tiny(Scheme::Vegas),
    ];
    let serial: Vec<Report> = specs
        .iter()
        .map(|s| ScenarioEngine::with_threads(1).run(s))
        .collect();
    for threads in [2, 4, 8] {
        let batch = ScenarioEngine::with_threads(threads).run_batch(&specs);
        assert_eq!(batch.len(), specs.len());
        for (i, (a, b)) in serial.iter().zip(&batch).enumerate() {
            assert_eq!(
                a, b,
                "spec {i} changed its result on a {threads}-thread pool"
            );
        }
    }
}

#[test]
fn run_batch_executes_scenarios_concurrently() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    // Four workers must all be inside the closure at once to get past the
    // barrier; a serial (or under-parallel) run_batch would deadlock here,
    // so finishing at all *proves* ≥4 scenarios ran in parallel. The
    // atomic records the observed concurrency for the assertion message.
    const N: usize = 4;
    let barrier = Barrier::new(N);
    let inside = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let specs: Vec<ScenarioSpec> = [Scheme::Abc, Scheme::Cubic, Scheme::Vegas, Scheme::NewReno]
        .map(tiny)
        .into_iter()
        .collect();

    let reports = ScenarioEngine::with_threads(N).run_batch_map(&specs, |engine, spec| {
        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
        peak.fetch_max(now, Ordering::SeqCst);
        barrier.wait();
        inside.fetch_sub(1, Ordering::SeqCst);
        engine.run(spec)
    });

    assert_eq!(reports.len(), N);
    assert!(
        peak.load(Ordering::SeqCst) >= N,
        "observed concurrency {} < {N}",
        peak.load(Ordering::SeqCst)
    );
    for r in &reports {
        assert!(r.total_tput_mbps > 0.0, "{}", r.row());
    }
}
