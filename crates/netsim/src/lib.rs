#![warn(missing_docs)]

//! # netsim — deterministic discrete-event network simulator
//!
//! The substrate under the ABC reproduction: a single-threaded,
//! bit-reproducible event simulator with the pieces a congestion-control
//! evaluation needs —
//!
//! * [`time`] / [`rate`] — integer-nanosecond clocks, bit-per-second rates;
//! * [`packet`] — packets with the 2 ECN bits (ABC's accel/brake
//!   reinterpretation) and typed explicit-feedback headers;
//! * [`sim`] / [`event`] / [`node`] — the event loop;
//! * [`link`] — capacity processes (constant, steps, square wave) and
//!   transmitters (serialization links, Mahimahi-style trace links);
//! * [`queue`] — the `Qdisc` trait ABC/AQM/XCP/RCP/VCP routers implement;
//! * [`linkqueue`] — the node gluing a qdisc to a transmitter;
//! * [`flow`] — a reliable sender with pluggable [`flow::CongestionControl`]
//!   and a feedback-echoing sink;
//! * [`metrics`] / [`stats`] — utilization, per-packet delay percentiles,
//!   Jain fairness, throughput time series;
//! * [`telemetry`] — the deterministic observability layer: signal probes
//!   threaded through every [`node::Context`], an opt-in wall-clock
//!   event-loop profiler, and the JSONL dynamics sidecar.
//!
//! Design follows the smoltcp school: event-driven, no async runtime (the
//! workload is CPU-bound and deterministic), simplicity and robustness over
//! cleverness, and an explicit inventory of what is and isn't modeled.

pub mod event;
pub mod fault;
pub mod flow;
pub mod link;
pub mod linkqueue;
pub mod metrics;
pub mod node;
pub mod packet;
pub mod queue;
pub mod rate;
pub mod sim;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use fault::{Direction, Impairment, ImpairmentKind, ImpairmentSpec, ImpairmentWire, LossyWire};
pub use flow::{AckEvent, CongestionControl, Pacing, Sender, Sink, TrafficSource};
pub use link::{ConstantRate, SerialLink, SquareWave, StepSchedule, TraceLink, Transmitter};
pub use linkqueue::LinkQueue;
pub use metrics::{new_hub, Metrics, MetricsHub};
pub use node::{Context, Node};
pub use packet::{AckData, Ecn, Feedback, FlowId, NodeId, Packet, Route, VcpLoad};
pub use queue::{DropTail, Qdisc, QdiscStats};
pub use rate::Rate;
pub use sim::{AbortReason, RunGuards, Simulator};
pub use telemetry::{TelemetryConfig, TelemetryHub, TelemetrySink};
pub use time::{SimDuration, SimTime};
