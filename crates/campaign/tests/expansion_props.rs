//! Property tests for campaign cartesian expansion: the expanded point
//! count equals the axis product minus the filtered points, expansion is
//! deterministic, and every expanded point satisfies every filter.

use campaign::spec::{Axis, AxisValue, Campaign, Coords, Filter};
use experiments::engine::ScenarioSpec;
use experiments::scenario::LinkSpec;
use experiments::Scheme;
use netsim::rate::Rate;
use proptest::prelude::*;

fn base() -> ScenarioSpec {
    ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
}

/// Build a campaign with the given axis sizes (axis `k` is named `a<k>`
/// and its labels are `"0"`, `"1"`, …, backed by seed values), plus an
/// optional filter rejecting one (axis, label) combination.
fn campaign_of(sizes: &[usize], reject: Option<(usize, usize)>) -> Campaign {
    let mut c = Campaign::new("prop", base());
    for (k, &n) in sizes.iter().enumerate() {
        let values: Vec<(String, AxisValue)> = (0..n)
            .map(|i| (i.to_string(), AxisValue::Seed(i as u64)))
            .collect();
        c = c.axis(Axis::new(format!("a{k}"), values));
    }
    if let Some((axis, label)) = reject {
        let axis_name = format!("a{}", axis % sizes.len());
        let label = (label % sizes[axis % sizes.len()]).to_string();
        c = c.filter(Filter::new(
            format!("reject {axis_name}={label}"),
            move |coords: &Coords| coords.get(&axis_name) != Some(label.as_str()),
        ));
    }
    c
}

/// Reference implementation: enumerate the full product naively and count
/// what the filters accept.
fn brute_force_accepted(c: &Campaign) -> Vec<String> {
    let mut keys = Vec::new();
    let total: usize = c.axes.iter().map(|a| a.len()).product();
    for ordinal in 0..total {
        let mut rem = ordinal;
        let mut labels: Vec<(String, String)> = Vec::new();
        for axis in c.axes.iter().rev() {
            labels.push((axis.name.clone(), axis.values[rem % axis.len()].0.clone()));
            rem /= axis.len();
        }
        labels.reverse();
        let coords = Coords(labels);
        if c.filters.iter().all(|f| f.accepts(&coords)) {
            keys.push(coords.key());
        }
    }
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unfiltered_count_is_the_axis_product(sizes in proptest::collection::vec(1usize..5, 1..4)) {
        let c = campaign_of(&sizes, None);
        let expected: usize = sizes.iter().product();
        prop_assert_eq!(c.size_unfiltered(), expected);
        prop_assert_eq!(c.expand().len(), expected);
    }

    #[test]
    fn filtered_count_is_product_minus_rejected(
        sizes in proptest::collection::vec(1usize..5, 1..4),
        axis in 0usize..8,
        label in 0usize..8,
    ) {
        let c = campaign_of(&sizes, Some((axis, label)));
        let points = c.expand();
        let reference = brute_force_accepted(&c);
        prop_assert_eq!(
            points.len(),
            reference.len(),
            "expansion disagrees with naive enumeration"
        );
        // the rejected slice is exactly one label of one axis: the product
        // with that axis shrunk by one value
        let k = axis % sizes.len();
        let mut shrunk = sizes.clone();
        shrunk[k] -= 1;
        let expected: usize = shrunk.iter().product();
        prop_assert_eq!(points.len(), expected);
    }

    #[test]
    fn expansion_is_deterministic(
        sizes in proptest::collection::vec(1usize..5, 1..4),
        axis in 0usize..8,
        label in 0usize..8,
    ) {
        let c = campaign_of(&sizes, Some((axis, label)));
        let a = c.expand();
        let b = c.expand();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.ordinal, y.ordinal);
            prop_assert_eq!(&x.coords, &y.coords);
            prop_assert_eq!(x.spec.seed, y.spec.seed);
        }
        // and it matches the reference enumeration order, key for key
        let reference = brute_force_accepted(&c);
        for (p, key) in a.iter().zip(&reference) {
            prop_assert_eq!(&p.coords.key(), key);
        }
    }

    #[test]
    fn every_expanded_point_satisfies_every_filter(
        sizes in proptest::collection::vec(1usize..5, 1..4),
        axis in 0usize..8,
        label in 0usize..8,
    ) {
        let c = campaign_of(&sizes, Some((axis, label)));
        for p in c.expand() {
            for f in &c.filters {
                prop_assert!(
                    f.accepts(&p.coords),
                    "point {} violates filter {}",
                    p.coords.key(),
                    f.name
                );
            }
            // ordinals stay within the unfiltered product and identify the
            // point's coordinates
            prop_assert!(p.ordinal < c.size_unfiltered());
        }
    }

    #[test]
    fn axis_values_are_applied_to_specs(sizes in proptest::collection::vec(1usize..5, 1..3)) {
        // the last axis is the fastest-varying and writes `seed`, so each
        // point's spec.seed must equal its last coordinate label
        let c = campaign_of(&sizes, None);
        for p in c.expand() {
            let last = p.coords.0.last().unwrap().1.parse::<u64>().unwrap();
            prop_assert_eq!(p.spec.seed, last);
        }
    }
}
