//! The campaign executor: chunked dispatch of expanded points onto
//! [`ScenarioEngine::run_batch`], with progress reporting on stderr.
//!
//! Results are **bit-identical** across reruns and worker-pool sizes: the
//! engine guarantees each report is a pure function of its spec, chunking
//! only affects dispatch granularity (never result order), and progress
//! goes to stderr so the artifact stream stays clean.

use crate::spec::{Campaign, Coords};
use experiments::engine::{ScenarioEngine, ScenarioSpec};
use experiments::report::Report;
use std::time::Instant;

/// How a campaign run is executed. `jobs: None` defers to
/// [`ScenarioEngine::new`], which honors the `ABC_JOBS` environment
/// variable and otherwise uses every core.
#[derive(Debug, Clone)]
pub struct RunOptions {
    pub jobs: Option<usize>,
    /// Scenarios per dispatch wave. Progress is reported after each wave,
    /// so smaller chunks mean finer progress at slightly more pool churn.
    pub chunk: usize,
    /// Report progress to stderr after every chunk.
    pub progress: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            jobs: None,
            chunk: 32,
            progress: false,
        }
    }
}

impl RunOptions {
    /// Quiet defaults for harnesses and tests.
    pub fn quiet() -> Self {
        RunOptions::default()
    }

    pub fn with_jobs(mut self, jobs: Option<usize>) -> Self {
        self.jobs = jobs;
        self
    }

    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    fn engine(&self) -> ScenarioEngine {
        match self.jobs {
            Some(n) => ScenarioEngine::with_threads(n),
            None => ScenarioEngine::new(),
        }
    }
}

/// One executed campaign point: its stable ordinal, coordinates, and the
/// engine's [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    pub ordinal: usize,
    pub coords: Coords,
    pub report: Report,
}

/// Expand and execute a campaign; `records[i]` belongs to the `i`-th
/// surviving point of [`Campaign::expand`].
pub fn run_campaign(campaign: &Campaign, opts: &RunOptions) -> Vec<RunRecord> {
    let points = campaign.expand();
    let engine = opts.engine();
    let total = points.len();
    let start = Instant::now();
    if opts.progress {
        eprintln!(
            "[abc-campaign] {}: {} scenarios ({} unfiltered) on {} worker(s)",
            campaign.name,
            total,
            campaign.size_unfiltered(),
            engine.threads().min(total.max(1)),
        );
    }
    let mut records = Vec::with_capacity(total);
    for chunk in points.chunks(opts.chunk.max(1)) {
        let specs: Vec<ScenarioSpec> = chunk.iter().map(|p| p.spec.clone()).collect();
        let reports = engine.run_batch(&specs);
        for (point, report) in chunk.iter().zip(reports) {
            records.push(RunRecord {
                ordinal: point.ordinal,
                coords: point.coords.clone(),
                report,
            });
        }
        if opts.progress {
            eprintln!(
                "[abc-campaign] {}: {}/{} scenarios ({:.0}%) in {:.1}s",
                campaign.name,
                records.len(),
                total,
                100.0 * records.len() as f64 / total.max(1) as f64,
                start.elapsed().as_secs_f64(),
            );
        }
    }
    records
}

/// First-seen order of the labels a set of records carries on `axis` —
/// for rendering, this reproduces the axis's declared value order.
pub fn labels_of(records: &[RunRecord], axis: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for r in records {
        if let Some(l) = r.coords.get(axis) {
            if !out.iter().any(|x| x == l) {
                out.push(l.to_string());
            }
        }
    }
    out
}

/// The record at the given axis labels, if present.
pub fn find<'a>(records: &'a [RunRecord], at: &[(&str, &str)]) -> Option<&'a RunRecord> {
    records.iter().find(|r| {
        at.iter()
            .all(|(axis, label)| r.coords.get(axis) == Some(*label))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Axis;
    use experiments::scenario::LinkSpec;
    use experiments::Scheme;
    use netsim::rate::Rate;

    fn tiny_campaign(chunk_seeds: &[u64]) -> Campaign {
        let base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
            .duration_secs(1)
            .warmup_secs(0);
        Campaign::new("unit", base)
            .axis(Axis::schemes(&[Scheme::Abc, Scheme::Cubic]))
            .axis(Axis::seeds(chunk_seeds))
    }

    #[test]
    fn chunked_dispatch_matches_single_batch() {
        let c = tiny_campaign(&[1, 2]);
        let one = run_campaign(
            &c,
            &RunOptions {
                chunk: 64,
                ..RunOptions::quiet()
            },
        );
        let many = run_campaign(
            &c,
            &RunOptions {
                chunk: 1,
                ..RunOptions::quiet()
            },
        );
        assert_eq!(one.len(), 4);
        assert_eq!(one, many, "chunk size changed results");
    }

    #[test]
    fn labels_and_find_address_records() {
        let c = tiny_campaign(&[1]);
        let records = run_campaign(&c, &RunOptions::quiet());
        assert_eq!(labels_of(&records, "scheme"), vec!["ABC", "Cubic"]);
        let abc = find(&records, &[("scheme", "ABC"), ("seed", "1")]).unwrap();
        assert_eq!(abc.report.scheme, "ABC");
        assert!(find(&records, &[("scheme", "BBR")]).is_none());
    }
}
