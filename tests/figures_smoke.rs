//! Every figure harness must run end to end through the scenario engine
//! without panicking. Runs at `Scale::Tiny` (≤ 2 s of simulated time per
//! scenario), so this is a wiring check, not a numbers check — the
//! numeric assertions live in each figure's own unit tests.

use abc_repro::campaign::figures;
use abc_repro::experiments::figures::Scale;

#[test]
fn figure_index_is_complete() {
    let all = figures::all();
    assert!(all.len() >= 20, "figure index shrank to {}", all.len());
    for (id, desc, _) in &all {
        assert!(!id.is_empty() && !desc.is_empty());
    }
}

/// Split into a handful of tests so the suite parallelizes across the
/// cargo test harness' threads; each runs its figures at `Tiny` scale
/// (≤ 2 s of simulated time per scenario).
fn run_figs(ids: &[&str]) {
    let all = figures::all();
    for id in ids {
        let (_, _, f) = all
            .iter()
            .find(|(fid, ..)| fid == id)
            .unwrap_or_else(|| panic!("figure {id:?} missing from index"));
        let out = f(Scale::Tiny);
        assert!(!out.trim().is_empty(), "figure {id} produced empty output");
    }
}

#[test]
fn smoke_motivation_and_ablations() {
    run_figs(&["fig1", "fig2", "fig3", "pk_abc", "jain", "marking"]);
}

#[test]
fn smoke_wifi_figures() {
    run_figs(&["fig4", "fig5", "fig10", "fig14"]);
}

#[test]
fn smoke_coexistence_figures() {
    run_figs(&["fig6", "fig7", "fig11", "fig12", "fig13"]);
}

#[test]
fn smoke_pareto_and_matrix_figures() {
    run_figs(&["table1", "fig8", "fig9", "fig15", "fig18"]);
}

#[test]
fn smoke_explicit_and_stability_figures() {
    run_figs(&["fig16", "fig17", "stability"]);
}
