//! Space-Saving top-K heavy hitters [Metwally et al., ICDT 2005].
//!
//! The ABC router's coexistence logic (§5.2) measures the rate of the K
//! largest flows in each queue with O(K) state; everything else is treated
//! as short-flow aggregate.

use netsim::packet::FlowId;
use std::collections::HashMap;

/// One monitored flow: estimated count and maximum possible overestimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopEntry {
    /// The monitored flow.
    pub flow: FlowId,
    /// Estimated byte count (may overestimate by up to `error`).
    pub count: u64,
    /// Maximum possible overestimate inherited at insertion.
    pub error: u64,
}

/// The Space-Saving sketch over byte counts.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    k: usize,
    counts: HashMap<FlowId, (u64, u64)>, // flow -> (count, error)
}

impl SpaceSaving {
    /// A sketch tracking at most `k` flows.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        SpaceSaving {
            k,
            counts: HashMap::with_capacity(k + 1),
        }
    }

    /// The configured capacity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Record `bytes` for `flow`.
    pub fn record(&mut self, flow: FlowId, bytes: u64) {
        if let Some((c, _)) = self.counts.get_mut(&flow) {
            *c += bytes;
            return;
        }
        if self.counts.len() < self.k {
            self.counts.insert(flow, (bytes, 0));
            return;
        }
        // evict the current minimum; the newcomer inherits its count as
        // the overestimation error
        let (&victim, &(min_count, _)) = self
            .counts
            .iter()
            .min_by_key(|(_, &(c, _))| c)
            .expect("non-empty by construction");
        self.counts.remove(&victim);
        self.counts.insert(flow, (min_count + bytes, min_count));
    }

    /// Current top-K entries, largest first.
    pub fn top(&self) -> Vec<TopEntry> {
        let mut v: Vec<TopEntry> = self
            .counts
            .iter()
            .map(|(&flow, &(count, error))| TopEntry { flow, count, error })
            .collect();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.flow.cmp(&b.flow)));
        v
    }

    /// Total bytes attributed to monitored flows (upper bound).
    pub fn monitored_bytes(&self) -> u64 {
        self.counts.values().map(|&(c, _)| c).sum()
    }

    /// Forget all counts (called at each weight-update epoch).
    pub fn reset(&mut self) {
        self.counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_k() {
        let mut s = SpaceSaving::new(4);
        s.record(FlowId(1), 100);
        s.record(FlowId(2), 50);
        s.record(FlowId(1), 100);
        let top = s.top();
        assert_eq!(top[0].flow, FlowId(1));
        assert_eq!(top[0].count, 200);
        assert_eq!(top[0].error, 0);
        assert_eq!(top[1].count, 50);
    }

    #[test]
    fn heavy_hitters_survive_churn() {
        let mut s = SpaceSaving::new(3);
        // two elephants + a parade of mice
        for i in 0..1000u32 {
            s.record(FlowId(100), 1000);
            s.record(FlowId(200), 800);
            s.record(FlowId(i % 50), 10); // 50 rotating mice
        }
        let top = s.top();
        assert_eq!(top[0].flow, FlowId(100));
        assert_eq!(top[1].flow, FlowId(200));
        // elephant counts are overestimates by at most `error`
        assert!(top[0].count >= 1_000_000);
        assert!(top[0].count - top[0].error <= 1_000_000 + 10_000);
    }

    #[test]
    fn guaranteed_count_lower_bound() {
        let mut s = SpaceSaving::new(2);
        for _ in 0..100 {
            s.record(FlowId(1), 10);
        }
        s.record(FlowId(2), 5);
        s.record(FlowId(3), 5); // evicts FlowId(2), inherits its count
        let top = s.top();
        let f3 = top.iter().find(|e| e.flow == FlowId(3)).unwrap();
        assert!(f3.count - f3.error == 5, "true contribution recoverable");
    }

    #[test]
    fn reset_clears() {
        let mut s = SpaceSaving::new(2);
        s.record(FlowId(1), 10);
        s.reset();
        assert!(s.top().is_empty());
        assert_eq!(s.monitored_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = SpaceSaving::new(0);
    }
}
