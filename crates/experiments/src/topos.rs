//! Beyond-single-bottleneck presets: the two-hop cellular path (Fig. 8c),
//! the wireless+wired mixed-bottleneck path (Figs. 6, 11), and the
//! dual-queue coexistence router (Figs. 7, 12).
//!
//! Like [`CellScenario`](crate::scenario::CellScenario), these are
//! builders over [`crate::engine`]: each preset denotes a
//! [`ScenarioSpec`], and every simulator is constructed by the
//! [`ScenarioEngine`].

use crate::engine::{
    FlowSchedule, FlowSpec, PoissonShortFlows, QdiscSpec, ScenarioEngine, ScenarioSpec,
};
use crate::report::{downsample, Report};
use crate::scenario::LinkSpec;
use crate::scheme::Scheme;
use abc_core::coexist::{DualQueue, WeightPolicy};
use netsim::flow::TrafficSource;
use netsim::packet::FlowId;
use netsim::queue::Qdisc;
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};

/// Fig. 8c: a flow traversing *two* potential bottlenecks in series (the
/// cellular uplink then downlink); both run the scheme's qdisc. ACKs
/// return over plain propagation.
pub struct TwoHopScenario {
    /// The scheme the flow (and both hops' qdiscs) run.
    pub scheme: Scheme,
    /// The uplink bottleneck.
    pub up: LinkSpec,
    /// The downlink bottleneck.
    pub down: LinkSpec,
    /// Path round-trip propagation delay.
    pub rtt: SimDuration,
    /// Buffer at each hop.
    pub buffer_pkts: usize,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Measurements before this offset are discarded.
    pub warmup: SimDuration,
}

impl TwoHopScenario {
    /// The Fig. 8c defaults: 100 ms RTT, 250-pkt buffers, 60 s + 5 s
    /// warmup.
    pub fn new(scheme: Scheme, up: LinkSpec, down: LinkSpec) -> Self {
        TwoHopScenario {
            scheme,
            up,
            down,
            rtt: SimDuration::from_millis(100),
            buffer_pkts: 250,
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(5),
        }
    }

    /// The [`ScenarioSpec`] this preset denotes.
    pub fn spec(&self) -> ScenarioSpec {
        ScenarioSpec::two_hop(self.scheme, self.up.clone(), self.down.clone())
            .rtt(self.rtt)
            .buffer_pkts(self.buffer_pkts)
            .duration(self.duration)
            .warmup(self.warmup)
    }

    /// Build, run to completion, and report.
    pub fn run(&self) -> Report {
        ScenarioEngine::new().run(&self.spec())
    }
}

/// Cross-traffic pattern on the wired hop of [`MixedPathScenario`].
#[derive(Debug, Clone, Copy)]
pub enum CrossTraffic {
    /// No cross traffic.
    None,
    /// A Cubic flow that is backlogged during `on`, silent during `off`.
    OnOffCubic {
        /// Backlogged-phase length.
        on: SimDuration,
        /// Silent-phase length.
        off: SimDuration,
    },
}

/// Figs. 6 and 11: an ABC flow whose path is ABC-wireless followed by a
/// fixed-rate wired droptail link, optionally shared with Cubic cross
/// traffic. The bottleneck flips between hops as the wireless rate steps.
pub struct MixedPathScenario {
    /// The ABC-controlled wireless hop.
    pub wireless: LinkSpec,
    /// The fixed-rate wired droptail hop.
    pub wired_rate: Rate,
    /// Path round-trip propagation delay.
    pub rtt: SimDuration,
    /// Buffer at each hop.
    pub buffer_pkts: usize,
    /// Cross traffic on the wired hop.
    pub cross: CrossTraffic,
    /// Simulated duration.
    pub duration: SimDuration,
}

/// Samples of the ABC flow's two windows over time (Fig. 6's bottom panel).
#[derive(Debug, Clone, Default)]
pub struct WindowTrace {
    /// (t s, w_abc pkts, w_nonabc pkts, goodput Mbit/s)
    pub samples: Vec<(f64, f64, f64, f64)>,
}

/// What [`MixedPathScenario::run`] returns: the report plus the traces
/// Figs. 6/11 plot.
pub struct MixedPathResult {
    /// The headline report (tracking the ABC flow).
    pub report: Report,
    /// The ABC sender's dual windows over time.
    pub windows: WindowTrace,
    /// (t s, queuing delay ms) at the *wireless* hop.
    pub wireless_qdelay: Vec<(f64, f64)>,
    /// (t s, queuing delay ms) at the wired hop.
    pub wired_qdelay: Vec<(f64, f64)>,
    /// Cross-traffic goodput series (Mbit/s).
    pub cross_tput: Vec<(f64, f64)>,
}

impl MixedPathScenario {
    /// The [`ScenarioSpec`] this preset denotes.
    pub fn spec(&self) -> ScenarioSpec {
        let mut flows = vec![FlowSpec::new("abc")];
        if let CrossTraffic::OnOffCubic { on, off } = self.cross {
            flows.push(
                FlowSpec::new("cross")
                    .scheme(Scheme::Cubic)
                    .app(TrafficSource::OnOff { on, off })
                    .entry_hop(1),
            );
        }
        let mut spec = ScenarioSpec::mixed_path(self.wireless.clone(), self.wired_rate)
            .rtt(self.rtt)
            .buffer_pkts(self.buffer_pkts)
            .duration(self.duration);
        spec.flows = FlowSchedule::Explicit(flows);
        spec
    }

    /// Build and run, sampling the ABC sender's windows every 200 ms.
    pub fn run(&self) -> MixedPathResult {
        let mut b = ScenarioEngine::new().build(&self.spec());

        // run in chunks, sampling the ABC sender's windows
        let mut windows = WindowTrace::default();
        let chunk = SimDuration::from_millis(200);
        let mut t = SimTime::ZERO;
        let end = b.end_time();
        let mut last_bytes = 0u64;
        while t < end {
            b.run_chunk(chunk);
            t += chunk;
            let s = b.sender(0);
            let cc = s.cc();
            let (wabc, wnon) = cc
                .as_abc_windows()
                .unwrap_or((cc.cwnd_pkts(), cc.cwnd_pkts()));
            let bytes = b
                .hub
                .borrow()
                .flows
                .get(&FlowId(1))
                .map(|f| f.delivered_bytes)
                .unwrap_or(0);
            let goodput = (bytes - last_bytes) as f64 * 8.0 / chunk.as_secs_f64() / 1e6;
            last_bytes = bytes;
            windows.samples.push((t.as_secs_f64(), wabc, wnon, goodput));
        }

        let hub = b.hub.clone();
        let mut report = b.finish();
        let hubref = hub.borrow();
        let series = |tag: &str| -> Vec<(f64, f64)> {
            hubref.links[tag]
                .qdelay_series
                .iter()
                .map(|(t, d)| (t.as_secs_f64(), d.as_millis_f64()))
                .collect()
        };
        let wireless_qdelay = downsample(&series("wireless"), 600);
        let wired_qdelay = downsample(&series("wired"), 600);
        // The headline series tracks the ABC flow, not the cross traffic;
        // wired-hop drops are the ones that matter (the wireless hop is
        // ABC-controlled and effectively lossless).
        report.scheme = "ABC(mixed-path)".into();
        report.tput_series = hubref.throughput_series_mbps(FlowId(1));
        report.drops = hubref.links["wired"].dropped_pkts;
        MixedPathResult {
            report,
            windows,
            wireless_qdelay,
            wired_qdelay,
            cross_tput: hubref.throughput_series_mbps(FlowId(2)),
        }
    }
}

/// Figs. 7 & 12: long-lived ABC and Cubic flows sharing a dual-queue ABC
/// router, plus optional Poisson short (Cubic) flows at a target offered
/// load.
pub struct CoexistScenario {
    /// The shared bottleneck's rate.
    pub link_rate: Rate,
    /// Long-lived ABC flows.
    pub n_abc: u32,
    /// Long-lived Cubic flows.
    pub n_cubic: u32,
    /// The dual-queue scheduling policy.
    pub policy: WeightPolicy,
    /// Offered load of 10-KB short flows as a fraction of link rate.
    pub short_flow_load: f64,
    /// Path round-trip propagation delay.
    pub rtt: SimDuration,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Measurements before this offset are discarded.
    pub warmup: SimDuration,
    /// Stagger between long-flow arrivals (Fig. 7 uses ~25 s).
    pub stagger: SimDuration,
    /// Fixes the short-flow arrival process.
    pub seed: u64,
}

impl Default for CoexistScenario {
    fn default() -> Self {
        CoexistScenario {
            link_rate: Rate::from_mbps(96.0),
            n_abc: 3,
            n_cubic: 3,
            policy: WeightPolicy::MaxMin { headroom: 0.10 },
            short_flow_load: 0.0,
            rtt: SimDuration::from_millis(100),
            duration: SimDuration::from_secs(40),
            warmup: SimDuration::from_secs(5),
            stagger: SimDuration::ZERO,
            seed: 7,
        }
    }
}

/// What [`CoexistScenario::run`] returns.
pub struct CoexistResult {
    /// Per-flow average goodput (Mbit/s) of the long ABC flows.
    pub abc_tputs: Vec<f64>,
    /// Per-flow average goodput of the long Cubic flows.
    pub cubic_tputs: Vec<f64>,
    /// Goodput series per long flow (Fig. 7 top panel).
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// p95 queuing delay (ms) of the ABC class.
    pub abc_qdelay_p95_ms: f64,
    /// Short flows that completed within the run.
    pub short_flows_completed: u64,
}

impl CoexistScenario {
    /// The [`ScenarioSpec`] this preset denotes.
    pub fn spec(&self) -> ScenarioSpec {
        let mut flows = Vec::new();
        for i in 0..self.n_abc {
            flows.push(
                FlowSpec::new(format!("ABC {}", i + 1))
                    .scheme(Scheme::Abc)
                    .start_at(SimTime::ZERO + self.stagger * i as u64),
            );
        }
        for i in 0..self.n_cubic {
            flows.push(
                FlowSpec::new(format!("Cubic {}", i + 1))
                    .scheme(Scheme::Cubic)
                    .start_at(SimTime::ZERO + self.stagger * (self.n_abc + i) as u64),
            );
        }
        let mut spec = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(self.link_rate))
            .rtt(self.rtt)
            .duration(self.duration)
            .warmup(self.warmup)
            .seed(self.seed)
            .qdisc(QdiscSpec::DualQueue(self.policy));
        spec.flows = FlowSchedule::Explicit(flows);
        if self.short_flow_load > 0.0 {
            spec.short_flows = Some(PoissonShortFlows {
                load: self.short_flow_load,
                bytes: 10_000,
                scheme: Scheme::Cubic,
            });
        }
        spec
    }

    /// Build, run to completion, and report.
    pub fn run(&self) -> CoexistResult {
        self.run_sampled(|_, _, _, _| {})
    }

    /// Like [`CoexistScenario::run`], invoking `probe(t_secs, w_abc,
    /// abc_queue_pkts, other_queue_pkts)` every 100 ms of simulated time.
    pub fn run_sampled(&self, mut probe: impl FnMut(f64, f64, usize, usize)) -> CoexistResult {
        let mut b = ScenarioEngine::new().build(&self.spec());
        let long_flows: Vec<(String, FlowId)> = b
            .flows
            .iter()
            .filter(|(n, _)| !n.starts_with("short"))
            .cloned()
            .collect();
        let short_count = (b.flows.len() - long_flows.len()) as u64;

        let end = b.end_time();
        let mut t = SimTime::ZERO;
        while t < end {
            b.run_chunk(SimDuration::from_millis(100));
            t += SimDuration::from_millis(100);
            let lq = b.link_queue("bottleneck");
            if let Some(dq) = lq.qdisc().as_any_qdisc().downcast_ref::<DualQueue>() {
                probe(
                    t.as_secs_f64(),
                    dq.weight_abc(),
                    dq.abc_queue().len_pkts(),
                    dq.other_len_pkts(),
                );
            }
        }

        let hubref = b.hub.borrow();
        let window = self.duration - self.warmup;
        let tput = |f: FlowId| {
            hubref
                .flows
                .get(&f)
                .map(|r| r.throughput_over(window) / 1e6)
                .unwrap_or(0.0)
        };
        let abc_tputs: Vec<f64> = long_flows
            .iter()
            .filter(|(n, _)| n.starts_with("ABC"))
            .map(|(_, f)| tput(*f))
            .collect();
        let cubic_tputs: Vec<f64> = long_flows
            .iter()
            .filter(|(n, _)| n.starts_with("Cubic"))
            .map(|(_, f)| tput(*f))
            .collect();
        let series = long_flows
            .iter()
            .map(|(n, f)| (n.clone(), hubref.throughput_series_mbps(*f)))
            .collect();
        // ABC-class queuing delay: per-packet delays of ABC flows minus
        // propagation (the sink-side observable)
        let q = self.rtt / 4;
        let prop = (q + q).as_millis_f64();
        let mut abc_delays: Vec<f64> = long_flows
            .iter()
            .filter(|(n, _)| n.starts_with("ABC"))
            .filter_map(|(_, f)| hubref.flows.get(f))
            .flat_map(|r| r.delays_s.iter().map(|d| (d * 1e3 - prop).max(0.0)))
            .collect();
        abc_delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let abc_qdelay_p95_ms = netsim::stats::percentile(&abc_delays, 95.0);
        CoexistResult {
            abc_tputs,
            cubic_tputs,
            series,
            abc_qdelay_p95_ms,
            short_flows_completed: short_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_hop_abc_tracks_tighter_link() {
        let r = TwoHopScenario::new(
            Scheme::Abc,
            LinkSpec::Constant(Rate::from_mbps(24.0)),
            LinkSpec::Constant(Rate::from_mbps(12.0)),
        )
        .run();
        // bottleneck is the 12 Mbit/s downlink
        assert!(r.total_tput_mbps > 10.0, "{}", r.row());
        assert!(r.total_tput_mbps < 12.5, "{}", r.row());
        assert!(r.qdelay_ms.p95 < 60.0, "{}", r.row());
    }

    #[test]
    fn mixed_path_switches_bottleneck() {
        // wireless steps 16 → 6 → 16 Mbit/s; wired fixed 12
        let r = MixedPathScenario {
            wireless: LinkSpec::Steps(vec![
                (SimTime::ZERO, Rate::from_mbps(16.0)),
                (
                    SimTime::ZERO + SimDuration::from_secs(20),
                    Rate::from_mbps(6.0),
                ),
                (
                    SimTime::ZERO + SimDuration::from_secs(40),
                    Rate::from_mbps(16.0),
                ),
            ]),
            wired_rate: Rate::from_mbps(12.0),
            rtt: SimDuration::from_millis(100),
            buffer_pkts: 250,
            cross: CrossTraffic::None,
            duration: SimDuration::from_secs(60),
        }
        .run();
        // middle third: wireless (6) is the bottleneck; outer thirds:
        // wired (12). Check goodput in each regime.
        let mid: Vec<f64> = r
            .windows
            .samples
            .iter()
            .filter(|(t, ..)| (25.0..38.0).contains(t))
            .map(|&(_, _, _, g)| g)
            .collect();
        let outer: Vec<f64> = r
            .windows
            .samples
            .iter()
            .filter(|(t, ..)| (45.0..58.0).contains(t))
            .map(|&(_, _, _, g)| g)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            (mean(&mid) - 6.0).abs() < 1.2,
            "mid-regime goodput {}",
            mean(&mid)
        );
        assert!(
            mean(&outer) > 9.5,
            "outer-regime goodput {} (wired should cap at ~12)",
            mean(&outer)
        );
    }

    #[test]
    fn coexist_long_flows_share_fairly() {
        let r = CoexistScenario {
            link_rate: Rate::from_mbps(48.0),
            n_abc: 2,
            n_cubic: 2,
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(20),
            ..Default::default()
        }
        .run();
        let abc: f64 = r.abc_tputs.iter().sum::<f64>() / r.abc_tputs.len() as f64;
        let cubic: f64 = r.cubic_tputs.iter().sum::<f64>() / r.cubic_tputs.len() as f64;
        let diff = (abc - cubic).abs() / abc.max(cubic);
        assert!(
            diff < 0.25,
            "ABC {abc:.2} vs Cubic {cubic:.2} Mbit/s ({diff:.2} apart)"
        );
        // ABC keeps its class's delay low despite the Cubic queue
        assert!(
            r.abc_qdelay_p95_ms < 100.0,
            "ABC-class queuing delay {:.1} ms",
            r.abc_qdelay_p95_ms
        );
    }
}
