//! Determinism at high flow density: a 1 000-flow scenario must produce
//! bit-identical reports regardless of worker-pool size and across
//! reruns. This is the dense-regime counterpart of the CI store
//! comparisons on the sparse `tiny` preset — it pins the flow arena,
//! the batched ACK/timer hot path, and the per-slot throughput bins to
//! a single canonical output.

use campaign::store::render_record;
use campaign::{run_campaign, Axis, Campaign, RunOptions};
use experiments::engine::{FlowSchedule, ScenarioSpec};
use experiments::scenario::LinkSpec;
use experiments::Scheme;
use netsim::rate::Rate;

/// Two seeds × 1 000 backlogged flows through one 96 Mbit/s ABC
/// bottleneck. Two points (not one) so multi-worker pools actually
/// split the batch; a short horizon keeps the debug-build run cheap
/// while still pushing tens of thousands of deliveries through the
/// arena.
fn dense_campaign() -> Campaign {
    let mut base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(480.0)))
        .duration(netsim::time::SimDuration::from_millis(1_000))
        .warmup_secs(0);
    base.flows = FlowSchedule::backlogged(1_000);
    // The default 250-pkt buffer admits only 125 initial windows
    // (cwnd 2); size it so every flow's first flight survives and the
    // whole arena goes live inside the short horizon.
    base.buffer_pkts = 4_000;
    Campaign::new("dense-determinism", base).axis(Axis::seeds(&[1, 2]))
}

/// Serialize a full run to the exact JSONL record text the store
/// emits — byte equality here is the same invariant CI enforces on
/// committed baselines.
fn run_serialized(jobs: usize) -> String {
    let records = run_campaign(
        &dense_campaign(),
        &RunOptions {
            jobs: Some(jobs),
            ..RunOptions::default()
        },
    );
    assert_eq!(records.len(), 2);
    for r in &records {
        // Sanity: the dense regime actually exercised the arena.
        assert!(
            r.report.flow_tputs_mbps.len() >= 900,
            "expected ~1k active flows, saw {}",
            r.report.flow_tputs_mbps.len()
        );
    }
    records
        .iter()
        .map(render_record)
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn thousand_flow_report_is_bit_identical_across_pools_and_reruns() {
    let single = run_serialized(1);
    for jobs in [2, 4, 8] {
        assert_eq!(
            single,
            run_serialized(jobs),
            "1k-flow store diverged between 1-worker and {jobs}-worker pools"
        );
    }
    assert_eq!(
        single,
        run_serialized(1),
        "1k-flow store diverged between identical reruns"
    );
}
