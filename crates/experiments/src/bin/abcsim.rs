//! `abcsim` — run any scheme over any link from the command line.
//!
//! ```text
//! abcsim --scheme abc --trace Verizon1 --secs 60
//! abcsim --scheme cubic+codel --rate-mbps 12 --rtt-ms 50 --flows 4
//! abcsim --scheme abc --square 12,24,500 --buffer 100 --series
//! abcsim --scheme abc --trace-file ./capture.pps
//! abcsim --list
//! ```

use experiments::{sparkline, CellScenario, LinkSpec, ScenarioEngine, Scheme};
use netsim::flow::TrafficSource;
use netsim::rate::Rate;
use netsim::time::SimDuration;

fn parse_scheme(s: &str) -> Option<Scheme> {
    Scheme::from_name(s)
}

fn usage() -> ! {
    eprintln!(
        "abcsim — congestion-control scenarios from the ABC reproduction

USAGE:
  abcsim --scheme <name> [link] [options]
  abcsim --list                    list schemes and built-in traces

LINK (choose one; default: --rate-mbps 12):
  --trace <name>                   built-in synthetic cellular trace
  --trace-file <path>              Mahimahi-format trace file
  --rate-mbps <x>                  constant-rate link
  --square <lo,hi,half_period_ms>  square-wave link

OPTIONS:
  --rtt-ms <x>       path RTT (default 100)
  --buffer <pkts>    bottleneck buffer (default 250)
  --flows <n>        concurrent flows of the scheme (default 1)
  --secs <x>         duration (default 60)
  --warmup <x>       warm-up excluded from metrics (default 5)
  --app-mbps <x>     rate-limit the application (default: backlogged)
  --pk-ms <x>        PK-ABC oracle lookahead
  --jobs <n>         engine worker-pool size (default: $ABC_JOBS, else all cores)
  --series           print capacity/goodput/qdelay sparklines
  --telemetry <out>  write a JSONL telemetry sidecar (abc-telemetry/v1) to <out>"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        println!("schemes: abc abc-dt<ms> abc-noai abc-enq cubic cubic+codel cubic+pie");
        println!("         newreno vegas bbr copa pcc sprout verus xcp xcpw rcp vcp");
        println!(
            "traces:  {}",
            cellular::builtin_specs()
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(" ")
        );
        return;
    }
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let Some(scheme) = get("--scheme").as_deref().and_then(parse_scheme) else {
        usage()
    };

    let link = if let Some(name) = get("--trace") {
        match cellular::builtin(&name) {
            Some(t) => LinkSpec::Trace(t),
            None => {
                eprintln!("unknown trace {name:?} (see --list)");
                std::process::exit(2);
            }
        }
    } else if let Some(path) = get("--trace-file") {
        let f = std::fs::File::open(&path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(2);
        });
        match cellular::CellTrace::parse_mahimahi(&path, std::io::BufReader::new(f)) {
            Ok(t) => LinkSpec::Trace(t),
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(2);
            }
        }
    } else if let Some(spec) = get("--square") {
        let parts: Vec<f64> = spec.split(',').filter_map(|x| x.parse().ok()).collect();
        if parts.len() != 3 {
            usage();
        }
        LinkSpec::Square {
            a: Rate::from_mbps(parts[0]),
            b: Rate::from_mbps(parts[1]),
            half_period: SimDuration::from_millis_f64(parts[2]),
        }
    } else {
        let mbps: f64 = get("--rate-mbps")
            .and_then(|x| x.parse().ok())
            .unwrap_or(12.0);
        LinkSpec::Constant(Rate::from_mbps(mbps))
    };

    let mut sc = CellScenario::new(scheme, link);
    if let Some(x) = get("--rtt-ms").and_then(|x| x.parse().ok()) {
        sc.rtt = SimDuration::from_millis(x);
    }
    if let Some(x) = get("--buffer").and_then(|x| x.parse().ok()) {
        sc.buffer_pkts = x;
    }
    if let Some(x) = get("--flows").and_then(|x| x.parse().ok()) {
        sc.n_flows = x;
    }
    if let Some(x) = get("--secs").and_then(|x| x.parse().ok()) {
        sc.duration = SimDuration::from_secs(x);
    }
    if let Some(x) = get("--warmup").and_then(|x| x.parse().ok()) {
        sc.warmup = SimDuration::from_secs(x);
    }
    if let Some(x) = get("--app-mbps").and_then(|x: String| x.parse::<f64>().ok()) {
        sc.app = TrafficSource::RateLimited {
            rate: Rate::from_mbps(x),
            burst_bytes: 6000.0,
        };
    }
    if let Some(x) = get("--pk-ms").and_then(|x| x.parse().ok()) {
        sc.oracle_lookahead = Some(SimDuration::from_millis(x));
    }

    let engine = match get("--jobs") {
        Some(x) => match x.parse::<usize>() {
            Ok(n) if n >= 1 => ScenarioEngine::with_threads(n),
            _ => {
                eprintln!("--jobs needs a positive integer, got {x:?}");
                std::process::exit(2);
            }
        },
        None => ScenarioEngine::new(), // honors $ABC_JOBS
    };
    let telemetry_out = get("--telemetry");
    let mut spec = sc.spec();
    if telemetry_out.is_some() {
        spec = spec.telemetry(netsim::telemetry::TelemetryConfig::default());
    }
    let (r, _events, sidecar) = engine.run_instrumented(&spec);
    if let (Some(path), Some(sidecar)) = (&telemetry_out, &sidecar) {
        if let Err(e) = std::fs::write(path, sidecar) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("telemetry sidecar written to {path}");
    }
    if args.iter().any(|a| a == "--series") {
        println!("capacity: {}", sparkline(&r.capacity_series, 70));
        println!("goodput : {}", sparkline(&r.tput_series, 70));
        println!("qdelay  : {}", sparkline(&r.qdelay_series, 70));
    }
    println!("{}", r.row());
    if r.flow_tputs_mbps.len() > 1 {
        println!(
            "per-flow Mbit/s: {:?}   Jain {:.4}",
            r.flow_tputs_mbps
                .iter()
                .map(|x| (x * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            r.jain
        );
    }
}
