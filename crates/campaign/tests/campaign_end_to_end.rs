//! End-to-end guarantees of the campaign subsystem, pinned exactly as the
//! CI gate exercises them: the tiny preset's JSONL store is bit-identical
//! across reruns and across worker-pool sizes, round-trips through the
//! parser, and the diff gate flags injected regressions.

use campaign::diff::{diff, DiffConfig};
use campaign::presets;
use campaign::runner::{run_campaign, RunOptions};
use campaign::store::{ResultsStore, SCHEMA};
use experiments::figures::Scale;

fn tiny_jsonl(jobs: usize) -> String {
    let campaign = presets::tiny(Scale::Tiny);
    let opts = RunOptions::quiet().with_jobs(Some(jobs));
    ResultsStore::new(&campaign, run_campaign(&campaign, &opts)).to_jsonl()
}

#[test]
fn tiny_store_is_bit_identical_across_pools_and_reruns() {
    let serial = tiny_jsonl(1);
    for jobs in [2, 4, 8] {
        assert_eq!(
            tiny_jsonl(jobs),
            serial,
            "a {jobs}-thread pool changed the stored bytes"
        );
    }
    assert_eq!(tiny_jsonl(1), serial, "a rerun changed the stored bytes");
}

#[test]
fn tiny_store_round_trips_and_is_schema_versioned() {
    let campaign = presets::tiny(Scale::Tiny);
    let store = ResultsStore::new(&campaign, run_campaign(&campaign, &RunOptions::quiet()));
    let text = store.to_jsonl();
    assert!(
        text.lines().next().unwrap().contains(SCHEMA),
        "header line must carry the schema id"
    );
    assert_eq!(text.lines().count(), store.records.len() + 1);
    let back = ResultsStore::from_jsonl(&text).unwrap();
    assert_eq!(back, store);
}

#[test]
fn diff_gate_flags_an_injected_regression() {
    let campaign = presets::tiny(Scale::Tiny);
    let base = ResultsStore::new(&campaign, run_campaign(&campaign, &RunOptions::quiet()));

    // identical runs gate clean
    let clean = diff(&base, &base.clone(), &DiffConfig::default());
    assert!(!clean.has_regressions(), "{}", clean.render());
    assert_eq!(clean.matched, base.records.len());

    // an injected utilization collapse + delay blow-up must be flagged
    let mut broken = base.clone();
    let victim = &mut broken.records[3];
    victim.report.utilization *= 0.5;
    victim.report.delay_ms.p95 = victim.report.delay_ms.p95 * 2.0 + 50.0;
    let report = diff(&base, &broken, &DiffConfig::default());
    assert!(report.has_regressions(), "{}", report.render());
    let victim_key = base.records[3].coords.key();
    assert!(
        report.regressions.iter().any(|d| d.key == victim_key),
        "regression not attributed to {victim_key}: {}",
        report.render()
    );
}
