//! Property tests for the telemetry layer's deterministic aggregates.
//!
//! [`LogHistogram`] is the one telemetry structure that survives into
//! rendered artifacts (the `qdelay_ns` sidecar rows and the profiler's
//! dispatch distribution), so its claims are pinned here: recording is
//! bit-deterministic, merging is associative and commutative, and a
//! merge of shards equals one histogram over the concatenated stream —
//! regardless of how observations were sharded.

use netsim::telemetry::LogHistogram;
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Same observations, any recording order → identical bits.
    #[test]
    fn recording_is_bit_deterministic_and_order_free(
        mut values in proptest::collection::vec(any::<u64>(), 0..300),
    ) {
        let a = hist_of(&values);
        prop_assert_eq!(&a, &hist_of(&values));
        values.reverse();
        let b = hist_of(&values);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.count(), values.len() as u64);
    }

    /// `(a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)` and `a ⊔ b == b ⊔ a`: shard-local
    /// histograms fold into the same result in any grouping.
    #[test]
    fn merge_is_associative_and_commutative(
        xs in proptest::collection::vec(any::<u64>(), 0..100),
        ys in proptest::collection::vec(any::<u64>(), 0..100),
        zs in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right_inner = b.clone();
        right_inner.merge(&c);
        let mut right = a.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // merging shards == one histogram over the concatenated stream
        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(&left, &hist_of(&all));
    }

    /// Every observation lands in the bucket whose bounds contain it,
    /// and the quantile upper bound never undershoots the bucket floor.
    #[test]
    fn buckets_contain_their_observations(v in any::<u64>()) {
        let i = LogHistogram::bucket_of(v);
        prop_assert!(v <= LogHistogram::bucket_upper(i));
        if i > 0 {
            prop_assert!(v > LogHistogram::bucket_upper(i - 1));
        }
        let mut h = LogHistogram::new();
        h.record(v);
        prop_assert_eq!(h.quantile_upper(1.0), Some(LogHistogram::bucket_upper(i)));
    }
}
