//! RCP — Rate Control Protocol [Dukkipati et al.; the ABC paper compares
//! against the INFOCOM'08 deployment-focused variant]. The router
//! maintains a single stub rate `R` handed to every flow and updates it
//! each control interval:
//!
//! ```text
//! R ← R·(1 + (T/d̄)·(α·(C − y) − β·q/d̄) / C)
//! ```
//!
//! with α = 0.5, β = 0.25 (the settings the ABC paper uses). Being
//! *rate*-based, RCP reacts a queue-drain slower than window-based ABC —
//! the Fig. 17 comparison.

use netsim::flow::{AckEvent, CongestionControl, Pacing};
use netsim::packet::{Feedback, Packet};
use netsim::queue::{Qdisc, QdiscStats};
use netsim::rate::Rate;
use netsim::stats::WindowedRate;
use netsim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
pub struct RcpConfig {
    pub alpha: f64,
    pub beta: f64,
    pub buffer_pkts: usize,
    /// Control interval T (RCP uses ~10 ms or the mean RTT; we follow the
    /// common 10 ms slotting with d̄ tracked separately).
    pub interval: SimDuration,
}

impl Default for RcpConfig {
    fn default() -> Self {
        RcpConfig {
            alpha: 0.5,
            beta: 0.25,
            buffer_pkts: 250,
            interval: SimDuration::from_millis(10),
        }
    }
}

pub struct RcpQdisc {
    cfg: RcpConfig,
    queue: VecDeque<Box<Packet>>,
    bytes: u64,
    capacity: Rate,
    /// The advertised stub rate.
    rate: Rate,
    /// Mean RTT of traffic (EWMA of header-carried RTTs).
    mean_rtt: SimDuration,
    input: WindowedRate,
    last_update: Option<SimTime>,
    stats: QdiscStats,
}

impl RcpQdisc {
    pub fn new(cfg: RcpConfig) -> Self {
        RcpQdisc {
            cfg,
            queue: VecDeque::new(),
            bytes: 0,
            capacity: Rate::ZERO,
            rate: Rate::from_mbps(1.0),
            mean_rtt: SimDuration::from_millis(100),
            input: WindowedRate::new(SimDuration::from_millis(100)),
            last_update: None,
            stats: QdiscStats::default(),
        }
    }

    pub fn advertised_rate(&self) -> Rate {
        self.rate
    }

    fn maybe_update(&mut self, now: SimTime) {
        let last = *self.last_update.get_or_insert(now);
        if now.since(last) < self.cfg.interval {
            return;
        }
        self.last_update = Some(now);
        if self.capacity.is_zero() {
            return;
        }
        let c = self.capacity.bps();
        let y = self.input.rate(now).bps();
        let q_bits = self.bytes as f64 * 8.0;
        let t = self.cfg.interval.as_secs_f64();
        let d = self.mean_rtt.as_secs_f64().max(1e-3);
        let delta = (t / d) * (self.cfg.alpha * (c - y) - self.cfg.beta * q_bits / d) / c;
        let new = self.rate.bps() * (1.0 + delta);
        // clamp: a floor keeps new flows bootstrapped, the ceiling is C
        self.rate = Rate::from_bps(new.clamp(c * 0.001, c));
    }
}

impl Qdisc for RcpQdisc {
    netsim::impl_qdisc_downcast!();

    fn enqueue(&mut self, mut pkt: Box<Packet>, now: SimTime) -> bool {
        self.maybe_update(now);
        if self.queue.len() >= self.cfg.buffer_pkts {
            self.stats.dropped_pkts += 1;
            return false;
        }
        self.input.record(now, pkt.size as u64);
        pkt.enqueued_at = now;
        self.bytes += pkt.size as u64;
        self.queue.push_back(pkt);
        self.stats.enqueued_pkts += 1;
        true
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Box<Packet>> {
        self.maybe_update(now);
        let mut pkt = self.queue.pop_front()?;
        self.bytes -= pkt.size as u64;
        if let Feedback::Rcp { rate_bps } = pkt.feedback {
            // multi-bottleneck: stamp the minimum along the path
            pkt.feedback = Feedback::Rcp {
                rate_bps: rate_bps.min(self.rate.bps()),
            };
        }
        self.stats.dequeued_pkts += 1;
        self.stats.dequeued_bytes += pkt.size as u64;
        Some(pkt)
    }

    fn peek_size(&self) -> Option<u32> {
        self.queue.front().map(|p| p.size)
    }

    fn len_pkts(&self) -> usize {
        self.queue.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn on_capacity(&mut self, rate: Rate, _now: SimTime) {
        if self.capacity.is_zero() && !rate.is_zero() {
            // bootstrap the stub rate at a fraction of capacity
            self.rate = rate * 0.1;
        }
        self.capacity = rate;
    }

    fn head_sojourn(&self, now: SimTime) -> Option<SimDuration> {
        self.queue.front().map(|p| now.since(p.enqueued_at))
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

/// The RCP endpoint: paces at the minimum stamped rate.
pub struct RcpSender {
    rate: Rate,
    srtt: SimDuration,
}

impl RcpSender {
    pub fn new() -> Self {
        RcpSender {
            rate: Rate::from_mbps(0.5),
            srtt: SimDuration::from_millis(100),
        }
    }
}

impl Default for RcpSender {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for RcpSender {
    fn name(&self) -> &'static str {
        "rcp"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if !ev.srtt.is_zero() {
            self.srtt = ev.srtt;
        }
        if let Feedback::Rcp { rate_bps } = ev.feedback {
            if rate_bps.is_finite() && rate_bps > 0.0 {
                self.rate = Rate::from_bps(rate_bps);
            }
        }
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.rate = Rate::from_bps((self.rate.bps() / 2.0).max(1e4));
    }

    fn cwnd_pkts(&self) -> f64 {
        // window cap: 2 rate·RTT products so pacing, not window, governs
        (self.rate.bps() * self.srtt.as_secs_f64() / (8.0 * 1500.0) * 2.0).max(2.0)
    }

    fn pacing(&self) -> Pacing {
        Pacing::Rate(self.rate)
    }

    fn outgoing_feedback(&mut self, _now: SimTime) -> Feedback {
        Feedback::Rcp { rate_bps: f64::MAX }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Ecn, FlowId, NodeId, Route};

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn rcp_pkt(seq: u64) -> Box<Packet> {
        Box::new(Packet {
            flow: FlowId(0),
            seq,
            size: 1500,
            ecn: Ecn::NotEct,
            feedback: Feedback::Rcp { rate_bps: f64::MAX },
            abc_capable: false,
            sent_at: SimTime::ZERO,
            retransmit: false,
            ack: None,
            route: Route::new(vec![(NodeId(0), SimDuration::ZERO)]),
            hop: 0,
            enqueued_at: SimTime::ZERO,
        })
    }

    #[test]
    fn rate_rises_on_spare_capacity() {
        let mut q = RcpQdisc::new(RcpConfig::default());
        q.on_capacity(Rate::from_mbps(24.0), at(0));
        let r0 = q.advertised_rate();
        // trickle traffic, lots of spare capacity
        for t in (0..2000u64).step_by(10) {
            q.enqueue(rcp_pkt(t / 10), at(t));
            q.dequeue(at(t));
        }
        assert!(
            q.advertised_rate().bps() > r0.bps() * 2.0,
            "rate {} → {}",
            r0,
            q.advertised_rate()
        );
    }

    #[test]
    fn rate_falls_when_queue_builds() {
        let mut q = RcpQdisc::new(RcpConfig::default());
        q.on_capacity(Rate::from_mbps(12.0), at(0));
        // drive the advertised rate up first
        let mut seq = 0;
        for t in (0..1000u64).step_by(10) {
            q.enqueue(rcp_pkt(seq), at(t));
            seq += 1;
            q.dequeue(at(t));
        }
        let high = q.advertised_rate();
        // now overload: 3 in per ms, 1 out
        for t in 1000..1400u64 {
            for _ in 0..3 {
                q.enqueue(rcp_pkt(seq), at(t));
                seq += 1;
            }
            q.dequeue(at(t));
        }
        assert!(
            q.advertised_rate().bps() < high.bps(),
            "rate should fall under overload: {} → {}",
            high,
            q.advertised_rate()
        );
    }

    #[test]
    fn router_stamps_minimum_rate() {
        let mut q = RcpQdisc::new(RcpConfig::default());
        q.on_capacity(Rate::from_mbps(24.0), at(0));
        let mut p = rcp_pkt(0);
        p.feedback = Feedback::Rcp { rate_bps: 1000.0 }; // upstream tighter
        q.enqueue(p, at(0));
        match q.dequeue(at(0)).unwrap().feedback {
            Feedback::Rcp { rate_bps } => assert_eq!(rate_bps, 1000.0),
            _ => panic!(),
        }
    }

    #[test]
    fn sender_adopts_stamped_rate_and_paces() {
        let mut s = RcpSender::new();
        let ev = AckEvent {
            now: at(100),
            rtt: Some(SimDuration::from_millis(100)),
            min_rtt: SimDuration::from_millis(100),
            srtt: SimDuration::from_millis(100),
            acked_bytes: 1500,
            ecn_echo: Ecn::NotEct,
            feedback: Feedback::Rcp { rate_bps: 6e6 },
            inflight_pkts: 2,
            delivery_rate: Rate::ZERO,
            one_way_delay: SimDuration::from_millis(50),
        };
        s.on_ack(&ev);
        match s.pacing() {
            Pacing::Rate(r) => assert!((r.mbps() - 6.0).abs() < 1e-9),
            _ => panic!("RCP must pace"),
        }
        // cwnd cap = 2·rate·rtt = 2·6e6·0.1/12000 = 100 pkts
        assert!((s.cwnd_pkts() - 100.0).abs() < 1.0);
    }
}
