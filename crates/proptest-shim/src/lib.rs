//! # abc-proptest — an offline, deterministic stand-in for `proptest`
//!
//! The workspace builds with zero external dependencies, so the property
//! tests' `proptest!` surface is reimplemented here: range and tuple
//! strategies, [`collection::vec`], `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig::with_cases`. The lib target is named `proptest`, so
//! test files keep `use proptest::prelude::*;` unchanged.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case prints its number and the panic from
//!   the assertion; the run is seeded per test name, so re-running
//!   reproduces it exactly.
//! * **Deterministic seeds.** Cases are driven by the workspace's seeded
//!   [`rand`] shim, keyed on the test's name (FNV-1a), so CI failures are
//!   always reproducible locally.

use rand::rngs::StdRng;
use rand::{RngCore, SampleRange, SeedableRng, Standard};
use std::ops::{Range, RangeInclusive};

/// How a `proptest!` block runs its cases.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test inputs. Unlike the real crate's `Strategy` this is
/// sampling-only (no value tree, no shrinking).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut StdRng) -> $t {
                SampleRange::sample_from(self.clone(), rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut StdRng) -> $t {
                SampleRange::sample_from(self.clone(), rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `any::<T>()` for the handful of `Standard` types the shim's rand knows.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;
    #[inline]
    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample(rng)
    }
}

/// A fixed value used as a strategy (`Just` in the real crate).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[inline]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// FNV-1a over the test path: a stable per-test seed with no global state.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `cases` samples of a property body. Used by the `proptest!` macro;
/// callers never invoke it directly.
pub fn run_cases(name: &str, cases: u32, mut body: impl FnMut(&mut StdRng, u32)) {
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    for case in 0..cases {
        // Re-derive per-case so a panic message's case number is enough to
        // reproduce that single case in isolation.
        let mut case_rng = StdRng::seed_from_u64(rng.next_u64() ^ case as u64);
        body(&mut case_rng, case);
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(concat!(module_path!(), "::", stringify!($name)), cfg.cases, |rng, case| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                #[allow(unused_mut)]
                let mut run = move || -> Result<(), String> { $body Ok(()) };
                if let Err(msg) = run() {
                    panic!("proptest case {case} failed: {msg}");
                }
            });
        }
    )*};
}

/// `prop_assert!`: like `assert!` but returns an error so the harness can
/// attach the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!("assertion failed: {:?} != {:?}", a, b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!($($fmt)+));
        }
    }};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn vec_strategy_obeys_len(v in collection::vec(0u8..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            for x in &v {
                prop_assert!(*x < 10, "element {x} out of range");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn tuples_and_mut_patterns(mut v in collection::vec(0i32..100, 1..5), (a, b) in (0u8..4, 0.0f64..1.0)) {
            v.sort();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(a < 4);
            prop_assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn seeds_are_stable_across_runs() {
        assert_eq!(super::seed_for("x"), super::seed_for("x"));
        assert_ne!(super::seed_for("x"), super::seed_for("y"));
    }
}
