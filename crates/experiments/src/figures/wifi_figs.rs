//! Wi-Fi figures: Fig. 4 (inter-ACK vs batch size), Fig. 5 (link-rate
//! prediction accuracy), Fig. 10 (single/two-user tradeoff), Fig. 14
//! (Brownian MCS).

use super::Scale;
use crate::engine::ScenarioEngine;
use crate::scheme::{Scheme, WIFI_LINEUP};
use crate::wifi::{estimator_accuracy, McsSpec, WifiScenario};
use netsim::time::SimDuration;
use std::fmt::Write;

/// Fig. 4: mean inter-ACK time per A-MPDU batch size, with the regression
/// slope against S/R. Uses a lightly-loaded fixed-MCS link so every batch
/// size occurs.
pub fn fig4(scale: Scale) -> String {
    use netsim::flow::TrafficSource;
    let mut sc = WifiScenario::new(Scheme::Cubic, 1, McsSpec::Fixed(1));
    sc.duration = scale.secs(45, 10, 2);
    sc.warmup = scale.secs(5, 5, 0);
    sc.app = TrafficSource::RateLimited {
        rate: netsim::rate::Rate::from_mbps(8.0),
        burst_bytes: 40_000.0,
    };
    // build (not run) so the AP's batch log is reachable afterwards
    let mut b = ScenarioEngine::new().build(&sc.spec());
    b.run_to_end();
    let ap = b.wifi_ap("wifi");
    let log = ap.estimator().batch_log();

    let mut out = String::new();
    writeln!(
        out,
        "# Fig 4 — inter-ACK time vs A-MPDU batch size (MCS 1, R = 13 Mbit/s)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>6} {:>8} {:>14} {:>14}",
        "batch", "count", "mean T_IA (ms)", "sd (ms)"
    )
    .unwrap();
    let mut by_b: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
    for s in log {
        by_b.entry(s.batch)
            .or_default()
            .push(s.inter_ack.as_millis_f64());
    }
    for (b, v) in &mut by_b {
        let s = netsim::stats::summarize_in_place(v);
        writeln!(
            out,
            "{:>6} {:>8} {:>14.3} {:>14.3}",
            b, s.count, s.mean, s.std_dev
        )
        .unwrap();
    }
    // regression slope vs S/R
    let n = log.len() as f64;
    let sx: f64 = log.iter().map(|s| s.batch as f64).sum();
    let sy: f64 = log.iter().map(|s| s.inter_ack.as_secs_f64()).sum();
    let sxx: f64 = log.iter().map(|s| (s.batch as f64).powi(2)).sum();
    let sxy: f64 = log
        .iter()
        .map(|s| s.batch as f64 * s.inter_ack.as_secs_f64())
        .sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let expected = 12_000.0 / 13e6;
    writeln!(
        out,
        "regression slope {:.4} ms/frame (S/R = {:.4} ms/frame, error {:+.1}%)",
        slope * 1e3,
        expected * 1e3,
        (slope - expected) / expected * 100.0
    )
    .unwrap();
    out
}

/// Fig. 5: predicted vs true link rate for a non-backlogged sender over
/// three different Wi-Fi links (MCS 1, 4, 7), across offered loads.
pub fn fig5(scale: Scale) -> String {
    let dur = scale.secs(30, 10, 2);
    let mut out = String::new();
    writeln!(out, "# Fig 5 — Wi-Fi link-rate prediction vs offered load").unwrap();
    writeln!(
        out,
        "{:>5} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "MCS", "offered", "predicted", "true cap", "error", "cap-bound"
    )
    .unwrap();
    for mcs in [1u8, 4, 7] {
        let loads: &[f64] = if scale.reduced() {
            &[4.0, 20.0]
        } else {
            &[2.0, 4.0, 8.0, 16.0, 24.0, 40.0]
        };
        for &offered in loads {
            let (off, pred, truth) = estimator_accuracy(mcs, offered, dur);
            // the estimator may legitimately sit at the 2×-dequeue-rate cap
            // when the link is barely used (the dashed line in Fig. 5)
            let cap_bound = pred < truth * 0.95 && pred <= 2.2 * off;
            writeln!(
                out,
                "{:>5} {:>9.1} M {:>9.2} M {:>9.2} M {:>+9.1}% {:>10}",
                mcs,
                off,
                pred,
                truth,
                (pred - truth) / truth * 100.0,
                if cap_bound { "yes" } else { "" }
            )
            .unwrap();
        }
    }
    out
}

/// Fig. 10: throughput vs 95p per-packet delay for the Wi-Fi lineup, with
/// the MCS alternating 1 ↔ 7 every 2 s; single-user and two-user panels.
pub fn fig10(scale: Scale) -> String {
    wifi_panel(
        "Fig 10 — Wi-Fi, MCS alternating 1↔7 every 2 s",
        McsSpec::Alternating(1, 7, SimDuration::from_secs(2)),
        scale,
    )
}

/// Fig. 14 (Appendix B): Brownian-motion MCS over [3, 7].
pub fn fig14(scale: Scale) -> String {
    wifi_panel(
        "Fig 14 — Wi-Fi, Brownian-motion MCS in [3, 7]",
        McsSpec::Brownian(3, 7, SimDuration::from_secs(2), 0xf14),
        scale,
    )
}

fn wifi_panel(title: &str, mcs: McsSpec, scale: Scale) -> String {
    let mut out = String::new();
    writeln!(out, "# {title}").unwrap();
    let schemes: &[Scheme] = if scale.reduced() {
        &[Scheme::AbcDt(60), Scheme::CubicCodel, Scheme::Cubic]
    } else {
        &WIFI_LINEUP
    };
    for users in [1u32, 2] {
        writeln!(out, "\n## {users} user(s)").unwrap();
        writeln!(
            out,
            "{:<14} {:>14} {:>16}",
            "Scheme", "tput (Mbit/s)", "95p delay (ms)"
        )
        .unwrap();
        // the whole lineup as one parallel batch
        let specs: Vec<_> = schemes
            .iter()
            .map(|&s| {
                let mut sc = WifiScenario::new(s, users, mcs);
                sc.duration = scale.secs(45, 15, 2);
                sc.warmup = scale.secs(5, 5, 0);
                sc.spec()
            })
            .collect();
        let mut rows = Vec::new();
        for (&s, r) in schemes.iter().zip(ScenarioEngine::new().run_batch(&specs)) {
            writeln!(
                out,
                "{:<14} {:>14.2} {:>16.0}",
                s.name(),
                r.total_tput_mbps,
                r.delay_ms.p95
            )
            .unwrap();
            rows.push((s.name(), r.total_tput_mbps, r.delay_ms.p95));
        }
        // flag ABC's Pareto position like Fig. 8
        let abc_best = rows
            .iter()
            .filter(|(n, ..)| n.starts_with("ABC"))
            .any(|(_, tput, d)| {
                !rows
                    .iter()
                    .filter(|(m, ..)| !m.starts_with("ABC"))
                    .any(|(_, t2, d2)| t2 >= tput && d2 <= d)
            });
        writeln!(
            out,
            "ABC outside non-ABC Pareto frontier: {}",
            if abc_best { "yes" } else { "no" }
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_slope_matches_s_over_r() {
        let f = fig4(Scale::Fast);
        let err: f64 = f
            .lines()
            .find(|l| l.contains("regression slope"))
            .unwrap()
            .split("error")
            .nth(1)
            .unwrap()
            .trim()
            .trim_start_matches('+')
            .trim_end_matches("%)")
            .parse()
            .unwrap();
        assert!(err.abs() < 15.0, "slope error {err}%\n{f}");
    }

    #[test]
    fn fig5_accurate_or_cap_bound() {
        let f = fig5(Scale::Fast);
        for line in f.lines().skip(2) {
            if line.trim().is_empty() {
                continue;
            }
            let cap_bound = line.trim_end().ends_with("yes");
            let err: f64 = line
                .split_whitespace()
                .nth(7)
                .unwrap()
                .trim_start_matches('+')
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(
                cap_bound || err.abs() < 8.0,
                "prediction off and not cap-bound: {line}"
            );
        }
    }
}
