//! The **ABR video** workload: a DASH-style client with a bitrate
//! ladder, a playback-buffer model, and chunk-by-chunk rate selection.
//!
//! The client requests one chunk at a time over the reliable transport
//! (the request itself is modeled as free; the response bytes are what
//! congestion control fights for). Rate selection is a standard hybrid:
//! pick the highest ladder rung under `safety ×` the EWMA of per-chunk
//! download throughput, but drop to the lowest rung when the playback
//! buffer is nearly empty. Playback starts after `startup_chunks` of
//! media are buffered, drains in real time, and stalls (rebuffers) when
//! the buffer empties before the stream has fully played. Everything is
//! a pure function of chunk-completion times, so runs stay
//! bit-deterministic.

use crate::metrics::VideoMetrics;
use netsim::flow::AppDriver;
use netsim::packet::MTU_BYTES;
use netsim::stats::Ewma;
use netsim::time::{SimDuration, SimTime};

/// Spec of an adaptive-bitrate video session.
#[derive(Debug, Clone)]
pub struct AbrWorkload {
    /// Bitrate ladder in kbit/s, ascending.
    pub ladder_kbps: Vec<u32>,
    /// Media duration per chunk (DASH segments are typically 2–4 s).
    pub chunk: SimDuration,
    /// Chunks buffered before playback starts.
    pub startup_chunks: u32,
    /// Playback-buffer cap; the client idles once this much media is
    /// queued (rate-limiting steady state, like real players).
    pub max_buffer: SimDuration,
    /// Total stream length (rounded up to whole chunks).
    pub stream: SimDuration,
    /// Throughput safety factor for rate selection (e.g. 0.8).
    pub safety: f64,
}

impl AbrWorkload {
    /// A typical HD ladder: 350 kbit/s … 4 Mbit/s, 2 s chunks, 12 s
    /// buffer cap, playback after one chunk.
    pub fn hd(stream: SimDuration) -> AbrWorkload {
        AbrWorkload {
            ladder_kbps: vec![350, 600, 1_000, 2_500, 4_000],
            chunk: SimDuration::from_secs(2),
            startup_chunks: 1,
            max_buffer: SimDuration::from_secs(12),
            stream,
            safety: 0.8,
        }
    }

    fn total_chunks(&self) -> u64 {
        let c = self.chunk.as_nanos();
        self.stream.as_nanos().div_ceil(c).max(1)
    }

    /// Wire bytes of one chunk at ladder rung `level`, rounded up to
    /// whole MTU packets so chunk boundaries land exactly on transport
    /// delivery boundaries.
    pub fn chunk_bytes(&self, level: usize) -> u64 {
        let kbps = self.ladder_kbps[level] as u64;
        let raw = kbps * 1000 * self.chunk.as_nanos() / 8 / 1_000_000_000;
        raw.div_ceil(MTU_BYTES as u64).max(1) * MTU_BYTES as u64
    }
}

/// One in-flight chunk request.
#[derive(Debug, Clone, Copy)]
struct CurChunk {
    /// Cumulative delivered-byte count at which this chunk completes.
    boundary: u64,
    bytes: u64,
    level: usize,
    requested_at: SimTime,
}

/// The [`AppDriver`] realizing an [`AbrWorkload`].
#[derive(Debug)]
pub struct AbrClient {
    spec: AbrWorkload,
    flow_start: SimTime,

    // download side
    requested_bytes: u64,
    chunks_requested: u64,
    cur: Option<CurChunk>,
    blocked_until: Option<SimTime>,
    tput_est: Ewma,
    levels: Vec<usize>,

    // playback side (all media time in ns)
    last_advance: SimTime,
    started_at: Option<SimTime>,
    buffer_ns: u64,
    play_ns: u64,
    rebuffer_ns: u64,
}

impl AbrClient {
    /// A client playing `spec`'s stream, requesting from `start` on.
    pub fn new(spec: AbrWorkload, start: SimTime) -> AbrClient {
        assert!(!spec.ladder_kbps.is_empty(), "empty bitrate ladder");
        assert!(
            spec.ladder_kbps.windows(2).all(|w| w[0] <= w[1]),
            "ladder must ascend"
        );
        assert!(!spec.chunk.is_zero());
        AbrClient {
            spec,
            flow_start: start,
            requested_bytes: 0,
            chunks_requested: 0,
            cur: None,
            blocked_until: None,
            tput_est: Ewma::new(0.3),
            levels: Vec::new(),
            last_advance: start,
            started_at: None,
            buffer_ns: 0,
            play_ns: 0,
            rebuffer_ns: 0,
        }
    }

    /// The workload this client realizes.
    pub fn spec(&self) -> &AbrWorkload {
        &self.spec
    }

    fn stream_ns(&self) -> u64 {
        self.spec.total_chunks() * self.spec.chunk.as_nanos()
    }

    /// Advance the playback clock to `now`: drain the buffer in real
    /// time, accumulate played media, and charge stalls. Trailing time
    /// after the stream has fully played is idle, not a stall.
    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_nanos();
        if dt == 0 {
            return;
        }
        self.last_advance = now;
        if self.started_at.is_none() {
            return; // startup wait accrues as startup delay, not rebuffer
        }
        let drain = dt.min(self.buffer_ns);
        self.buffer_ns -= drain;
        self.play_ns += drain;
        let leftover = dt - drain;
        if leftover > 0 && self.play_ns < self.stream_ns() {
            self.rebuffer_ns += leftover;
        }
    }

    /// Hybrid rate selection: throughput rule with a buffer floor.
    fn pick_level(&self) -> usize {
        let Some(bps) = self.tput_est.get() else {
            return 0; // no estimate yet: start conservative
        };
        if self.buffer_ns < self.spec.chunk.as_nanos() {
            return 0; // nearly empty buffer: survival mode
        }
        let budget = bps * self.spec.safety;
        let mut lvl = 0;
        for (i, &kbps) in self.spec.ladder_kbps.iter().enumerate() {
            if kbps as f64 * 1000.0 <= budget {
                lvl = i;
            }
        }
        lvl
    }

    /// Issue the next chunk request if allowed (one outstanding chunk,
    /// stream not exhausted, buffer under its cap, wait gate elapsed).
    fn maybe_request(&mut self, now: SimTime) {
        if self.cur.is_some() || self.chunks_requested >= self.spec.total_chunks() {
            return;
        }
        if let Some(t) = self.blocked_until {
            if now < t {
                return;
            }
            self.blocked_until = None;
        }
        let chunk_ns = self.spec.chunk.as_nanos();
        if self.started_at.is_some() && self.buffer_ns + chunk_ns > self.spec.max_buffer.as_nanos()
        {
            // no room for another chunk: wake when playback has drained one
            let wait = self.buffer_ns + chunk_ns - self.spec.max_buffer.as_nanos();
            self.blocked_until = Some(now + SimDuration::from_nanos(wait));
            return;
        }
        let level = self.pick_level();
        let bytes = self.spec.chunk_bytes(level);
        self.requested_bytes += bytes;
        self.chunks_requested += 1;
        self.cur = Some(CurChunk {
            boundary: self.requested_bytes,
            bytes,
            level,
            requested_at: now,
        });
    }

    /// Account playback up to the end of the run. Call once before
    /// reading [`AbrClient::metrics`].
    pub fn finalize(&mut self, end: SimTime) {
        self.advance(end);
    }

    /// The session's app-level report card.
    pub fn metrics(&self) -> VideoMetrics {
        let chunks = self.levels.len() as u64;
        let top = *self.spec.ladder_kbps.last().expect("non-empty ladder") as f64;
        let mean_bitrate_kbps = if chunks > 0 {
            self.levels
                .iter()
                .map(|&l| self.spec.ladder_kbps[l] as f64)
                .sum::<f64>()
                / chunks as f64
        } else {
            f64::NAN
        };
        let switches = self.levels.windows(2).filter(|w| w[0] != w[1]).count() as u64;
        let switch_kbps: f64 = self
            .levels
            .windows(2)
            .map(|w| {
                (self.spec.ladder_kbps[w[0]] as f64 - self.spec.ladder_kbps[w[1]] as f64).abs()
            })
            .sum();
        let play_s = self.play_ns as f64 / 1e9;
        let rebuffer_s = self.rebuffer_ns as f64 / 1e9;
        let wall = play_s + rebuffer_s;
        let rebuffer_ratio = if wall > 0.0 {
            rebuffer_s / wall
        } else {
            f64::NAN
        };
        let startup_delay_ms = self
            .started_at
            .map(|t| t.since(self.flow_start).as_millis_f64())
            .unwrap_or(f64::NAN);
        // Linear QoE in [~-4, 1]: normalized bitrate, minus the standard
        // 4.3× rebuffer penalty, minus normalized switching churn.
        let qoe = if chunks > 0 && wall > 0.0 {
            mean_bitrate_kbps / top - 4.3 * rebuffer_ratio - switch_kbps / chunks as f64 / top
        } else {
            f64::NAN
        };
        VideoMetrics {
            chunks_downloaded: chunks,
            chunks_total: self.spec.total_chunks(),
            mean_bitrate_kbps,
            play_s,
            rebuffer_s,
            rebuffer_ratio,
            startup_delay_ms,
            switches,
            qoe,
        }
    }
}

impl AppDriver for AbrClient {
    fn available_bytes(&mut self, now: SimTime) -> u64 {
        self.advance(now);
        self.maybe_request(now);
        self.requested_bytes
    }

    fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime> {
        self.advance(now);
        self.maybe_request(now);
        if self.cur.is_none() {
            self.blocked_until
        } else {
            None
        }
    }

    fn on_progress(&mut self, now: SimTime, delivered_bytes: u64) {
        self.advance(now);
        while let Some(cur) = self.cur {
            if delivered_bytes < cur.boundary {
                break;
            }
            // chunk complete at `now`
            let dl = now.since(cur.requested_at);
            if !dl.is_zero() {
                self.tput_est
                    .update(cur.bytes as f64 * 8.0 / dl.as_secs_f64());
            }
            self.levels.push(cur.level);
            self.buffer_ns += self.spec.chunk.as_nanos();
            if self.started_at.is_none()
                && self.buffer_ns
                    >= self.spec.chunk.as_nanos() * self.spec.startup_chunks.max(1) as u64
            {
                self.started_at = Some(now);
            }
            self.cur = None;
            self.maybe_request(now);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn tiny_spec(chunks: u64) -> AbrWorkload {
        AbrWorkload {
            ladder_kbps: vec![300, 1_000, 3_000],
            chunk: secs(1),
            startup_chunks: 1,
            max_buffer: secs(4),
            stream: secs(chunks),
            safety: 0.8,
        }
    }

    /// Drive a client by hand: deliver each requested chunk `dl_ms`
    /// after its request.
    fn drive(spec: AbrWorkload, dl_ms: u64, end_ms: u64) -> (AbrClient, Vec<u64>) {
        let mut c = AbrClient::new(spec, SimTime::ZERO);
        let mut t = 0u64;
        let mut boundaries = Vec::new();
        loop {
            let avail = c.available_bytes(at(t));
            if avail > boundaries.last().copied().unwrap_or(0) {
                boundaries.push(avail);
                t += dl_ms;
                if t > end_ms {
                    break;
                }
                c.on_progress(at(t), avail);
            } else if let Some(w) = c.next_wakeup(at(t)) {
                let w_ms = w.since(SimTime::ZERO).as_nanos() / 1_000_000;
                if w_ms >= end_ms || w_ms <= t {
                    break;
                }
                t = w_ms;
            } else {
                break;
            }
        }
        c.finalize(at(end_ms));
        (c, boundaries)
    }

    #[test]
    fn fast_network_reaches_top_rung_without_stalls() {
        // every chunk downloads in 100 ms — buffer never empties
        let (c, _) = drive(tiny_spec(10), 100, 60_000);
        let m = c.metrics();
        assert_eq!(m.chunks_downloaded, 10);
        assert_eq!(m.rebuffer_s, 0.0);
        assert!(
            m.mean_bitrate_kbps > 1_000.0,
            "mean {}",
            m.mean_bitrate_kbps
        );
        assert!((m.play_s - 10.0).abs() < 1e-9, "played {}", m.play_s);
        assert!(m.qoe > 0.3, "qoe {}", m.qoe);
    }

    #[test]
    fn slow_network_stalls_and_stays_low_rung() {
        // every chunk takes 2 s of wall clock for 1 s of media
        let (c, _) = drive(tiny_spec(5), 2_000, 60_000);
        let m = c.metrics();
        assert_eq!(m.chunks_downloaded, 5);
        assert!(m.rebuffer_s > 1.0, "rebuffer {}", m.rebuffer_s);
        assert!(m.rebuffer_ratio > 0.2);
        assert!(m.mean_bitrate_kbps < 1_000.0);
        assert!(m.qoe < 0.0, "stalling must tank QoE, got {}", m.qoe);
    }

    #[test]
    fn no_stall_charged_after_stream_end() {
        // 2 chunks; the run continues long after playback finished
        let (c, _) = drive(tiny_spec(2), 100, 30_000);
        let m = c.metrics();
        assert_eq!(m.chunks_downloaded, 2);
        assert_eq!(m.rebuffer_s, 0.0, "trailing idle counted as stall");
        assert!((m.play_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stall_at_stream_end_is_charged_until_last_chunk_arrives() {
        let spec = tiny_spec(2);
        let mut c = AbrClient::new(spec, SimTime::ZERO);
        // chunk 0 requested at t=0, done at 100 ms → playback starts
        let b0 = c.available_bytes(at(0));
        c.on_progress(at(100), b0);
        // chunk 1 done only at 3 s: playback ran dry at 1.1 s
        let b1 = c.available_bytes(at(100));
        assert!(b1 > b0, "second chunk not requested");
        c.on_progress(at(3_000), b1);
        c.finalize(at(10_000));
        let m = c.metrics();
        assert_eq!(m.chunks_downloaded, 2);
        // stalled from 1.1 s to 3.0 s = 1.9 s; played 2 s total
        assert!(
            (m.rebuffer_s - 1.9).abs() < 1e-9,
            "rebuffer {}",
            m.rebuffer_s
        );
        assert!((m.play_s - 2.0).abs() < 1e-9, "play {}", m.play_s);
    }

    #[test]
    fn buffer_cap_paces_requests() {
        // instant downloads: the client must not fetch the whole stream
        // at once — the 4 s cap limits how far ahead it runs
        let mut c = AbrClient::new(tiny_spec(30), SimTime::ZERO);
        let mut t = 0u64;
        let mut last = 0u64;
        let mut max_ahead = 0u64;
        for _ in 0..200 {
            let avail = c.available_bytes(at(t));
            if avail > last {
                c.on_progress(at(t + 1), avail);
                last = avail;
                t += 1;
            } else if let Some(w) = c.next_wakeup(at(t)) {
                let w_ms = w.since(SimTime::ZERO).as_nanos() / 1_000_000;
                if w_ms <= t {
                    break;
                }
                t = w_ms;
            } else {
                break;
            }
            max_ahead = max_ahead.max(c.buffer_ns / 1_000_000_000);
        }
        let m = c.metrics();
        assert_eq!(m.chunks_downloaded, 30, "stream did not finish");
        assert!(max_ahead <= 4, "buffered {max_ahead}s > 4s cap");
    }

    #[test]
    fn zero_progress_yields_nan_metrics_not_panics() {
        let mut c = AbrClient::new(tiny_spec(3), SimTime::ZERO);
        c.finalize(at(5_000));
        let m = c.metrics();
        assert_eq!(m.chunks_downloaded, 0);
        assert!(m.mean_bitrate_kbps.is_nan());
        assert!(m.rebuffer_ratio.is_nan());
        assert!(m.startup_delay_ms.is_nan());
        assert!(m.qoe.is_nan());
    }

    #[test]
    fn chunk_bytes_are_packet_aligned() {
        let s = tiny_spec(1);
        for lvl in 0..s.ladder_kbps.len() {
            assert_eq!(s.chunk_bytes(lvl) % MTU_BYTES as u64, 0);
            assert!(s.chunk_bytes(lvl) >= MTU_BYTES as u64);
        }
        // 300 kbit/s × 1 s = 37 500 B = exactly 25 packets
        assert_eq!(s.chunk_bytes(0), 25 * 1500);
    }
}
