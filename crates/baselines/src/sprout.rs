//! Sprout-like forecaster [Winstein et al., NSDI 2013].
//!
//! Sprout models the cellular link as a stochastic process, forecasts the
//! 5th-percentile cumulative deliverable bytes over the next few ticks,
//! and sizes its window so queued data drains within a delay target with
//! 95% confidence. We reproduce that structure — tick-based rate tracking
//! with drift uncertainty, a conservative quantile forecast, and a
//! delay-budgeted window — without Sprout's full Bayesian inference over
//! Poisson draws (the behavioral consequences, conservatism and
//! low-delay/low-utilization operation, are what the ABC paper compares
//! against; see DESIGN.md).

use netsim::flow::{AckEvent, CongestionControl};
use netsim::stats::WindowedRate;
use netsim::time::{SimDuration, SimTime};

/// Sprout's tick length.
const TICK: SimDuration = SimDuration::from_millis(20);
/// Forecast horizon (Sprout forecasts 8 ticks ≈ 160 ms ahead).
const HORIZON_TICKS: u32 = 8;
/// Target end-to-end queueing budget.
const DELAY_TARGET: SimDuration = SimDuration::from_millis(100);
/// Z-score of the conservative forecast quantile (~10th percentile; the
/// paper's Sprout uses the 5th, but its richer inference model has tighter
/// posteriors — this setting lands the same qualitative conservatism).
const Z95: f64 = 1.3;
/// Per-tick relative drift of the link-rate belief (uncertainty grows with
/// the forecast horizon, as in Sprout's Brownian volatility).
const DRIFT: f64 = 0.05;

/// Sprout: stochastic-forecast controller for cellular links.
pub struct Sprout {
    /// Rate belief (bytes/s) and its variance, updated per tick.
    mean_rate: f64,
    var_rate: f64,
    tick_start: SimTime,
    /// Arrivals over a ~1-RTT sliding window; sampling this at each tick
    /// (instead of raw 20 ms bins) keeps ACK-clocked burstiness from
    /// masquerading as link-rate variance.
    arrivals: WindowedRate,
    last_tick_time: SimTime,
    cwnd: f64,
    initialized: bool,
    /// Most recent one-way delay, for the belief's upward probe: while the
    /// path shows no queueing, the belief may be sender-limited rather
    /// than link-limited, so it is optimistically inflated (real Sprout
    /// gets this signal from its Poisson service-time inference; an
    /// observed-throughput proxy needs the explicit probe).
    last_delay: SimDuration,
    min_delay: SimDuration,
    /// Multiplier applied to the belief while no queueing is observed;
    /// resets to 1 as soon as a queue appears. Kept separate from the
    /// belief so the probe does not pollute the variance estimate.
    probe_gain: f64,
}

impl Sprout {
    /// A Sprout flow with an empty delivery forecast.
    pub fn new() -> Self {
        Sprout {
            mean_rate: 0.0,
            var_rate: 0.0,
            tick_start: SimTime::ZERO,
            arrivals: WindowedRate::new(SimDuration::from_millis(100)),
            last_tick_time: SimTime::ZERO,
            cwnd: 4.0,
            initialized: false,
            last_delay: SimDuration::ZERO,
            min_delay: SimDuration::MAX,
            probe_gain: 1.0,
        }
    }

    /// Conservative (5th percentile) deliverable bytes over the horizon,
    /// integrating growing drift uncertainty tick by tick.
    fn conservative_bytes(&self) -> f64 {
        let mut total = 0.0;
        let tick_s = TICK.as_secs_f64();
        for k in 1..=HORIZON_TICKS {
            // std of the belief k ticks out: measurement std + drift·k
            let sigma =
                (self.var_rate.sqrt() + self.mean_rate * DRIFT * k as f64).min(self.mean_rate); // never forecast below zero
            let p5 = (self.mean_rate - Z95 * sigma).max(0.0);
            total += p5 * tick_s;
        }
        total
    }

    fn end_tick(&mut self) {
        let tick_s = TICK.as_secs_f64();
        let sample = self.arrivals.rate(self.last_tick_time).bps() / 8.0;
        if !self.initialized {
            self.mean_rate = sample;
            self.var_rate = (sample * 0.5).powi(2);
            self.initialized = true;
        } else {
            // EWMA belief update with variance tracking
            let alpha = 0.25;
            let err = sample - self.mean_rate;
            self.mean_rate += alpha * err;
            self.var_rate = (1.0 - alpha) * (self.var_rate + alpha * err * err);
        }
        // Upward probe: if the path shows essentially no queueing, the
        // current belief is sender-limited, not link-limited — scale the
        // window up until a queue signal appears.
        let queuing = self
            .last_delay
            .saturating_sub(if self.min_delay == SimDuration::MAX {
                SimDuration::ZERO
            } else {
                self.min_delay
            });
        if queuing < SimDuration::from_millis(25) {
            self.probe_gain = (self.probe_gain * 1.15).min(4.0);
        } else {
            self.probe_gain = 1.0;
        }
        // window: bytes deliverable within the delay budget at the
        // conservative rate, scaled from the forecast horizon
        let budget_frac = DELAY_TARGET.as_secs_f64() / (HORIZON_TICKS as f64 * tick_s);
        let bytes = self.conservative_bytes() * budget_frac * self.probe_gain;
        self.cwnd = (bytes / 1500.0).max(2.0);
    }
}

impl Default for Sprout {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Sprout {
    fn name(&self) -> &'static str {
        "sprout"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if self.tick_start == SimTime::ZERO {
            self.tick_start = ev.now;
        }
        self.arrivals.record(ev.now, ev.acked_bytes as u64);
        self.last_delay = ev.one_way_delay;
        self.min_delay = self.min_delay.min(ev.one_way_delay);
        while ev.now.since(self.tick_start) >= TICK {
            self.tick_start += TICK;
            self.last_tick_time = ev.now;
            self.end_tick();
        }
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.cwnd = 2.0;
    }

    fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }

    // Sprout is ACK-clocked here (the default): its window already encodes
    // the forecast budget. Pacing at the *belief* rate would deadlock after
    // an underestimate — slow sending begets a lower belief. The real
    // Sprout sends its per-tick budget immediately, which ACK-clocking
    // approximates safely.
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Ecn, Feedback};
    use netsim::rate::Rate;

    fn ack(now_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + SimDuration::from_millis(now_ms),
            rtt: Some(SimDuration::from_millis(100)),
            min_rtt: SimDuration::from_millis(100),
            srtt: SimDuration::from_millis(100),
            acked_bytes: 1500,
            ecn_echo: Ecn::NotEct,
            feedback: Feedback::None,
            inflight_pkts: 5,
            delivery_rate: Rate::ZERO,
            one_way_delay: SimDuration::from_millis(50),
        }
    }

    #[test]
    fn steady_rate_builds_a_window() {
        let mut s = Sprout::new();
        // 1 pkt/ms = 12 Mbit/s for 2 seconds
        for i in 1..2000 {
            s.on_ack(&ack(i));
        }
        assert!(s.cwnd_pkts() > 10.0, "cwnd {}", s.cwnd_pkts());
    }

    #[test]
    fn forecast_is_conservative() {
        let mut s = Sprout::new();
        for i in 1..2000 {
            s.on_ack(&ack(i));
        }
        // steady 1500 B/ms → mean 1.5 MB/s; conservative horizon forecast
        // must be below the mean-rate horizon product
        let optimistic = s.mean_rate * TICK.as_secs_f64() * HORIZON_TICKS as f64;
        assert!(s.conservative_bytes() < optimistic);
        assert!(s.conservative_bytes() > 0.0);
    }

    #[test]
    fn variance_grows_window_shrinks() {
        let mut steady = Sprout::new();
        let mut bursty = Sprout::new();
        for i in 1..4000 {
            steady.on_ack(&ack(i));
        }
        // same average rate, delivered in alternating bursts/silences
        for i in 1..2000 {
            bursty.on_ack(&ack(i * 2));
        }
        // give the same total time so both have the same observation span
        assert!(
            bursty.cwnd_pkts() <= steady.cwnd_pkts() + 1.0,
            "bursty {} vs steady {}",
            bursty.cwnd_pkts(),
            steady.cwnd_pkts()
        );
    }
}
