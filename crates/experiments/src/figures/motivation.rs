//! Fig. 1: the motivation time series — Cubic bufferbloat, Verus
//! oscillation, Cubic+CoDel underutilization, ABC tracking.

use super::Scale;
use crate::report::sparkline;
use crate::scenario::{CellScenario, LinkSpec};
use crate::scheme::Scheme;
use std::fmt::Write;

/// Fig. 1: the motivating bufferbloat-vs-underutilization contrast.
pub fn fig1(scale: Scale) -> String {
    let trace = cellular::builtin("Verizon1").unwrap();
    let dur = scale.secs(30, 15, 2);
    let mut out = String::new();
    writeln!(
        out,
        "# Fig 1 — 30 s on an emulated LTE link (dashed = capacity)"
    )
    .unwrap();
    for (panel, scheme) in [
        ("a", Scheme::Cubic),
        ("b", Scheme::Verus),
        ("c", Scheme::CubicCodel),
        ("d", Scheme::Abc),
    ] {
        let mut sc = CellScenario::new(scheme, LinkSpec::Trace(trace.clone()));
        sc.duration = dur;
        sc.warmup = scale.secs(2, 2, 0);
        let r = sc.run();
        writeln!(out, "\n## Fig 1{panel} — {}", scheme.name()).unwrap();
        writeln!(out, "capacity : {}", sparkline(&r.capacity_series, 60)).unwrap();
        writeln!(out, "goodput  : {}", sparkline(&r.tput_series, 60)).unwrap();
        writeln!(out, "qdelay   : {}", sparkline(&r.qdelay_series, 60)).unwrap();
        writeln!(
            out,
            "util {:>5.1}%  qdelay p50/p95/max {:>6.0}/{:>6.0}/{:>6.0} ms",
            r.utilization * 100.0,
            r.qdelay_ms.p50,
            r.qdelay_ms.p95,
            r.qdelay_ms.max
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shapes_hold() {
        let f = fig1(Scale::Fast);
        assert!(f.contains("Fig 1a"));
        assert!(f.contains("Fig 1d"));
        // crude shape check embedded in the output itself: parse the util
        // lines for Cubic (1a) and ABC (1d)
        let utils: Vec<f64> = f
            .lines()
            .filter(|l| l.starts_with("util"))
            .map(|l| {
                l.split('%')
                    .next()
                    .unwrap()
                    .split_whitespace()
                    .last()
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(utils.len(), 4);
        let (cubic, codel, abc) = (utils[0], utils[2], utils[3]);
        assert!(cubic > abc * 0.8, "Cubic keeps the link busy");
        assert!(abc > codel, "ABC out-utilizes Cubic+Codel");
    }
}
