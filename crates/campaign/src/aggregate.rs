//! Aggregation over stored campaign results: across-seed mean/CI,
//! percentile rollups, and Jain fairness summaries.

use crate::runner::RunRecord;
use crate::spec::Coords;
use netsim::stats::percentile;
use std::fmt::Write;

/// Mean, spread, and a 95% confidence half-width (normal approximation,
/// `1.96·σ/√n`) of one metric across a group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    /// Samples summarized (NaNs excluded).
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Normal-approximation 95% confidence half-width.
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

/// Summarize `xs`, ignoring `NaN` samples (Wi-Fi utilization).
pub fn stat(xs: &[f64]) -> Stat {
    let xs: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    let n = xs.len();
    if n == 0 {
        return Stat {
            n: 0,
            mean: f64::NAN,
            std_dev: f64::NAN,
            ci95: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
        };
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let std_dev = var.sqrt();
    Stat {
        n,
        mean,
        std_dev,
        ci95: 1.96 * std_dev / (n as f64).sqrt(),
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// One group's rollup: all records sharing every coordinate except the
/// aggregated axis.
#[derive(Debug, Clone)]
pub struct GroupAgg {
    /// The shared coordinates (aggregated axis removed).
    pub coords: Coords,
    /// Records in the group.
    pub n: usize,
    /// Bottleneck utilization across the group.
    pub utilization: Stat,
    /// p95 per-packet delay (ms) across the group.
    pub delay_p95_ms: Stat,
    /// p95 queuing delay (ms) across the group.
    pub qdelay_p95_ms: Stat,
    /// Total throughput (Mbit/s) across the group.
    pub total_tput_mbps: Stat,
    /// Jain fairness across the group.
    pub jain: Stat,
}

/// Group records across `over` (usually `"seed"`), preserving first-seen
/// group order, and summarize each group's headline metrics.
pub fn aggregate(records: &[RunRecord], over: &str) -> Vec<GroupAgg> {
    let mut groups: Vec<(Coords, Vec<&RunRecord>)> = Vec::new();
    for r in records {
        let key = r.coords.without(over);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(r),
            None => groups.push((key, vec![r])),
        }
    }
    groups
        .into_iter()
        .map(|(coords, members)| {
            let of = |f: &dyn Fn(&RunRecord) -> f64| -> Vec<f64> {
                members.iter().map(|r| f(r)).collect()
            };
            GroupAgg {
                coords,
                n: members.len(),
                utilization: stat(&of(&|r| r.report.utilization)),
                delay_p95_ms: stat(&of(&|r| r.report.delay_ms.p95)),
                qdelay_p95_ms: stat(&of(&|r| r.report.qdelay_ms.p95)),
                total_tput_mbps: stat(&of(&|r| r.report.total_tput_mbps)),
                jain: stat(&of(&|r| r.report.jain)),
            }
        })
        .collect()
}

/// Group records by one axis's label and summarize `metric` over each
/// group — the figure renderers' "mean utilization per scheme" shape.
pub fn stat_by(
    records: &[RunRecord],
    axis: &str,
    metric: impl Fn(&RunRecord) -> f64,
) -> Vec<(String, Stat)> {
    let mut out: Vec<(String, Vec<f64>)> = Vec::new();
    for r in records {
        let Some(label) = r.coords.get(axis) else {
            continue;
        };
        match out.iter_mut().find(|(l, _)| l == label) {
            Some((_, xs)) => xs.push(metric(r)),
            None => out.push((label.to_string(), vec![metric(r)])),
        }
    }
    out.into_iter().map(|(l, xs)| (l, stat(&xs))).collect()
}

/// The across-seed aggregate table (`abc-campaign export`).
pub fn render_table(aggs: &[GroupAgg], over: &str) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<44} {:>3} {:>16} {:>18} {:>18} {:>14} {:>8}",
        format!("group (aggregated over {over:?})"),
        "n",
        "util mean±ci95",
        "p95 delay ms",
        "p95 qdelay ms",
        "tput Mbit/s",
        "jain"
    )
    .unwrap();
    for a in aggs {
        let key = if a.coords.0.is_empty() {
            "(all)".to_string()
        } else {
            a.coords.key()
        };
        writeln!(
            out,
            "{:<44} {:>3} {:>8.3}±{:>6.3} {:>10.1}±{:>6.1} {:>10.1}±{:>6.1} {:>8.2}±{:>4.2} {:>8.3}",
            key,
            a.n,
            a.utilization.mean,
            a.utilization.ci95,
            a.delay_p95_ms.mean,
            a.delay_p95_ms.ci95,
            a.qdelay_p95_ms.mean,
            a.qdelay_p95_ms.ci95,
            a.total_tput_mbps.mean,
            a.total_tput_mbps.ci95,
            a.jain.mean,
        )
        .unwrap();
    }
    out
}

/// Campaign-wide percentile rollup of the headline metrics.
pub fn render_rollup(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let metric = |name: &str, xs: &mut Vec<f64>, out: &mut String| {
        xs.retain(|x| !x.is_nan());
        xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        if xs.is_empty() {
            writeln!(out, "{name:<22} (no finite samples)").unwrap();
            return;
        }
        writeln!(
            out,
            "{:<22} p5 {:>9.3}  p50 {:>9.3}  p95 {:>9.3}  mean {:>9.3}",
            name,
            percentile(xs, 5.0),
            percentile(xs, 50.0),
            percentile(xs, 95.0),
            xs.iter().sum::<f64>() / xs.len() as f64,
        )
        .unwrap();
    };
    writeln!(out, "# rollup over {} records", records.len()).unwrap();
    metric(
        "utilization",
        &mut records.iter().map(|r| r.report.utilization).collect(),
        &mut out,
    );
    metric(
        "delay p95 (ms)",
        &mut records.iter().map(|r| r.report.delay_ms.p95).collect(),
        &mut out,
    );
    metric(
        "qdelay p95 (ms)",
        &mut records.iter().map(|r| r.report.qdelay_ms.p95).collect(),
        &mut out,
    );
    metric(
        "total tput (Mbit/s)",
        &mut records.iter().map(|r| r.report.total_tput_mbps).collect(),
        &mut out,
    );
    metric(
        "jain",
        &mut records.iter().map(|r| r.report.jain).collect(),
        &mut out,
    );
    out
}

/// Flat CSV of the scalar metrics (one row per record, coordinates as
/// leading columns).
pub fn render_csv(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let axes: Vec<String> = records
        .first()
        .map(|r| r.coords.0.iter().map(|(a, _)| a.clone()).collect())
        .unwrap_or_default();
    // the report's own scheme name is prefixed so it never collides with
    // a campaign's "scheme" axis column
    writeln!(
        out,
        "ordinal,{}report_scheme,utilization,total_tput_mbps,delay_p50_ms,delay_p95_ms,delay_mean_ms,qdelay_p95_ms,jain,drops",
        axes.iter().map(|a| format!("{a},")).collect::<String>()
    )
    .unwrap();
    for r in records {
        let coords: String = axes
            .iter()
            .map(|a| format!("{},", r.coords.get(a).unwrap_or("")))
            .collect();
        writeln!(
            out,
            "{},{}{},{},{},{},{},{},{},{},{}",
            r.ordinal,
            coords,
            r.report.scheme,
            r.report.utilization,
            r.report.total_tput_mbps,
            r.report.delay_ms.p50,
            r.report.delay_ms.p95,
            r.report.delay_ms.mean,
            r.report.qdelay_ms.p95,
            r.report.jain,
            r.report.drops,
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_campaign;
    use crate::spec::{Axis, Campaign};
    use experiments::engine::ScenarioSpec;
    use experiments::scenario::LinkSpec;
    use experiments::Scheme;
    use netsim::rate::Rate;

    #[test]
    fn stat_handles_edges() {
        let s = stat(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
        let s = stat(&[2.0, f64::NAN, 4.0]);
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 4.0);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn aggregates_across_seeds() {
        let base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
            .duration_secs(1)
            .warmup_secs(0);
        let campaign = Campaign::new("agg", base)
            .axis(Axis::schemes(&[Scheme::Abc, Scheme::Cubic]))
            .axis(Axis::seeds(&[1, 2, 3]));
        let records = run_campaign(&campaign, &Default::default());
        let aggs = aggregate(&records, "seed");
        assert_eq!(aggs.len(), 2, "one group per scheme");
        assert_eq!(aggs[0].coords.key(), "scheme=ABC");
        assert_eq!(aggs[0].n, 3);
        assert!(aggs[0].utilization.mean > 0.0);
        let table = render_table(&aggs, "seed");
        assert!(table.contains("scheme=ABC"), "{table}");
        let rollup = render_rollup(&records);
        assert!(rollup.contains("utilization"), "{rollup}");
        let csv = render_csv(&records);
        assert_eq!(csv.lines().count(), records.len() + 1);
        assert!(
            csv.starts_with("ordinal,scheme,seed,report_scheme,"),
            "{csv}"
        );
        let header: Vec<&str> = csv.lines().next().unwrap().split(',').collect();
        let mut dedup = header.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            header.len(),
            "duplicate CSV columns: {header:?}"
        );
    }
}
