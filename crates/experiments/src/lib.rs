//! # experiments — per-figure/table harnesses
//!
//! Scenario builders and generators that regenerate every table and figure
//! of the paper's evaluation (see DESIGN.md §3 for the index and
//! EXPERIMENTS.md for paper-vs-measured numbers). Each figure has a
//! binary (`cargo run --release -p experiments --bin figN`).

pub mod figures;
pub mod report;
pub mod scenario;
pub mod scheme;
pub mod topos;
pub mod wifi;

pub use report::{downsample, sparkline, Report};
pub use scenario::{BuiltScenario, CellScenario, LinkSpec};
pub use scheme::{Scheme, CELLULAR_LINEUP, EXPLICIT_LINEUP, WIFI_LINEUP};
pub use topos::{CoexistResult, CoexistScenario, CrossTraffic, MixedPathScenario, TwoHopScenario};
pub use wifi::{estimator_accuracy, McsSpec, WifiScenario};
