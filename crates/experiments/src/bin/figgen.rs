//! Regenerate any table/figure of the paper.
//!
//! ```text
//! cargo run --release -p experiments --bin figgen            # list figures
//! cargo run --release -p experiments --bin figgen fig8       # one figure
//! cargo run --release -p experiments --bin figgen all        # everything
//! cargo run --release -p experiments --bin figgen fig8 --fast  # reduced scale
//! cargo run --release -p experiments --bin figgen all --tiny   # wiring check
//! ```

use experiments::figures::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--tiny") {
        Scale::Tiny
    } else if args.iter().any(|a| a == "--fast") {
        Scale::Fast
    } else {
        Scale::Full
    };
    let which: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let all = figures::all();

    if which.is_empty() {
        eprintln!("figures available:");
        for (id, desc, _) in &all {
            eprintln!("  {id:<10} {desc}");
        }
        eprintln!("usage: figgen <id>|all [--fast|--tiny]");
        std::process::exit(2);
    }

    for name in which {
        if name == "all" {
            for (id, _, f) in &all {
                eprintln!(">>> {id}");
                println!("{}", f(scale));
            }
            continue;
        }
        match all.iter().find(|(id, ..)| id == name) {
            Some((_, _, f)) => println!("{}", f(scale)),
            None => {
                eprintln!("unknown figure {name:?}; run with no args for the list");
                std::process::exit(2);
            }
        }
    }
}
