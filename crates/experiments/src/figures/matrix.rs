//! The scheme × trace sweep engine behind Table 1 and Figs. 8/9/15/16/18.
//!
//! Sweeps are embarrassingly parallel, so the matrix is a single
//! [`ScenarioEngine::run_batch`] call: one spec per (scheme, trace) cell,
//! executed across the machine's cores.

use super::Scale;
use crate::engine::ScenarioEngine;
use crate::report::Report;
use crate::scenario::{CellScenario, LinkSpec};
use crate::scheme::Scheme;
use cellular::CellTrace;
use netsim::time::SimDuration;

pub struct MatrixCell {
    pub scheme: Scheme,
    pub trace: String,
    pub report: Report,
}

/// Run every scheme over every trace, in parallel.
pub fn run_matrix(
    schemes: &[Scheme],
    traces: &[CellTrace],
    rtt: SimDuration,
    duration: SimDuration,
) -> Vec<MatrixCell> {
    let cells: Vec<(Scheme, String)> = traces
        .iter()
        .flat_map(|trace| schemes.iter().map(|&s| (s, trace.name.clone())))
        .collect();
    let specs: Vec<_> = traces
        .iter()
        .flat_map(|trace| {
            schemes.iter().map(|&scheme| {
                let mut sc = CellScenario::new(scheme, LinkSpec::Trace(trace.clone()));
                sc.rtt = rtt;
                sc.duration = duration;
                sc.spec()
            })
        })
        .collect();
    let reports = ScenarioEngine::new().run_batch(&specs);
    cells
        .into_iter()
        .zip(reports)
        .map(|((scheme, trace), report)| MatrixCell {
            scheme,
            trace,
            report,
        })
        .collect()
}

/// Per-scheme averages across traces: (scheme, mean util, mean p95 delay,
/// mean mean-delay, mean p95 queuing delay).
pub fn averages(cells: &[MatrixCell], schemes: &[Scheme]) -> Vec<(Scheme, f64, f64, f64, f64)> {
    schemes
        .iter()
        .map(|&s| {
            let mine: Vec<&MatrixCell> = cells.iter().filter(|c| c.scheme == s).collect();
            let n = mine.len().max(1) as f64;
            let util = mine.iter().map(|c| c.report.utilization).sum::<f64>() / n;
            let p95 = mine.iter().map(|c| c.report.delay_ms.p95).sum::<f64>() / n;
            let mean = mine.iter().map(|c| c.report.delay_ms.mean).sum::<f64>() / n;
            let qp95 = mine.iter().map(|c| c.report.qdelay_ms.p95).sum::<f64>() / n;
            (s, util, p95, mean, qp95)
        })
        .collect()
}

/// The traces for a run: all eight, or a truncated subset.
pub fn traces(scale: Scale) -> Vec<CellTrace> {
    let mut all = cellular::all_builtin();
    all.truncate(scale.pick(usize::MAX, 2, 1));
    all
}

pub fn sim_duration(scale: Scale) -> SimDuration {
    scale.secs(120, 20, 2)
}
