//! Beyond-single-bottleneck topologies: the two-hop cellular path
//! (Fig. 8c), the wireless+wired mixed-bottleneck path (Figs. 6, 11), the
//! dual-queue coexistence router (Figs. 7, 12), and Wi-Fi (Figs. 4-5, 10, 14).

use crate::report::{downsample, Report};
use crate::scenario::LinkSpec;
use crate::scheme::Scheme;
use abc_core::coexist::{DualQueue, DualQueueConfig, WeightPolicy};
use baselines::Cubic;
use netsim::flow::{Sender, Sink, TrafficSource};
use netsim::linkqueue::LinkQueue;
use netsim::metrics::new_hub;
use netsim::packet::{FlowId, Route};
use netsim::queue::{DropTail, Qdisc};
use netsim::rate::Rate;
use netsim::sim::Simulator;
use netsim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fig. 8c: a flow traversing *two* potential bottlenecks in series (the
/// cellular uplink then downlink); both run the scheme's qdisc. ACKs
/// return over plain propagation.
pub struct TwoHopScenario {
    pub scheme: Scheme,
    pub up: LinkSpec,
    pub down: LinkSpec,
    pub rtt: SimDuration,
    pub buffer_pkts: usize,
    pub duration: SimDuration,
    pub warmup: SimDuration,
}

impl TwoHopScenario {
    pub fn new(scheme: Scheme, up: LinkSpec, down: LinkSpec) -> Self {
        TwoHopScenario {
            scheme,
            up,
            down,
            rtt: SimDuration::from_millis(100),
            buffer_pkts: 250,
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(5),
        }
    }

    pub fn run(&self) -> Report {
        let mut sim = Simulator::new();
        let hub = new_hub();
        hub.borrow_mut().set_epoch(SimTime::ZERO + self.warmup);
        let up_id = sim.reserve_node();
        let down_id = sim.reserve_node();
        let sender_id = sim.reserve_node();
        let sink_id = sim.reserve_node();
        let q = self.rtt / 6;
        let back = self.rtt / 2;
        let fwd = Route::new(vec![(up_id, q), (down_id, q), (sink_id, q)]);
        let back_route = Route::new(vec![(sender_id, back)]);
        sim.install_node(
            sink_id,
            Box::new(Sink::new(FlowId(1), back_route).with_metrics(hub.clone())),
        );
        sim.install_node(
            sender_id,
            Box::new(Sender::new(
                FlowId(1),
                self.scheme.make_cc(),
                fwd,
                TrafficSource::Backlogged,
            )),
        );
        sim.install_node(
            up_id,
            Box::new(
                LinkQueue::new(self.scheme.make_qdisc(self.buffer_pkts), self.up.build())
                    .with_metrics("uplink", hub.clone()),
            ),
        );
        sim.install_node(
            down_id,
            Box::new(
                LinkQueue::new(self.scheme.make_qdisc(self.buffer_pkts), self.down.build())
                    .with_metrics("downlink", hub.clone()),
            ),
        );
        let end = SimTime::ZERO + self.duration;
        sim.run_until(end);
        for id in [up_id, down_id] {
            let lq: &LinkQueue = sim
                .node(id)
                .and_then(|n| n.as_any().downcast_ref())
                .unwrap();
            lq.finalize_opportunity(end);
        }
        let hubref = hub.borrow();
        let window = self.duration.saturating_sub(self.warmup);
        // the tighter hop determines achievable utilization; report the
        // downlink (final hop) delivery against the min-capacity hop
        static EMPTY: std::sync::OnceLock<netsim::metrics::LinkRecord> = std::sync::OnceLock::new();
        let empty = || EMPTY.get_or_init(Default::default);
        let up_l = hubref.links.get("uplink").unwrap_or_else(empty);
        let down_l = hubref.links.get("downlink").unwrap_or_else(empty);
        let min_opportunity = up_l.opportunity_bits.min(down_l.opportunity_bits);
        let util = if min_opportunity > 0.0 {
            (down_l.delivered_bytes as f64 * 8.0 / min_opportunity).min(1.0)
        } else {
            0.0
        };
        let qdelay_series: Vec<(f64, f64)> = down_l
            .qdelay_series
            .iter()
            .map(|(t, d)| (t.as_secs_f64(), d.as_millis_f64()))
            .collect();
        let flow_tputs: Vec<f64> = hubref
            .flows
            .values()
            .map(|f| f.throughput_over(window) / 1e6)
            .collect();
        Report {
            scheme: self.scheme.name(),
            utilization: util,
            delay_ms: hubref.delay_summary_ms(),
            qdelay_ms: down_l.qdelay_summary_ms(),
            total_tput_mbps: flow_tputs.iter().sum(),
            jain: hubref.jain(window),
            drops: up_l.dropped_pkts + down_l.dropped_pkts,
            flow_tputs_mbps: flow_tputs,
            tput_series: hubref.total_throughput_series_mbps(),
            qdelay_series: downsample(&qdelay_series, 600),
            capacity_series: Vec::new(),
        }
    }
}

/// Cross-traffic pattern on the wired hop of [`MixedPathScenario`].
#[derive(Debug, Clone, Copy)]
pub enum CrossTraffic {
    None,
    /// A Cubic flow that is backlogged during `on`, silent during `off`.
    OnOffCubic { on: SimDuration, off: SimDuration },
}

/// Figs. 6 and 11: an ABC flow whose path is ABC-wireless followed by a
/// fixed-rate wired droptail link, optionally shared with Cubic cross
/// traffic. The bottleneck flips between hops as the wireless rate steps.
pub struct MixedPathScenario {
    pub wireless: LinkSpec,
    pub wired_rate: Rate,
    pub rtt: SimDuration,
    pub buffer_pkts: usize,
    pub cross: CrossTraffic,
    pub duration: SimDuration,
}

/// Samples of the ABC flow's two windows over time (Fig. 6's bottom panel).
#[derive(Debug, Clone, Default)]
pub struct WindowTrace {
    /// (t s, w_abc pkts, w_nonabc pkts, goodput Mbit/s)
    pub samples: Vec<(f64, f64, f64, f64)>,
}

pub struct MixedPathResult {
    pub report: Report,
    pub windows: WindowTrace,
    /// (t s, queuing delay ms) at the *wireless* hop.
    pub wireless_qdelay: Vec<(f64, f64)>,
    /// (t s, queuing delay ms) at the wired hop.
    pub wired_qdelay: Vec<(f64, f64)>,
    /// Cross-traffic goodput series (Mbit/s).
    pub cross_tput: Vec<(f64, f64)>,
}

impl MixedPathScenario {
    pub fn run(&self) -> MixedPathResult {
        let mut sim = Simulator::new();
        let hub = new_hub();
        let wireless_id = sim.reserve_node();
        let wired_id = sim.reserve_node();
        let sender_id = sim.reserve_node();
        let sink_id = sim.reserve_node();
        let q = self.rtt / 6;
        let fwd = Route::new(vec![(wireless_id, q), (wired_id, q), (sink_id, q)]);
        let back = Route::new(vec![(sender_id, self.rtt / 2)]);
        sim.install_node(
            sink_id,
            Box::new(Sink::new(FlowId(1), back).with_metrics(hub.clone())),
        );
        sim.install_node(
            sender_id,
            Box::new(Sender::new(
                FlowId(1),
                Scheme::Abc.make_cc(),
                fwd,
                TrafficSource::Backlogged,
            )),
        );
        sim.install_node(
            wireless_id,
            Box::new(
                LinkQueue::new(Scheme::Abc.make_qdisc(self.buffer_pkts), self.wireless.build())
                    .with_metrics("wireless", hub.clone()),
            ),
        );
        sim.install_node(
            wired_id,
            Box::new(
                LinkQueue::new(
                    Box::new(DropTail::new(self.buffer_pkts)),
                    LinkSpec::Constant(self.wired_rate).build(),
                )
                .with_metrics("wired", hub.clone()),
            ),
        );

        // cross traffic enters only the wired hop
        if let CrossTraffic::OnOffCubic { on, off } = self.cross {
            let xs_id = sim.reserve_node();
            let xsink_id = sim.reserve_node();
            let xfwd = Route::new(vec![(wired_id, q), (xsink_id, q)]);
            let xback = Route::new(vec![(xs_id, self.rtt / 2)]);
            sim.install_node(
                xsink_id,
                Box::new(Sink::new(FlowId(2), xback).with_metrics(hub.clone())),
            );
            sim.install_node(
                xs_id,
                Box::new(Sender::new(
                    FlowId(2),
                    Box::new(Cubic::new()),
                    xfwd,
                    TrafficSource::OnOff { on, off },
                )),
            );
        }

        // run in chunks, sampling the ABC sender's windows
        let mut windows = WindowTrace::default();
        let chunk = SimDuration::from_millis(200);
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + self.duration;
        let mut last_bytes = 0u64;
        while t < end {
            sim.run_until(t + chunk);
            t += chunk;
            let s: &Sender = sim
                .node(sender_id)
                .and_then(|n| n.as_any().downcast_ref())
                .unwrap();
            let cc = s.cc();
            let (wabc, wnon) = cc
                .as_abc_windows()
                .unwrap_or((cc.cwnd_pkts(), cc.cwnd_pkts()));
            let bytes = hub
                .borrow()
                .flows
                .get(&FlowId(1))
                .map(|f| f.delivered_bytes)
                .unwrap_or(0);
            let goodput = (bytes - last_bytes) as f64 * 8.0 / chunk.as_secs_f64() / 1e6;
            last_bytes = bytes;
            windows
                .samples
                .push((t.as_secs_f64(), wabc, wnon, goodput));
        }

        for (id, _tag) in [(wireless_id, "wireless"), (wired_id, "wired")] {
            let lq: &LinkQueue = sim
                .node(id)
                .and_then(|n| n.as_any().downcast_ref())
                .unwrap();
            lq.finalize_opportunity(end);
        }
        let hubref = hub.borrow();
        let series = |tag: &str| -> Vec<(f64, f64)> {
            hubref.links[tag]
                .qdelay_series
                .iter()
                .map(|(t, d)| (t.as_secs_f64(), d.as_millis_f64()))
                .collect()
        };
        let wireless_qdelay = downsample(&series("wireless"), 600);
        let wired_qdelay = downsample(&series("wired"), 600);
        let window = self.duration;
        let flow_tputs: Vec<f64> = hubref
            .flows
            .values()
            .map(|f| f.throughput_over(window) / 1e6)
            .collect();
        let report = Report {
            scheme: "ABC(mixed-path)".into(),
            utilization: hubref.links["wireless"].utilization(),
            delay_ms: hubref.delay_summary_ms(),
            qdelay_ms: hubref.links["wireless"].qdelay_summary_ms(),
            total_tput_mbps: flow_tputs.iter().sum(),
            jain: hubref.jain(window),
            drops: hubref.links["wired"].dropped_pkts,
            flow_tputs_mbps: flow_tputs,
            tput_series: hubref.throughput_series_mbps(FlowId(1)),
            qdelay_series: wireless_qdelay.clone(),
            capacity_series: self
                .wireless
                .capacity_series(self.duration, SimDuration::from_millis(100)),
        };
        MixedPathResult {
            report,
            windows,
            wireless_qdelay,
            wired_qdelay,
            cross_tput: hubref.throughput_series_mbps(FlowId(2)),
        }
    }
}

/// Figs. 7 & 12: long-lived ABC and Cubic flows sharing a dual-queue ABC
/// router, plus optional Poisson short (Cubic) flows at a target offered
/// load.
pub struct CoexistScenario {
    pub link_rate: Rate,
    pub n_abc: u32,
    pub n_cubic: u32,
    pub policy: WeightPolicy,
    /// Offered load of 10-KB short flows as a fraction of link rate.
    pub short_flow_load: f64,
    pub rtt: SimDuration,
    pub duration: SimDuration,
    pub warmup: SimDuration,
    /// Stagger between long-flow arrivals (Fig. 7 uses ~25 s).
    pub stagger: SimDuration,
    pub seed: u64,
}

impl Default for CoexistScenario {
    fn default() -> Self {
        CoexistScenario {
            link_rate: Rate::from_mbps(96.0),
            n_abc: 3,
            n_cubic: 3,
            policy: WeightPolicy::MaxMin { headroom: 0.10 },
            short_flow_load: 0.0,
            rtt: SimDuration::from_millis(100),
            duration: SimDuration::from_secs(40),
            warmup: SimDuration::from_secs(5),
            stagger: SimDuration::ZERO,
            seed: 7,
        }
    }
}

pub struct CoexistResult {
    /// Per-flow average goodput (Mbit/s) of the long ABC flows.
    pub abc_tputs: Vec<f64>,
    /// Per-flow average goodput of the long Cubic flows.
    pub cubic_tputs: Vec<f64>,
    /// Goodput series per long flow (Fig. 7 top panel).
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// (t s, ms) queuing delay of the ABC class / the other class.
    pub abc_qdelay_p95_ms: f64,
    pub short_flows_completed: u64,
}

impl CoexistScenario {
    pub fn run(&self) -> CoexistResult {
        self.run_sampled(|_, _, _, _| {})
    }

    /// Like [`CoexistScenario::run`], invoking `probe(t_secs, w_abc,
    /// abc_queue_pkts, other_queue_pkts)` every 100 ms of simulated time.
    pub fn run_sampled(&self, mut probe: impl FnMut(f64, f64, usize, usize)) -> CoexistResult {
        let mut sim = Simulator::new();
        let hub = new_hub();
        hub.borrow_mut().set_epoch(SimTime::ZERO + self.warmup);
        let link_id = sim.reserve_node();
        let q = self.rtt / 4;
        let back_d = self.rtt / 2;
        let mut next_flow = 1u32;
        let mut long_flows: Vec<(String, FlowId)> = Vec::new();

        let add_flow = |sim: &mut Simulator,
                            scheme: Scheme,
                            start: SimTime,
                            app: TrafficSource,
                            next_flow: &mut u32|
         -> FlowId {
            let flow = FlowId(*next_flow);
            *next_flow += 1;
            let sender_id = sim.reserve_node();
            let sink_id = sim.reserve_node();
            let fwd = Route::new(vec![(link_id, q), (sink_id, q)]);
            let back = Route::new(vec![(sender_id, back_d)]);
            sim.install_node(
                sink_id,
                Box::new(Sink::new(flow, back).with_metrics(hub.clone())),
            );
            sim.install_node(
                sender_id,
                Box::new(
                    Sender::new(flow, scheme.make_cc(), fwd, app).with_start_at(start),
                ),
            );
            flow
        };

        for i in 0..self.n_abc {
            let f = add_flow(
                &mut sim,
                Scheme::Abc,
                SimTime::ZERO + self.stagger * i as u64,
                TrafficSource::Backlogged,
                &mut next_flow,
            );
            long_flows.push((format!("ABC {}", i + 1), f));
        }
        for i in 0..self.n_cubic {
            let f = add_flow(
                &mut sim,
                Scheme::Cubic,
                SimTime::ZERO + self.stagger * (self.n_abc + i) as u64,
                TrafficSource::Backlogged,
                &mut next_flow,
            );
            long_flows.push((format!("Cubic {}", i + 1), f));
        }

        // Poisson 10-KB short flows (non-ABC), at `short_flow_load`.
        let mut short_count = 0u64;
        if self.short_flow_load > 0.0 {
            let mut rng = StdRng::seed_from_u64(self.seed);
            let bytes_per_flow = 10_000.0;
            let arrivals_per_s =
                self.short_flow_load * self.link_rate.bps() / 8.0 / bytes_per_flow;
            let mut t = 0.0;
            while t < self.duration.as_secs_f64() {
                let gap = -rng.gen_range(1e-9f64..1.0).ln() / arrivals_per_s;
                t += gap;
                if t >= self.duration.as_secs_f64() {
                    break;
                }
                add_flow(
                    &mut sim,
                    Scheme::Cubic,
                    SimTime::from_secs_f64(t),
                    TrafficSource::Finite {
                        bytes: bytes_per_flow as u64,
                    },
                    &mut next_flow,
                );
                short_count += 1;
            }
        }

        let qdisc = DualQueue::new(DualQueueConfig {
            policy: self.policy,
            ..Default::default()
        });
        sim.install_node(
            link_id,
            Box::new(
                LinkQueue::new(Box::new(qdisc), LinkSpec::Constant(self.link_rate).build())
                    .with_metrics("bottleneck", hub.clone()),
            ),
        );

        let end = SimTime::ZERO + self.duration;
        let mut t = SimTime::ZERO;
        while t < end {
            sim.run_until(t + SimDuration::from_millis(100));
            t += SimDuration::from_millis(100);
            let lq: &LinkQueue = sim
                .node(link_id)
                .and_then(|n| n.as_any().downcast_ref())
                .unwrap();
            if let Some(dq) = lq.qdisc().as_any_qdisc().downcast_ref::<DualQueue>() {
                probe(
                    t.as_secs_f64(),
                    dq.weight_abc(),
                    dq.abc_queue().len_pkts(),
                    dq.other_len_pkts(),
                );
            }
        }

        let hubref = hub.borrow();
        let window = self.duration - self.warmup;
        let tput = |f: FlowId| {
            hubref
                .flows
                .get(&f)
                .map(|r| r.throughput_over(window) / 1e6)
                .unwrap_or(0.0)
        };
        let abc_tputs: Vec<f64> = long_flows
            .iter()
            .filter(|(n, _)| n.starts_with("ABC"))
            .map(|(_, f)| tput(*f))
            .collect();
        let cubic_tputs: Vec<f64> = long_flows
            .iter()
            .filter(|(n, _)| n.starts_with("Cubic"))
            .map(|(_, f)| tput(*f))
            .collect();
        let series = long_flows
            .iter()
            .map(|(n, f)| (n.clone(), hubref.throughput_series_mbps(*f)))
            .collect();
        // ABC-class queuing delay: per-packet delays of ABC flows minus
        // propagation (the sink-side observable)
        let prop = (q + q).as_millis_f64();
        let mut abc_delays: Vec<f64> = long_flows
            .iter()
            .filter(|(n, _)| n.starts_with("ABC"))
            .filter_map(|(_, f)| hubref.flows.get(f))
            .flat_map(|r| r.delays_s.iter().map(|d| (d * 1e3 - prop).max(0.0)))
            .collect();
        abc_delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let abc_qdelay_p95_ms = netsim::stats::percentile(&abc_delays, 95.0);
        CoexistResult {
            abc_tputs,
            cubic_tputs,
            series,
            abc_qdelay_p95_ms,
            short_flows_completed: short_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_hop_abc_tracks_tighter_link() {
        let r = TwoHopScenario::new(
            Scheme::Abc,
            LinkSpec::Constant(Rate::from_mbps(24.0)),
            LinkSpec::Constant(Rate::from_mbps(12.0)),
        )
        .run();
        // bottleneck is the 12 Mbit/s downlink
        assert!(r.total_tput_mbps > 10.0, "{}", r.row());
        assert!(r.total_tput_mbps < 12.5, "{}", r.row());
        assert!(r.qdelay_ms.p95 < 60.0, "{}", r.row());
    }

    #[test]
    fn mixed_path_switches_bottleneck() {
        // wireless steps 16 → 6 → 16 Mbit/s; wired fixed 12
        let r = MixedPathScenario {
            wireless: LinkSpec::Steps(vec![
                (SimTime::ZERO, Rate::from_mbps(16.0)),
                (SimTime::ZERO + SimDuration::from_secs(20), Rate::from_mbps(6.0)),
                (SimTime::ZERO + SimDuration::from_secs(40), Rate::from_mbps(16.0)),
            ]),
            wired_rate: Rate::from_mbps(12.0),
            rtt: SimDuration::from_millis(100),
            buffer_pkts: 250,
            cross: CrossTraffic::None,
            duration: SimDuration::from_secs(60),
        }
        .run();
        // middle third: wireless (6) is the bottleneck; outer thirds:
        // wired (12). Check goodput in each regime.
        let mid: Vec<f64> = r
            .windows
            .samples
            .iter()
            .filter(|(t, ..)| (25.0..38.0).contains(t))
            .map(|&(_, _, _, g)| g)
            .collect();
        let outer: Vec<f64> = r
            .windows
            .samples
            .iter()
            .filter(|(t, ..)| (45.0..58.0).contains(t))
            .map(|&(_, _, _, g)| g)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            (mean(&mid) - 6.0).abs() < 1.2,
            "mid-regime goodput {}",
            mean(&mid)
        );
        assert!(
            mean(&outer) > 9.5,
            "outer-regime goodput {} (wired should cap at ~12)",
            mean(&outer)
        );
    }

    #[test]
    fn coexist_long_flows_share_fairly() {
        let r = CoexistScenario {
            link_rate: Rate::from_mbps(48.0),
            n_abc: 2,
            n_cubic: 2,
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(20),
            ..Default::default()
        }
        .run();
        let abc: f64 = r.abc_tputs.iter().sum::<f64>() / r.abc_tputs.len() as f64;
        let cubic: f64 = r.cubic_tputs.iter().sum::<f64>() / r.cubic_tputs.len() as f64;
        let diff = (abc - cubic).abs() / abc.max(cubic);
        assert!(
            diff < 0.25,
            "ABC {abc:.2} vs Cubic {cubic:.2} Mbit/s ({diff:.2} apart)"
        );
        // ABC keeps its class's delay low despite the Cubic queue
        assert!(
            r.abc_qdelay_p95_ms < 100.0,
            "ABC-class queuing delay {:.1} ms",
            r.abc_qdelay_p95_ms
        );
    }
}
