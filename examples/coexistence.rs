//! ABC sharing a bottleneck with legacy Cubic traffic (§5.2): the
//! dual-queue router isolates the classes and the max-min weight policy
//! equalizes long-flow throughput, while ABC's class keeps low delay.
//!
//! ```sh
//! cargo run --release --example coexistence
//! ```
//!
//! `CoexistScenario` is a preset over the scenario engine: its mixed
//! ABC/Cubic flow schedule, dual-queue qdisc, and seeded Poisson
//! short-flow churn are all fields of the `ScenarioSpec` it denotes.

use abc_repro::abc_core::coexist::WeightPolicy;
use abc_repro::experiments::{sparkline, CoexistScenario};
use abc_repro::netsim::rate::Rate;
use abc_repro::netsim::time::SimDuration;

fn main() {
    println!("2 ABC + 2 Cubic long flows on a 24 Mbit/s dual-queue bottleneck\n");
    let r = CoexistScenario {
        link_rate: Rate::from_mbps(24.0),
        n_abc: 2,
        n_cubic: 2,
        stagger: SimDuration::from_secs(20),
        duration: SimDuration::from_secs(120),
        warmup: SimDuration::from_secs(60),
        ..Default::default()
    }
    .run();

    for (name, series) in &r.series {
        println!("{name:<8}: {}", sparkline(series, 70));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nsteady state: ABC {:.2} Mbit/s per flow, Cubic {:.2} Mbit/s per flow",
        mean(&r.abc_tputs),
        mean(&r.cubic_tputs)
    );
    println!(
        "ABC-class 95p queuing delay: {:.0} ms (low despite Cubic's standing queue)",
        r.abc_qdelay_p95_ms
    );

    println!("\n--- same scenario under RCP's Zombie-List weights, with short-flow churn ---");
    for policy in [
        (
            "max-min (ABC §5.2)",
            WeightPolicy::MaxMin { headroom: 0.10 },
        ),
        ("zombie list (RCP)", WeightPolicy::ZombieList),
    ] {
        let r = CoexistScenario {
            policy: policy.1,
            short_flow_load: 0.25,
            duration: SimDuration::from_secs(40),
            warmup: SimDuration::from_secs(10),
            ..Default::default()
        }
        .run();
        println!(
            "{:<20} ABC {:.2} vs Cubic {:.2} Mbit/s  ({} short flows served)",
            policy.0,
            mean(&r.abc_tputs),
            mean(&r.cubic_tputs),
            r.short_flows_completed
        );
    }
}
