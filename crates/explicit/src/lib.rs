//! # explicit — explicit-feedback congestion control baselines
//!
//! The in-network schemes the ABC paper compares against (§6.3, App. D):
//!
//! * [`xcp`] — XCP (multi-bit per-packet window deltas, per-interval
//!   aggregate feedback) and XCPw, the paper's wireless-tuned variant that
//!   recomputes feedback on every packet;
//! * [`rcp`] — RCP (router-advertised stub rate; rate-based, hence slower
//!   to drain queues than window-based schemes — Fig. 17);
//! * [`vcp`] — VCP (2-bit load factor; fixed MI/AI/MD constants make it
//!   slow to track wireless rate swings).
//!
//! Each module provides the router side as a [`netsim::queue::Qdisc`] and
//! the endpoint as a [`netsim::flow::CongestionControl`]. All three need
//! packet fields that do not exist in IP headers — the deployment problem
//! ABC's single-ECN-bit design removes.

pub mod rcp;
pub mod vcp;
pub mod xcp;

pub use rcp::{RcpConfig, RcpQdisc, RcpSender};
pub use vcp::{VcpConfig, VcpQdisc, VcpSender};
pub use xcp::{XcpConfig, XcpQdisc, XcpSender};
