//! The single-bottleneck scenario preset behind most figures: N flows of
//! one scheme over one (emulated cellular or synthetic) link.
//!
//! [`CellScenario`] is a convenience builder — all construction and
//! execution happens in [`crate::engine`]; [`CellScenario::spec`] shows
//! exactly which [`ScenarioSpec`] a preset denotes.

use crate::engine::{BuiltScenario, FlowSchedule, ScenarioEngine, ScenarioSpec};
use crate::report::Report;
use crate::scheme::Scheme;
use cellular::CellTrace;
use netsim::flow::TrafficSource;
use netsim::link::{ConstantRate, RateProcess, SerialLink, SquareWave, StepSchedule, Transmitter};
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};

/// The bottleneck link of a scenario.
#[derive(Debug, Clone)]
pub enum LinkSpec {
    /// Mahimahi-style trace (cellular emulation).
    Trace(CellTrace),
    /// A fixed-rate link.
    Constant(Rate),
    /// A square wave: `a` and `b` alternating every `half_period`.
    Square {
        /// The first phase's rate.
        a: Rate,
        /// The second phase's rate.
        b: Rate,
        /// Length of each phase.
        half_period: SimDuration,
    },
    /// Piecewise-constant `(from time, rate)` breakpoints.
    Steps(Vec<(SimTime, Rate)>),
}

impl LinkSpec {
    /// Build the transmitter this spec denotes.
    pub fn build(&self) -> Box<dyn Transmitter> {
        match self {
            LinkSpec::Trace(t) => Box::new(t.to_link()),
            LinkSpec::Constant(r) => Box::new(SerialLink::new(ConstantRate(*r))),
            LinkSpec::Square { a, b, half_period } => {
                Box::new(SerialLink::new(SquareWave::new(*a, *b, *half_period)))
            }
            LinkSpec::Steps(steps) => Box::new(SerialLink::new(StepSchedule::new(steps.clone()))),
        }
    }

    /// Capacity curve for plotting, sampled per `step`.
    pub fn capacity_series(&self, until: SimDuration, step: SimDuration) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        while t < SimTime::ZERO + until {
            let r = match self {
                LinkSpec::Trace(tr) => tr.rate_in_window(t, step),
                LinkSpec::Constant(r) => *r,
                LinkSpec::Square { a, b, half_period } => {
                    SquareWave::new(*a, *b, *half_period).rate_at(t)
                }
                LinkSpec::Steps(steps) => StepSchedule::new(steps.clone()).rate_at(t),
            };
            out.push((t.as_secs_f64(), r.mbps()));
            t += step;
        }
        out
    }

    /// A single representative rate — the reference for offered-load
    /// fractions (Poisson short-flow churn).
    pub fn nominal_rate(&self) -> Rate {
        match self {
            LinkSpec::Trace(t) => t.mean_rate(),
            LinkSpec::Constant(r) => *r,
            LinkSpec::Square { a, b, .. } => Rate::from_bps((a.bps() + b.bps()) / 2.0),
            LinkSpec::Steps(steps) => {
                if steps.is_empty() {
                    Rate::ZERO
                } else {
                    Rate::from_bps(
                        steps.iter().map(|(_, r)| r.bps()).sum::<f64>() / steps.len() as f64,
                    )
                }
            }
        }
    }
}

/// A single-bottleneck scenario.
#[derive(Clone)]
pub struct CellScenario {
    /// The scheme every flow runs.
    pub scheme: Scheme,
    /// The bottleneck link.
    pub link: LinkSpec,
    /// Path round-trip propagation delay.
    pub rtt: SimDuration,
    /// Bottleneck buffer (packets).
    pub buffer_pkts: usize,
    /// Number of flows.
    pub n_flows: u32,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Measurements before this offset are discarded.
    pub warmup: SimDuration,
    /// Flow i starts at `i × stagger` (Fig. 3's joins).
    pub stagger: SimDuration,
    /// Also stop flows one by one: flow i stops at
    /// `duration − (n−1−i)·stagger` (Fig. 3's departures).
    pub stagger_departures: bool,
    /// Per-flow application pattern.
    pub app: TrafficSource,
    /// PK-ABC: let the router control law see µ(t + lookahead).
    pub oracle_lookahead: Option<SimDuration>,
}

impl CellScenario {
    /// The single-bottleneck defaults: 100 ms RTT, 250-pkt buffer, one
    /// backlogged flow, 60 s + 5 s warmup.
    pub fn new(scheme: Scheme, link: LinkSpec) -> Self {
        CellScenario {
            scheme,
            link,
            rtt: SimDuration::from_millis(100),
            buffer_pkts: 250,
            n_flows: 1,
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(5),
            stagger: SimDuration::ZERO,
            stagger_departures: false,
            app: TrafficSource::Backlogged,
            oracle_lookahead: None,
        }
    }

    /// The [`ScenarioSpec`] this preset denotes.
    pub fn spec(&self) -> ScenarioSpec {
        let mut spec = ScenarioSpec::single(self.scheme, self.link.clone());
        spec.flows = FlowSchedule::Uniform {
            n: self.n_flows,
            app: self.app,
            stagger: self.stagger,
            stagger_departures: self.stagger_departures,
        };
        spec.rtt = self.rtt;
        spec.buffer_pkts = self.buffer_pkts;
        spec.duration = self.duration;
        spec.warmup = self.warmup;
        spec.oracle_lookahead = self.oracle_lookahead;
        spec
    }

    /// Build the simulator without running it (callers that need to sample
    /// state mid-run use this, then `run_chunk`/`finish`).
    pub fn build(&self) -> BuiltScenario {
        ScenarioEngine::new().build(&self.spec())
    }

    /// Build, run to completion, and report.
    pub fn run(&self) -> Report {
        ScenarioEngine::new().run(&self.spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abc_on_constant_link_reaches_eta() {
        let r = CellScenario::new(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0))).run();
        assert!(r.utilization > 0.9, "{}", r.row());
        assert!(r.qdelay_ms.p95 < 60.0, "{}", r.row());
    }

    #[test]
    fn cubic_fills_droptail_buffer() {
        let r = CellScenario::new(Scheme::Cubic, LinkSpec::Constant(Rate::from_mbps(12.0))).run();
        assert!(r.utilization > 0.9, "{}", r.row());
        // 250-pkt buffer at 12 Mbit/s = 250 ms of queuing when full
        assert!(
            r.qdelay_ms.p95 > 100.0,
            "Cubic should bufferbloat: {}",
            r.row()
        );
    }

    #[test]
    fn cubic_codel_cuts_delay() {
        let cubic =
            CellScenario::new(Scheme::Cubic, LinkSpec::Constant(Rate::from_mbps(12.0))).run();
        let codel = CellScenario::new(
            Scheme::CubicCodel,
            LinkSpec::Constant(Rate::from_mbps(12.0)),
        )
        .run();
        assert!(
            codel.qdelay_ms.p95 < cubic.qdelay_ms.p95 / 2.0,
            "codel {} vs cubic {}",
            codel.qdelay_ms.p95,
            cubic.qdelay_ms.p95
        );
    }

    #[test]
    fn trace_link_scenario_runs() {
        let trace = cellular::builtin("Verizon1").unwrap();
        let r = CellScenario::new(Scheme::Abc, LinkSpec::Trace(trace)).run();
        assert!(r.utilization > 0.3, "{}", r.row());
        assert!(r.total_tput_mbps > 0.5, "{}", r.row());
    }

    #[test]
    fn sampling_interface_exposes_windows() {
        let sc = CellScenario::new(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)));
        let mut b = sc.build();
        b.run_chunk(SimDuration::from_secs(5));
        let s = b.sender(0);
        assert!(s.cwnd_pkts() > 1.0);
    }

    #[test]
    fn nominal_rate_covers_every_link_kind() {
        assert_eq!(
            LinkSpec::Constant(Rate::from_mbps(12.0)).nominal_rate(),
            Rate::from_mbps(12.0)
        );
        let sq = LinkSpec::Square {
            a: Rate::from_mbps(10.0),
            b: Rate::from_mbps(20.0),
            half_period: SimDuration::from_millis(500),
        };
        assert!((sq.nominal_rate().mbps() - 15.0).abs() < 1e-9);
        let steps = LinkSpec::Steps(vec![
            (SimTime::ZERO, Rate::from_mbps(6.0)),
            (
                SimTime::ZERO + SimDuration::from_secs(1),
                Rate::from_mbps(18.0),
            ),
        ]);
        assert!((steps.nominal_rate().mbps() - 12.0).abs() < 1e-9);
    }
}
