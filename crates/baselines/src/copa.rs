//! Copa [Arun & Balakrishnan, NSDI 2018]: delay-based target-rate control.
//! Copa steers the sending rate toward `λ = 1/(δ·dq)` where `dq` is the
//! standing queuing delay; velocity doubling accelerates convergence.
//! (Default-mode Copa; the TCP-competitive mode switcher is not modeled —
//! the paper's experiments run Copa by itself on the bottleneck.)

use netsim::flow::{AckEvent, CongestionControl};
use netsim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Copa's delta: packets of queueing each flow aims to keep (1/δ = 2 pkts).
const DELTA: f64 = 0.5;

/// Copa: delay-based target-rate congestion controller.
pub struct Copa {
    cwnd: f64,
    velocity: f64,
    /// Direction the window moved last update (+1 / −1).
    direction: f64,
    /// Consecutive same-direction updates (velocity doubles at ≥3 per RTT).
    same_direction_count: u32,
    last_update: SimTime,
    /// RTT samples within the standing window (srtt/2) for RTTstanding.
    rtt_window: VecDeque<(SimTime, SimDuration)>,
    min_rtt: SimDuration,
    in_slow_start: bool,
}

impl Copa {
    /// A Copa flow at the initial window.
    pub fn new() -> Self {
        Copa {
            cwnd: 2.0,
            velocity: 1.0,
            direction: 1.0,
            same_direction_count: 0,
            last_update: SimTime::ZERO,
            rtt_window: VecDeque::new(),
            min_rtt: SimDuration::MAX,
            in_slow_start: true,
        }
    }

    /// RTTstanding: the minimum RTT over the last srtt/2 — filters out
    /// ACK-compression spikes while staying current.
    fn rtt_standing(&mut self, now: SimTime, srtt: SimDuration) -> Option<SimDuration> {
        let cutoff = now.saturating_sub(srtt / 2);
        while self.rtt_window.front().is_some_and(|&(t, _)| t < cutoff) {
            self.rtt_window.pop_front();
        }
        self.rtt_window.iter().map(|&(_, r)| r).min()
    }
}

impl Default for Copa {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Copa {
    fn name(&self) -> &'static str {
        "copa"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        let Some(rtt) = ev.rtt else { return };
        let now = ev.now;
        self.min_rtt = self.min_rtt.min(rtt);
        self.rtt_window.push_back((now, rtt));
        let srtt = if ev.srtt.is_zero() { rtt } else { ev.srtt };
        let Some(standing) = self.rtt_standing(now, srtt) else {
            return;
        };

        let dq = standing.saturating_sub(self.min_rtt).as_secs_f64();
        let rtt_s = standing.as_secs_f64().max(1e-6);
        // current rate λ = cwnd/RTTstanding; target λt = 1/(δ·dq)
        let lambda = self.cwnd / rtt_s;
        let lambda_target = if dq <= 1e-6 {
            f64::INFINITY
        } else {
            1.0 / (DELTA * dq)
        };

        if self.in_slow_start {
            if lambda <= lambda_target {
                self.cwnd += 1.0; // doubles each RTT
                return;
            }
            self.in_slow_start = false;
        }

        let step = self.velocity / (DELTA * self.cwnd);
        let dir = if lambda <= lambda_target { 1.0 } else { -1.0 };
        self.cwnd = (self.cwnd + dir * step).max(2.0);

        // velocity update, once per RTT
        if now.since(self.last_update) >= standing {
            self.last_update = now;
            if dir == self.direction {
                self.same_direction_count += 1;
                if self.same_direction_count >= 3 {
                    self.velocity *= 2.0;
                }
            } else {
                self.direction = dir;
                self.same_direction_count = 0;
                self.velocity = 1.0;
            }
            self.velocity = self.velocity.min(self.cwnd.max(1.0));
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        // default-mode Copa reduces via its delay law; on explicit loss be
        // conservative
        self.cwnd = (self.cwnd / 2.0).max(2.0);
        self.velocity = 1.0;
        self.in_slow_start = false;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.cwnd = 2.0;
        self.velocity = 1.0;
        self.in_slow_start = true;
    }

    fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::{Ecn, Feedback};
    use netsim::rate::Rate;

    fn ack(now_ms: u64, rtt_ms: u64) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO + SimDuration::from_millis(now_ms),
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            min_rtt: SimDuration::from_millis(100),
            srtt: SimDuration::from_millis(rtt_ms),
            acked_bytes: 1500,
            ecn_echo: Ecn::NotEct,
            feedback: Feedback::None,
            inflight_pkts: 5,
            delivery_rate: Rate::ZERO,
            one_way_delay: SimDuration::from_millis(rtt_ms / 2),
        }
    }

    #[test]
    fn slow_start_grows_while_no_queue() {
        let mut c = Copa::new();
        let w0 = c.cwnd_pkts();
        for i in 0..10 {
            c.on_ack(&ack(i * 10, 100)); // rtt == min → dq = 0
        }
        assert!(c.cwnd_pkts() > w0);
        assert!(c.in_slow_start);
    }

    #[test]
    fn backs_off_when_queue_exceeds_target() {
        let mut c = Copa::new();
        c.in_slow_start = false;
        c.cwnd = 50.0;
        c.min_rtt = SimDuration::from_millis(100);
        // standing RTT 200ms → dq = 100ms → λt = 1/(0.5·0.1) = 20 pkt/s;
        // λ = 50/0.2 = 250 pkt/s ≫ λt → decrease
        c.on_ack(&ack(1000, 200));
        assert!(c.cwnd_pkts() < 50.0);
    }

    #[test]
    fn grows_when_below_target() {
        let mut c = Copa::new();
        c.in_slow_start = false;
        c.cwnd = 4.0;
        c.min_rtt = SimDuration::from_millis(100);
        // standing 102ms → dq = 2ms → λt = 1000 pkt/s; λ = 39 ≪ λt → grow
        c.on_ack(&ack(1000, 102));
        assert!(c.cwnd_pkts() > 4.0);
    }

    #[test]
    fn velocity_resets_on_direction_change() {
        let mut c = Copa::new();
        c.in_slow_start = false;
        c.velocity = 8.0;
        c.direction = 1.0;
        c.min_rtt = SimDuration::from_millis(100);
        c.cwnd = 100.0;
        // force a decrease (dq huge)
        c.on_ack(&ack(5000, 400));
        assert_eq!(c.velocity, 1.0);
    }
}
