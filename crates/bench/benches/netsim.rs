//! The event-loop perf trajectory: microbenches of the timer-wheel queue
//! plus tiny/cellular macro scenarios through the engine, appended to
//! `BENCH_netsim.json` at the repo root so hot-path throughput accumulates
//! history across commits.
//!
//! ```text
//! cargo bench -p bench --bench netsim
//! ```
//!
//! Entries record nanoseconds per queue operation and simulator events
//! per second; the companion `--bench campaign` entry tracks end-to-end
//! sweep throughput over the same kernel.

use campaign::json::{self, Value};
use experiments::engine::{FlowSchedule, ScenarioEngine, ScenarioSpec};
use experiments::figures::Scale;
use experiments::scenario::LinkSpec;
use experiments::Scheme;
use netsim::event::{EventKind, EventQueue};
use netsim::packet::NodeId;
use netsim::rate::Rate;
use netsim::time::SimTime;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

const ITERS: usize = 5;

fn best_of<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut work = 0;
    for _ in 0..ITERS {
        let t = Instant::now();
        work = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, work)
}

/// Mixed-horizon push/pop churn: 100k events over sub-µs ties, in-wheel
/// offsets, and overflow-range timers.
fn queue_churn() -> u64 {
    let mut q = EventQueue::new();
    let mut x: u64 = 0x2545_F491_4F6C_DD1D;
    let mut popped = 0u64;
    for i in 0..100_000u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let ns = match i % 4 {
            0 => x % 1_000,
            1 => x % 1_000_000,
            2 => x % 60_000_000,
            _ => x % 2_000_000_000,
        };
        q.push(SimTime::from_nanos(ns), NodeId(0), EventKind::Timer(i));
        if i % 2 == 1 {
            q.pop();
            popped += 1;
        }
    }
    while q.pop().is_some() {
        popped += 1;
    }
    popped
}

/// Arm-then-cancel churn: the RTO reschedule pattern the wheel's lazy
/// tombstones were built for.
fn cancel_churn() -> u64 {
    let mut q = EventQueue::new();
    let mut cancelled = 0u64;
    for i in 0..100_000u64 {
        let seq = q.push(
            SimTime::from_nanos(i * 1_000 + 200_000_000),
            NodeId(0),
            EventKind::Timer(i),
        );
        if i % 8 != 7 {
            q.cancel(seq);
            cancelled += 1;
        }
        if i % 16 == 15 {
            q.pop();
        }
    }
    cancelled
}

fn run_events(engine: &ScenarioEngine, spec: &ScenarioSpec) -> u64 {
    let mut built = engine.build(spec);
    built.run_to_end();
    let events = built.sim.events_processed();
    std::hint::black_box(built.finish());
    events
}

fn main() {
    let engine = ScenarioEngine::with_threads(1);

    // --- microbenches -------------------------------------------------
    let (churn_s, churn_ops) = best_of(|| {
        std::hint::black_box(queue_churn());
        200_000 // 100k pushes + 100k pops
    });
    let _ = churn_ops;
    let (cancel_s, _) = best_of(|| {
        std::hint::black_box(cancel_churn());
        0
    });

    // --- macro scenarios ----------------------------------------------
    let tiny_spec = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
        .duration_secs(2)
        .warmup_secs(1);
    run_events(&engine, &tiny_spec); // warm
    let (tiny_s, tiny_events) = best_of(|| run_events(&engine, &tiny_spec));

    let cell_trace = campaign::presets::traces(Scale::Tiny)
        .into_iter()
        .next()
        .expect("builtin cellular trace");
    let cell_spec = ScenarioSpec::single(Scheme::Abc, LinkSpec::Trace(cell_trace))
        .duration_secs(2)
        .warmup_secs(1);
    run_events(&engine, &cell_spec); // warm
    let (cell_s, cell_events) = best_of(|| run_events(&engine, &cell_spec));

    // --- dense regime: the arena / batched-ACK scaling gate -----------
    // 100 vs 1000 backlogged flows on one 96 Mbit/s bottleneck. The
    // per-event cost at 1k flows must stay within 2× of 100 flows —
    // i.e. flow-count scaling stays O(1) per event, not O(flows).
    let dense_spec = |n: u32| {
        let mut spec = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(96.0)))
            .duration_secs(2)
            .warmup_secs(0);
        spec.flows = FlowSchedule::backlogged(n);
        spec
    };
    let d100_spec = dense_spec(100);
    run_events(&engine, &d100_spec); // warm
    let (d100_s, d100_events) = best_of(|| run_events(&engine, &d100_spec));
    let d1k_spec = dense_spec(1_000);
    run_events(&engine, &d1k_spec); // warm
    let (d1k_s, d1k_events) = best_of(|| run_events(&engine, &d1k_spec));

    let cost_100 = d100_s / d100_events as f64;
    let cost_1k = d1k_s / d1k_events as f64;
    assert!(
        cost_1k <= 2.0 * cost_100,
        "dense scaling regressed: {:.0} ns/event at 1k flows vs {:.0} ns/event at 100 \
         (must stay within 2×)",
        cost_1k * 1e9,
        cost_100 * 1e9,
    );

    // --- self-profile: explain the tiny number, never gate on it ------
    // Wall-clock phase attribution for the same scenario the headline
    // `tiny_events_per_sec` measures. The keys deliberately avoid the
    // `_per_sec` / `_ns_per_op` suffixes, so bench-diff reads them as
    // context, not gated metrics.
    let mut profiled = engine.build(&tiny_spec);
    profiled.sim.enable_profiler();
    profiled.run_to_end();
    let profile = profiled.sim.profile_report().expect("profiler enabled");
    std::hint::black_box(profiled.finish());

    let mut fields = vec![
        ("schema".into(), Value::str("abc-netsim-bench/v2")),
        (
            "queue_churn_ns_per_op".into(),
            Value::num(churn_s * 1e9 / 200_000.0),
        ),
        (
            "cancel_churn_ns_per_op".into(),
            Value::num(cancel_s * 1e9 / 100_000.0),
        ),
        ("tiny_events".into(), Value::num(tiny_events as f64)),
        (
            "tiny_events_per_sec".into(),
            Value::num(tiny_events as f64 / tiny_s),
        ),
        ("cellular_events".into(), Value::num(cell_events as f64)),
        (
            "cellular_events_per_sec".into(),
            Value::num(cell_events as f64 / cell_s),
        ),
        (
            "dense_100_flows_events".into(),
            Value::num(d100_events as f64),
        ),
        (
            "dense_100_flows_events_per_sec".into(),
            Value::num(d100_events as f64 / d100_s),
        ),
        (
            "dense_1k_flows_events".into(),
            Value::num(d1k_events as f64),
        ),
        (
            "dense_1k_flows_events_per_sec".into(),
            Value::num(d1k_events as f64 / d1k_s),
        ),
        (
            "unix_time".into(),
            Value::num(
                SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_secs() as f64)
                    .unwrap_or(0.0),
            ),
        ),
    ];
    for (k, v) in profile.context_kv() {
        fields.push((k.to_string(), Value::num(v)));
    }
    let entry = Value::Obj(fields);

    // BENCH_netsim.json is a JSON array of entries, newest last
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netsim.json");
    let mut trajectory = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .and_then(|v| match v {
            Value::Arr(items) => Some(items),
            _ => None,
        })
        .unwrap_or_default();
    trajectory.push(entry);
    let mut out = String::from("[\n");
    for (i, e) in trajectory.iter().enumerate() {
        out.push_str(&e.render());
        out.push_str(if i + 1 < trajectory.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("]\n");
    std::fs::write(path, &out).expect("write BENCH_netsim.json");

    println!(
        "netsim: queue churn {:.0} ns/op, cancel churn {:.0} ns/op, \
         tiny {:.2} Mevents/s ({} events), cellular {:.2} Mevents/s ({} events), \
         dense 100 {:.2} Mevents/s, dense 1k {:.2} Mevents/s ({:.0} vs {:.0} ns/event); \
         trajectory now {} entries",
        churn_s * 1e9 / 200_000.0,
        cancel_s * 1e9 / 100_000.0,
        tiny_events as f64 / tiny_s / 1e6,
        tiny_events,
        cell_events as f64 / cell_s / 1e6,
        cell_events,
        d100_events as f64 / d100_s / 1e6,
        d1k_events as f64 / d1k_s / 1e6,
        cost_100 * 1e9,
        cost_1k * 1e9,
        trajectory.len()
    );
    print!("{}", profile.render());
}
