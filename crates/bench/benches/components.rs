//! Microbenches of the hot paths: event loop, ABC marking, estimators,
//! and the coexistence data structures.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsim::packet::{Ecn, Feedback, FlowId, NodeId, Packet, Route};
use netsim::queue::Qdisc;
use netsim::rate::Rate;
use netsim::time::{SimDuration, SimTime};

fn pkt(seq: u64) -> Box<Packet> {
    Box::new(Packet {
        flow: FlowId(seq as u32 % 16),
        seq,
        size: 1500,
        ecn: Ecn::Accelerate,
        feedback: Feedback::None,
        abc_capable: true,
        sent_at: SimTime::ZERO,
        retransmit: false,
        ack: None,
        route: Route::new(vec![(NodeId(0), SimDuration::ZERO)]),
        hop: 0,
        enqueued_at: SimTime::ZERO,
    })
}

fn bench_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");

    g.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = netsim::event::EventQueue::new();
            for i in 0..10_000u64 {
                q.push(
                    SimTime::from_nanos((i * 7919) % 1_000_000),
                    NodeId(0),
                    netsim::event::EventKind::Timer(i),
                );
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });

    g.bench_function("abc_router_mark_10k", |b| {
        let cfg = abc_core::router::AbcRouterConfig::default();
        b.iter(|| {
            let mut q = abc_core::router::AbcQdisc::new(cfg);
            q.on_capacity(Rate::from_mbps(12.0), SimTime::ZERO);
            let mut accels = 0u32;
            for i in 0..10_000u64 {
                let t = SimTime::ZERO + SimDuration::from_micros(i * 100);
                q.enqueue(pkt(i), t);
                if let Some(p) = q.dequeue(t) {
                    if p.ecn == Ecn::Accelerate {
                        accels += 1;
                    }
                }
            }
            black_box(accels)
        })
    });

    g.bench_function("cubic_window_10k_acks", |b| {
        b.iter(|| {
            let mut w = baselines::CubicWindow::new(10.0);
            let rtt = SimDuration::from_millis(100);
            for i in 0..10_000u64 {
                let t = SimTime::ZERO + SimDuration::from_micros(i * 200);
                w.on_ack(t, rtt);
                if i % 2_000 == 1_999 {
                    w.on_congestion(t, rtt);
                }
            }
            black_box(w.cwnd())
        })
    });

    g.bench_function("space_saving_100k_records", |b| {
        b.iter(|| {
            let mut s = abc_core::SpaceSaving::new(10);
            for i in 0..100_000u32 {
                s.record(FlowId(i % 1000), 1500);
            }
            black_box(s.top().len())
        })
    });

    g.bench_function("max_min_allocate_100_demands", |b| {
        let demands: Vec<abc_core::Demand> = (0..100)
            .map(|i| abc_core::Demand {
                tag: i % 2,
                demand: (i as f64 + 1.0) * 1e5,
            })
            .collect();
        b.iter(|| black_box(abc_core::max_min_allocate(&demands, 5e6)))
    });

    g.bench_function("wifi_estimator_1k_batches", |b| {
        b.iter(|| {
            let mut e = wifi_mac::WifiRateEstimator::new(wifi_mac::EstimatorConfig::default());
            for i in 0..1_000u64 {
                e.on_batch(wifi_mac::BatchSample {
                    when: SimTime::ZERO + SimDuration::from_micros(i * 2_000),
                    batch: (i % 20 + 1) as u32,
                    frame_bytes: 1500,
                    phy_rate: Rate::from_mbps(13.0),
                    inter_ack: SimDuration::from_micros(1_500 + (i % 20 + 1) * 923),
                });
            }
            black_box(e.estimate(SimTime::ZERO + SimDuration::from_secs(2)).bps())
        })
    });

    g.bench_function("trace_synthesis_120s", |b| {
        b.iter(|| {
            let spec = &cellular::builtin_specs()[0];
            black_box(spec.generate().opportunities.len())
        })
    });

    g.bench_function("end_to_end_abc_1s_sim", |b| {
        b.iter(|| {
            let mut sc = experiments::CellScenario::new(
                experiments::Scheme::Abc,
                experiments::LinkSpec::Constant(Rate::from_mbps(48.0)),
            );
            sc.duration = SimDuration::from_secs(1);
            sc.warmup = SimDuration::ZERO;
            black_box(sc.run().utilization)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
