#![warn(missing_docs)]

//! # workload — application-layer traffic models over the netsim transport
//!
//! The paper's whole argument is about *application experience* on
//! time-varying links, yet a bulk long-flow only measures throughput and
//! queue delay. This crate supplies the traffic an application would
//! actually offer, and the metrics it would actually feel:
//!
//! * [`web`] — a request/response workload: seeded Poisson (or bursty
//!   on/off) arrivals of short flows with an empirical, short-flow-heavy
//!   object-size distribution. Measured by per-flow completion time
//!   (FCT percentiles).
//! * [`rtc`] — a constant-cadence interactive stream (voice/video call):
//!   one frame every `interval`, judged by per-packet one-way-delay
//!   deadline misses.
//! * [`abr`] — an adaptive-bitrate video client: a bitrate ladder, a
//!   playback-buffer model, and chunk-by-chunk rate selection. Measured
//!   by rebuffer ratio, mean bitrate, startup delay, and a linear QoE
//!   score.
//!
//! Everything is a pure function of a [`WorkloadSpec`], a seed, and
//! simulation time, so workload scenarios stay bit-deterministic across
//! reruns and worker pools. The RTC and ABR models implement netsim's
//! [`AppDriver`](netsim::flow::AppDriver) hook and ride the existing
//! [`Sender`](netsim::flow::Sender)/[`Sink`](netsim::flow::Sink)
//! transport; the web model expands to finite flows whose completion the
//! metrics hub tracks via
//! [`register_app_flow`](netsim::metrics::MetricsHub::register_app_flow).
//!
//! The `experiments` engine lowers a [`WorkloadSpec`] into concrete
//! senders/sinks/drivers (`ScenarioSpec::workloads`), and the `campaign`
//! crate sweeps them (`web-load-grid`, `video-over-cellular`,
//! `rtc-coexist`) and renders the figures.

pub mod abr;
pub mod metrics;
pub mod rtc;
pub mod web;

pub use abr::{AbrClient, AbrWorkload};
pub use metrics::{RtcMetrics, VideoMetrics, WebFlowOutcome, WebMetrics};
pub use rtc::{RtcSource, RtcWorkload};
pub use web::{ArrivalProcess, SizeDist, WebFlow, WebWorkload};

/// One application-layer traffic model, as plain data. The engine turns
/// each variant into flows/drivers on the simulator.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// A request/response fleet of short flows.
    Web(WebWorkload),
    /// A constant-cadence interactive stream.
    Rtc(RtcWorkload),
    /// An adaptive-bitrate video client.
    AbrVideo(AbrWorkload),
}

impl WorkloadSpec {
    /// Short kind tag, used in flow labels and store coordinates.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadSpec::Web(_) => "web",
            WorkloadSpec::Rtc(_) => "rtc",
            WorkloadSpec::AbrVideo(_) => "video",
        }
    }
}
