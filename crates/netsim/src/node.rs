//! The `Node` trait and the `Context` through which nodes act on the world.

use crate::event::EventKind;
use crate::packet::{NodeId, Packet};
use crate::time::{SimDuration, SimTime};

/// Deferred effects a node produces while handling an event. The simulator
/// drains these into the event queue after the handler returns, so nodes
/// never borrow the queue (or each other) directly.
pub struct Context<'a> {
    now: SimTime,
    self_id: NodeId,
    out: &'a mut Vec<(SimTime, NodeId, EventKind)>,
}

impl<'a> Context<'a> {
    pub(crate) fn new(
        now: SimTime,
        self_id: NodeId,
        out: &'a mut Vec<(SimTime, NodeId, EventKind)>,
    ) -> Self {
        Context { now, self_id, out }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id under which this node is registered.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Forward `pkt` along its route: deliver it to the next hop after that
    /// segment's propagation delay. Packets whose route is exhausted are
    /// dropped with a debug assertion — a terminal node (sender absorbing
    /// its own ACK) should simply not forward.
    pub fn forward(&mut self, mut pkt: Packet) {
        match pkt.next_hop() {
            Some((next, delay)) => {
                pkt.hop += 1;
                self.out
                    .push((self.now + delay, next, EventKind::Deliver(pkt)));
            }
            None => {
                debug_assert!(false, "forward() on exhausted route");
            }
        }
    }

    /// Deliver `pkt` to an explicit node after `delay`, ignoring the route.
    /// Used by link nodes delivering to themselves, e.g. loopback tests.
    pub fn deliver(&mut self, to: NodeId, delay: SimDuration, pkt: Packet) {
        self.out
            .push((self.now + delay, to, EventKind::Deliver(pkt)));
    }

    /// Fire `Timer(token)` on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.out
            .push((self.now + delay, self.self_id, EventKind::Timer(token)));
    }

    /// Fire `Timer(token)` on this node at absolute time `at` (clamped to
    /// be no earlier than now).
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        let at = at.max(self.now);
        self.out.push((at, self.self_id, EventKind::Timer(token)));
    }
}

/// A simulation participant: a traffic source, a link queue, a sink…
/// Nodes own all their state; the simulator only routes events.
pub trait Node: std::any::Any {
    /// Called once when the simulation starts, so nodes can arm their
    /// first timers (pacing clocks, trace cursors, …).
    fn start(&mut self, _ctx: &mut Context) {}

    /// Handle a delivered packet or a fired timer.
    fn handle(&mut self, ctx: &mut Context, event: EventKind);

    /// Downcast support for post-run inspection of node state.
    fn as_any(&self) -> &dyn std::any::Any;
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Implements the `as_any_qdisc` boilerplate for a qdisc type.
#[macro_export]
macro_rules! impl_qdisc_downcast {
    () => {
        fn as_any_qdisc(&self) -> &dyn std::any::Any {
            self
        }
    };
}

/// Implements the two `as_any` boilerplate methods for a node type.
#[macro_export]
macro_rules! impl_node_downcast {
    () => {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    };
}
