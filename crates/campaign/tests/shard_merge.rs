//! Cross-machine sharding: the ordinal-stable `k/n` slices partition a
//! campaign, each shard streams a valid store of its own, and merging
//! the shard stores reproduces an unsharded run **byte for byte**.

use campaign::presets;
use campaign::runner::{
    in_shard, run_campaign, run_campaign_streaming, run_campaign_streaming_sharded, RunOptions,
};
use campaign::store::{merge_stores, ResultsStore, StoreError};
use experiments::figures::Scale;

#[test]
fn shards_partition_the_ordinals() {
    let points = presets::tiny(Scale::Tiny).expand();
    for n in 1..=5usize {
        for p in &points {
            let owners = (1..=n).filter(|&k| in_shard(p.ordinal, (k, n))).count();
            assert_eq!(
                owners, 1,
                "ordinal {} owned by {owners} shards of {n}",
                p.ordinal
            );
        }
    }
}

#[test]
fn merged_shards_are_byte_identical_to_an_unsharded_run() {
    let campaign = presets::tiny(Scale::Tiny);
    let opts = RunOptions::quiet();

    let mut full = Vec::new();
    run_campaign_streaming(&campaign, &opts, Vec::new(), &mut full).unwrap();
    let full = String::from_utf8(full).unwrap();

    let n = 3usize;
    let mut shards = Vec::new();
    for k in 1..=n {
        let mut buf = Vec::new();
        run_campaign_streaming_sharded(&campaign, &opts, Vec::new(), Some((k, n)), &mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        // every shard store is complete and valid on its own
        let store = ResultsStore::from_jsonl(&text).expect("valid shard store");
        for r in &store.records {
            assert!(
                in_shard(r.ordinal, (k, n)),
                "shard {k} ran ordinal {}",
                r.ordinal
            );
        }
        shards.push(store);
    }
    assert_eq!(
        shards.iter().map(|s| s.records.len()).sum::<usize>(),
        campaign.expand().len(),
        "shards lost or duplicated points"
    );

    // merge order must not matter for the result (records sort by ordinal)
    shards.rotate_left(1);
    let merged = merge_stores(&shards).expect("merge");
    assert_eq!(merged.to_jsonl(), full, "merged shards != unsharded run");
}

#[test]
fn merge_rejects_mismatched_sweeps_and_duplicates() {
    let tiny = {
        let c = presets::tiny(Scale::Tiny);
        ResultsStore::new(&c, run_campaign(&c, &RunOptions::quiet()))
    };
    let other = {
        let c = presets::rtt_grid(Scale::Tiny);
        ResultsStore::new(&c, run_campaign(&c, &RunOptions::quiet()))
    };
    assert!(matches!(
        merge_stores(&[tiny.clone(), other]),
        Err(StoreError::Format { .. })
    ));
    // the same store twice duplicates every ordinal
    assert!(matches!(
        merge_stores(&[tiny.clone(), tiny.clone()]),
        Err(StoreError::Format { .. })
    ));
    assert!(matches!(merge_stores(&[]), Err(StoreError::Format { .. })));
    // a single complete store merges to itself
    let same = merge_stores(std::slice::from_ref(&tiny)).unwrap();
    assert_eq!(same.to_jsonl(), tiny.to_jsonl());
}
