//! Baseline diffing and regression detection over two results stores.
//!
//! Records are matched by their coordinate key. Because every record is a
//! bit-reproducible function of its spec, an unchanged tree diffs to
//! exactly zero — any delta is a real behavior change, and the thresholds
//! below only decide which deltas are big enough to gate on.

use crate::runner::RunRecord;
use crate::store::ResultsStore;
use std::fmt::Write;

/// When a delta counts as a regression.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Utilization drop (absolute) that fails, e.g. `0.05` = 5 points.
    pub util_drop: f64,
    /// p95 per-packet delay rise (relative) that fails, e.g. `0.25` = +25%.
    pub delay_rise: f64,
    /// Ignore delay rises smaller than this many ms (sub-ms noise floors).
    pub delay_floor_ms: f64,
    /// Total throughput drop (relative) that fails, e.g. `0.10` = −10%.
    pub tput_drop: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            util_drop: 0.05,
            delay_rise: 0.25,
            delay_floor_ms: 5.0,
            tput_drop: 0.10,
        }
    }
}

/// One metric's movement on one matched record.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// The record's coordinate key (`axis=label,…`).
    pub key: String,
    /// Which headline metric moved.
    pub metric: &'static str,
    /// The baseline value.
    pub baseline: f64,
    /// The candidate value.
    pub candidate: f64,
}

impl MetricDelta {
    fn row(&self) -> String {
        format!(
            "  {:<44} {:<12} {:>10.3} -> {:>10.3}",
            self.key, self.metric, self.baseline, self.candidate
        )
    }
}

/// The outcome of diffing candidate results against a baseline.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Records present (by coordinate key) in both stores.
    pub matched: usize,
    /// Metric movements beyond the configured thresholds, for the worse.
    pub regressions: Vec<MetricDelta>,
    /// Metric movements beyond the thresholds, for the better.
    pub improvements: Vec<MetricDelta>,
    /// Coordinate keys present only in the baseline store.
    pub only_baseline: Vec<String>,
    /// Coordinate keys present only in the candidate store.
    pub only_candidate: Vec<String>,
}

impl DiffReport {
    /// Did any metric regress? (`abc-campaign diff` exits 1 on this.)
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Human-readable summary, one line per movement.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "# diff: {} matched record(s), {} regression(s), {} improvement(s)",
            self.matched,
            self.regressions.len(),
            self.improvements.len()
        )
        .unwrap();
        if !self.regressions.is_empty() {
            writeln!(out, "\nREGRESSIONS:").unwrap();
            for d in &self.regressions {
                writeln!(out, "{}", d.row()).unwrap();
            }
        }
        if !self.improvements.is_empty() {
            writeln!(out, "\nimprovements:").unwrap();
            for d in &self.improvements {
                writeln!(out, "{}", d.row()).unwrap();
            }
        }
        for (tag, keys) in [
            ("only in baseline", &self.only_baseline),
            ("only in candidate", &self.only_candidate),
        ] {
            if !keys.is_empty() {
                writeln!(out, "\n{tag}: {}", keys.join(", ")).unwrap();
            }
        }
        if !self.has_regressions() {
            writeln!(out, "\nOK: no regressions").unwrap();
        }
        out
    }
}

/// Compare `candidate` against `baseline` record-by-record.
pub fn diff(baseline: &ResultsStore, candidate: &ResultsStore, cfg: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();
    let find = |records: &[RunRecord], key: &str| -> Option<usize> {
        records.iter().position(|r| r.coords.key() == key)
    };
    for b in &baseline.records {
        let key = b.coords.key();
        let Some(ci) = find(&candidate.records, &key) else {
            report.only_baseline.push(key);
            continue;
        };
        let c = &candidate.records[ci];
        report.matched += 1;

        let classify = |worse: bool,
                        better: bool,
                        metric: &'static str,
                        baseline: f64,
                        candidate: f64,
                        report: &mut DiffReport| {
            let delta = MetricDelta {
                key: key.clone(),
                metric,
                baseline,
                candidate,
            };
            if worse {
                report.regressions.push(delta);
            } else if better {
                report.improvements.push(delta);
            }
        };

        let (bu, cu) = (b.report.utilization, c.report.utilization);
        if bu.is_finite() && cu.is_finite() {
            classify(
                cu < bu - cfg.util_drop,
                cu > bu + cfg.util_drop,
                "utilization",
                bu,
                cu,
                &mut report,
            );
        }

        let (bd, cd) = (b.report.delay_ms.p95, c.report.delay_ms.p95);
        if bd.is_finite() && cd.is_finite() {
            classify(
                cd > bd * (1.0 + cfg.delay_rise) && cd - bd > cfg.delay_floor_ms,
                bd > cd * (1.0 + cfg.delay_rise) && bd - cd > cfg.delay_floor_ms,
                "delay_p95_ms",
                bd,
                cd,
                &mut report,
            );
        }

        let (bt, ct) = (b.report.total_tput_mbps, c.report.total_tput_mbps);
        if bt.is_finite() && ct.is_finite() && bt > 0.0 {
            classify(
                ct < bt * (1.0 - cfg.tput_drop),
                ct > bt * (1.0 + cfg.tput_drop),
                "tput_mbps",
                bt,
                ct,
                &mut report,
            );
        }
    }
    for c in &candidate.records {
        let key = c.coords.key();
        if find(&baseline.records, &key).is_none() {
            report.only_candidate.push(key);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_campaign;
    use crate::spec::{Axis, Campaign};
    use crate::store::ResultsStore;
    use experiments::engine::ScenarioSpec;
    use experiments::scenario::LinkSpec;
    use experiments::Scheme;
    use netsim::rate::Rate;

    fn store() -> ResultsStore {
        let base = ScenarioSpec::single(Scheme::Abc, LinkSpec::Constant(Rate::from_mbps(12.0)))
            .duration_secs(1)
            .warmup_secs(0);
        let campaign =
            Campaign::new("difftest", base).axis(Axis::schemes(&[Scheme::Abc, Scheme::Cubic]));
        let records = run_campaign(&campaign, &Default::default());
        ResultsStore::new(&campaign, records)
    }

    #[test]
    fn identical_stores_diff_clean() {
        let a = store();
        let report = diff(&a, &a.clone(), &DiffConfig::default());
        assert_eq!(report.matched, 2);
        assert!(!report.has_regressions());
        assert!(report.improvements.is_empty());
        assert!(report.render().contains("OK: no regressions"));
    }

    #[test]
    fn injected_regression_is_flagged() {
        let base = store();
        let mut cand = base.clone();
        cand.records[0].report.utilization -= 0.3;
        cand.records[0].report.delay_ms.p95 *= 3.0;
        let report = diff(&base, &cand, &DiffConfig::default());
        assert!(report.has_regressions());
        let metrics: Vec<&str> = report.regressions.iter().map(|d| d.metric).collect();
        assert!(metrics.contains(&"utilization"), "{metrics:?}");
        assert!(metrics.contains(&"delay_p95_ms"), "{metrics:?}");
        assert!(report.regressions[0].key.contains("scheme=ABC"));
        assert!(report.render().contains("REGRESSIONS"));
    }

    #[test]
    fn missing_and_added_records_are_reported() {
        let base = store();
        let mut cand = base.clone();
        let moved = cand.records.remove(1);
        let report = diff(&base, &cand, &DiffConfig::default());
        assert_eq!(report.matched, 1);
        assert_eq!(report.only_baseline, vec![moved.coords.key()]);
        let report = diff(&cand, &base, &DiffConfig::default());
        assert_eq!(report.only_candidate, vec![moved.coords.key()]);
    }
}
