#![warn(missing_docs)]

//! # campaign — declarative sweep orchestration over the scenario engine
//!
//! The paper's evidence is built from cross-products — schemes ×
//! topologies × traces × RTTs × buffers × seeds. This crate turns those
//! sweeps from hand-rolled loops into data:
//!
//! * [`spec`] — the [`Campaign`] type: a base
//!   [`ScenarioSpec`](experiments::engine::ScenarioSpec) plus named
//!   [`Axis`] values, with deterministic row-major cartesian
//!   expansion and constraint [`Filter`]s.
//! * [`runner`] — the executor: chunked dispatch onto
//!   [`ScenarioEngine::run_batch`](experiments::engine::ScenarioEngine::run_batch)
//!   with progress reporting; results are bit-identical across reruns and
//!   worker-pool sizes.
//! * [`store`] — the schema-versioned JSONL
//!   [`ResultsStore`]: a self-describing header plus
//!   one full [`Report`](experiments::report::Report) per record.
//! * [`aggregate`] — across-seed mean/CI, percentile rollups, Jain
//!   summaries, CSV export.
//! * [`diff`] — baseline comparison and regression gating.
//! * [`presets`] — built-in campaigns (`tiny`, `cellular-matrix`,
//!   `pareto`, `rtt-grid`, …).
//! * [`figures`] — the matrix/pareto/RTT figures as pure renderers over
//!   run records, and the workspace's complete figure index.
//! * [`dynamics`] — the paper-style dynamics timeline rendered purely
//!   from a [`netsim::telemetry`] JSONL sidecar.
//! * [`runlog`] — the schema-versioned wall-clock run ledger the runner
//!   writes beside (never into) the store: per-point spans, wave
//!   boundaries, store-flush spans.
//! * [`trace`] — ledger → Chrome trace-event JSON, viewable in Perfetto.
//! * [`report`] — ledger → run-health summary, with cross-point sidecar
//!   aggregation grouped by axis value.
//!
//! The `abc-campaign` binary drives all of it from the command line
//! (`run` / `expand` / `diff` / `export` / `list`); `figgen` regenerates
//! any figure of the paper.
//!
//! [`json`] is the zero-dependency JSON tree the store serializes
//! through; it guarantees deterministic output and exact float round
//! trips.

pub mod aggregate;
pub mod bench_diff;
pub mod diff;
pub mod dynamics;
pub mod figures;
pub mod file;
pub mod json;
pub mod presets;
pub mod report;
pub mod runlog;
pub mod runner;
pub mod spec;
pub mod store;
pub mod trace;

pub use diff::{DiffConfig, DiffReport};
pub use runlog::{RunLedger, RunLogConfig};
pub use runner::{
    run_campaign, run_campaign_outcomes, split_outcomes, ErrorKind, ErrorRecord, PointError,
    PointOutcome, RunOptions, RunRecord, StreamTally,
};
pub use spec::{Axis, AxisValue, Campaign, CampaignPoint, Coords, Filter};
pub use store::{ResultsStore, StoreError, StoreHeader, SCHEMA};
