//! Packets, ECN codepoints (including ABC's reinterpretation), and the
//! feedback fields used by the explicit-control baselines.

use crate::time::SimTime;
use std::rc::Rc;

/// Identifies a flow (sender/receiver pair) across the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

/// Identifies a node registered with the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

/// MTU used throughout the evaluation (Mahimahi uses MTU-sized packets).
pub const MTU_BYTES: u32 = 1500;
/// Size of a pure ACK on the wire.
pub const ACK_BYTES: u32 = 40;

/// The two ECN bits of the IP header, under ABC's reinterpretation (§5.1.2).
///
/// | ECT | CE | Classic meaning | ABC meaning |
/// |-----|----|-----------------|-------------|
/// |  0  | 0  | Not-ECT         | Not-ECT (non-ABC traffic) |
/// |  0  | 1  | ECT(1)          | **Accelerate** |
/// |  1  | 0  | ECT(0)          | **Brake** |
/// |  1  | 1  | CE (congestion) | CE — legacy ECN routers still mark this |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ecn {
    /// 00 — sender does not speak ECN (nor ABC).
    #[default]
    NotEct,
    /// 01 — ECT(1); ABC senders transmit every packet as Accelerate.
    Accelerate,
    /// 10 — ECT(0); ABC routers demote Accelerate to Brake, never the reverse.
    Brake,
    /// 11 — Congestion Experienced, set by legacy ECN-capable AQM routers.
    Ce,
}

impl Ecn {
    /// Raw two-bit value `(ECT << 1) | CE` as it would appear in the IP header.
    pub fn bits(self) -> u8 {
        match self {
            Ecn::NotEct => 0b00,
            Ecn::Accelerate => 0b01,
            Ecn::Brake => 0b10,
            Ecn::Ce => 0b11,
        }
    }

    /// Decode the two-bit header value produced by [`Ecn::bits`].
    pub fn from_bits(bits: u8) -> Ecn {
        match bits & 0b11 {
            0b00 => Ecn::NotEct,
            0b01 => Ecn::Accelerate,
            0b10 => Ecn::Brake,
            _ => Ecn::Ce,
        }
    }

    /// Would a legacy (non-ABC) ECN router consider this packet ECN-capable?
    /// Both ABC codepoints map onto ECT(0)/ECT(1), so the answer is yes —
    /// this is what makes ABC deployable over existing ECN infrastructure.
    pub fn is_ect(self) -> bool {
        matches!(self, Ecn::Accelerate | Ecn::Brake)
    }
}

/// Per-packet feedback fields for explicit-control baselines. XCP/RCP/VCP
/// require *new* header fields (one of the deployment problems the paper
/// highlights); we model them as typed metadata rather than raw bytes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Feedback {
    /// No explicit header (ABC and all end-to-end schemes).
    #[default]
    None,
    /// XCP congestion header: sender states cwnd and rtt, router writes a
    /// per-packet window delta (bytes, may be negative).
    Xcp {
        /// Sender's current congestion window (bytes).
        cwnd_bytes: f64,
        /// Sender's current RTT estimate (seconds).
        rtt_s: f64,
        /// Router-written per-packet window adjustment (bytes).
        delta_bytes: f64,
    },
    /// RCP header: router stamps the rate (bit/s) it currently offers;
    /// the sender takes the minimum along the path.
    Rcp {
        /// Offered rate (bit/s), minimum over the routers traversed.
        rate_bps: f64,
    },
    /// VCP: a 2-bit load factor classification.
    Vcp(VcpLoad),
}

/// VCP's three load regions, encoded in 2 bits on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VcpLoad {
    /// Load factor below the low threshold: multiplicative increase.
    #[default]
    Low,
    /// Load factor near capacity: additive increase.
    High,
    /// Load factor above 1: multiplicative decrease.
    Overload,
}

/// Data echoed back to the sender in an ACK.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AckData {
    /// Sequence number of the data packet being acknowledged.
    pub seq: u64,
    /// Cumulative acknowledgment: every sequence below this was received.
    /// Lets senders credit packets whose individual ACKs were lost
    /// (§3.1.1: byte counting makes ABC robust to lost/partial ACKs).
    pub cumulative_before: u64,
    /// When the acknowledged data packet left the sender.
    pub data_sent_at: SimTime,
    /// Wire size of the acknowledged data packet.
    pub data_size: u32,
    /// ECN bits as they arrived at the receiver (accel/brake/CE echo).
    pub ecn_echo: Ecn,
    /// Explicit-scheme feedback as it arrived at the receiver.
    pub feedback: Feedback,
    /// One-way delay experienced by the data packet (receiver-observed).
    pub one_way_delay: crate::time::SimDuration,
    /// True if the acknowledged packet was a retransmission (Karn's rule:
    /// no RTT sample).
    pub retransmit: bool,
}

/// A route is the ordered list of nodes a packet visits, with the
/// propagation delay charged on the segment *into* each node. Routes are
/// immutable and shared (`Rc`), so forwarding costs one pointer copy.
///
/// Hop buffers are pooled the same way `Deliver` packet boxes are: when
/// the last handle to a route drops, its `Vec` goes to a thread-local
/// free list and the next [`Route::from_hops`] reuses it. Short-flow
/// heavy workloads (a web fleet builds two routes per flow) thus run
/// route-allocation-free in steady state. Pure capacity reuse — contents
/// are always rewritten — so results are unaffected.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// `(next node, propagation delay to reach it)` pairs, in path order.
    pub hops: Vec<(NodeId, crate::time::SimDuration)>,
}

thread_local! {
    #[allow(clippy::type_complexity)]
    static HOPS_POOL: std::cell::RefCell<Vec<Vec<(NodeId, crate::time::SimDuration)>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Retained hop buffers per thread; bounds pool memory like
/// `PACKET_POOL_CAP` does for packet boxes.
const HOPS_POOL_CAP: usize = 256;

impl Drop for Route {
    fn drop(&mut self) {
        let hops = std::mem::take(&mut self.hops);
        if hops.capacity() == 0 {
            return;
        }
        // try_with: never panic if the TLS slot is already torn down.
        let _ = HOPS_POOL.try_with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < HOPS_POOL_CAP {
                pool.push(hops);
            }
        });
    }
}

impl Route {
    /// A shared route over an owned hop list.
    pub fn new(hops: Vec<(NodeId, crate::time::SimDuration)>) -> Rc<Route> {
        Rc::new(Route { hops })
    }

    /// [`Route::new`] over a pooled hop buffer: reuses the `Vec` of a
    /// previously dropped route instead of allocating.
    pub fn from_hops(
        hops: impl IntoIterator<Item = (NodeId, crate::time::SimDuration)>,
    ) -> Rc<Route> {
        let mut buf = HOPS_POOL
            .try_with(|p| p.borrow_mut().pop())
            .ok()
            .flatten()
            .unwrap_or_default();
        buf.clear();
        buf.extend(hops);
        Rc::new(Route { hops: buf })
    }

    /// Number of hops on the route.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True for a route with no hops.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Total propagation delay along the route.
    pub fn total_delay(&self) -> crate::time::SimDuration {
        self.hops
            .iter()
            .fold(crate::time::SimDuration::ZERO, |acc, (_, d)| acc + *d)
    }
}

/// A simulated packet. Value type; the simulator moves it between nodes.
#[derive(Debug, Clone)]
pub struct Packet {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Per-flow sequence number (data packets) or the seq being ACKed.
    pub seq: u64,
    /// Wire size in bytes, headers included.
    pub size: u32,
    /// ECN codepoint (ABC reinterpretation — see [`Ecn`]).
    pub ecn: Ecn,
    /// Explicit-scheme header fields, if any.
    pub feedback: Feedback,
    /// True for flows whose packets an ABC router classifies into the ABC
    /// queue (§5.2 assumes routers can identify ABC traffic, e.g. via the
    /// IPv6 flow label or a proxy's address).
    pub abc_capable: bool,
    /// Departure time from the original sender.
    pub sent_at: SimTime,
    /// Set when this transmission is a retransmission of a lost packet.
    pub retransmit: bool,
    /// Present iff this is an ACK.
    pub ack: Option<AckData>,
    /// Remaining path. `hop` indexes the *next* node to visit.
    pub route: Rc<Route>,
    /// Index into `route.hops` of the next node to visit.
    pub hop: usize,
    /// Scratch: when this packet entered the queue it currently occupies.
    pub enqueued_at: SimTime,
}

impl Packet {
    /// True if this packet carries acknowledgment data.
    pub fn is_ack(&self) -> bool {
        self.ack.is_some()
    }

    /// Next node on the route with the propagation delay to reach it,
    /// or `None` when the route is exhausted.
    pub fn next_hop(&self) -> Option<(NodeId, crate::time::SimDuration)> {
        self.route.hops.get(self.hop).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn ecn_bits_round_trip() {
        for e in [Ecn::NotEct, Ecn::Accelerate, Ecn::Brake, Ecn::Ce] {
            assert_eq!(Ecn::from_bits(e.bits()), e);
        }
    }

    #[test]
    fn abc_codepoints_look_ect_to_legacy_routers() {
        assert!(Ecn::Accelerate.is_ect());
        assert!(Ecn::Brake.is_ect());
        assert!(!Ecn::NotEct.is_ect());
        assert!(!Ecn::Ce.is_ect());
    }

    #[test]
    fn ecn_wire_encoding_matches_paper_table() {
        // §5.1.2: accelerate = 01, brake = 10, ECN set = 11.
        assert_eq!(Ecn::Accelerate.bits(), 0b01);
        assert_eq!(Ecn::Brake.bits(), 0b10);
        assert_eq!(Ecn::Ce.bits(), 0b11);
        assert_eq!(Ecn::NotEct.bits(), 0b00);
    }

    #[test]
    fn pooled_route_builder_matches_new() {
        let hops = vec![
            (NodeId(1), SimDuration::from_millis(25)),
            (NodeId(2), SimDuration::from_millis(25)),
        ];
        let a = Route::new(hops.clone());
        let b = Route::from_hops(hops.iter().copied());
        assert_eq!(*a, *b);
        drop(a);
        drop(b); // both buffers land in the pool
        let c = Route::from_hops([(NodeId(7), SimDuration::ZERO)]);
        assert_eq!(c.hops, vec![(NodeId(7), SimDuration::ZERO)]);
    }

    #[test]
    fn route_total_delay_sums_segments() {
        let r = Route::new(vec![
            (NodeId(1), SimDuration::from_millis(25)),
            (NodeId(2), SimDuration::from_millis(25)),
        ]);
        assert_eq!(r.total_delay(), SimDuration::from_millis(50));
        assert_eq!(r.len(), 2);
    }
}
