//! Quickstart: one ABC flow over a time-varying link, end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the smallest complete ABC system — sender, router, link, sink —
//! runs it for a minute, and prints what the paper's Fig. 1d shows: high
//! utilization *and* low queuing delay on a link whose rate keeps moving.
//!
//! Everything goes through the scenario engine: describe the run as a
//! [`ScenarioSpec`], hand it to [`ScenarioEngine`], read the `Report`.

use abc_repro::experiments::{sparkline, LinkSpec, ScenarioEngine, ScenarioSpec, Scheme};
use abc_repro::netsim::rate::Rate;
use abc_repro::netsim::time::SimDuration;
use abc_repro::netsim::SimTime;

fn main() {
    // A link that steps through several rates — a crude wireless stand-in.
    // Swap in `LinkSpec::Trace(cellular::builtin("Verizon1").unwrap())`
    // for the full cellular emulation.
    let link = LinkSpec::Steps(vec![
        (SimTime::ZERO, Rate::from_mbps(12.0)),
        (
            SimTime::ZERO + SimDuration::from_secs(15),
            Rate::from_mbps(24.0),
        ),
        (
            SimTime::ZERO + SimDuration::from_secs(30),
            Rate::from_mbps(6.0),
        ),
        (
            SimTime::ZERO + SimDuration::from_secs(45),
            Rate::from_mbps(18.0),
        ),
    ]);

    let engine = ScenarioEngine::new();
    let spec = ScenarioSpec::single(Scheme::Abc, link.clone()).duration_secs(60);
    let report = engine.run(&spec);

    println!("ABC over a stepping link, 60 s:");
    println!("  capacity : {}", sparkline(&report.capacity_series, 60));
    println!("  goodput  : {}", sparkline(&report.tput_series, 60));
    println!("  qdelay   : {}", sparkline(&report.qdelay_series, 60));
    println!();
    println!("{}", report.row());
    println!();
    println!(
        "utilization {:.1}% with {:.0} ms 95th-percentile queuing delay — \
         the two goals the paper says existing schemes trade off.",
        report.utilization * 100.0,
        report.qdelay_ms.p95
    );

    // Compare with Cubic on the same link:
    let cubic = ScenarioSpec::single(Scheme::Cubic, link).duration_secs(60);
    let cr = engine.run(&cubic);
    println!("\nFor contrast:\n{}", cr.row());
}
