#![warn(missing_docs)]

//! # baselines — end-to-end congestion-control schemes
//!
//! Every end-to-end scheme the ABC paper evaluates against:
//!
//! | Module | Scheme | Character on variable links (paper's finding) |
//! |---|---|---|
//! | [`cubic`] | TCP Cubic (RFC 8312) | high throughput, bufferbloat |
//! | [`reno`] | TCP NewReno | high delay, loss-driven |
//! | [`vegas`] | TCP Vegas | low delay, underutilizes |
//! | [`bbr`] | BBR v1 model | high throughput, overshoots on drops |
//! | [`copa`] | Copa (NSDI'18) | low delay, underutilizes on rises |
//! | [`pcc`] | PCC Vivace-latency | high throughput, high delay |
//! | [`sprout`] | Sprout-like forecaster | conservative, low utilization |
//! | [`verus`] | Verus-like delay profile | oscillatory, high delay |
//!
//! All are implementations of [`netsim::flow::CongestionControl`] built
//! from the published control laws; none are stubs.

pub mod bbr;
pub mod copa;
pub mod cubic;
pub mod pcc;
pub mod reno;
pub mod sprout;
pub mod vegas;
pub mod verus;

pub use bbr::Bbr;
pub use copa::Copa;
pub use cubic::{Cubic, CubicWindow};
pub use pcc::PccVivace;
pub use reno::NewReno;
pub use sprout::Sprout;
pub use vegas::Vegas;
pub use verus::Verus;
